//! End-to-end coherence validation: random barrier-structured programs run
//! on the Munin runtime, every read's observed value is recorded, and the
//! resulting history is checked against the paper's *loose coherence*
//! definition with the vector-clock checker.
//!
//! Each write deposits a globally unique label, so a read's value identifies
//! exactly which write it observed. The program structure (rounds separated
//! by global barriers) is known a priori, so the happens-before history can
//! be reconstructed faithfully after the run.

use munin_api::{Backend, Par, ParTyped, ProgramBuilder};
use munin_check::{check_loose, Event, History};
use munin_types::{IvyConfig, MuninConfig, ObjectId, SharingType, ThreadId, UpdatePolicy};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex};

/// One scripted op for one thread in one round.
#[derive(Debug, Clone, Copy)]
enum ScriptOp {
    /// Write cell `obj_idx` (the label is assigned globally).
    Write { obj_idx: usize, label: u32 },
    /// Read cell `obj_idx`.
    Read { obj_idx: usize },
}

/// Generate a random barrier-structured program script.
fn gen_script(seed: u64, threads: usize, objects: usize, rounds: usize) -> Vec<Vec<Vec<ScriptOp>>> {
    // script[round][thread] = ops
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut next_label = 1u32;
    (0..rounds)
        .map(|_| {
            (0..threads)
                .map(|_| {
                    let n_ops = rng.gen_range(0..4);
                    (0..n_ops)
                        .map(|_| {
                            let obj_idx = rng.gen_range(0..objects);
                            if rng.gen_bool(0.45) {
                                let label = next_label;
                                next_label += 1;
                                ScriptOp::Write { obj_idx, label }
                            } else {
                                ScriptOp::Read { obj_idx }
                            }
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Run the script on Munin, recording what every read observed; rebuild the
/// history; return the checker verdicts.
fn run_and_check(seed: u64, threads: usize, objects: usize, rounds: usize, policy: UpdatePolicy) {
    let mut cfg = MuninConfig::default();
    cfg.write_many_policy = policy;
    run_and_check_on(seed, threads, objects, rounds, Backend::Munin(cfg));
}

/// Backend-generic variant: strict backends (Ivy) must of course also pass
/// the loose checker — strict coherence implies loose coherence.
fn run_and_check_on(seed: u64, threads: usize, objects: usize, rounds: usize, backend: Backend) {
    let script = gen_script(seed, threads, objects, rounds);
    let mut p = ProgramBuilder::new(threads);
    let objs: Vec<munin_types::SharedScalar<i64>> = (0..objects)
        .map(|i| p.scalar::<i64>(&format!("cell{i}"), SharingType::WriteMany, i % threads))
        .collect();
    let bar = p.barrier(0, threads as u32);

    // observations[thread] = per-op observed labels (for reads).
    let observations: Vec<Arc<Mutex<Vec<u32>>>> =
        (0..threads).map(|_| Arc::new(Mutex::new(Vec::new()))).collect();

    for t in 0..threads {
        let obs = observations[t].clone();
        let objs = objs.clone();
        let script = script.clone();
        p.thread(t, move |par: &mut dyn Par| {
            for round in script.iter() {
                for op in &round[par.self_id()] {
                    match op {
                        ScriptOp::Write { obj_idx, label } => {
                            par.store(&objs[*obj_idx], *label as i64);
                        }
                        ScriptOp::Read { obj_idx } => {
                            let v = par.load(&objs[*obj_idx]);
                            obs.lock().unwrap().push(v as u32);
                        }
                    }
                }
                par.barrier(bar);
            }
        });
    }
    let o = p.run(backend);
    o.assert_clean();

    // Rebuild the history: rounds bracketed by barrier episodes.
    let mut events = Vec::new();
    let mut read_cursors = vec![0usize; threads];
    for round in &script {
        for (t, ops) in round.iter().enumerate() {
            for op in ops {
                match op {
                    ScriptOp::Write { obj_idx, label } => events.push(Event::Write {
                        thread: ThreadId(t as u32),
                        obj: ObjectId(*obj_idx as u64),
                        label: *label,
                    }),
                    ScriptOp::Read { obj_idx } => {
                        let observed = observations[t].lock().unwrap()[read_cursors[t]];
                        read_cursors[t] += 1;
                        events.push(Event::Read {
                            thread: ThreadId(t as u32),
                            obj: ObjectId(*obj_idx as u64),
                            observed,
                        });
                    }
                }
            }
        }
        events.push(Event::Barrier { threads: (0..threads as u32).map(ThreadId).collect() });
    }
    let h = History { n_threads: threads, events };
    let violations = check_loose(&h);
    assert!(violations.is_empty(), "loose-coherence violations (seed {seed}): {violations:#?}");
}

#[test]
fn ivy_satisfies_loose_coherence_too() {
    // Strict coherence implies loose coherence; the Ivy baseline must pass
    // the same checker (central locks: the script uses barriers only).
    for seed in [1u64, 42] {
        run_and_check_on(seed, 3, 2, 4, Backend::Ivy(IvyConfig::default().with_central_locks()));
    }
}

#[test]
fn munin_satisfies_loose_coherence_on_fixed_seeds() {
    for seed in [1u64, 7, 42, 1001] {
        run_and_check(seed, 3, 2, 5, UpdatePolicy::Refresh);
    }
}

#[test]
fn munin_satisfies_loose_coherence_under_invalidate_policy() {
    for seed in [3u64, 99] {
        run_and_check(seed, 3, 2, 5, UpdatePolicy::Invalidate);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Property: every Munin execution of a random barrier-structured
    /// program is loosely coherent.
    #[test]
    fn munin_is_loosely_coherent(seed in 0u64..10_000) {
        run_and_check(seed, 3, 2, 4, UpdatePolicy::Refresh);
    }

    /// And with more threads/objects, under the adaptive policy.
    #[test]
    fn munin_is_loosely_coherent_adaptive(seed in 0u64..10_000) {
        run_and_check(seed, 4, 3, 3, UpdatePolicy::Adaptive);
    }
}

//! Regression tests for the rt kernel's stall watchdog: idle inbox polls
//! must never count as progress. (The timer-race regression that needs the
//! `MUNIN_RT_STALL_MS` env override lives alone in `rt_stall_env.rs` —
//! mutating the environment with sibling tests running would be a
//! getenv/setenv race.)

use munin_api::{Backend, ComputeMode, Par, ParTyped, ProgramBuilder, RtTuning};
use munin_types::{MuninConfig, SharingType};
use std::time::{Duration, Instant};

/// Idle inbox polls must not mask stalls: a server's 50 ms `recv_timeout`
/// wake-ups are not activity, so a run whose servers sit idle forever (one
/// thread parked at a barrier nobody else will reach, no timers anywhere)
/// must be declared stalled by the watchdog — and within the stall window
/// plus slack, not eventually. If an idle poll ever counts as activity the
/// watchdog never fires and this test hangs until the CI-level timeout.
#[test]
fn watchdog_fires_while_servers_are_completely_idle() {
    let mut tuning = RtTuning::default();
    tuning.compute = ComputeMode::Skip;
    tuning.stall_timeout = Duration::from_millis(500);

    let mut p = ProgramBuilder::new(1);
    p.rt_tuning(tuning);
    let bar = p.barrier(0, 2); // two participants, only one thread: never satisfied
    p.thread(0, move |par: &mut dyn Par| {
        par.barrier(bar);
    });
    let started = Instant::now();
    let o = p.run(Backend::MuninRt(MuninConfig::default()));
    let elapsed = started.elapsed();
    let r = o.report();
    assert!(r.deadlocked, "watchdog never fired on an idle, stalled run");
    assert!(r.errors.iter().any(|e| e.contains("stall")), "stall not reported: {:?}", r.errors);
    assert!(
        elapsed >= Duration::from_millis(500),
        "stall declared before the window elapsed: {elapsed:?}"
    );
    assert!(
        elapsed < Duration::from_secs(30),
        "idle polls delayed stall detection far beyond the window: {elapsed:?}"
    );
}

/// The same idle-stall detection must hold on the *batched* server loop
/// with a batch in flight beforehand: traffic first, then a wedge.
#[test]
fn watchdog_fires_after_real_traffic_goes_quiet() {
    let mut tuning = RtTuning::default();
    tuning.compute = ComputeMode::Skip;
    tuning.stall_timeout = Duration::from_millis(600);

    const NODES: usize = 2;
    let mut p = ProgramBuilder::new(NODES);
    p.rt_tuning(tuning);
    let ctr = p.scalar::<i64>("ctr", SharingType::GeneralReadWrite, 0);
    let l = p.lock(0);
    let wedge = p.barrier(0, (NODES + 1) as u32); // one participant short
    for t in 0..NODES {
        p.thread(t, move |par: &mut dyn Par| {
            for _ in 0..10 {
                par.lock(l);
                let v = par.load(&ctr);
                par.store(&ctr, v + 1);
                par.unlock(l);
            }
            par.barrier(wedge); // everyone arrives; nobody ever releases
        });
    }
    let started = Instant::now();
    let o = p.run(Backend::MuninRt(MuninConfig::default()));
    let r = o.report();
    assert!(r.deadlocked, "watchdog missed the post-traffic stall");
    assert!(started.elapsed() < Duration::from_secs(30));
}

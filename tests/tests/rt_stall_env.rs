//! Regression test for the timer-in-flight watchdog race, exercised via
//! the `MUNIN_RT_STALL_MS` env override the bug report names.
//!
//! This is the **only** test in this binary on purpose: it mutates the
//! process environment (`set_var`/`remove_var`), and `RtTuning::default()`
//! / `Shared::new` read the environment from whatever thread constructs
//! them — concurrent sibling tests in the same binary would make that a
//! getenv/setenv data race (undefined behavior on glibc). Cargo runs test
//! binaries sequentially, so a single-test binary has no such neighbors.

use munin_api::{Backend, ComputeMode, Par, ParTyped, ProgramBuilder, RtTuning};
use munin_types::{IvyConfig, SharingType};
use std::time::Duration;

/// Timer-in-flight watchdog race (the bug): the timer thread used to
/// decrement `timers_pending` *before* delivering the fired event, so a
/// watchdog with a tight stall window could observe "all threads blocked +
/// no activity + no pending timer" while the event that would unblock the
/// run was still in flight, and declare a false stall.
///
/// This run makes wall-clock backoff timers the *only* progress signal for
/// long stretches: Ivy spin-lock waiters park on armed timers between
/// polls, every thread is blocked (no modelled compute), and the stall
/// window — set through `MUNIN_RT_STALL_MS` — is far below the backoff
/// windows. A clean finish means every fire was accounted as
/// pending-until-delivered and counted as activity.
#[test]
fn tight_stall_window_sees_no_false_stall_from_in_flight_timers() {
    // Capture the env override into this test's tuning, then clear it so
    // the rest of the run is unaffected.
    std::env::set_var("MUNIN_RT_STALL_MS", "400");
    let mut tuning = RtTuning::default();
    std::env::remove_var("MUNIN_RT_STALL_MS");
    assert_eq!(
        tuning.stall_timeout,
        Duration::from_millis(400),
        "MUNIN_RT_STALL_MS override not picked up"
    );
    tuning.compute = ComputeMode::Skip;

    // Long backoff windows (up to 64x the base) keep waiters parked on
    // nothing but a pending timer for multiples of the stall window.
    let mut cfg = IvyConfig::default();
    cfg.spin_backoff_us = 2_000;

    const NODES: usize = 3;
    const ITERS: usize = 30;
    let mut p = ProgramBuilder::new(NODES);
    p.rt_tuning(tuning);
    let ctr = p.scalar::<i64>("ctr", SharingType::GeneralReadWrite, 0);
    let l = p.lock(0);
    let bar = p.barrier(0, NODES as u32);
    for t in 0..NODES {
        p.thread(t, move |par: &mut dyn Par| {
            for _ in 0..ITERS {
                par.lock(l);
                let v = par.load(&ctr);
                par.store(&ctr, v + 1);
                par.unlock(l);
            }
            par.barrier(bar);
            if par.self_id() == 0 {
                par.lock(l);
                let total = par.load(&ctr);
                par.unlock(l);
                assert_eq!(total, (NODES * ITERS) as i64);
            }
        });
    }
    let o = p.run(Backend::IvyRt(cfg));
    let r = o.report();
    assert!(
        !r.deadlocked,
        "false stall: watchdog fired while timer-driven progress was pending: {:?}",
        r.errors
    );
    o.assert_clean();
}

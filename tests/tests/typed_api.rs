//! The typed handle API, end to end: one program written purely against
//! `SharedArray` / `SharedScalar` handles must produce bit-identical results
//! on Munin, Ivy and native threads; and misuse (out-of-bounds access,
//! type-confused casts) must fail at the API layer with a clear message.

use munin_api::{Backend, Par, ParTyped, ProgramBuilder};
use munin_types::{IvyConfig, MuninConfig, SharingType};
use std::sync::{Arc, Mutex};

type SinkOutput = (Vec<f64>, Vec<i64>, Vec<u8>, i64, u64);

/// A small program exercising every element type and every typed accessor:
/// f64 bulk access, i64 region edits, u8 byte stripes, an atomic i64
/// counter and a lock-protected u64 cell. Returns what thread 0 collected.
fn typed_kitchen_sink(nodes: usize, backend: Backend) -> SinkOutput {
    let mut p = ProgramBuilder::new(nodes);
    let floats = p.array::<f64>("floats", 64, SharingType::WriteMany, 0);
    let ints = p.array::<i64>("ints", 64, SharingType::WriteMany, 0);
    let bytes = p.array::<u8>("bytes", 64, SharingType::WriteMany, 0);
    let hits = p.scalar::<i64>("hits", SharingType::GeneralReadWrite, 0);
    let stamp = p.scalar::<u64>("stamp", SharingType::GeneralReadWrite, 0);
    let l = p.lock(0);
    let bar = p.barrier(0, nodes as u32);
    let out = Arc::new(Mutex::new(None));

    for t in 0..nodes {
        let out = out.clone();
        p.thread(t, move |par: &mut dyn Par| {
            let me = par.self_id() as u32;
            let n = par.n_threads() as u32;
            let chunk = floats.len() / n;
            let (lo, hi) = (me * chunk, (me + 1) * chunk);

            // Stripe of f64s via bulk write from a local buffer.
            let vals: Vec<f64> = (lo..hi).map(|i| (i as f64) * 1.5 - 3.0).collect();
            par.write_from(&floats, lo, &vals);

            // Stripe of i64s via a region view (read, edit locally, write
            // back once on drop).
            {
                let mut r = par.region(&ints, lo..hi);
                for (off, slot) in r.as_mut_slice().iter_mut().enumerate() {
                    *slot = (lo as i64 + off as i64) * -7;
                }
            }

            // Stripe of bytes via single-element set.
            for i in lo..hi {
                par.set(&bytes, i, (i % 251) as u8);
            }

            // Shared counter via fetch-add, u64 stamp via lock + max.
            par.fetch_add_scalar(&hits, 1 + me as i64);
            par.lock(l);
            let cur = par.load(&stamp);
            par.store(&stamp, cur.max(0x1_0000 + me as u64));
            par.unlock(l);

            par.barrier(bar);
            if me == 0 {
                let f = par.read_all(&floats);
                let i = par.read_all(&ints);
                let b = par.read_all(&bytes);
                let h = par.load(&hits);
                let s = par.load(&stamp);
                *out.lock().unwrap() = Some((f, i, b, h, s));
            }
        });
    }
    p.run(backend).assert_clean();
    let got = out.lock().unwrap().take().expect("program produced output");
    got
}

#[test]
fn typed_program_bit_identical_across_backends() {
    let nodes = 4;
    let munin = typed_kitchen_sink(nodes, Backend::Munin(MuninConfig::default()));
    let ivy = typed_kitchen_sink(nodes, Backend::Ivy(IvyConfig::default()));
    let native = typed_kitchen_sink(nodes, Backend::Native);
    // Bit-identical: compare the f64 stripes through their bit patterns.
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    assert_eq!(bits(&munin.0), bits(&ivy.0), "Munin vs Ivy f64 stripes");
    assert_eq!(bits(&munin.0), bits(&native.0), "Munin vs Native f64 stripes");
    assert_eq!(munin, ivy, "Munin vs Ivy");
    assert_eq!(munin, native, "Munin vs Native");
    // And against the closed-form expectation: thread `me` adds 1 + me.
    assert_eq!(munin.3, (0..4).map(|me| 1 + me).sum::<i64>(), "hit counter");
    assert_eq!(munin.4, 0x1_0000 + 3, "stamp max");
    assert_eq!(munin.1[5], -35);
    assert_eq!(munin.2[60], 60);
}

/// Run a one-thread body on the Munin simulator and return the run errors
/// it produced (a panicking simulated thread is reported, not propagated).
fn munin_run_errors(body: impl FnOnce(&mut dyn Par) + Send + 'static) -> Vec<String> {
    let mut p = ProgramBuilder::new(1);
    p.thread(0, body);
    let o = p.run(Backend::Munin(MuninConfig::default()));
    o.report().errors.clone()
}

#[test]
fn out_of_bounds_get_fails_at_api_layer_on_munin() {
    let mut p = ProgramBuilder::new(1);
    let arr = p.array::<f64>("arr", 8, SharingType::WriteMany, 0);
    p.thread(0, move |par: &mut dyn Par| {
        let _ = par.get(&arr, 8); // one past the end
    });
    let o = p.run(Backend::Munin(MuninConfig::default()));
    let errors = o.report().errors.clone();
    assert!(!errors.is_empty(), "out-of-bounds get must be reported");
    let msg = &errors[0];
    assert!(msg.contains("index out of bounds"), "got: {msg}");
    assert!(msg.contains("f64"), "message names the element type: {msg}");
    assert!(msg.contains("[8]"), "message names the declared length: {msg}");
}

#[test]
fn out_of_bounds_bulk_write_fails_at_api_layer_on_munin() {
    let mut p = ProgramBuilder::new(1);
    let arr = p.array::<i64>("arr", 4, SharingType::WriteMany, 0);
    p.thread(0, move |par: &mut dyn Par| {
        par.write_from(&arr, 2, &[1, 2, 3]); // elements 2..5 of 4
    });
    let o = p.run(Backend::Munin(MuninConfig::default()));
    let errors = o.report().errors.clone();
    assert!(
        errors.iter().any(|e| e.contains("index out of bounds: elements 2..5")),
        "got: {errors:?}"
    );
}

#[test]
fn out_of_bounds_region_fails_at_api_layer_on_munin() {
    let errors = munin_run_errors(|par| {
        let arr = munin_types::SharedArray::<f64>::from_raw(
            munin_types::ObjectId(99),
            8,
            SharingType::WriteMany,
        );
        let _ = par.region(&arr, 4..9); // past the declared length
    });
    assert!(errors.iter().any(|e| e.contains("index out of bounds")), "got: {errors:?}");
}

#[test]
fn out_of_bounds_fails_on_native_too() {
    // The bounds check fires in the application thread, before any backend
    // access; on the native backend that surfaces as the thread panic the
    // harness reports at join.
    let mut p = ProgramBuilder::new(1);
    let arr = p.array::<i64>("arr", 4, SharingType::WriteMany, 0);
    p.thread(0, move |par: &mut dyn Par| {
        par.write_from(&arr, 0, &[1, 2, 3, 4, 5]);
    });
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        p.run(Backend::Native);
    }))
    .expect_err("out-of-bounds write must fail the native run");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("panicked"), "got: {msg}");
}

#[test]
fn type_size_mismatch_fails_at_cast() {
    // 7 bytes can never be a whole number of u64s: the failure happens on
    // the handle itself, before any backend is involved.
    let mut p = ProgramBuilder::new(1);
    let odd = p.array::<u8>("odd", 7, SharingType::WriteMany, 0);
    let err = std::panic::catch_unwind(move || {
        let _ = odd.cast::<u64>();
    })
    .expect_err("7 u8s cannot cast to u64s");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("type-confused cast"), "got: {msg}");
    assert!(msg.contains("u64"), "got: {msg}");
}

#[test]
fn cast_roundtrip_preserves_bytes_across_backends() {
    // Write through a u8 view, read through a u64 view: the little-endian
    // wire layout is part of the API contract, on every backend.
    for backend in [
        Backend::Munin(MuninConfig::default()),
        Backend::Ivy(IvyConfig::default()),
        Backend::Native,
    ] {
        let mut p = ProgramBuilder::new(1);
        let words = p.array::<u64>("words", 2, SharingType::WriteMany, 0);
        let seen = Arc::new(Mutex::new(0u64));
        let s = seen.clone();
        p.thread(0, move |par: &mut dyn Par| {
            let bytes = words.cast::<u8>();
            par.write_from(&bytes, 0, &[0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88]);
            *s.lock().unwrap() = par.get(&words, 0);
        });
        let name = backend.name();
        p.run(backend).assert_clean();
        assert_eq!(*seen.lock().unwrap(), 0x8877_6655_4433_2211, "on {name}");
    }
}

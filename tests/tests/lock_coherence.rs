//! Loose-coherence validation across *lock* edges.
//!
//! The barrier-structured validation (`coherence_validation.rs`) exercises
//! barrier-induced happens-before. Here every thread also executes
//! lock-protected critical sections; inside each it increments a counter
//! cell and records the ticket it observed, which reveals the *global order
//! of critical sections* — enough to reconstruct the release→acquire edges
//! faithfully in the checked history.
//!
//! The key property: a read inside a critical section must see every write
//! made in earlier critical sections of the same lock (the paper's "a
//! synchronization event in a program requires that the delayed updates be
//! propagated first").

use munin_api::{Backend, Par, ParTyped, ProgramBuilder};
use munin_check::{check_loose, Event, History};
use munin_types::{MuninConfig, ObjectDecl, ObjectId, SharingType, ThreadId, UpdatePolicy};
use std::sync::{Arc, Mutex};

/// Per-thread record of one critical section: (ticket observed, value
/// written to the data cell, value observed in the data cell).
#[derive(Debug, Clone, Copy)]
struct CsRecord {
    ticket: i64,
    wrote: u32,
    observed: u32,
}

fn run_lock_validation(threads: usize, rounds: usize, policy: UpdatePolicy) {
    let mut p = ProgramBuilder::new(threads);
    let l = p.lock(0);
    // The protected state: [ticket counter, data cell] — migratory,
    // riding the lock.
    let cell = p.array_decl::<i64>(
        ObjectDecl::template("protected", SharingType::Migratory).with_lock(l),
        2,
        0,
    );
    let bar = p.barrier(0, threads as u32);

    let logs: Vec<Arc<Mutex<Vec<CsRecord>>>> =
        (0..threads).map(|_| Arc::new(Mutex::new(Vec::new()))).collect();

    for t in 0..threads {
        let log = logs[t].clone();
        p.thread(t, move |par: &mut dyn Par| {
            for r in 0..rounds {
                par.lock(l);
                let ticket = par.get(&cell, 0);
                let observed = par.get(&cell, 1) as u32;
                // Unique label: thread in high bits, round+1 in low bits.
                let wrote = ((par.self_id() as u32) << 16) | (r as u32 + 1);
                par.set(&cell, 0, ticket + 1);
                par.set(&cell, 1, wrote as i64);
                par.unlock(l);
                log.lock().unwrap().push(CsRecord { ticket, wrote, observed });
            }
            par.barrier(bar);
        });
    }
    let mut cfg = MuninConfig::default();
    cfg.write_many_policy = policy;
    let o = p.run(Backend::Munin(cfg));
    o.assert_clean();

    // Reconstruct the global critical-section order from the tickets.
    let mut sections: Vec<(i64, ThreadId, CsRecord)> = Vec::new();
    for (t, log) in logs.iter().enumerate() {
        for rec in log.lock().unwrap().iter() {
            sections.push((rec.ticket, ThreadId(t as u32), *rec));
        }
    }
    sections.sort_by_key(|(ticket, _, _)| *ticket);
    // Tickets must be exactly 0..n — mutual exclusion and lost-update check.
    for (i, (ticket, _, _)) in sections.iter().enumerate() {
        assert_eq!(*ticket, i as i64, "ticket sequence has a gap or duplicate");
    }

    // Build the history: each section is acquire, read, write, release on
    // one object (the data cell), in ticket order.
    let data_obj = ObjectId(0);
    let mut events = Vec::new();
    for (_, thread, rec) in &sections {
        events.push(Event::Acquire { thread: *thread, lock: munin_types::LockId(0) });
        events.push(Event::Read { thread: *thread, obj: data_obj, observed: rec.observed });
        events.push(Event::Write { thread: *thread, obj: data_obj, label: rec.wrote });
        events.push(Event::Release { thread: *thread, lock: munin_types::LockId(0) });
    }
    let h = History { n_threads: threads, events };
    let violations = check_loose(&h);
    assert!(violations.is_empty(), "lock-edge coherence violations: {violations:#?}");

    // Stronger, direct check: each section must observe exactly the value
    // written by the immediately preceding section (serialized by the
    // lock, updates flushed at the release).
    for w in sections.windows(2) {
        let (_, _, prev) = w[0];
        let (_, _, cur) = w[1];
        assert_eq!(
            cur.observed, prev.wrote,
            "critical section saw a stale protected value across a lock handoff"
        );
    }
}

#[test]
fn lock_protected_state_is_coherent_refresh() {
    run_lock_validation(3, 6, UpdatePolicy::Refresh);
}

#[test]
fn lock_protected_state_is_coherent_invalidate() {
    run_lock_validation(4, 5, UpdatePolicy::Invalidate);
}

#[test]
fn lock_protected_state_is_coherent_many_rounds() {
    run_lock_validation(4, 25, UpdatePolicy::Refresh);
}

/// The same discipline with the protected state declared write-many (not
/// migratory): flush-on-release plus fetch-on-acquire must still deliver
/// exactly the previous section's value.
#[test]
fn lock_protected_write_many_is_coherent() {
    let threads = 3;
    let rounds = 6;
    let mut p = ProgramBuilder::new(threads);
    let l = p.lock(0);
    let cell = p.array::<i64>("protected", 2, SharingType::WriteMany, 0);
    let bar = p.barrier(0, threads as u32);
    let logs: Vec<Arc<Mutex<Vec<CsRecord>>>> =
        (0..threads).map(|_| Arc::new(Mutex::new(Vec::new()))).collect();
    for t in 0..threads {
        let log = logs[t].clone();
        p.thread(t, move |par: &mut dyn Par| {
            for r in 0..rounds {
                par.lock(l);
                let ticket = par.get(&cell, 0);
                let observed = par.get(&cell, 1) as u32;
                let wrote = ((par.self_id() as u32) << 16) | (r as u32 + 1);
                par.set(&cell, 0, ticket + 1);
                par.set(&cell, 1, wrote as i64);
                par.unlock(l);
                log.lock().unwrap().push(CsRecord { ticket, wrote, observed });
            }
            par.barrier(bar);
        });
    }
    p.run(Backend::Munin(MuninConfig::default())).assert_clean();

    let mut sections: Vec<(i64, CsRecord)> = Vec::new();
    for log in &logs {
        for rec in log.lock().unwrap().iter() {
            sections.push((rec.ticket, *rec));
        }
    }
    sections.sort_by_key(|(t, _)| *t);
    for (i, (ticket, _)) in sections.iter().enumerate() {
        assert_eq!(*ticket, i as i64);
    }
    for w in sections.windows(2) {
        assert_eq!(w[1].1.observed, w[0].1.wrote);
    }
}

//! The batched rt message pipeline must be an invisible optimization:
//! coalescing inbox drains and outbound fan-outs changes how many *channel*
//! operations the fabric performs, never which *protocol* messages flow or
//! what the program computes. These tests run the same programs with the
//! default batched tuning and with `RtTuning::unbatched()` (one event per
//! wake-up, one channel send per message — the pre-batching fabric) and
//! assert results, and where the protocol traffic is deterministic by
//! construction, the entire `NetStats` block, are identical.

use munin_api::{Backend, ComputeMode, Par, ParTyped, ProgramBuilder, RtTuning};
use munin_net::NetStats;
use munin_sim::RunReport;
use munin_types::{IvyConfig, MuninConfig, SharingType};
use std::time::Duration;

fn base_tuning() -> RtTuning {
    let mut t = RtTuning::default();
    t.compute = ComputeMode::Skip;
    t.stall_timeout = Duration::from_secs(5);
    t
}

/// Round-robin lock counter: in round `r` only thread `r % N` takes the
/// lock, with a barrier between rounds. The lock token therefore migrates
/// in one fixed order regardless of OS scheduling, which makes the protocol
/// traffic — not just the result — deterministic, so batched and unbatched
/// runs must produce byte-identical `NetStats`.
fn ordered_lock_counter(nodes: usize, rounds: usize, tuning: RtTuning) -> ProgramBuilder {
    let mut p = ProgramBuilder::new(nodes);
    p.rt_tuning(tuning);
    let ctr = p.scalar::<i64>("ctr", SharingType::GeneralReadWrite, 0);
    let l = p.lock(0);
    let bar = p.barrier(0, nodes as u32);
    for t in 0..nodes {
        p.thread(t, move |par: &mut dyn Par| {
            for r in 0..rounds {
                if r % par.n_threads() == par.self_id() {
                    par.lock(l);
                    let v = par.load(&ctr);
                    par.store(&ctr, v + 1);
                    par.unlock(l);
                }
                par.barrier(bar);
            }
            // One designated checker: a concurrent check from every thread
            // would re-race the lock, and the token migration order (hence
            // the message count) would stop being deterministic.
            if par.self_id() == 0 {
                par.lock(l);
                let total = par.load(&ctr);
                par.unlock(l);
                assert_eq!(total, rounds as i64, "lost update under ordered locking");
            }
        });
    }
    p
}

/// Contended lock counter (every thread hammers the lock concurrently).
/// Message counts here legitimately vary run to run — the token migration
/// order is whatever the OS race produced — so this asserts only that the
/// *result* is exact under both fabrics while real contention stresses the
/// batch path.
fn contended_lock_counter(nodes: usize, iters: usize, tuning: RtTuning) -> ProgramBuilder {
    let mut p = ProgramBuilder::new(nodes);
    p.rt_tuning(tuning);
    let ctr = p.scalar::<i64>("ctr", SharingType::GeneralReadWrite, 0);
    let l = p.lock(0);
    let bar = p.barrier(0, nodes as u32);
    for t in 0..nodes {
        p.thread(t, move |par: &mut dyn Par| {
            for _ in 0..iters {
                par.lock(l);
                let v = par.load(&ctr);
                par.store(&ctr, v + 1);
                par.unlock(l);
            }
            par.barrier(bar);
            par.lock(l);
            let total = par.load(&ctr);
            par.unlock(l);
            assert_eq!(total, (iters * par.n_threads()) as i64, "lost update under contention");
        });
    }
    p
}

fn run_report(p: ProgramBuilder, backend: Backend) -> RunReport {
    let o = p.run(backend);
    o.assert_clean();
    o.report().clone()
}

fn assert_stats_identical(batched: &NetStats, unbatched: &NetStats, what: &str) {
    assert_eq!(
        batched.messages, unbatched.messages,
        "{what}: batching changed the protocol message count"
    );
    assert_eq!(batched.bytes, unbatched.bytes, "{what}: batching changed wire bytes");
    assert_eq!(batched, unbatched, "{what}: batching changed the traffic breakdown");
}

#[test]
fn ordered_lock_counter_identical_stats_batched_vs_unbatched_munin_rt() {
    let batched = run_report(
        ordered_lock_counter(4, 12, base_tuning()),
        Backend::MuninRt(MuninConfig::default()),
    );
    let unbatched = run_report(
        ordered_lock_counter(4, 12, base_tuning().unbatched()),
        Backend::MuninRt(MuninConfig::default()),
    );
    assert_stats_identical(&batched.stats, &unbatched.stats, "ordered lock counter (MuninRt)");
    assert_eq!(batched.ops, unbatched.ops, "op counts must match");
}

#[test]
fn ordered_lock_counter_identical_stats_batched_vs_unbatched_ivy_rt_central() {
    // Central-server locks keep Ivy's sync traffic deterministic too (the
    // spin path arms wall-clock backoff timers, whose counts are timing-
    // dependent by nature).
    let cfg = IvyConfig::default().with_central_locks();
    let batched =
        run_report(ordered_lock_counter(4, 12, base_tuning()), Backend::IvyRt(cfg.clone()));
    let unbatched =
        run_report(ordered_lock_counter(4, 12, base_tuning().unbatched()), Backend::IvyRt(cfg));
    assert_stats_identical(&batched.stats, &unbatched.stats, "ordered lock counter (IvyRt)");
}

#[test]
fn contended_lock_counter_exact_result_batched_and_unbatched() {
    // Every in-process real-time backend in the matrix: a protocol added to
    // `Backend::matrix()` is covered here without an edit.
    let rt_backends: Vec<Backend> =
        Backend::matrix().into_iter().filter(|b| b.is_realtime() && !b.is_distributed()).collect();
    assert!(rt_backends.len() >= 3, "matrix must cover every protocol's rt backend");
    for tuning in [base_tuning(), base_tuning().unbatched()] {
        for backend in &rt_backends {
            contended_lock_counter(4, 25, tuning.clone()).run(backend.clone()).assert_clean();
        }
    }
}

/// Life is the flush-heavy study app: boundary rows are eager
/// producer-consumer objects, so every generation ends in a flush whose
/// updates fan out to every copyholder — exactly the traffic the outbound
/// coalescer batches. Its phases are barrier-separated, so its protocol
/// traffic is schedule-independent: batched and unbatched runs must agree
/// on the result *and* on every traffic counter.
#[test]
fn life_flush_fanout_identical_results_and_stats_batched_vs_unbatched() {
    use munin_apps::life;
    let cfg = life::LifeCfg { width: 48, height: 48, generations: 6, nodes: 4, seed: 17 };
    let want = life::reference(&cfg);

    let mut reports = Vec::new();
    for tuning in [base_tuning(), base_tuning().unbatched()] {
        let (mut p, out) = life::build(&cfg);
        p.rt_tuning(tuning);
        let o = p.run(Backend::MuninRt(MuninConfig::default()));
        o.assert_clean();
        life::check(&out, &want);
        reports.push(o.report().clone());
    }
    let (batched, unbatched) = (&reports[0], &reports[1]);
    assert_stats_identical(&batched.stats, &unbatched.stats, "life flush fan-out");
    assert_eq!(batched.ops, unbatched.ops, "op counts must match");
}

/// Mixed knob settings must compose: inbox batching without outbound
/// coalescing and vice versa are both legal fabrics.
#[test]
fn batch_knobs_compose_independently() {
    let mut inbox_only = base_tuning();
    inbox_only.coalesce = false; // batch_max stays at the default
    let mut coalesce_only = base_tuning();
    coalesce_only.batch_max = 1;
    for tuning in [inbox_only, coalesce_only] {
        contended_lock_counter(3, 20, tuning)
            .run(Backend::MuninRt(MuninConfig::default()))
            .assert_clean();
    }
}

//! Failure injection: the coherence protocols must survive message loss —
//! the transport's ack/retransmission layer (the V kernel's reliable
//! request/response role) recovers dropped transmissions transparently.

use munin_api::{Backend, Par, ParTyped, ProgramBuilder};
use munin_apps::{life, matmul};
use munin_net::SeedGuard;
use munin_sim::TransportConfig;
use munin_types::{MuninConfig, SharingType};

fn lossy(drop_prob: f64, seed: u64) -> TransportConfig {
    TransportConfig::lossy(MuninConfig::default().cost, drop_prob, seed)
}

#[test]
fn matmul_survives_10pct_loss() {
    let _guard = SeedGuard::new("matmul under 10% loss", 42);
    let cfg = matmul::MatmulCfg { n: 16, nodes: 3, seed: 4 };
    let want = matmul::reference(&cfg);
    let (p, out) = matmul::build(&cfg);
    let o = p.run_with(Backend::Munin(MuninConfig::default()), lossy(0.10, 42), None);
    o.assert_clean();
    matmul::check(&out, &want);
    let r = o.report();
    assert!(r.stats.dropped > 0, "loss injection must actually drop something");
    assert!(r.stats.retransmissions > 0, "recovery must actually retransmit");
}

#[test]
fn life_survives_loss_with_eager_pushes() {
    // Eager pushes are fire-and-forget at the protocol level; the transport
    // must still deliver them exactly once, in order.
    let _guard = SeedGuard::new("life under 15% loss", 7);
    let cfg = life::LifeCfg { width: 24, height: 24, generations: 4, nodes: 3, seed: 9 };
    let want = life::reference(&cfg);
    let (p, out) = life::build(&cfg);
    let o = p.run_with(Backend::Munin(MuninConfig::default()), lossy(0.15, 7), None);
    o.assert_clean();
    life::check(&out, &want);
}

#[test]
fn locks_remain_exclusive_under_loss() {
    let _guard = SeedGuard::new("lock exclusion under 20% loss", 99);
    let nodes = 3;
    let mut p = ProgramBuilder::new(nodes);
    let l = p.lock(0);
    let ctr = p.scalar_decl::<i64>(
        munin_types::ObjectDecl::template("ctr", SharingType::Migratory).with_lock(l),
        0,
    );
    let bar = p.barrier(0, nodes as u32);
    for t in 0..nodes {
        p.thread(t, move |par: &mut dyn Par| {
            for _ in 0..5 {
                par.lock(l);
                let v = par.load(&ctr);
                par.store(&ctr, v + 1);
                par.unlock(l);
            }
            par.barrier(bar);
            if par.self_id() == 0 {
                par.lock(l);
                assert_eq!(par.load(&ctr), 15);
                par.unlock(l);
            }
        });
    }
    let o = p.run_with(Backend::Munin(MuninConfig::default()), lossy(0.2, 99), None);
    o.assert_clean();
    assert!(o.report().stats.retransmissions > 0);
}

#[test]
fn loss_runs_are_deterministic_given_seed() {
    let run = |seed: u64| {
        let _guard = SeedGuard::new("matmul determinism probe", seed);
        let cfg = matmul::MatmulCfg { n: 16, nodes: 3, seed: 4 };
        let (p, _out) = matmul::build(&cfg);
        let o = p.run_with(Backend::Munin(MuninConfig::default()), lossy(0.1, seed), None);
        o.assert_clean();
        let r = o.report();
        (r.stats.messages, r.stats.dropped, r.stats.retransmissions, r.finished_at)
    };
    assert_eq!(run(5), run(5), "same seed, same run");
    assert_ne!(run(5), run(6), "different loss pattern, different run");
}

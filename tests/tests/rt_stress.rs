//! Real-concurrency stress tests for the synchronization objects on the
//! real-time backends.
//!
//! The simulator can only ever explore one interleaving per (program,
//! config, seed); here the OS scheduler explores a fresh one every run, so
//! these tests are the closest thing the repo has to a model-checker for
//! the lock/barrier/condvar protocols under true parallelism. Each test
//! asserts *semantics* (no lost updates, correct phase counts, no
//! deadlock) and a generous wall-clock budget — the rt watchdog plus the
//! CI-level timeout turn a wedged protocol into a fast, diagnosable
//! failure instead of a hung job.

use munin_api::{Backend, ComputeMode, Par, ParTyped, ProgramBuilder, RtTuning};
use munin_types::{IvyConfig, MuninConfig, SharingType};
use std::time::{Duration, Instant};

/// Tuning for stress runs: no modelled compute (pure protocol pressure)
/// and a stall timeout short enough that a deadlock fails the test quickly
/// but long enough to never trip on a merely slow scheduler.
fn stress_tuning() -> RtTuning {
    let mut t = RtTuning::default();
    t.compute = ComputeMode::Skip;
    t.stall_timeout = Duration::from_secs(5);
    t
}

const WALL_BUDGET: Duration = Duration::from_secs(120);

/// N threads hammer one shared counter under a single lock, in `phases`
/// barrier-separated rounds. Every increment is a read-modify-write, so a
/// single lost update changes the final count.
fn lock_counter_program(
    backend: Backend,
    nodes: usize,
    threads_per_node: usize,
    iters: usize,
    phases: usize,
) {
    let n_threads = nodes * threads_per_node;
    let mut p = ProgramBuilder::new(nodes);
    p.rt_tuning(stress_tuning());
    let ctr = p.scalar::<i64>("ctr", SharingType::GeneralReadWrite, 0);
    let l = p.lock(0);
    let bar = p.barrier(0, n_threads as u32);
    for t in 0..n_threads {
        p.thread(t % nodes, move |par: &mut dyn Par| {
            for phase in 0..phases {
                for _ in 0..iters {
                    par.lock(l);
                    let v = par.load(&ctr);
                    par.store(&ctr, v + 1);
                    par.unlock(l);
                }
                par.barrier(bar);
                // Everyone observes the full phase total before anyone may
                // start the next phase (reads are outside the lock: the
                // barrier is the synchronization that publishes them).
                par.lock(l);
                let seen = par.load(&ctr);
                par.unlock(l);
                let want = ((phase + 1) * iters * par.n_threads()) as i64;
                assert_eq!(seen, want, "lost update: phase {phase} shows {seen}, want {want}");
                par.barrier(bar);
            }
        });
    }
    let started = Instant::now();
    let name = backend.name();
    p.run(backend).assert_clean();
    assert!(
        started.elapsed() < WALL_BUDGET,
        "{name} lock stress exceeded wall budget: {:?}",
        started.elapsed()
    );
}

#[test]
fn munin_rt_lock_counter_no_lost_updates() {
    lock_counter_program(Backend::MuninRt(MuninConfig::default()), 4, 2, 50, 4);
}

#[test]
fn ivy_rt_spin_lock_counter_no_lost_updates() {
    // The DSM-resident ticket lock under genuine contention: ticket draws
    // ride the page protocol while other nodes' waiters spin on cached
    // copies of now_serving.
    lock_counter_program(Backend::IvyRt(IvyConfig::default()), 4, 2, 25, 2);
}

#[test]
fn ivy_rt_central_lock_counter_no_lost_updates() {
    lock_counter_program(Backend::IvyRt(IvyConfig::default().with_central_locks()), 4, 2, 50, 2);
}

/// Atomic fetch-and-add from every thread concurrently: the old values
/// returned across all threads must be a permutation of 0..total — any
/// duplicate or gap means two RMWs raced.
#[test]
fn munin_rt_fetch_add_is_globally_atomic() {
    const NODES: usize = 4;
    const PER: usize = 2;
    const ITERS: usize = 200;
    let n_threads = NODES * PER;
    let mut p = ProgramBuilder::new(NODES);
    p.rt_tuning(stress_tuning());
    let ctr = p.scalar::<i64>("ctr", SharingType::GeneralReadWrite, 0);
    let tickets = p.array::<i64>("tickets", (n_threads * ITERS) as u32, SharingType::Result, 0);
    let bar = p.barrier(0, n_threads as u32);
    for t in 0..n_threads {
        p.thread(t % NODES, move |par: &mut dyn Par| {
            let base = (par.self_id() * ITERS) as u32;
            for i in 0..ITERS {
                let old = par.fetch_add_scalar(&ctr, 1);
                par.set(&tickets, base + i as u32, old);
            }
            par.barrier(bar);
            if par.self_id() == 0 {
                let mut seen = par.read_all(&tickets);
                seen.sort_unstable();
                let want: Vec<i64> = (0..(par.n_threads() * ITERS) as i64).collect();
                assert_eq!(seen, want, "fetch-add old values are not a permutation");
            }
        });
    }
    let started = Instant::now();
    p.run(Backend::MuninRt(MuninConfig::default())).assert_clean();
    assert!(started.elapsed() < WALL_BUDGET);
}

/// A monitor-style bounded handoff on the rt backend: producers block on
/// `not_full`, consumers on `not_empty`, all through DSM condvars — the
/// pattern most sensitive to lost wakeups under real concurrency.
#[test]
fn munin_rt_condvar_handoff_loses_no_items() {
    const NODES: usize = 2;
    const ITEMS: i64 = 150;
    let mut p = ProgramBuilder::new(NODES);
    p.rt_tuning(stress_tuning());
    // Slot: -1 = empty, otherwise the item. Consumed sum accumulates.
    let slot = p.scalar::<i64>("slot", SharingType::GeneralReadWrite, 0);
    let sum = p.scalar::<i64>("sum", SharingType::GeneralReadWrite, 1);
    let m = p.lock(0);
    let not_full = p.cond(0);
    let not_empty = p.cond(1);
    p.thread(0, move |par: &mut dyn Par| {
        // Producer: slot starts zeroed, so mark it empty first.
        par.lock(m);
        par.store(&slot, -1);
        par.cond_signal(not_empty, true);
        par.unlock(m);
        for item in 1..=ITEMS {
            par.lock(m);
            while par.load(&slot) != -1 {
                par.cond_wait(not_full, m);
            }
            par.store(&slot, item);
            par.cond_signal(not_empty, true);
            par.unlock(m);
        }
    });
    p.thread(1, move |par: &mut dyn Par| {
        let mut got = 0i64;
        let mut expected_next = 1i64;
        while got < ITEMS {
            par.lock(m);
            loop {
                let v = par.load(&slot);
                if v > 0 {
                    break;
                }
                par.cond_wait(not_empty, m);
            }
            let item = par.load(&slot);
            assert_eq!(item, expected_next, "handoff out of order");
            expected_next += 1;
            got += 1;
            par.store(&slot, -1);
            let s = par.load(&sum);
            par.store(&sum, s + item);
            par.cond_signal(not_full, true);
            par.unlock(m);
        }
        let total = par.load(&sum);
        assert_eq!(total, ITEMS * (ITEMS + 1) / 2, "items lost in handoff");
    });
    let started = Instant::now();
    p.run(Backend::MuninRt(MuninConfig::default())).assert_clean();
    assert!(started.elapsed() < WALL_BUDGET);
}

/// Barrier phases alternate writers on the rt backend: even phases thread 0
/// writes, odd phases thread N-1 writes; every thread checks it observes
/// the phase's writer. Catches barriers that release early or tear.
#[test]
fn munin_rt_barrier_phases_publish_writes() {
    const NODES: usize = 4;
    const PHASES: u32 = 40;
    let mut p = ProgramBuilder::new(NODES);
    p.rt_tuning(stress_tuning());
    let word = p.scalar::<i64>("word", SharingType::WriteMany, 0);
    let bar = p.barrier(0, NODES as u32);
    for t in 0..NODES {
        p.thread(t, move |par: &mut dyn Par| {
            for phase in 0..PHASES {
                let writer = if phase % 2 == 0 { 0 } else { par.n_threads() - 1 };
                if par.self_id() == writer {
                    par.store(&word, phase as i64 * 10 + writer as i64);
                }
                par.barrier(bar);
                let seen = par.load(&word);
                assert_eq!(
                    seen,
                    phase as i64 * 10 + writer as i64,
                    "thread {} saw stale value in phase {phase}",
                    par.self_id()
                );
                par.barrier(bar);
            }
        });
    }
    let started = Instant::now();
    p.run(Backend::MuninRt(MuninConfig::default())).assert_clean();
    assert!(started.elapsed() < WALL_BUDGET);
}

/// The watchdog is the rt replacement for quiescence deadlock detection:
/// a genuine lock-order deadlock must be detected, reported (not hung),
/// and torn down within the stall window plus slack.
#[test]
fn rt_watchdog_detects_deadlock_and_tears_down() {
    let mut p = ProgramBuilder::new(2);
    let a = p.lock(0);
    let b = p.lock(1);
    let bar = p.barrier(0, 2);
    p.thread(0, move |par: &mut dyn Par| {
        par.lock(a);
        par.barrier(bar);
        par.lock(b); // held by thread 1, which waits for a: classic cycle
    });
    p.thread(1, move |par: &mut dyn Par| {
        par.lock(b);
        par.barrier(bar);
        par.lock(a);
    });
    let mut t = stress_tuning();
    t.stall_timeout = Duration::from_millis(800);
    p.rt_tuning(t);
    let started = Instant::now();
    let outcome = p.run(Backend::MuninRt(MuninConfig::default()));
    let r = outcome.report();
    assert!(r.deadlocked, "watchdog missed a real deadlock");
    assert!(r.errors.iter().any(|e| e.contains("stall")), "stall not reported: {:?}", r.errors);
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "teardown too slow: {:?}",
        started.elapsed()
    );
    // The wall section is present even on failed runs.
    assert_eq!(r.wall.as_ref().map(|w| w.workers), Some(2));
}

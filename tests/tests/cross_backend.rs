//! Cross-crate integration: every study application must produce the
//! sequential-reference result on every backend in `Backend::matrix()` —
//! each registered protocol (Munin's type-specific coherence, the Ivy
//! write-invalidate baseline, Tardis timestamp leases) on each fabric
//! (simulator, real-time kernel, multi-process TCP) plus native threads —
//! and Munin must also stay correct under its ablation configurations.

use munin_api::Backend;
use munin_apps::App;
use munin_types::{IvyConfig, MuninConfig, ReadMostlyMode, SharingType, UpdatePolicy};

fn run_app(app: App, nodes: usize, backend: Backend) {
    let name = backend.name();
    let (p, verify) = app.build_default(nodes);
    p.run(backend).assert_clean();
    // verify() panics on mismatch; wrap so a failure names the matrix cell
    // that produced it.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(verify));
    if let Err(p) = outcome {
        let msg = p
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        panic!("{} x{nodes} on {name}: wrong result: {msg}", app.name());
    }
}

/// The in-process cells of `Backend::matrix()` plus native threads: every
/// protocol on the simulator and the real-time kernel, freshly configured
/// (the real-time kernels are scheduled by the OS, so each run is a
/// genuinely different interleaving — the agreement asserted here is
/// semantic, not rerun-of-the-same-schedule). A protocol added to the
/// matrix joins this test with no edit here.
fn all_backends() -> Vec<Backend> {
    let mut backends: Vec<Backend> =
        Backend::matrix().into_iter().filter(|b| !b.is_distributed()).collect();
    backends.push(Backend::Native);
    backends
}

/// The multi-process TCP cells of the matrix, when the environment
/// supports them (loopback sockets plus a built `munin-node` binary);
/// `None` with a notice otherwise, so sandboxes without sockets skip
/// loudly instead of failing.
fn tcp_backends() -> Option<Vec<Backend>> {
    match munin_api::tcp_support() {
        Ok(()) => Some(Backend::matrix().into_iter().filter(|b| b.is_distributed()).collect()),
        Err(notice) => {
            eprintln!("NOTICE: skipping TCP backends in cross-backend matrix: {notice}");
            None
        }
    }
}

/// The full matrix of the paper's six applications: every backend, at one
/// worker (trivial placement, everything local) and at four (real traffic,
/// and — on the rt backends — real parallelism), all producing the
/// sequential reference result bit for bit.
#[test]
fn all_apps_bit_identical_across_all_backends_at_1_and_4_workers() {
    for nodes in [1usize, 4] {
        for app in App::ALL {
            for backend in all_backends() {
                run_app(app, nodes, backend);
            }
        }
    }
}

/// The same matrix across real process boundaries: all six applications on
/// `MuninTcp` and `IvyTcp` at 1 and 4 workers (4 workers = the coordinator
/// plus three `munin-node` processes), bit-identical with the in-process
/// backends — which the matrix above already pins to the sequential
/// reference.
#[test]
fn all_apps_bit_identical_on_tcp_backends_at_1_and_4_workers() {
    let Some(backends) = tcp_backends() else { return };
    for nodes in [1usize, 4] {
        for app in App::ALL {
            for backend in &backends {
                run_app(app, nodes, backend.clone());
            }
        }
    }
}

#[test]
fn all_apps_correct_on_munin() {
    for app in App::ALL {
        run_app(app, 4, Backend::Munin(MuninConfig::default()));
    }
}

#[test]
fn all_apps_correct_on_ivy_spin() {
    for app in App::ALL {
        run_app(app, 4, Backend::Ivy(IvyConfig::default()));
    }
}

#[test]
fn all_apps_correct_on_ivy_central() {
    for app in App::ALL {
        run_app(app, 4, Backend::Ivy(IvyConfig::default().with_central_locks()));
    }
}

#[test]
fn all_apps_correct_on_native() {
    for app in App::ALL {
        run_app(app, 4, Backend::Native);
    }
}

#[test]
fn all_apps_correct_with_invalidate_policies() {
    // Flip every update policy to invalidation: correctness must not depend
    // on refresh vs invalidate.
    let mut cfg = MuninConfig::default();
    cfg.write_many_policy = UpdatePolicy::Invalidate;
    cfg.pc_policy = UpdatePolicy::Invalidate;
    cfg.read_mostly = ReadMostlyMode::ReplicatedInvalidate;
    for app in App::ALL {
        run_app(app, 4, Backend::Munin(cfg.clone()));
    }
}

#[test]
fn all_apps_correct_with_adaptive_policies() {
    let mut cfg = MuninConfig::default();
    cfg.write_many_policy = UpdatePolicy::Adaptive;
    cfg.read_mostly = ReadMostlyMode::Adaptive;
    cfg.adaptive_typing = true;
    for app in App::ALL {
        run_app(app, 3, Backend::Munin(cfg.clone()));
    }
}

#[test]
fn all_apps_correct_without_delayed_updates() {
    // The strict write-through ablation must be slower, never wrong.
    for app in App::ALL {
        run_app(app, 3, Backend::Munin(MuninConfig::default().strict()));
    }
}

#[test]
fn all_apps_correct_when_everything_is_general_read_write() {
    // Force the default protocol everywhere: the annotations are a
    // performance hint, never a correctness requirement.
    for app in App::ALL {
        let (mut p, verify) = app.build_default(3);
        p.retype_all(|_| SharingType::GeneralReadWrite);
        p.run(Backend::Munin(MuninConfig::default())).assert_clean();
        verify();
    }
}

#[test]
fn all_apps_correct_on_small_pages_and_aligned_alloc() {
    let mut cfg = IvyConfig::default();
    cfg.page_size = 256;
    cfg.alloc = munin_types::AllocPolicy::PageAligned;
    cfg.sync = munin_types::SyncStrategy::CentralServer;
    for app in App::ALL {
        run_app(app, 3, Backend::Ivy(cfg.clone()));
    }
}

#[test]
fn munin_runs_are_deterministic_across_repeats() {
    for app in [App::Matmul, App::Life, App::Qsort] {
        let run = || {
            let (p, verify) = app.build_default(3);
            let o = p.run(Backend::Munin(MuninConfig::default()));
            o.assert_clean();
            verify();
            let r = o.report();
            (r.stats.messages, r.stats.bytes, r.finished_at)
        };
        assert_eq!(run(), run(), "{} not deterministic", app.name());
    }
}

#[test]
fn hardware_multicast_reduces_messages_not_results() {
    let mut cfg = MuninConfig::default();
    cfg.cost.hardware_multicast = true;
    let (p, verify) = App::Life.build_default(4);
    let o = p.run(Backend::Munin(cfg));
    o.assert_clean();
    verify();
    let hw = o.report().stats.messages;

    let (p2, verify2) = App::Life.build_default(4);
    let o2 = p2.run(Backend::Munin(MuninConfig::default()));
    o2.assert_clean();
    verify2();
    let sw = o2.report().stats.messages;
    assert!(hw <= sw, "hardware multicast cannot increase traffic ({hw} vs {sw})");
    assert!(o.report().stats.multicast_saved > 0, "barrier releases use multicast");
}

//! Ordering edges of the pipelined (async) op path: tokens that outlive
//! the sync block they were issued in, read-your-writes through the
//! client-side write-combining buffer, interleaved pipelined adds from two
//! threads on one object, and implicit draining of unredeemed tokens at
//! sync points — across every in-process backend, with a TCP-fabric pass
//! when the environment supports it.
//!
//! (The companion failure-path test — pipelined ops against a killed TCP
//! peer — lives in `crates/tcp/tests/campaign_faults.rs` as the
//! `tcp-kill-pipelined` scenario, because only same-package tests force
//! the `munin-node` binary to build.)

use munin_api::{Backend, Par, ParTyped, ProgramBuilder, RtTuning};
use munin_types::{IvyConfig, MuninConfig, SharingType};
use std::sync::{Arc, Mutex};

/// Every in-process backend: the async API must behave identically whether
/// the backend pipelines for real (MuninRt/IvyRt) or completes each op
/// inline and hands back a ready token (simulators, native threads).
fn all_backends() -> Vec<Backend> {
    vec![
        Backend::Munin(MuninConfig::default()),
        Backend::Ivy(IvyConfig::default()),
        Backend::Native,
        Backend::MuninRt(MuninConfig::default()),
        Backend::IvyRt(IvyConfig::default()),
    ]
}

/// A token issued before a barrier is redeemed after it. The barrier is a
/// release point, so it drains the op; the token must stay redeemable past
/// the sync block and still hand back the observed previous value.
#[test]
fn tokens_outlive_their_sync_block() {
    for backend in all_backends() {
        let name = backend.name();
        let mut p = ProgramBuilder::new(2);
        let ctr = p.scalar::<i64>("ctr", SharingType::GeneralReadWrite, 0);
        let bar = p.barrier(0, 2);
        let prevs: Arc<Mutex<Vec<i64>>> = Arc::new(Mutex::new(Vec::new()));
        for t in 0..2 {
            let prevs = prevs.clone();
            p.thread(t, move |par: &mut dyn Par| {
                let tok = par.fetch_add_scalar_async(&ctr, 1);
                par.barrier(bar);
                let prev = par.wait(tok);
                prevs.lock().unwrap().push(prev);
                par.barrier(bar);
                if par.self_id() == 0 {
                    assert_eq!(par.fetch_add_scalar(&ctr, 0), 2);
                }
            });
        }
        p.run(backend).assert_clean();
        let mut got = prevs.lock().unwrap().clone();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1], "{name}: both adds must observe distinct slots");
    }
}

/// Read-your-writes through the combining buffer: two adjacent async
/// stores coalesce client-side, and a read of the same range must flush
/// the buffer first and observe both pending values.
#[test]
fn write_combined_buffer_is_flushed_by_a_read_of_the_same_range() {
    let mut p = ProgramBuilder::new(1);
    let arr = p.array::<i64>("a", 4, SharingType::WriteMany, 0);
    p.thread(0, move |par: &mut dyn Par| {
        let t0 = par.set_async(&arr, 0, 7);
        let t1 = par.set_async(&arr, 1, 9);
        assert_eq!(par.get(&arr, 0), 7, "read must see the combined pending write");
        assert_eq!(par.get(&arr, 1), 9, "read must see the combined pending write");
        par.wait(t0);
        par.wait(t1);
        // Overlapping rewrite pre-sync: last write wins in program order.
        let t2 = par.set_async(&arr, 1, 11);
        assert_eq!(par.get(&arr, 1), 11);
        par.wait(t2);
    });
    let mut tuning = RtTuning::default();
    tuning.write_combine = true;
    p.rt_tuning(tuning);
    p.run(Backend::MuninRt(MuninConfig::default())).assert_clean();
}

/// Two threads keep a full window of pipelined fetch-adds in flight on one
/// counter. Per-thread FIFO means each thread's observed previous values
/// rise strictly in issue order, and atomicity means the union of both
/// threads' observations covers every slot exactly once.
#[test]
fn interleaved_pipelined_adds_from_two_threads_cover_every_slot() {
    const N: i64 = 32;
    for backend in [Backend::MuninRt(MuninConfig::default()), Backend::IvyRt(IvyConfig::default())]
    {
        let name = backend.name();
        let mut p = ProgramBuilder::new(2);
        let ctr = p.scalar::<i64>("ctr", SharingType::GeneralReadWrite, 0);
        let bar = p.barrier(0, 2);
        let prevs: Arc<Mutex<Vec<i64>>> = Arc::new(Mutex::new(Vec::new()));
        for t in 0..2 {
            let prevs = prevs.clone();
            p.thread(t, move |par: &mut dyn Par| {
                let toks: Vec<_> = (0..N).map(|_| par.fetch_add_scalar_async(&ctr, 1)).collect();
                let got = par.wait_all(toks);
                for w in got.windows(2) {
                    assert!(
                        w[1] > w[0],
                        "per-thread FIFO: observed prevs must rise in issue order, got {got:?}"
                    );
                }
                prevs.lock().unwrap().extend(got);
                par.barrier(bar);
                if par.self_id() == 0 {
                    assert_eq!(par.fetch_add_scalar(&ctr, 0), 2 * N);
                }
            });
        }
        p.run(backend).assert_clean();
        let mut all = prevs.lock().unwrap().clone();
        all.sort_unstable();
        assert_eq!(all, (0..2 * N).collect::<Vec<_>>(), "{name}: a slot was lost or duplicated");
    }
}

/// Tokens the program never redeems are still completed by the next sync
/// point (release consistency: a barrier drains every in-flight op), so
/// the adds land before any thread crosses the barrier.
#[test]
fn sync_points_drain_unredeemed_tokens() {
    for backend in all_backends() {
        let name = backend.name();
        let mut p = ProgramBuilder::new(2);
        let ctr = p.scalar::<i64>("ctr", SharingType::GeneralReadWrite, 0);
        let bar = p.barrier(0, 2);
        for t in 0..2 {
            p.thread(t, move |par: &mut dyn Par| {
                if par.self_id() == 1 {
                    for _ in 0..8 {
                        let _ = par.fetch_add_scalar_async(&ctr, 1);
                    }
                }
                par.barrier(bar);
                if par.self_id() == 0 {
                    assert_eq!(par.fetch_add_scalar(&ctr, 0), 8, "{name}");
                }
            });
        }
        p.run(backend).assert_clean();
    }
}

/// The interleaving test on the real multi-process fabric, when the
/// environment supports it: pipelined ops cross real sockets (and ride the
/// batched `OpBatch` frames) yet the same atomicity and FIFO guarantees
/// hold.
#[test]
fn pipelined_adds_cover_every_slot_on_the_tcp_fabric() {
    if let Err(notice) = munin_api::tcp_support() {
        eprintln!("NOTICE: skipping TCP async-op test: {notice}");
        return;
    }
    const N: i64 = 32;
    let workers = 4usize;
    let mut p = ProgramBuilder::new(workers);
    let ctr = p.scalar::<i64>("ctr", SharingType::GeneralReadWrite, 0);
    let bar = p.barrier(0, workers as u32);
    let prevs: Arc<Mutex<Vec<i64>>> = Arc::new(Mutex::new(Vec::new()));
    for t in 0..workers {
        let prevs = prevs.clone();
        p.thread(t, move |par: &mut dyn Par| {
            let toks: Vec<_> = (0..N).map(|_| par.fetch_add_scalar_async(&ctr, 1)).collect();
            let got = par.wait_all(toks);
            for w in got.windows(2) {
                assert!(w[1] > w[0], "per-thread FIFO violated: {got:?}");
            }
            prevs.lock().unwrap().extend(got);
            par.barrier(bar);
            if par.self_id() == 0 {
                assert_eq!(par.fetch_add_scalar(&ctr, 0), workers as i64 * N);
            }
        });
    }
    p.run(Backend::MuninTcp(MuninConfig::default())).assert_clean();
    let mut all = prevs.lock().unwrap().clone();
    all.sort_unstable();
    assert_eq!(all, (0..workers as i64 * N).collect::<Vec<_>>());
}

//! Workspace-level integration tests for the Munin reproduction.
//!
//! The tests live in `tests/`:
//! * `cross_backend` — every study application, every backend, every
//!   ablation configuration, identical results;
//! * `reliability` — protocols under injected message loss;
//! * `coherence_validation` — random programs' observed reads checked
//!   against the loose-coherence definition with vector clocks.
//!
//! The runnable examples under `../examples/` are also wired into this
//! crate (see `Cargo.toml`).

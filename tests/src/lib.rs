//! Workspace-level integration tests for the Munin reproduction.
//!
//! The tests live in `tests/`:
//! * `typed_api` — the typed handle layer: one `SharedArray`/`SharedScalar`
//!   program, bit-identical on Munin, Ivy and native, plus bounds-check and
//!   type-confusion failure modes;
//! * `cross_backend` — every study application, every backend, every
//!   ablation configuration, identical results;
//! * `lock_coherence` — release→acquire edges reconstructed from lock
//!   tickets, validated against the loose-coherence checker;
//! * `reliability` — protocols under injected message loss;
//! * `coherence_validation` — random programs' observed reads checked
//!   against the loose-coherence definition with vector clocks.
//!
//! The runnable examples under `../examples/` are also wired into this
//! crate (see `Cargo.toml`).

#!/usr/bin/env bash
# Run the flush-pipeline benchmark and regenerate BENCH_flush.json (the
# perf-trajectory record at the workspace root). Extra args are forwarded to
# `cargo bench`.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo bench --bench flush "$@"
echo "--- BENCH_flush.json ---"
cat BENCH_flush.json

#!/usr/bin/env bash
# Regenerate the perf-trajectory records at the workspace root:
#   BENCH_flush.json — flush-pipeline diff throughput (virtual-time kernel)
#   BENCH_rt.json    — wall-clock speedup vs worker count (real-time kernel)
#   BENCH_traffic.json — batched vs unbatched rt fabric throughput
#   BENCH_tcp.json   — multi-process TCP fabric vs in-process rt kernel
#                      (throughput plus per-op p50/p90/p99 latency rows)
#   metrics.json     — full telemetry snapshot (histograms, per-object
#                      counters, span tail) from the tcp latency pass
# Usage:
#   scripts/bench.sh [flush|rt|traffic|tcp|all] [extra cargo-bench args...]
# A first argument that is not a selector is treated as a cargo-bench arg
# and both benches run (so `scripts/bench.sh --quiet` still works).
set -euo pipefail
cd "$(dirname "$0")/.."

which="all"
case "${1:-}" in
    flush | rt | traffic | tcp | all)
        which="$1"
        shift
        ;;
esac

if [ "$which" = "flush" ] || [ "$which" = "all" ]; then
    cargo bench --bench flush "$@"
    echo "--- BENCH_flush.json ---"
    cat BENCH_flush.json
fi

if [ "$which" = "rt" ] || [ "$which" = "all" ]; then
    cargo bench --bench runtime_rt "$@"
    echo "--- BENCH_rt.json ---"
    cat BENCH_rt.json
fi

if [ "$which" = "traffic" ] || [ "$which" = "all" ]; then
    cargo bench --bench traffic_rt "$@"
    echo "--- BENCH_traffic.json ---"
    cat BENCH_traffic.json
fi

if [ "$which" = "tcp" ] || [ "$which" = "all" ]; then
    # The bench spawns munin-node children; build them in the same
    # (release) profile the bench binaries run in.
    cargo build --release -p munin-api
    cargo bench --bench tcp_fabric "$@"
    echo "--- BENCH_tcp.json ---"
    cat BENCH_tcp.json
    echo "--- metrics.json (full-telemetry pass) ---"
    cat metrics.json
fi

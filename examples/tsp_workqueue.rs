//! The paper's work-queue scenario: branch-and-bound TSP with a migratory
//! task stack that rides the queue lock, a read-mostly bound, and a result
//! tour — four protocols cooperating in one program.
//!
//! ```text
//! cargo run --release -p xtests --example tsp_workqueue
//! ```

use munin_api::Backend;
use munin_apps::tsp;
use munin_types::{MuninConfig, SharingType};

fn main() {
    let cfg = tsp::TspCfg { cities: 8, nodes: 4, seed: 77 };
    println!("TSP: {} cities, branch and bound on {} nodes\n", cfg.cities, cfg.nodes);
    let want = tsp::reference(&cfg);

    // With the programmer's annotations.
    {
        let (p, out) = tsp::build(&cfg);
        let o = p.run(Backend::Munin(MuninConfig::default()));
        o.assert_clean();
        let r = o.report();
        println!(
            "annotated (migratory queue + read-mostly bound): {:>7} msgs  {:>9} bytes",
            r.stats.messages, r.stats.bytes
        );
        println!(
            "   lock piggybacks carried the queue {} times (LockPass messages)",
            r.stats.kind("LockPass").count
        );
        println!("   separate migrations: {}", r.stats.kind("MigrateData").count);
        tsp::check(&out, want);
    }

    // Everything forced to the default general read-write protocol: the
    // queue ping-pongs through ownership transactions instead.
    {
        let (mut p, out) = tsp::build(&cfg);
        p.retype_all(|_| SharingType::GeneralReadWrite);
        let o = p.run(Backend::Munin(MuninConfig::default()));
        o.assert_clean();
        let r = o.report();
        println!(
            "\nall general read-write (no annotations):        {:>7} msgs  {:>9} bytes",
            r.stats.messages, r.stats.bytes
        );
        println!("   ownership transactions: {}", r.stats.kind("WriteReq").count);
        tsp::check(&out, want);
    }

    println!("\nboth found the optimal tour of length {want}.");
}

//! Quickstart: your first Munin program, on the typed handle API.
//!
//! Declares typed shared objects with sharing annotations, spawns a thread
//! per node, runs the program on the Munin runtime, and prints the traffic
//! report. The same program also runs on the Ivy baseline and on native
//! threads — change `backend` below and nothing else.
//!
//! ```text
//! cargo run -p xtests --example quickstart
//! ```

use munin_api::{Backend, Par, ParTyped, ProgramBuilder};
use munin_types::{MuninConfig, SharingType};
use std::sync::{Arc, Mutex};

fn main() {
    let nodes = 4;
    let mut p = ProgramBuilder::new(nodes);

    // A read-only table: initialized once, then replicated on demand.
    let table = p.array::<f64>("table", 64, SharingType::WriteOnce, 0);
    // A grid written in disjoint stripes by all threads (delayed updates).
    let grid = p.array::<f64>("grid", 64, SharingType::WriteMany, 0);
    // Each worker's partial sums land here; only thread 0 reads them.
    let sums = p.array::<f64>("sums", nodes as u32, SharingType::Result, 0);
    let bar = p.barrier(0, nodes as u32);

    let answer = Arc::new(Mutex::new(0.0f64));
    let answer_out = answer.clone();

    for t in 0..nodes {
        let answer = answer.clone();
        p.thread(t, move |par: &mut dyn Par| {
            let me = par.self_id();
            if me == 0 {
                // Initialization phase: fill the table, publish it.
                let init: Vec<f64> = (0..64).map(|i| (i as f64).sqrt()).collect();
                par.write_from(&table, 0, &init);
                par.phase(1);
            }
            par.barrier(bar);

            // Everyone reads its slice of the (now replicated) table into a
            // local buffer and writes its own stripe of the grid with one
            // bulk write. (A full overwrite wants `write_from`; use
            // `par.region` when a stripe is read *and* modified in place —
            // see the quicksort app.)
            let chunk = table.len() / par.n_threads() as u32;
            let lo = me as u32 * chunk;
            let mut vals = vec![0.0f64; chunk as usize];
            par.read_into(&table, lo, &mut vals);
            for v in &mut vals {
                *v *= 2.0;
            }
            par.write_from(&grid, lo, &vals);
            // Deposit the partial sum into the result object.
            par.set(&sums, me as u32, vals.iter().sum());
            par.barrier(bar);

            if me == 0 {
                let partials = par.read_all(&sums);
                *answer.lock().unwrap() = partials.iter().sum();
            }
        });
    }

    let outcome = p.run(Backend::Munin(MuninConfig::default()));
    outcome.assert_clean();
    let report = outcome.report();
    println!("answer: {:.4}", *answer_out.lock().unwrap());
    println!("virtual time: {}", report.finished_at);
    println!("{}", report.stats);
}

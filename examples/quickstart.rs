//! Quickstart: your first Munin program.
//!
//! Declares a handful of shared objects with sharing annotations, spawns a
//! thread per node, runs the program on the Munin runtime, and prints the
//! traffic report. The same program also runs on the Ivy baseline and on
//! native threads — change `backend` below and nothing else.
//!
//! ```text
//! cargo run -p xtests --example quickstart
//! ```

use munin_api::{Backend, Par, ParExt, ProgramBuilder};
use munin_types::{MuninConfig, SharingType};
use std::sync::{Arc, Mutex};

fn main() {
    let nodes = 4;
    let mut p = ProgramBuilder::new(nodes);

    // A read-only table: initialized once, then replicated on demand.
    let table = p.object("table", 8 * 64, SharingType::WriteOnce, 0);
    // A grid written in disjoint stripes by all threads (delayed updates).
    let grid = p.object("grid", 8 * 64, SharingType::WriteMany, 0);
    // Each worker's partial sums land here; only thread 0 reads them.
    let sums = p.object("sums", 8 * 4, SharingType::Result, 0);
    let bar = p.barrier(0, nodes as u32);

    let answer = Arc::new(Mutex::new(0.0f64));
    let answer_out = answer.clone();

    for t in 0..nodes {
        let answer = answer.clone();
        p.thread(t, move |par: &mut dyn Par| {
            let me = par.self_id();
            if me == 0 {
                // Initialization phase: fill the table, publish it.
                let init: Vec<f64> = (0..64).map(|i| (i as f64).sqrt()).collect();
                par.write_f64s(table, 0, &init);
                par.phase(1);
            }
            par.barrier(bar);

            // Everyone reads the (now replicated) table and writes its own
            // stripe of the grid.
            let chunk = 64 / par.n_threads();
            let lo = me * chunk;
            let vals = par.read_f64s(table, lo as u32, chunk as u32);
            let doubled: Vec<f64> = vals.iter().map(|v| v * 2.0).collect();
            par.write_f64s(grid, lo as u32, &doubled);
            // Deposit a partial sum into the result object.
            par.write_f64(sums, me as u32, doubled.iter().sum());
            par.barrier(bar);

            if me == 0 {
                let partials = par.read_f64s(sums, 0, par.n_threads() as u32);
                *answer.lock().unwrap() = partials.iter().sum();
            }
        });
    }

    let outcome = p.run(Backend::Munin(MuninConfig::default()));
    outcome.assert_clean();
    let report = outcome.report();
    println!("answer: {:.4}", *answer_out.lock().unwrap());
    println!("virtual time: {}", report.finished_at);
    println!("{}", report.stats);
}

//! The paper's nearest-neighbour scenario: Conway's Life with
//! producer-consumer boundary rows, comparing eager object movement against
//! demand fetching — and against the Ivy baseline.
//!
//! ```text
//! cargo run --release -p xtests --example life_pipeline
//! ```

use munin_api::Backend;
use munin_apps::life;
use munin_types::{IvyConfig, MuninConfig, UpdatePolicy};

fn main() {
    let cfg = life::LifeCfg { width: 96, height: 96, generations: 10, nodes: 6, seed: 2026 };
    let want = life::reference(&cfg);
    println!(
        "Life {}x{}, {} generations, {} nodes\n",
        cfg.width, cfg.height, cfg.generations, cfg.nodes
    );

    // Munin, eager producer-consumer boundaries (the paper's mechanism).
    {
        let (p, out) = life::build(&cfg);
        let o = p.run(Backend::Munin(MuninConfig::default()));
        o.assert_clean();
        life::check(&out, &want);
        let r = o.report();
        println!(
            "munin eager push   : {:>6} msgs  {:>8} bytes  read-wait {:>7.2} ms  vtime {:>8.1} ms",
            r.stats.messages,
            r.stats.bytes,
            r.total_wait_us("read") as f64 / 1000.0,
            r.finished_at.as_millis_f64()
        );
    }

    // Munin, demand fetch (consumers re-fault every generation).
    {
        let (mut p, out) = life::build(&cfg);
        p.set_eager_all(false);
        let mut mc = MuninConfig::default();
        mc.pc_policy = UpdatePolicy::Invalidate;
        let o = p.run(Backend::Munin(mc));
        o.assert_clean();
        life::check(&out, &want);
        let r = o.report();
        println!(
            "munin demand fetch : {:>6} msgs  {:>8} bytes  read-wait {:>7.2} ms  vtime {:>8.1} ms",
            r.stats.messages,
            r.stats.bytes,
            r.total_wait_us("read") as f64 / 1000.0,
            r.finished_at.as_millis_f64()
        );
    }

    // Ivy baseline (page-based strict coherence, central locks so the
    // comparison isolates the data protocol).
    {
        let (p, out) = life::build(&cfg);
        let o = p.run(Backend::Ivy(IvyConfig::default().with_central_locks()));
        o.assert_clean();
        life::check(&out, &want);
        let r = o.report();
        println!(
            "ivy (1 KiB pages)  : {:>6} msgs  {:>8} bytes  read-wait {:>7.2} ms  vtime {:>8.1} ms",
            r.stats.messages,
            r.stats.bytes,
            r.total_wait_us("read") as f64 / 1000.0,
            r.finished_at.as_millis_f64()
        );
    }

    println!("\nall three variants produced the sequential-reference grid.");
}

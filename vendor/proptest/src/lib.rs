//! Offline stub for `proptest` (see `vendor/README.md`).
//!
//! Implements the subset of the proptest API this workspace's tests use:
//! the `proptest!` macro over named strategies, range / tuple / `vec` /
//! `any` strategies, `prop::sample::Index`, and the `prop_assert*` macros.
//!
//! Differences from the real crate: a fixed number of cases per property
//! (`CASES`), seeds derived deterministically from the test path (so
//! failures reproduce), and **no shrinking** — a failing case panics with
//! the sampled values unminimized.

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Deterministic per-test generator: the seed is a hash of the test's
    /// module path + name, so every run of a property sees the same cases.
    pub struct TestRng {
        pub(crate) inner: SmallRng,
    }

    impl TestRng {
        pub fn deterministic(test_path: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { inner: SmallRng::seed_from_u64(h) }
        }

        pub(crate) fn next_u64(&mut self) -> u64 {
            use rand::RngCore;
            self.inner.next_u64()
        }
    }
}

/// Cases per property. The real proptest default is 256; 64 keeps the
/// whole-workspace test run fast while still exercising the space.
pub const CASES: u32 = 64;

/// Per-block configuration, set with `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: CASES }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A value generator. Unlike real proptest there is no value tree /
    /// shrinking: `sample` produces a final value directly.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.inner.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.inner.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// Strategy for `any::<T>()`.
    pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            crate::sample::Index { raw: rng.next_u64() }
        }
    }
}

pub mod sample {
    /// An index into a collection whose length is only known at use time.
    #[derive(Debug, Clone, Copy)]
    pub struct Index {
        pub(crate) raw: u64,
    }

    impl Index {
        /// Map onto `0..len`. Panics if `len == 0` (as the real crate does).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.raw % len as u64) as usize
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length argument of [`vec`]: an exact size or a range of sizes.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            use rand::Rng;
            rng.inner.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            use rand::Rng;
            rng.inner.gen_range(self.clone())
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Box<dyn SizeRange>,
    }

    /// `proptest::collection::vec(strategy, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange + 'static) -> VecStrategy<S> {
        VecStrategy { element, size: Box::new(size) }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    /// The real crate's prelude exposes the crate root as `prop`.
    pub use crate as prop;
    pub use crate::strategy::{any, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests. Each named argument is sampled from its strategy
/// [`CASES`] times (or `config.cases` when a `#![proptest_config(...)]`
/// header is present); assertion macros panic on the first failing case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __proptest_cfg: $crate::ProptestConfig = $cfg;
                let mut __proptest_rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __proptest_case in 0..__proptest_cfg.cases {
                    let _ = __proptest_case;
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __proptest_rng);)+
                    $body
                }
            }
        )+
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)+
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// The macro machinery itself: ranges, tuples, vec, any, Index.
        #[test]
        fn stub_samples_stay_in_bounds(
            x in 3u32..10,
            pair in (0usize..4, -2i64..3),
            bytes in prop::collection::vec(any::<u8>(), 1..20),
            flag in any::<bool>(),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(pair.0 < 4 && (-2..3).contains(&pair.1));
            prop_assert!(!bytes.is_empty() && bytes.len() < 20);
            let _ = flag;
            prop_assert!(idx.index(bytes.len()) < bytes.len());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("x::y");
        let mut b = crate::test_runner::TestRng::deterministic("x::y");
        let s = crate::collection::vec(crate::strategy::any::<u64>(), 0..10);
        for _ in 0..20 {
            assert_eq!(
                crate::strategy::Strategy::sample(&s, &mut a),
                crate::strategy::Strategy::sample(&s, &mut b)
            );
        }
    }
}

//! Offline stub for `serde` (see `vendor/README.md`).
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as a marker on
//! wire-format types; nothing actually serializes. These derives therefore
//! expand to nothing, which keeps the annotation sites source-compatible with
//! the real crate.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline stub for `crossbeam-channel` (see `vendor/README.md`).
//!
//! The workspace only uses unbounded MPSC channels with `send`/`recv`/
//! `try_recv`, which `std::sync::mpsc` provides directly.

pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender, TryRecvError};

/// Create an unbounded channel (crossbeam's constructor name).
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    std::sync::mpsc::channel()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = super::unbounded();
        tx.send(7u8).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        assert!(rx.try_recv().is_err());
    }
}

//! Offline stub for `criterion` (see `vendor/README.md`).
//!
//! Implements the subset of the criterion API the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `bench_with_input`, `BenchmarkId`, `black_box` —
//! with a simple measurement protocol: warm up for ~20 ms, then time
//! batches for ~150 ms and report the per-iteration mean of the fastest
//! batch (median would need batch storage; min-of-means is similarly
//! noise-robust for a smoke benchmark).
//!
//! Output format (one line per benchmark):
//! `bench <name> ... <time> ns/iter (<iters> iterations)`

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(20);
const MEASURE: Duration = Duration::from_millis(150);
const BATCHES: u32 = 10;

/// Runs closures under a timing loop and prints results.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.to_string() }
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sample-count hint; the stub's fixed time budget ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_one(&name, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_one(&name, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// A benchmark label (`"function/parameter"`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

/// Handed to the closure; `iter` runs the measured routine.
pub struct Bencher {
    mode: Mode,
    /// ns/iter of the best batch (filled in measure mode).
    best_ns_per_iter: f64,
    total_iters: u64,
}

enum Mode {
    /// Estimate iteration cost to size batches.
    Calibrate {
        iters_done: u64,
        spent: Duration,
    },
    Measure {
        batch_iters: u64,
    },
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match &mut self.mode {
            Mode::Calibrate { iters_done, spent } => {
                let start = Instant::now();
                while start.elapsed() < WARMUP {
                    black_box(f());
                    *iters_done += 1;
                }
                *spent = start.elapsed();
            }
            Mode::Measure { batch_iters } => {
                let n = *batch_iters;
                for _ in 0..BATCHES {
                    let start = Instant::now();
                    for _ in 0..n {
                        black_box(f());
                    }
                    let ns = start.elapsed().as_nanos() as f64 / n as f64;
                    if ns < self.best_ns_per_iter {
                        self.best_ns_per_iter = ns;
                    }
                    self.total_iters += n;
                }
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    // Calibration pass: how many iterations fit in the warmup window?
    let mut b = Bencher {
        mode: Mode::Calibrate { iters_done: 0, spent: Duration::ZERO },
        best_ns_per_iter: f64::INFINITY,
        total_iters: 0,
    };
    f(&mut b);
    let (iters_done, spent) = match b.mode {
        Mode::Calibrate { iters_done, spent } => {
            (iters_done.max(1), spent.max(Duration::from_nanos(1)))
        }
        Mode::Measure { .. } => unreachable!(),
    };
    let per_iter = spent / iters_done as u32;
    let budget_iters =
        (MEASURE.as_nanos() / per_iter.as_nanos().max(1)).clamp(BATCHES as u128, 1 << 24) as u64;
    let batch_iters = (budget_iters / BATCHES as u64).max(1);

    let mut b = Bencher {
        mode: Mode::Measure { batch_iters },
        best_ns_per_iter: f64::INFINITY,
        total_iters: 0,
    };
    f(&mut b);
    if b.total_iters == 0 {
        println!("bench {name:<48} ... (no iterations)");
        return;
    }
    let ns = b.best_ns_per_iter;
    let (scaled, unit) = if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "us")
    } else {
        (ns, "ns")
    };
    println!("bench {name:<48} ... {scaled:>10.2} {unit}/iter ({} iterations)", b.total_iters);
}

/// `criterion_group!(name, fn_a, fn_b, ...)` — defines `fn name()` that runs
/// every registered benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// `criterion_main!(group_a, group_b)` — defines `fn main()`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("smoke", |b| b.iter(|| count = count.wrapping_add(1)));
        assert!(count > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("inp", 4), &4u32, |b, &n| b.iter(|| black_box(n) * 2));
        g.finish();
    }
}

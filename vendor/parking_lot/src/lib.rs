//! Offline stub for `parking_lot` (see `vendor/README.md`).
//!
//! Thin wrappers over `std::sync` primitives exposing the parking_lot API
//! shape the workspace uses: guard-returning `lock()`/`read()`/`write()`
//! without `Result`, and `Condvar::wait(&mut MutexGuard)`. Poisoning is
//! ignored, matching parking_lot semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())) }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// The inner `Option` is `Some` except transiently inside `Condvar::wait`,
/// where the std guard must be moved out and back.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub fn new() -> Self {
        Condvar::default()
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken during wait");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);

        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }

    #[test]
    fn condvar_wakes_waiter() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }
}

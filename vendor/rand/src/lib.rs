//! Offline stub for `rand` (see `vendor/README.md`).
//!
//! Provides the subset of the rand 0.8 API this workspace uses —
//! `SmallRng::seed_from_u64`, `Rng::gen_range` over integer and float
//! ranges, `Rng::gen_bool`, and `SliceRandom::shuffle` — backed by a
//! deterministic xoshiro256++ generator seeded through SplitMix64.
//!
//! Determinism is the property the workspace actually depends on (seeded
//! experiment inputs, loss injection, reorder tests); the exact stream does
//! not need to match the real crate's.

pub mod rngs {
    /// Small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        pub(crate) fn from_u64_seed(seed: u64) -> Self {
            // SplitMix64 seed expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }

        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl crate::RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.next_u64_impl()
        }
    }
}

/// The raw entropy source; everything in [`Rng`] derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seeding constructor (the workspace only uses `seed_from_u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::SmallRng::from_u64_seed(seed)
    }
}

/// Types `gen_range` can produce, over `Range` / `RangeInclusive`.
pub trait SampleUniform: Copy {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = if inclusive { hi_w - lo_w + 1 } else { hi_w - lo_w };
                assert!(span > 0, "gen_range: empty range {lo}..{hi}");
                // Modulo bias is acceptable for this stub's uses (test data
                // generation); determinism is what matters.
                let v = (rng.next_u64() as u128 % span as u128) as i128;
                (lo_w + v) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(hi > lo, "gen_range: empty range {lo}..{hi}");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + (hi - lo) * unit
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(hi > lo, "gen_range: empty range {lo}..{hi}");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        lo + (hi - lo) * unit
    }
}

/// Range argument forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// The user-facing generator methods (blanket-implemented over [`RngCore`]).
pub trait Rng: RngCore {
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let a_vals: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let c_vals: Vec<u64> = (0..8).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_ne!(a_vals, c_vals);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&v));
            let f = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = r.gen_range(10..100);
            assert!((10..100).contains(&u));
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut r = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.35)).count();
        assert!((2800..4200).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}

//! The trace log and the kernel tracer that fills it.

use munin_sim::{DsmOp, TraceEvent, Tracer};
use munin_types::{ByteRange, NodeId, ObjectId, ThreadId, VirtualTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

/// One data access (read/write/atomic) as issued by an application thread.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Access {
    pub at: VirtualTime,
    pub thread: ThreadId,
    pub node: NodeId,
    pub obj: ObjectId,
    pub range: ByteRange,
    pub is_write: bool,
    /// Issued before this thread's first barrier arrival (the study's
    /// "initialization" window).
    pub init_phase: bool,
}

/// One synchronization operation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyncEvent {
    pub at: VirtualTime,
    pub thread: ThreadId,
    /// "lock" / "unlock" / "barrier" / "cond-wait" / "cond-signal" / "flush".
    pub kind: &'static str,
    /// Lock/barrier id (as a plain integer; kinds don't collide in use).
    pub id: u32,
}

/// Everything a study run records.
#[derive(Debug, Default)]
pub struct TraceLog {
    pub accesses: Vec<Access>,
    pub syncs: Vec<SyncEvent>,
    /// Messages observed (count only; byte totals come from `NetStats`).
    pub messages: u64,
}

impl TraceLog {
    /// Accesses to one object, in issue order.
    pub fn accesses_of(&self, obj: ObjectId) -> Vec<&Access> {
        self.accesses.iter().filter(|a| a.obj == obj).collect()
    }

    /// Distinct objects touched.
    pub fn objects_touched(&self) -> Vec<ObjectId> {
        let set: BTreeSet<ObjectId> = self.accesses.iter().map(|a| a.obj).collect();
        set.into_iter().collect()
    }
}

/// Kernel tracer recording the study log. Share the inner handle, run the
/// program, then inspect.
pub struct StudyTracer {
    log: Arc<Mutex<TraceLog>>,
    /// Threads that have arrived at a barrier at least once (end of their
    /// initialization window).
    past_init: BTreeSet<ThreadId>,
}

impl StudyTracer {
    /// Create a tracer plus the shared handle to read the log afterwards.
    pub fn new() -> (Box<Self>, Arc<Mutex<TraceLog>>) {
        let log = Arc::new(Mutex::new(TraceLog::default()));
        (Box::new(StudyTracer { log: log.clone(), past_init: BTreeSet::new() }), log)
    }
}

impl Tracer for StudyTracer {
    fn record(&mut self, event: TraceEvent<'_>) {
        match event {
            TraceEvent::OpIssued { at, thread, node, op } => {
                let mut log = self.log.lock().expect("tracer lock");
                match op {
                    DsmOp::Read { obj, range } => log.accesses.push(Access {
                        at,
                        thread,
                        node,
                        obj: *obj,
                        range: *range,
                        is_write: false,
                        init_phase: !self.past_init.contains(&thread),
                    }),
                    DsmOp::Write { obj, range, .. } => log.accesses.push(Access {
                        at,
                        thread,
                        node,
                        obj: *obj,
                        range: *range,
                        is_write: true,
                        init_phase: !self.past_init.contains(&thread),
                    }),
                    DsmOp::AtomicFetchAdd { obj, offset, .. } => log.accesses.push(Access {
                        at,
                        thread,
                        node,
                        obj: *obj,
                        range: ByteRange::new(*offset, 8),
                        is_write: true,
                        init_phase: !self.past_init.contains(&thread),
                    }),
                    DsmOp::Lock(l) => {
                        log.syncs.push(SyncEvent { at, thread, kind: "lock", id: l.0 })
                    }
                    DsmOp::Unlock(l) => {
                        log.syncs.push(SyncEvent { at, thread, kind: "unlock", id: l.0 })
                    }
                    DsmOp::BarrierWait(b) => {
                        drop(log);
                        self.past_init.insert(thread);
                        let mut log = self.log.lock().expect("tracer lock");
                        log.syncs.push(SyncEvent { at, thread, kind: "barrier", id: b.0 });
                    }
                    DsmOp::CondWait { cond, .. } => {
                        log.syncs.push(SyncEvent { at, thread, kind: "cond-wait", id: cond.0 })
                    }
                    DsmOp::CondSignal { cond, .. } => {
                        log.syncs.push(SyncEvent { at, thread, kind: "cond-signal", id: cond.0 })
                    }
                    DsmOp::Flush => log.syncs.push(SyncEvent { at, thread, kind: "flush", id: 0 }),
                    _ => {}
                }
            }
            TraceEvent::MessageSent { .. } => {
                self.log.lock().expect("tracer lock").messages += 1;
            }
            TraceEvent::OpCompleted { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use munin_types::LockId;

    #[test]
    fn tracer_records_accesses_and_marks_init() {
        let (mut tracer, log) = StudyTracer::new();
        let read = DsmOp::Read { obj: ObjectId(1), range: ByteRange::new(0, 8) };
        let t0 = ThreadId(0);
        tracer.record(TraceEvent::OpIssued {
            at: VirtualTime::ZERO,
            thread: t0,
            node: NodeId(0),
            op: &read,
        });
        tracer.record(TraceEvent::OpIssued {
            at: VirtualTime::micros(5),
            thread: t0,
            node: NodeId(0),
            op: &DsmOp::BarrierWait(munin_types::BarrierId(0)),
        });
        tracer.record(TraceEvent::OpIssued {
            at: VirtualTime::micros(10),
            thread: t0,
            node: NodeId(0),
            op: &read,
        });
        let log = log.lock().unwrap();
        assert_eq!(log.accesses.len(), 2);
        assert!(log.accesses[0].init_phase);
        assert!(!log.accesses[1].init_phase, "post-barrier access is compute phase");
        assert_eq!(log.syncs.len(), 1);
    }

    #[test]
    fn atomic_counts_as_write() {
        let (mut tracer, log) = StudyTracer::new();
        tracer.record(TraceEvent::OpIssued {
            at: VirtualTime::ZERO,
            thread: ThreadId(1),
            node: NodeId(0),
            op: &DsmOp::AtomicFetchAdd { obj: ObjectId(2), offset: 8, delta: 1 },
        });
        let log = log.lock().unwrap();
        assert!(log.accesses[0].is_write);
        assert_eq!(log.accesses[0].range, ByteRange::new(8, 8));
    }

    #[test]
    fn lock_ops_recorded_as_sync() {
        let (mut tracer, log) = StudyTracer::new();
        tracer.record(TraceEvent::OpIssued {
            at: VirtualTime::ZERO,
            thread: ThreadId(0),
            node: NodeId(0),
            op: &DsmOp::Lock(LockId(3)),
        });
        let log = log.lock().unwrap();
        assert_eq!(log.syncs[0].kind, "lock");
        assert_eq!(log.syncs[0].id, 3);
    }
}

//! Summary statistics for the study's findings (§2, experiment E2):
//!
//! 3. "The overwhelming majority of all accesses are reads, except during
//!    initialization."
//! 4. "The latency between accesses to synchronization objects (mainly
//!    locks) is significantly higher than the latency between accesses of
//!    other shared data items."

use crate::log::TraceLog;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudyStats {
    pub reads: u64,
    pub writes: u64,
    pub init_reads: u64,
    pub init_writes: u64,
    /// Byte-weighted counts — closer to the paper's word-granular traces
    /// than our block-granular operation counts.
    pub read_bytes: u64,
    pub write_bytes: u64,
    pub init_read_bytes: u64,
    pub init_write_bytes: u64,
    pub sync_ops: u64,
    /// Mean virtual-µs gap between consecutive accesses to the same data
    /// object.
    pub data_gap_mean_us: f64,
    /// Mean virtual-µs gap between consecutive operations on the same lock.
    pub lock_gap_mean_us: f64,
}

impl StudyStats {
    pub fn read_fraction(&self) -> f64 {
        let total = self.reads + self.writes;
        if total == 0 {
            return 0.0;
        }
        self.reads as f64 / total as f64
    }

    pub fn compute_read_fraction(&self) -> f64 {
        let reads = self.reads - self.init_reads;
        let writes = self.writes - self.init_writes;
        if reads + writes == 0 {
            return 0.0;
        }
        reads as f64 / (reads + writes) as f64
    }

    pub fn init_read_fraction(&self) -> f64 {
        if self.init_reads + self.init_writes == 0 {
            return 0.0;
        }
        self.init_reads as f64 / (self.init_reads + self.init_writes) as f64
    }

    /// Byte-weighted read fraction over the whole run.
    pub fn byte_read_fraction(&self) -> f64 {
        let total = self.read_bytes + self.write_bytes;
        if total == 0 {
            return 0.0;
        }
        self.read_bytes as f64 / total as f64
    }

    /// Byte-weighted read fraction during the computation phase.
    pub fn compute_byte_read_fraction(&self) -> f64 {
        let r = self.read_bytes - self.init_read_bytes;
        let w = self.write_bytes - self.init_write_bytes;
        if r + w == 0 {
            return 0.0;
        }
        r as f64 / (r + w) as f64
    }

    /// Byte-weighted read fraction during initialization.
    pub fn init_byte_read_fraction(&self) -> f64 {
        let total = self.init_read_bytes + self.init_write_bytes;
        if total == 0 {
            return 0.0;
        }
        self.init_read_bytes as f64 / total as f64
    }
}

/// Compute the study statistics over a trace.
pub fn study_stats(log: &TraceLog) -> StudyStats {
    let reads = log.accesses.iter().filter(|a| !a.is_write).count() as u64;
    let writes = log.accesses.iter().filter(|a| a.is_write).count() as u64;
    let init_reads = log.accesses.iter().filter(|a| !a.is_write && a.init_phase).count() as u64;
    let init_writes = log.accesses.iter().filter(|a| a.is_write && a.init_phase).count() as u64;
    let sum_bytes = |write: bool, init_only: bool| -> u64 {
        log.accesses
            .iter()
            .filter(|a| a.is_write == write && (!init_only || a.init_phase))
            .map(|a| a.range.len as u64)
            .sum()
    };
    let read_bytes = sum_bytes(false, false);
    let write_bytes = sum_bytes(true, false);
    let init_read_bytes = sum_bytes(false, true);
    let init_write_bytes = sum_bytes(true, true);

    // Gap between consecutive accesses to the same object.
    let mut per_obj: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for a in &log.accesses {
        per_obj.entry(a.obj.0).or_default().push(a.at.as_micros());
    }
    let data_gap_mean_us = mean_gap(per_obj.values());

    // Gap between consecutive lock operations on the same lock.
    let mut per_lock: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    for s in log.syncs.iter().filter(|s| s.kind == "lock") {
        per_lock.entry(s.id).or_default().push(s.at.as_micros());
    }
    let lock_gap_mean_us = mean_gap(per_lock.values());

    StudyStats {
        reads,
        writes,
        init_reads,
        init_writes,
        read_bytes,
        write_bytes,
        init_read_bytes,
        init_write_bytes,
        sync_ops: log.syncs.len() as u64,
        data_gap_mean_us,
        lock_gap_mean_us,
    }
}

fn mean_gap<'a>(series: impl Iterator<Item = &'a Vec<u64>>) -> f64 {
    let mut total = 0u64;
    let mut count = 0u64;
    for times in series {
        // Times arrive in issue order (the event loop is monotone).
        for w in times.windows(2) {
            total += w[1].saturating_sub(w[0]);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total as f64 / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{Access, SyncEvent};
    use munin_types::{ByteRange, NodeId, ObjectId, ThreadId, VirtualTime};

    fn acc(at: u64, w: bool, init: bool) -> Access {
        Access {
            at: VirtualTime::micros(at),
            thread: ThreadId(0),
            node: NodeId(0),
            obj: ObjectId(0),
            range: ByteRange::new(0, 8),
            is_write: w,
            init_phase: init,
        }
    }

    #[test]
    fn fractions() {
        let log = TraceLog {
            accesses: vec![
                acc(0, true, true),
                acc(1, true, true),
                acc(2, false, true),
                acc(10, false, false),
                acc(11, false, false),
                acc(12, false, false),
                acc(13, true, false),
            ],
            syncs: vec![],
            messages: 0,
        };
        let s = study_stats(&log);
        assert_eq!(s.reads, 4);
        assert_eq!(s.writes, 3);
        assert!((s.init_read_fraction() - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.compute_read_fraction(), 0.75);
    }

    #[test]
    fn gaps_are_per_series_means() {
        let log = TraceLog {
            accesses: vec![acc(0, false, false), acc(10, false, false), acc(30, false, false)],
            syncs: vec![
                SyncEvent { at: VirtualTime::micros(0), thread: ThreadId(0), kind: "lock", id: 0 },
                SyncEvent {
                    at: VirtualTime::micros(100),
                    thread: ThreadId(1),
                    kind: "lock",
                    id: 0,
                },
            ],
            messages: 0,
        };
        let s = study_stats(&log);
        assert!((s.data_gap_mean_us - 15.0).abs() < 1e-9); // (10 + 20) / 2
        assert!((s.lock_gap_mean_us - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_log_is_zeroes() {
        let s = study_stats(&TraceLog::default());
        assert_eq!(s.read_fraction(), 0.0);
        assert_eq!(s.data_gap_mean_us, 0.0);
    }
}

//! # munin-trace
//!
//! Access tracing and sharing-pattern classification — the machinery that
//! regenerates the paper's §2 study ("Sharing in Parallel Programs").
//!
//! A [`StudyTracer`] plugs into the simulation kernel and records every data
//! access, synchronization operation and phase mark. The [`classify`]
//! function then derives, for each shared object, the access-pattern
//! category it *behaves* as — using only the observed trace, never the
//! programmer's annotation — and [`study_stats`] computes the study's
//! summary findings (read/write mix, initialization vs computation phase,
//! synchronization access gaps).

pub mod classify;
pub mod log;
pub mod stats;

pub use classify::{classify, ObjectVerdict};
pub use log::{Access, StudyTracer, SyncEvent, TraceLog};
pub use stats::{study_stats, StudyStats};

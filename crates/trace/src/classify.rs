//! The access-pattern classifier: derive, from the observed trace alone,
//! which of the paper's categories each object *behaves* as.
//!
//! This reproduces the method of §2: the authors instrumented six programs
//! and identified "a limited variety of shared data objects". Running the
//! classifier over our traces and comparing with the source annotations
//! both regenerates the study table (experiment E1) and validates that the
//! programs exercise the patterns they claim to.

use crate::log::TraceLog;
use munin_types::{ObjectDecl, ObjectId, SharingType, ThreadId};
use std::collections::{BTreeMap, BTreeSet};

/// Classification outcome for one object.
#[derive(Debug, Clone)]
pub struct ObjectVerdict {
    pub obj: ObjectId,
    pub name: String,
    pub declared: SharingType,
    pub classified: SharingType,
    pub reads: u64,
    pub writes: u64,
    pub distinct_threads: usize,
    pub accesses: u64,
}

/// Ratio of reads to writes above which an object with several writers is
/// called read-mostly.
const READ_MOSTLY_RATIO: f64 = 10.0;

/// Mean single-thread run length above which interleaved access is called
/// migratory.
const MIGRATORY_RUN_LEN: f64 = 6.0;

/// Classify every object that appears in the trace.
pub fn classify(log: &TraceLog, decls: &[ObjectDecl]) -> Vec<ObjectVerdict> {
    let by_name: BTreeMap<ObjectId, &ObjectDecl> = decls.iter().map(|d| (d.id, d)).collect();
    // Epoch boundaries: count barrier events before each access so that
    // write-disjointness is judged *between synchronization points* — the
    // paper's write-many definition ("frequently modified by multiple
    // threads between synchronization points... different threads update
    // independent portions").
    let epoch_of = epoch_index(log);
    let mut out = Vec::new();
    for obj in log.objects_touched() {
        let accesses = log.accesses_of(obj);
        let decl = by_name.get(&obj);
        let classified = classify_one(&accesses, &epoch_of);
        out.push(ObjectVerdict {
            obj,
            name: decl.map(|d| d.name.clone()).unwrap_or_else(|| format!("{obj}")),
            declared: decl.map(|d| d.sharing).unwrap_or(SharingType::GeneralReadWrite),
            classified,
            reads: accesses.iter().filter(|a| !a.is_write).count() as u64,
            writes: accesses.iter().filter(|a| a.is_write).count() as u64,
            distinct_threads: accesses.iter().map(|a| a.thread).collect::<BTreeSet<_>>().len(),
            accesses: accesses.len() as u64,
        });
    }
    out
}

/// Map each access timestamp to a barrier-epoch number.
fn epoch_index(log: &TraceLog) -> Vec<(u64, u32)> {
    // Sorted (time, epoch) boundaries from barrier sync events.
    let mut barrier_times: Vec<u64> =
        log.syncs.iter().filter(|s| s.kind == "barrier").map(|s| s.at.as_micros()).collect();
    barrier_times.sort_unstable();
    barrier_times.dedup();
    barrier_times.into_iter().enumerate().map(|(i, t)| (t, i as u32 + 1)).collect()
}

fn epoch_at(boundaries: &[(u64, u32)], at: u64) -> u32 {
    match boundaries.binary_search_by_key(&at, |(t, _)| *t) {
        Ok(i) => boundaries[i].1,
        Err(0) => 0,
        Err(i) => boundaries[i - 1].1,
    }
}

fn classify_one(accesses: &[&crate::log::Access], epochs: &[(u64, u32)]) -> SharingType {
    let threads: BTreeSet<ThreadId> = accesses.iter().map(|a| a.thread).collect();
    let writers: BTreeSet<ThreadId> =
        accesses.iter().filter(|a| a.is_write).map(|a| a.thread).collect();
    let readers: BTreeSet<ThreadId> =
        accesses.iter().filter(|a| !a.is_write).map(|a| a.thread).collect();
    let reads = accesses.iter().filter(|a| !a.is_write).count() as u64;
    let writes = accesses.iter().filter(|a| a.is_write).count() as u64;

    // Touched by a single thread only: private (even though globally
    // visible).
    if threads.len() <= 1 {
        return SharingType::Private;
    }

    // Written only during initialization (or never), read afterwards:
    // write-once. (Result objects, by contrast, are written during the
    // computation itself.)
    let post_init_writes = accesses.iter().filter(|a| a.is_write && !a.init_phase).count();
    if post_init_writes == 0 {
        return SharingType::WriteOnce;
    }

    // Result: several writers, exactly one reading thread, and every read
    // comes after the last write by another thread (collection at the end).
    if readers.len() == 1 {
        let reader = *readers.iter().next().expect("one reader");
        let last_foreign_write =
            accesses.iter().filter(|a| a.is_write && a.thread != reader).map(|a| a.at).max();
        let first_read = accesses.iter().filter(|a| !a.is_write).map(|a| a.at).min();
        if let (Some(w), Some(r)) = (last_foreign_write, first_read) {
            if (writers.len() > 1 || !writers.contains(&reader)) && r >= w {
                return SharingType::Result;
            }
        }
    }

    // Single writer, other threads read repeatedly while writing continues:
    // producer-consumer.
    if writers.len() == 1 {
        let w = *writers.iter().next().expect("one writer");
        if readers.iter().any(|r| *r != w) {
            return SharingType::ProducerConsumer;
        }
    }

    // Long single-thread runs over the interleaving: migratory.
    if run_length_mean(accesses) >= MIGRATORY_RUN_LEN {
        return SharingType::Migratory;
    }

    // Heavily read-biased with occasional writes from several threads:
    // read-mostly.
    if writes > 0 && (reads as f64 / writes as f64) >= READ_MOSTLY_RATIO {
        return SharingType::ReadMostly;
    }

    // Multiple writers to (mostly) disjoint portions between
    // synchronizations: write-many.
    if writers.len() > 1 && disjoint_write_fraction(accesses, epochs) >= 0.75 {
        return SharingType::WriteMany;
    }

    SharingType::GeneralReadWrite
}

/// Mean length of maximal single-thread access runs.
fn run_length_mean(accesses: &[&crate::log::Access]) -> f64 {
    if accesses.is_empty() {
        return 0.0;
    }
    let mut runs = 0u64;
    let mut last: Option<ThreadId> = None;
    for a in accesses {
        if last != Some(a.thread) {
            runs += 1;
            last = Some(a.thread);
        }
    }
    accesses.len() as f64 / runs as f64
}

/// Fraction of (epoch, byte) write cells written by exactly one thread —
/// byte-granular disjointness judged within each synchronization epoch.
fn disjoint_write_fraction(accesses: &[&crate::log::Access], epochs: &[(u64, u32)]) -> f64 {
    let mut cell_writer: BTreeMap<(u32, u32), (ThreadId, bool)> = BTreeMap::new();
    for a in accesses.iter().filter(|a| a.is_write && !a.init_phase) {
        let e = epoch_at(epochs, a.at.as_micros());
        for b in a.range.start..a.range.end() {
            cell_writer
                .entry((e, b))
                .and_modify(|(w, conflicted)| {
                    if *w != a.thread {
                        *conflicted = true;
                    }
                })
                .or_insert((a.thread, false));
        }
    }
    if cell_writer.is_empty() {
        return 1.0;
    }
    let clean = cell_writer.values().filter(|(_, c)| !c).count();
    clean as f64 / cell_writer.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::Access;
    use munin_types::{ByteRange, NodeId, VirtualTime};

    fn acc(t: u32, at: u64, obj: u64, range: (u32, u32), w: bool, init: bool) -> Access {
        Access {
            at: VirtualTime::micros(at),
            thread: ThreadId(t),
            node: NodeId(t as u16),
            obj: ObjectId(obj),
            range: ByteRange::new(range.0, range.1),
            is_write: w,
            init_phase: init,
        }
    }

    fn verdict(accesses: Vec<Access>) -> SharingType {
        let refs: Vec<&Access> = accesses.iter().collect();
        classify_one(&refs, &[])
    }

    fn verdict_with_epochs(accesses: Vec<Access>, boundaries: &[(u64, u32)]) -> SharingType {
        let refs: Vec<&Access> = accesses.iter().collect();
        classify_one(&refs, boundaries)
    }

    #[test]
    fn single_thread_is_private() {
        let v = verdict(vec![acc(0, 0, 1, (0, 8), true, true), acc(0, 1, 1, (0, 8), false, false)]);
        assert_eq!(v, SharingType::Private);
    }

    #[test]
    fn init_writes_then_shared_reads_is_write_once() {
        let v = verdict(vec![
            acc(0, 0, 1, (0, 64), true, true),
            acc(1, 10, 1, (0, 8), false, false),
            acc(2, 11, 1, (8, 8), false, false),
        ]);
        assert_eq!(v, SharingType::WriteOnce);
    }

    #[test]
    fn many_writers_single_late_reader_is_result() {
        let v = verdict(vec![
            acc(1, 5, 1, (0, 8), true, false),
            acc(2, 6, 1, (8, 8), true, false),
            acc(0, 100, 1, (0, 16), false, false),
        ]);
        assert_eq!(v, SharingType::Result);
    }

    #[test]
    fn one_writer_many_readers_is_producer_consumer() {
        let v = verdict(vec![
            acc(0, 0, 1, (0, 8), true, false),
            acc(1, 1, 1, (0, 8), false, false),
            acc(0, 2, 1, (0, 8), true, false),
            acc(2, 3, 1, (0, 8), false, false),
        ]);
        assert_eq!(v, SharingType::ProducerConsumer);
    }

    #[test]
    fn long_runs_are_migratory() {
        let mut a = Vec::new();
        for t in 0..3u32 {
            for i in 0..10u64 {
                a.push(acc(t, (t as u64) * 100 + i, 1, (0, 8), i % 2 == 0, false));
            }
        }
        assert_eq!(verdict(a), SharingType::Migratory);
    }

    #[test]
    fn read_bias_is_read_mostly() {
        let mut a = Vec::new();
        // Writers from two threads so producer-consumer doesn't claim it;
        // interleave reads so runs stay short.
        a.push(acc(0, 0, 1, (0, 8), true, false));
        a.push(acc(1, 1, 1, (0, 8), true, false));
        for i in 0..60u64 {
            a.push(acc((i % 3) as u32, 2 + i, 1, (0, 8), false, false));
        }
        assert_eq!(verdict(a), SharingType::ReadMostly);
    }

    #[test]
    fn disjoint_multi_writer_is_write_many() {
        let mut a = Vec::new();
        for round in 0..4u64 {
            for t in 0..3u32 {
                a.push(acc(t, round * 10 + t as u64, 1, (t * 16, 16), true, false));
                a.push(acc(
                    (t + 1) % 3,
                    round * 10 + t as u64 + 4,
                    1,
                    (((t + 1) % 3) * 16, 16),
                    false,
                    false,
                ));
            }
        }
        assert_eq!(verdict(a), SharingType::WriteMany);
    }

    #[test]
    fn epoch_disjoint_writes_are_write_many_even_when_bytes_alias_across_epochs() {
        // FFT-style: within each epoch writes are disjoint; across epochs
        // the same bytes are written by different threads.
        let mut a = Vec::new();
        for epoch in 0..3u64 {
            for t in 0..3u32 {
                // Partition rotates every epoch: thread t writes slot
                // (t+epoch)%3 — still disjoint within the epoch.
                let slot = ((t as u64 + epoch) % 3) as u32;
                a.push(acc(t, epoch * 100 + t as u64, 1, (slot * 8, 8), true, false));
                a.push(acc(
                    (t + 1) % 3,
                    epoch * 100 + t as u64 + 50,
                    1,
                    (((t + 1) % 3) * 8, 8),
                    false,
                    false,
                ));
            }
        }
        let boundaries = [(100u64, 1u32), (200, 2)];
        assert_eq!(
            verdict_with_epochs(a, &boundaries),
            SharingType::WriteMany,
            "per-epoch disjointness must ignore cross-epoch byte aliasing"
        );
    }

    #[test]
    fn conflicting_writes_fall_back_to_general() {
        let mut a = Vec::new();
        for i in 0..12u64 {
            let t = (i % 3) as u32;
            // Everyone writes the same bytes, reads interleaved.
            a.push(acc(t, i * 2, 1, (0, 8), true, false));
            a.push(acc((t + 1) % 3, i * 2 + 1, 1, (0, 8), false, false));
        }
        assert_eq!(verdict(a), SharingType::GeneralReadWrite);
    }

    #[test]
    fn classify_uses_decl_names() {
        let log = TraceLog {
            accesses: vec![acc(0, 0, 0, (0, 8), true, true), acc(1, 1, 0, (0, 8), false, false)],
            syncs: vec![],
            messages: 0,
        };
        let decls =
            vec![ObjectDecl::new(ObjectId(0), "table", 8, SharingType::WriteOnce, NodeId(0))];
        let verdicts = classify(&log, &decls);
        assert_eq!(verdicts.len(), 1);
        assert_eq!(verdicts[0].name, "table");
        assert_eq!(verdicts[0].declared, SharingType::WriteOnce);
        assert_eq!(verdicts[0].classified, SharingType::WriteOnce);
    }
}

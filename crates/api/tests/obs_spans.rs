//! Cross-backend span coherence: with `Telemetry::Spans` on, both
//! wall-clock fabrics must produce a metrics snapshot whose causal spans
//! are internally consistent — timestamps monotone within each span,
//! per-thread tails FIFO-ordered by seq, and segment lengths telescoping
//! exactly to the end-to-end latency the client saw. On the TCP fabric a
//! remote fetch-add must additionally show the wire hop (`fwd`) so the
//! span really decomposes issue → fwd → dispatch → home → reply → resume.

use munin_api::{
    tcp_support, Backend, MetricsSnapshot, OpClass, Par, ParTyped, ProgramBuilder, RtTuning,
    Telemetry,
};
use munin_types::{MuninConfig, SharingType};
use std::time::Instant;

const N_THREADS: usize = 2;
const ROUNDS: i64 = 20;

/// Two threads hammer one counter homed on node 1, so thread 0's adds are
/// remote on every fabric with more than one node.
fn run_fetch_adds(backend: Backend) -> (MetricsSnapshot, u64) {
    let mut p = ProgramBuilder::new(2);
    let ctr = p.scalar::<i64>("ctr", SharingType::GeneralReadWrite, 1);
    let bar = p.barrier(0, N_THREADS as u32);
    for t in 0..N_THREADS {
        p.thread(t, move |par: &mut dyn Par| {
            for _ in 0..ROUNDS {
                par.fetch_add_scalar(&ctr, 1);
            }
            par.barrier(bar);
            if par.self_id() == 0 {
                assert_eq!(par.fetch_add_scalar(&ctr, 0), N_THREADS as i64 * ROUNDS);
            }
        });
    }
    let mut tuning = RtTuning::default();
    tuning.telemetry = Telemetry::Spans;
    p.rt_tuning(tuning);
    let started = Instant::now();
    let outcome = p.run(backend);
    let wall_us = started.elapsed().as_micros() as u64;
    outcome.assert_clean();
    let metrics = outcome.metrics().expect("spans mode must fill RunReport::metrics").clone();
    (metrics, wall_us)
}

/// The invariants every joined span tail must satisfy, on any fabric.
fn check_span_invariants(m: &MetricsSnapshot, fabric: &str) {
    assert!(!m.spans.is_empty(), "{fabric}: spans mode produced no spans");
    assert!(
        m.spans.iter().any(|s| s.class == OpClass::FetchAdd),
        "{fabric}: the fetch-add workload must leave fetch-add spans"
    );
    for s in &m.spans {
        // Monotone within one span: every present stamp sits between its
        // causal neighbours, so each segment has a non-negative length and
        // the lengths telescope exactly to the client-observed latency.
        let mut last = s.issue_us;
        for (label, a, b) in s.segments() {
            assert_eq!(a, last, "{fabric}: segment {label} not contiguous in {s:?}");
            assert!(b >= a, "{fabric}: segment {label} goes backwards in {s:?}");
            last = b;
        }
        assert_eq!(last, s.resume_us);
        let sum: u64 = s.segments().iter().map(|(_, a, b)| b - a).sum();
        assert_eq!(sum, s.total_us(), "{fabric}: segments must telescope in {s:?}");
    }
    // Per-thread FIFO: the tail is ordered by issue seq within a thread
    // (the gate admits one op per thread at a time, so resume order is
    // issue order).
    for t in 0..N_THREADS as u32 {
        let seqs: Vec<u64> = m.spans.iter().filter(|s| s.thread.0 == t).map(|s| s.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(seqs.len(), sorted.len(), "thread {t} has duplicate seqs: {seqs:?}");
        assert_eq!(seqs, sorted, "{fabric}: thread {t} span tail out of issue order: {seqs:?}");
    }
}

#[test]
fn rt_spans_are_monotone_and_fifo() {
    let (m, _) = run_fetch_adds(Backend::MuninRt(MuninConfig::default()));
    assert_eq!(m.telemetry, Telemetry::Spans);
    check_span_invariants(&m, "rt");
    // In-process fabric: ops never cross the wire, so no span carries a
    // forward stamp.
    assert!(m.spans.iter().all(|s| s.fwd_us.is_none()), "rt spans must have no wire hop");
}

#[test]
fn tcp_remote_fetch_add_decomposes_into_wire_segments() {
    if let Err(notice) = tcp_support() {
        eprintln!("skipping tcp span test: {notice}");
        return;
    }
    let (m, run_wall_us) = run_fetch_adds(Backend::MuninTcp(MuninConfig::default()));
    check_span_invariants(&m, "tcp");
    // The counter is homed on node 1 (a child process): thread 0's adds
    // crossed the wire, so at least one fetch-add span must record the
    // forward stamp and its full issue→fwd→dispatch→…→resume decomposition.
    let remote = m
        .spans
        .iter()
        .find(|s| s.class == OpClass::FetchAdd && s.fwd_us.is_some())
        .expect("a remote fetch-add span with a wire hop");
    assert!(remote.dispatch_us.is_some(), "wire hop implies a stamped dispatch: {remote:?}");
    assert!(remote.reply_us.is_some(), "wire hop implies a stamped reply: {remote:?}");
    // The decomposition accounts for the whole client-observed latency,
    // and that latency is physically plausible: no span outlives the run.
    let sum: u64 = remote.segments().iter().map(|(_, a, b)| b - a).sum();
    assert_eq!(sum, remote.total_us());
    assert!(
        remote.total_us() <= run_wall_us,
        "span latency {}us exceeds the whole run's {}us",
        remote.total_us(),
        run_wall_us
    );
}

//! Mesa-style monitors, bundled from a distributed lock and condition
//! variable — the abstraction Presto programs used ("parallelism
//! (lightweight processes) and synchronization (locks and Mesa-style
//! monitors)"), built exactly as the paper prescribes: "more elaborate
//! synchronization objects, such as monitors and atomic integers, are built
//! on top of [the distributed locks]".

use crate::harness::ProgramBuilder;
use crate::par::Par;
use munin_types::{CondId, LockId};

/// A monitor handle: one lock plus one condition variable.
///
/// Note: condition variables are supported by the Munin and native backends;
/// the Ivy baseline (true to its "no special provisions") rejects them.
#[derive(Debug, Clone, Copy)]
pub struct Monitor {
    pub lock: LockId,
    pub cond: CondId,
}

impl Monitor {
    /// Declare a monitor homed on `home`.
    pub fn declare(p: &mut ProgramBuilder, home: usize) -> Monitor {
        Monitor { lock: p.lock(home), cond: p.cond(home) }
    }

    /// Enter the monitor (acquire the lock).
    pub fn enter(&self, par: &mut dyn Par) {
        par.lock(self.lock);
    }

    /// Leave the monitor (release the lock).
    pub fn exit(&self, par: &mut dyn Par) {
        par.unlock(self.lock);
    }

    /// Run `body` inside the monitor.
    pub fn with<R>(&self, par: &mut dyn Par, body: impl FnOnce(&mut dyn Par) -> R) -> R {
        self.enter(par);
        let r = body(par);
        self.exit(par);
        r
    }

    /// Mesa wait: must hold the monitor; releases, sleeps, re-acquires.
    /// Always re-test the predicate after waking.
    pub fn wait(&self, par: &mut dyn Par) {
        par.cond_wait(self.cond, self.lock);
    }

    /// Wake one waiter (signal-and-continue).
    pub fn signal(&self, par: &mut dyn Par) {
        par.cond_signal(self.cond, false);
    }

    /// Wake all waiters.
    pub fn broadcast(&self, par: &mut dyn Par) {
        par.cond_signal(self.cond, true);
    }

    /// The classic pattern: wait until `pred` holds (re-tested after every
    /// wake, as Mesa semantics require).
    pub fn wait_until(&self, par: &mut dyn Par, mut pred: impl FnMut(&mut dyn Par) -> bool) {
        while !pred(par) {
            self.wait(par);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Backend;
    use crate::par::ParTyped;
    use munin_types::{MuninConfig, ObjectDecl, SharingType};
    use std::sync::atomic::{AtomicI64, Ordering};
    use std::sync::Arc;

    fn bounded_buffer(backend: Backend) {
        // A 1-slot bounded buffer guarded by a monitor: the canonical
        // monitor exercise, across nodes.
        let mut p = ProgramBuilder::new(2);
        let m = Monitor::declare(&mut p, 0);
        // slot[0] = full flag, slot[1] = value.
        let slot = p.array_decl::<i64>(
            ObjectDecl::template("slot", SharingType::Migratory).with_lock(m.lock),
            2,
            0,
        );
        let got = Arc::new(AtomicI64::new(0));
        let g = got.clone();
        p.thread(0, move |par: &mut dyn Par| {
            // Consumer: take 5 items.
            let mut sum = 0;
            for _ in 0..5 {
                m.enter(par);
                m.wait_until(par, |par| par.get(&slot, 0) == 1);
                sum += par.get(&slot, 1);
                par.set(&slot, 0, 0);
                m.broadcast(par);
                m.exit(par);
            }
            g.store(sum, Ordering::SeqCst);
        });
        p.thread(1, move |par: &mut dyn Par| {
            // Producer: put 1..=5.
            for v in 1..=5i64 {
                m.enter(par);
                m.wait_until(par, |par| par.get(&slot, 0) == 0);
                par.set(&slot, 1, v);
                par.set(&slot, 0, 1);
                m.broadcast(par);
                m.exit(par);
            }
        });
        p.run(backend).assert_clean();
        assert_eq!(got.load(Ordering::SeqCst), 15);
    }

    #[test]
    fn bounded_buffer_producer_consumer_on_munin() {
        bounded_buffer(Backend::Munin(MuninConfig::default()));
    }

    #[test]
    fn bounded_buffer_producer_consumer_on_native() {
        bounded_buffer(Backend::Native);
    }

    #[test]
    fn with_releases_on_normal_exit() {
        let mut p = ProgramBuilder::new(1);
        let m = Monitor::declare(&mut p, 0);
        p.thread(0, move |par: &mut dyn Par| {
            for _ in 0..3 {
                m.with(par, |_| {});
            }
            // If `with` leaked the lock, this would deadlock.
            m.enter(par);
            m.exit(par);
        });
        p.run(Backend::Munin(MuninConfig::default())).assert_clean();
    }
}

//! The application-facing shared-memory interface.
//!
//! Three layers:
//!
//! 1. [`Par`] — the object-safe backend contract: identity, synchronization,
//!    and *raw byte* access through the zero-copy pair
//!    [`Par::read_raw_into`] / [`Par::write_raw`] (the allocating
//!    [`Par::read`] / [`Par::write`] are provided shims over it).
//! 2. [`ParTyped`] — the typed accessors every application uses, generic
//!    over [`Element`] and driven by [`SharedArray`] / [`SharedScalar`]
//!    handles. Bounds and element types are checked here, at the API layer,
//!    with precise panics; buffers are caller-owned, so steady-state access
//!    does not allocate.
//! 3. [`Region`] — a scoped read-modify-write view of an array range
//!    (fetch once, edit locally, write back once), the natural shape for
//!    stripe-local write-many access.

use munin_sim::ThreadCtx;
use munin_types::element::{bytes_of, bytes_of_mut};
use munin_types::{
    BarrierId, ByteRange, CondId, Element, LockId, ObjectId, OpToken, SharedArray, SharedScalar,
    TokenState, TokenValue,
};

/// What a parallel program may do: shared-object access plus explicit
/// synchronization. One implementation runs on the simulator (Munin or Ivy
/// servers underneath), another on native threads.
///
/// Applications should not call the byte-level methods directly — use the
/// typed layer ([`ParTyped`]) through [`SharedArray`] / [`SharedScalar`]
/// handles instead.
pub trait Par {
    /// This thread's index (0-based, dense).
    fn self_id(&self) -> usize;
    /// Total threads in the program.
    fn n_threads(&self) -> usize;
    /// Read `range` of a shared object into `out` (`out.len()` must equal
    /// `range.len`). The zero-copy foundation of the typed layer.
    fn read_raw_into(&mut self, obj: ObjectId, range: ByteRange, out: &mut [u8]);
    /// Write `data` at byte offset `start` of a shared object.
    fn write_raw(&mut self, obj: ObjectId, start: u32, data: &[u8]);
    /// Atomic fetch-and-add on the little-endian i64 at `offset`.
    fn fetch_add(&mut self, obj: ObjectId, offset: u32, delta: i64) -> i64;
    fn lock(&mut self, lock: LockId);
    fn unlock(&mut self, lock: LockId);
    fn barrier(&mut self, barrier: BarrierId);
    /// Monitor wait: release `lock`, sleep until signalled, re-acquire.
    /// (Unsupported by the Ivy backend, true to the original system.)
    fn cond_wait(&mut self, cond: CondId, lock: LockId);
    /// Wake one (`broadcast=false`) or all waiters. Caller holds the lock.
    fn cond_signal(&mut self, cond: CondId, broadcast: bool);
    /// Mark a program phase boundary (phase 0 = initialization).
    fn phase(&mut self, phase: u32);
    /// Model `us` microseconds of local computation.
    fn compute(&mut self, us: u64);
    /// Flush this thread's delayed updates (no-op on strict backends).
    fn flush(&mut self);

    /// Read a byte range into a fresh buffer. Allocating shim over
    /// [`Par::read_raw_into`]; backends may override when they already own
    /// a buffer (the simulator's rendezvous does).
    fn read(&mut self, obj: ObjectId, range: ByteRange) -> Vec<u8> {
        let mut out = vec![0u8; range.len as usize];
        self.read_raw_into(obj, range, &mut out);
        out
    }

    /// Write bytes at an offset of a shared object (by-value shim over
    /// [`Par::write_raw`]).
    fn write(&mut self, obj: ObjectId, start: u32, data: Vec<u8>) {
        self.write_raw(obj, start, &data);
    }

    // ---- pipelined (asynchronous) ops -----------------------------------
    //
    // The defaults complete the op immediately and hand back a Ready token,
    // which is the correct degenerate pipelining for backends whose ops
    // already finish inline (the simulator's rendezvous, the native
    // backend). The real-time kernels override these with a genuinely
    // asynchronous issue path bounded by `RtTuning::max_inflight`.

    /// Issue a write without waiting for completion. The op is complete by
    /// the time the returned state is redeemed ([`Par::token_wait`]) or the
    /// next sync point, whichever comes first.
    fn write_raw_async(&mut self, obj: ObjectId, start: u32, data: &[u8]) -> TokenState {
        self.write_raw(obj, start, data);
        TokenState::Ready(0)
    }

    /// Issue an atomic fetch-and-add without waiting; the old value rides
    /// in the redeemed token.
    fn fetch_add_async(&mut self, obj: ObjectId, offset: u32, delta: i64) -> TokenState {
        TokenState::Ready(self.fetch_add(obj, offset, delta))
    }

    /// Redeem a token state: the raw result of its async op. Backends that
    /// never return [`TokenState::Pending`] keep this default.
    fn token_wait(&mut self, state: TokenState) -> i64 {
        match state {
            TokenState::Ready(v) => v,
            TokenState::Pending(seq) => {
                panic!("this backend never issued pending token {seq} — token from another ctx?")
            }
        }
    }

    /// Complete every op this thread has in flight (including any
    /// client-side write-combining buffer). Implicit at every sync point;
    /// a no-op on backends whose ops complete inline.
    fn drain_ops(&mut self) {}
}

impl Par for ThreadCtx {
    fn self_id(&self) -> usize {
        self.thread_id().index()
    }
    fn n_threads(&self) -> usize {
        ThreadCtx::n_threads(self)
    }
    fn read_raw_into(&mut self, obj: ObjectId, range: ByteRange, out: &mut [u8]) {
        ThreadCtx::read_into(self, obj, range, out)
    }
    fn write_raw(&mut self, obj: ObjectId, start: u32, data: &[u8]) {
        ThreadCtx::write_raw(self, obj, start, data)
    }
    fn read(&mut self, obj: ObjectId, range: ByteRange) -> Vec<u8> {
        // The rendezvous already hands us an owned buffer; return it rather
        // than copying into a second one.
        ThreadCtx::read(self, obj, range)
    }
    fn write(&mut self, obj: ObjectId, start: u32, data: Vec<u8>) {
        ThreadCtx::write(self, obj, start, data)
    }
    fn fetch_add(&mut self, obj: ObjectId, offset: u32, delta: i64) -> i64 {
        ThreadCtx::fetch_add(self, obj, offset, delta)
    }
    fn lock(&mut self, lock: LockId) {
        ThreadCtx::lock(self, lock)
    }
    fn unlock(&mut self, lock: LockId) {
        ThreadCtx::unlock(self, lock)
    }
    fn barrier(&mut self, barrier: BarrierId) {
        ThreadCtx::barrier(self, barrier)
    }
    fn cond_wait(&mut self, cond: CondId, lock: LockId) {
        ThreadCtx::cond_wait(self, cond, lock)
    }
    fn cond_signal(&mut self, cond: CondId, broadcast: bool) {
        self.op(munin_sim::DsmOp::CondSignal { cond, broadcast }).expect_unit()
    }
    fn phase(&mut self, phase: u32) {
        ThreadCtx::phase(self, phase)
    }
    fn compute(&mut self, us: u64) {
        ThreadCtx::compute(self, us)
    }
    fn flush(&mut self) {
        ThreadCtx::flush(self)
    }
}

/// The real-time kernel's thread handle speaks the same op protocol as the
/// simulator's, so the `Par` mapping is identical (generic over the
/// protocol message type — one impl serves MuninRt and IvyRt).
impl<P> Par for munin_rt::RtCtx<P> {
    fn self_id(&self) -> usize {
        self.thread_id().index()
    }
    fn n_threads(&self) -> usize {
        munin_rt::RtCtx::n_threads(self)
    }
    fn read_raw_into(&mut self, obj: ObjectId, range: ByteRange, out: &mut [u8]) {
        munin_rt::RtCtx::read_into(self, obj, range, out)
    }
    fn write_raw(&mut self, obj: ObjectId, start: u32, data: &[u8]) {
        munin_rt::RtCtx::write_raw(self, obj, start, data)
    }
    fn read(&mut self, obj: ObjectId, range: ByteRange) -> Vec<u8> {
        // The op reply hands us an owned buffer; return it rather than
        // copying into a second one.
        munin_rt::RtCtx::read(self, obj, range)
    }
    fn write(&mut self, obj: ObjectId, start: u32, data: Vec<u8>) {
        munin_rt::RtCtx::write(self, obj, start, data)
    }
    fn fetch_add(&mut self, obj: ObjectId, offset: u32, delta: i64) -> i64 {
        munin_rt::RtCtx::fetch_add(self, obj, offset, delta)
    }
    fn lock(&mut self, lock: LockId) {
        munin_rt::RtCtx::lock(self, lock)
    }
    fn unlock(&mut self, lock: LockId) {
        munin_rt::RtCtx::unlock(self, lock)
    }
    fn barrier(&mut self, barrier: BarrierId) {
        munin_rt::RtCtx::barrier(self, barrier)
    }
    fn cond_wait(&mut self, cond: CondId, lock: LockId) {
        munin_rt::RtCtx::cond_wait(self, cond, lock)
    }
    fn cond_signal(&mut self, cond: CondId, broadcast: bool) {
        self.op(munin_sim::DsmOp::CondSignal { cond, broadcast }).expect_unit()
    }
    fn phase(&mut self, phase: u32) {
        munin_rt::RtCtx::phase(self, phase)
    }
    fn compute(&mut self, us: u64) {
        munin_rt::RtCtx::compute(self, us)
    }
    fn flush(&mut self) {
        munin_rt::RtCtx::flush(self)
    }
    fn write_raw_async(&mut self, obj: ObjectId, start: u32, data: &[u8]) -> TokenState {
        let range = ByteRange::new(start, data.len() as u32);
        self.op_async(munin_sim::DsmOp::Write { obj, range, data: data.to_vec() })
    }
    fn fetch_add_async(&mut self, obj: ObjectId, offset: u32, delta: i64) -> TokenState {
        self.op_async(munin_sim::DsmOp::AtomicFetchAdd { obj, offset, delta })
    }
    fn token_wait(&mut self, state: TokenState) -> i64 {
        munin_rt::RtCtx::token_wait(self, state)
    }
    fn drain_ops(&mut self) {
        munin_rt::RtCtx::drain_ops(self)
    }
}

/// Decode a little-endian byte buffer in place into `out`.
fn decode_into<T: Element>(bytes: &[u8], out: &mut [T]) {
    for (chunk, slot) in bytes.chunks_exact(T::SIZE).zip(out.iter_mut()) {
        *slot = T::read_le(chunk);
    }
}

/// Typed, bounds-checked access to shared objects through
/// [`SharedArray`] / [`SharedScalar`] handles. Blanket-implemented for every
/// [`Par`], including `dyn Par`.
///
/// The bulk accessors are zero-copy on little-endian hosts: the caller's
/// element slice is handed to the backend as its byte representation, so no
/// per-call buffer is allocated (big-endian hosts fall back to a transcoding
/// buffer to preserve the little-endian wire format).
pub trait ParTyped: Par {
    /// Read elements `start..start + out.len()` of `arr` into `out`.
    #[track_caller]
    fn read_into<T: Element>(&mut self, arr: &SharedArray<T>, start: u32, out: &mut [T]) {
        let range = arr.byte_range(start, out.len() as u32);
        if cfg!(target_endian = "little") {
            self.read_raw_into(arr.id(), range, bytes_of_mut(out));
        } else {
            let bytes = self.read(arr.id(), range);
            decode_into(&bytes, out);
        }
    }

    /// Write `vals` over elements `start..start + vals.len()` of `arr`.
    #[track_caller]
    fn write_from<T: Element>(&mut self, arr: &SharedArray<T>, start: u32, vals: &[T]) {
        let range = arr.byte_range(start, vals.len() as u32);
        if cfg!(target_endian = "little") {
            self.write_raw(arr.id(), range.start, bytes_of(vals));
        } else {
            let mut bytes = vec![0u8; vals.len() * T::SIZE];
            for (chunk, v) in bytes.chunks_exact_mut(T::SIZE).zip(vals) {
                v.write_le(chunk);
            }
            self.write_raw(arr.id(), range.start, &bytes);
        }
    }

    /// Read `n` elements starting at `start` into a fresh `Vec`.
    #[track_caller]
    fn read_vec<T: Element>(&mut self, arr: &SharedArray<T>, start: u32, n: u32) -> Vec<T> {
        let mut out = vec![T::default(); n as usize];
        self.read_into(arr, start, &mut out);
        out
    }

    /// Read the whole array into a fresh `Vec`.
    #[track_caller]
    fn read_all<T: Element>(&mut self, arr: &SharedArray<T>) -> Vec<T> {
        self.read_vec(arr, 0, arr.len())
    }

    /// Read one element.
    #[track_caller]
    fn get<T: Element>(&mut self, arr: &SharedArray<T>, idx: u32) -> T {
        let mut buf = [0u8; 16];
        let buf = &mut buf[..T::SIZE];
        self.read_raw_into(arr.id(), ByteRange::new(arr.byte_offset(idx), T::SIZE as u32), buf);
        T::read_le(buf)
    }

    /// Write one element.
    #[track_caller]
    fn set<T: Element>(&mut self, arr: &SharedArray<T>, idx: u32, v: T) {
        let mut buf = [0u8; 16];
        let buf = &mut buf[..T::SIZE];
        v.write_le(buf);
        self.write_raw(arr.id(), arr.byte_offset(idx), buf);
    }

    /// Read a shared scalar.
    #[track_caller]
    fn load<T: Element>(&mut self, s: &SharedScalar<T>) -> T {
        self.get(&s.as_array(), 0)
    }

    /// Write a shared scalar.
    #[track_caller]
    fn store<T: Element>(&mut self, s: &SharedScalar<T>, v: T) {
        self.set(&s.as_array(), 0, v)
    }

    /// Atomic fetch-and-add on an `i64` scalar; returns the old value.
    fn fetch_add_scalar(&mut self, s: &SharedScalar<i64>, delta: i64) -> i64 {
        self.fetch_add(s.id(), 0, delta)
    }

    // ---- pipelined (asynchronous) accessors -----------------------------
    //
    // Each returns an [`OpToken`] instead of blocking: redeem it with
    // [`ParTyped::wait`] / [`ParTyped::wait_all`], or let the next sync
    // point (acquire/release/barrier/flush/exit — any blocking op, in
    // fact) complete it implicitly, per release consistency. On the
    // real-time kernels this keeps up to `RtTuning::max_inflight` ops in
    // flight per thread; on the simulator and native backends the token
    // comes back already complete.

    /// Asynchronous [`ParTyped::write_from`].
    #[track_caller]
    fn write_from_async<T: Element>(
        &mut self,
        arr: &SharedArray<T>,
        start: u32,
        vals: &[T],
    ) -> OpToken<()> {
        let range = arr.byte_range(start, vals.len() as u32);
        let state = if cfg!(target_endian = "little") {
            self.write_raw_async(arr.id(), range.start, bytes_of(vals))
        } else {
            let mut bytes = vec![0u8; vals.len() * T::SIZE];
            for (chunk, v) in bytes.chunks_exact_mut(T::SIZE).zip(vals) {
                v.write_le(chunk);
            }
            self.write_raw_async(arr.id(), range.start, &bytes)
        };
        OpToken::from_state(state)
    }

    /// Asynchronous [`ParTyped::set`].
    #[track_caller]
    fn set_async<T: Element>(&mut self, arr: &SharedArray<T>, idx: u32, v: T) -> OpToken<()> {
        let mut buf = [0u8; 16];
        let buf = &mut buf[..T::SIZE];
        v.write_le(buf);
        // Bounds-check through byte_range like `set` does via byte_offset.
        let range = arr.byte_range(idx, 1);
        OpToken::from_state(self.write_raw_async(arr.id(), range.start, buf))
    }

    /// Asynchronous [`ParTyped::store`].
    #[track_caller]
    fn store_async<T: Element>(&mut self, s: &SharedScalar<T>, v: T) -> OpToken<()> {
        self.set_async(&s.as_array(), 0, v)
    }

    /// Asynchronous [`ParTyped::fetch_add_scalar`]; the old value arrives
    /// when the token is redeemed.
    fn fetch_add_scalar_async(&mut self, s: &SharedScalar<i64>, delta: i64) -> OpToken<i64> {
        OpToken::from_state(self.fetch_add_async(s.id(), 0, delta))
    }

    /// Redeem one token: blocks until its op completes (if it hasn't) and
    /// returns the typed result.
    fn wait<T: TokenValue>(&mut self, token: OpToken<T>) -> T {
        T::from_raw(self.token_wait(token.into_state()))
    }

    /// Redeem a batch of tokens in issue order.
    fn wait_all<T: TokenValue, I: IntoIterator<Item = OpToken<T>>>(&mut self, tokens: I) -> Vec<T> {
        tokens.into_iter().map(|t| self.wait(t)).collect()
    }

    /// Complete every in-flight async op (see [`Par::drain_ops`]).
    fn drain(&mut self) {
        self.drain_ops();
    }

    /// A scoped view of `arr[range]`: reads the range once, gives local
    /// indexed access, and writes the range back when the view is dropped
    /// (or explicitly [`Region::commit`]ted) if it was mutated. The natural
    /// access shape for a thread's stripe of a write-many object.
    #[track_caller]
    fn region<T: Element>(
        &mut self,
        arr: &SharedArray<T>,
        range: std::ops::Range<u32>,
    ) -> Region<'_, Self, T> {
        assert!(
            range.start <= range.end,
            "inverted region {}..{} of {}",
            range.start,
            range.end,
            arr.describe(),
        );
        let n = range.end - range.start;
        let mut buf = vec![T::default(); n as usize];
        self.read_into(arr, range.start, &mut buf);
        Region { par: self, arr: *arr, start: range.start, buf, dirty: false }
    }
}

impl<P: Par + ?Sized> ParTyped for P {}

/// A scoped, locally-buffered view of part of a [`SharedArray`], created by
/// [`ParTyped::region`]. Mutations are written back exactly once.
pub struct Region<'p, P: Par + ?Sized, T: Element> {
    par: &'p mut P,
    arr: SharedArray<T>,
    start: u32,
    buf: Vec<T>,
    dirty: bool,
}

impl<P: Par + ?Sized, T: Element> Region<'_, P, T> {
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// First element's index in the underlying array.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Read-only view of the buffered elements.
    pub fn as_slice(&self) -> &[T] {
        &self.buf
    }

    /// Mutable view; marks the region dirty (it will be written back).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        self.dirty = true;
        &mut self.buf
    }

    /// Write the buffer back now (only if dirty) and consume the view.
    pub fn commit(mut self) {
        self.flush_back();
    }

    fn flush_back(&mut self) {
        if self.dirty {
            self.dirty = false;
            let range = self.arr.byte_range(self.start, self.buf.len() as u32);
            if cfg!(target_endian = "little") {
                self.par.write_raw(self.arr.id(), range.start, bytes_of(&self.buf));
            } else {
                let mut bytes = vec![0u8; self.buf.len() * T::SIZE];
                for (chunk, v) in bytes.chunks_exact_mut(T::SIZE).zip(&self.buf) {
                    v.write_le(chunk);
                }
                self.par.write_raw(self.arr.id(), range.start, &bytes);
            }
        }
    }
}

impl<P: Par + ?Sized, T: Element> std::ops::Index<usize> for Region<'_, P, T> {
    type Output = T;
    fn index(&self, i: usize) -> &T {
        &self.buf[i]
    }
}

impl<P: Par + ?Sized, T: Element> std::ops::IndexMut<usize> for Region<'_, P, T> {
    fn index_mut(&mut self, i: usize) -> &mut T {
        self.dirty = true;
        &mut self.buf[i]
    }
}

impl<P: Par + ?Sized, T: Element> Drop for Region<'_, P, T> {
    fn drop(&mut self) {
        // Skip the write-back while unwinding: the buffer may be half-edited,
        // and a failing DSM write inside Drop would double-panic into an
        // abort instead of the backend's clean per-thread panic report.
        if !std::thread::panicking() {
            self.flush_back();
        }
    }
}

/// Byte-offset views over raw [`ObjectId`]s — the pre-typed-handle API.
///
/// Deprecated: use [`ParTyped`] with [`SharedArray`] / [`SharedScalar`]
/// handles, which carry the element type and length and bounds-check every
/// access. The only sanctioned caller left is the typed-vs-byte comparison
/// in `benches/micro.rs` (opt-in via `MUNIN_BENCH_BYTE_PATH=1`), kept so
/// the deprecation can cite measured numbers; everything else must go
/// through the typed layer.
#[deprecated(
    note = "use ParTyped with SharedArray/SharedScalar handles; the sole sanctioned caller \
            is the gated byte-path comparison in benches/micro.rs (MUNIN_BENCH_BYTE_PATH=1)"
)]
pub trait ParExt: Par {
    fn read_f64(&mut self, obj: ObjectId, idx: u32) -> f64 {
        let mut buf = [0u8; 8];
        self.read_raw_into(obj, ByteRange::new(idx * 8, 8), &mut buf);
        f64::from_le_bytes(buf)
    }

    fn write_f64(&mut self, obj: ObjectId, idx: u32, v: f64) {
        self.write_raw(obj, idx * 8, &v.to_le_bytes());
    }

    /// Read `n` consecutive f64 elements starting at element `start`.
    fn read_f64s(&mut self, obj: ObjectId, start: u32, n: u32) -> Vec<f64> {
        let mut out = vec![0f64; n as usize];
        let arr = SharedArray::<f64>::from_raw(obj, start + n, munin_types::SharingType::WriteMany);
        self.read_into(&arr, start, &mut out);
        out
    }

    /// Write consecutive f64 elements starting at element `start`.
    fn write_f64s(&mut self, obj: ObjectId, start: u32, vals: &[f64]) {
        let arr = SharedArray::<f64>::from_raw(
            obj,
            start + vals.len() as u32,
            munin_types::SharingType::WriteMany,
        );
        self.write_from(&arr, start, vals);
    }

    fn read_i64(&mut self, obj: ObjectId, idx: u32) -> i64 {
        let mut buf = [0u8; 8];
        self.read_raw_into(obj, ByteRange::new(idx * 8, 8), &mut buf);
        i64::from_le_bytes(buf)
    }

    fn write_i64(&mut self, obj: ObjectId, idx: u32, v: i64) {
        self.write_raw(obj, idx * 8, &v.to_le_bytes());
    }

    fn read_i64s(&mut self, obj: ObjectId, start: u32, n: u32) -> Vec<i64> {
        let mut out = vec![0i64; n as usize];
        let arr = SharedArray::<i64>::from_raw(obj, start + n, munin_types::SharingType::WriteMany);
        self.read_into(&arr, start, &mut out);
        out
    }

    fn write_i64s(&mut self, obj: ObjectId, start: u32, vals: &[i64]) {
        let arr = SharedArray::<i64>::from_raw(
            obj,
            start + vals.len() as u32,
            munin_types::SharingType::WriteMany,
        );
        self.write_from(&arr, start, vals);
    }

    fn read_u8(&mut self, obj: ObjectId, idx: u32) -> u8 {
        let mut buf = [0u8; 1];
        self.read_raw_into(obj, ByteRange::new(idx, 1), &mut buf);
        buf[0]
    }

    fn write_u8(&mut self, obj: ObjectId, idx: u32, v: u8) {
        self.write_raw(obj, idx, &[v]);
    }

    /// Bulk byte read (fills `out`), the symmetric partner `read_u8`
    /// lacked; routed through the zero-copy path.
    fn read_u8s(&mut self, obj: ObjectId, start: u32, out: &mut [u8]) {
        self.read_raw_into(obj, ByteRange::new(start, out.len() as u32), out);
    }

    /// Bulk byte write, the symmetric partner `write_u8` lacked.
    fn write_u8s(&mut self, obj: ObjectId, start: u32, vals: &[u8]) {
        self.write_raw(obj, start, vals);
    }
}

#[allow(deprecated)]
impl<T: Par + ?Sized> ParExt for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use munin_types::SharingType;
    use std::collections::HashMap;

    /// A toy in-memory Par for testing the access layers.
    pub(crate) struct MemPar {
        pub(crate) objs: HashMap<ObjectId, Vec<u8>>,
    }

    impl Par for MemPar {
        fn self_id(&self) -> usize {
            0
        }
        fn n_threads(&self) -> usize {
            1
        }
        fn read_raw_into(&mut self, obj: ObjectId, range: ByteRange, out: &mut [u8]) {
            out.copy_from_slice(&self.objs[&obj][range.start as usize..range.end() as usize]);
        }
        fn write_raw(&mut self, obj: ObjectId, start: u32, data: &[u8]) {
            let o = self.objs.get_mut(&obj).unwrap();
            o[start as usize..start as usize + data.len()].copy_from_slice(data);
        }
        fn fetch_add(&mut self, obj: ObjectId, offset: u32, delta: i64) -> i64 {
            let mut buf = [0u8; 8];
            self.read_raw_into(obj, ByteRange::new(offset, 8), &mut buf);
            let old = i64::from_le_bytes(buf);
            self.write_raw(obj, offset, &(old + delta).to_le_bytes());
            old
        }
        fn lock(&mut self, _: LockId) {}
        fn unlock(&mut self, _: LockId) {}
        fn barrier(&mut self, _: BarrierId) {}
        fn cond_wait(&mut self, _: CondId, _: LockId) {}
        fn cond_signal(&mut self, _: CondId, _: bool) {}
        fn phase(&mut self, _: u32) {}
        fn compute(&mut self, _: u64) {}
        fn flush(&mut self) {}
    }

    pub(crate) fn mempar(size: usize) -> (MemPar, ObjectId) {
        let obj = ObjectId(0);
        (MemPar { objs: HashMap::from([(obj, vec![0u8; size])]) }, obj)
    }

    #[test]
    fn typed_roundtrip_all_element_types() {
        let (mut p, obj) = mempar(64);
        let f: SharedArray<f64> = SharedArray::from_raw(obj, 8, SharingType::WriteMany);
        p.write_from(&f, 0, &[1.0, 2.0, 3.0]);
        p.set(&f, 3, -2.5);
        assert_eq!(p.read_vec(&f, 0, 4), vec![1.0, 2.0, 3.0, -2.5]);
        assert_eq!(p.get(&f, 1), 2.0);

        let i: SharedArray<i64> = f.cast();
        p.write_from(&i, 4, &[7, -9]);
        assert_eq!(p.read_vec(&i, 4, 2), vec![7, -9]);

        let u: SharedArray<u64> = f.cast();
        p.set(&u, 6, u64::MAX);
        assert_eq!(p.get(&u, 6), u64::MAX);

        let w: SharedArray<u32> = f.cast();
        assert_eq!(w.len(), 16);
        p.set(&w, 15, 0xdead_beef);
        assert_eq!(p.get(&w, 15), 0xdead_beef);

        let b: SharedArray<u8> = f.cast();
        p.write_from(&b, 0, &[9, 8, 7]);
        let mut out = [0u8; 3];
        p.read_into(&b, 0, &mut out);
        assert_eq!(out, [9, 8, 7]);
    }

    #[test]
    fn scalar_load_store_fetch_add() {
        let (mut p, obj) = mempar(8);
        let s: SharedScalar<i64> = SharedScalar::from_raw(obj, SharingType::GeneralReadWrite);
        p.store(&s, 41);
        assert_eq!(p.fetch_add_scalar(&s, 1), 41);
        assert_eq!(p.load(&s), 42);
    }

    #[test]
    fn region_reads_edits_and_writes_back_once() {
        let (mut p, obj) = mempar(64);
        let a: SharedArray<f64> = SharedArray::from_raw(obj, 8, SharingType::WriteMany);
        p.write_from(&a, 0, &[0.0; 8]);
        {
            let mut r = p.region(&a, 2..5);
            assert_eq!(r.len(), 3);
            r[0] = 10.0;
            r[2] = 30.0;
            // Drops here: written back.
        }
        assert_eq!(p.read_vec(&a, 0, 8), vec![0.0, 0.0, 10.0, 0.0, 30.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn clean_region_does_not_write_back() {
        let (mut p, obj) = mempar(16);
        let a: SharedArray<i64> = SharedArray::from_raw(obj, 2, SharingType::WriteMany);
        p.write_from(&a, 0, &[5, 6]);
        {
            let r = p.region(&a, 0..2);
            assert_eq!(r.as_slice(), &[5, 6]);
        }
        // Still intact (and no way to observe a spurious write with MemPar,
        // but the dirty flag is also covered by region_commit below).
        assert_eq!(p.read_vec(&a, 0, 2), vec![5, 6]);
    }

    #[test]
    fn region_commit_is_explicit_writeback() {
        let (mut p, obj) = mempar(16);
        let a: SharedArray<i64> = SharedArray::from_raw(obj, 2, SharingType::WriteMany);
        let mut r = p.region(&a, 0..2);
        r.as_mut_slice().copy_from_slice(&[1, 2]);
        r.commit();
        assert_eq!(p.read_vec(&a, 0, 2), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn typed_read_past_end_panics() {
        let (mut p, obj) = mempar(64);
        let a: SharedArray<f64> = SharedArray::from_raw(obj, 8, SharingType::WriteMany);
        let mut out = [0.0; 4];
        p.read_into(&a, 6, &mut out);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn typed_write_past_end_panics() {
        let (mut p, obj) = mempar(64);
        let a: SharedArray<f64> = SharedArray::from_raw(obj, 8, SharingType::WriteMany);
        p.write_from(&a, 7, &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "inverted region")]
    fn inverted_region_panics() {
        let (mut p, obj) = mempar(64);
        let a: SharedArray<f64> = SharedArray::from_raw(obj, 8, SharingType::WriteMany);
        #[allow(clippy::reversed_empty_ranges)]
        let _ = p.region(&a, 5..2);
    }

    #[allow(deprecated)]
    mod parext_shim {
        use super::super::*;
        use super::mempar;

        #[test]
        fn f64_roundtrip() {
            let (mut p, obj) = mempar(64);
            p.write_f64(obj, 3, -2.5);
            assert_eq!(p.read_f64(obj, 3), -2.5);
            p.write_f64s(obj, 0, &[1.0, 2.0, 3.0]);
            assert_eq!(p.read_f64s(obj, 0, 4), vec![1.0, 2.0, 3.0, -2.5]);
        }

        #[test]
        fn i64_and_u8_roundtrip() {
            let (mut p, obj) = mempar(64);
            p.write_i64s(obj, 1, &[7, -9]);
            assert_eq!(p.read_i64s(obj, 1, 2), vec![7, -9]);
            assert_eq!(p.read_i64(obj, 2), -9);
            p.write_u8(obj, 0, 200);
            assert_eq!(p.read_u8(obj, 0), 200);
        }

        #[test]
        fn u8_bulk_is_symmetric() {
            let (mut p, obj) = mempar(16);
            p.write_u8s(obj, 4, &[1, 2, 3, 4]);
            let mut out = [0u8; 4];
            p.read_u8s(obj, 4, &mut out);
            assert_eq!(out, [1, 2, 3, 4]);
        }

        #[test]
        fn fetch_add_on_mempar() {
            let (mut p, obj) = mempar(8);
            assert_eq!(p.fetch_add(obj, 0, 5), 0);
            assert_eq!(p.fetch_add(obj, 0, 2), 5);
            assert_eq!(p.read_i64(obj, 0), 7);
        }
    }
}

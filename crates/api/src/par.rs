//! The application-facing shared-memory interface.

use munin_sim::ThreadCtx;
use munin_types::{BarrierId, ByteRange, CondId, LockId, ObjectId};

/// What a parallel program may do: shared-object access plus explicit
/// synchronization. One implementation runs on the simulator (Munin or Ivy
/// servers underneath), another on native threads.
pub trait Par {
    /// This thread's index (0-based, dense).
    fn self_id(&self) -> usize;
    /// Total threads in the program.
    fn n_threads(&self) -> usize;
    /// Read a byte range of a shared object.
    fn read(&mut self, obj: ObjectId, range: ByteRange) -> Vec<u8>;
    /// Write bytes at an offset of a shared object.
    fn write(&mut self, obj: ObjectId, start: u32, data: Vec<u8>);
    /// Atomic fetch-and-add on the little-endian i64 at `offset`.
    fn fetch_add(&mut self, obj: ObjectId, offset: u32, delta: i64) -> i64;
    fn lock(&mut self, lock: LockId);
    fn unlock(&mut self, lock: LockId);
    fn barrier(&mut self, barrier: BarrierId);
    /// Monitor wait: release `lock`, sleep until signalled, re-acquire.
    /// (Unsupported by the Ivy backend, true to the original system.)
    fn cond_wait(&mut self, cond: CondId, lock: LockId);
    /// Wake one (`broadcast=false`) or all waiters. Caller holds the lock.
    fn cond_signal(&mut self, cond: CondId, broadcast: bool);
    /// Mark a program phase boundary (phase 0 = initialization).
    fn phase(&mut self, phase: u32);
    /// Model `us` microseconds of local computation.
    fn compute(&mut self, us: u64);
    /// Flush this thread's delayed updates (no-op on strict backends).
    fn flush(&mut self);
}

impl Par for ThreadCtx {
    fn self_id(&self) -> usize {
        self.thread_id().index()
    }
    fn n_threads(&self) -> usize {
        ThreadCtx::n_threads(self)
    }
    fn read(&mut self, obj: ObjectId, range: ByteRange) -> Vec<u8> {
        ThreadCtx::read(self, obj, range)
    }
    fn write(&mut self, obj: ObjectId, start: u32, data: Vec<u8>) {
        ThreadCtx::write(self, obj, start, data)
    }
    fn fetch_add(&mut self, obj: ObjectId, offset: u32, delta: i64) -> i64 {
        ThreadCtx::fetch_add(self, obj, offset, delta)
    }
    fn lock(&mut self, lock: LockId) {
        ThreadCtx::lock(self, lock)
    }
    fn unlock(&mut self, lock: LockId) {
        ThreadCtx::unlock(self, lock)
    }
    fn barrier(&mut self, barrier: BarrierId) {
        ThreadCtx::barrier(self, barrier)
    }
    fn cond_wait(&mut self, cond: CondId, lock: LockId) {
        ThreadCtx::cond_wait(self, cond, lock)
    }
    fn cond_signal(&mut self, cond: CondId, broadcast: bool) {
        self.op(munin_sim::DsmOp::CondSignal { cond, broadcast }).expect_unit()
    }
    fn phase(&mut self, phase: u32) {
        ThreadCtx::phase(self, phase)
    }
    fn compute(&mut self, us: u64) {
        ThreadCtx::compute(self, us)
    }
    fn flush(&mut self) {
        ThreadCtx::flush(self)
    }
}

/// Typed views over shared objects: the numeric element accessors the six
/// applications use. Blanket-implemented for every [`Par`].
pub trait ParExt: Par {
    fn read_f64(&mut self, obj: ObjectId, idx: u32) -> f64 {
        let bytes = self.read(obj, ByteRange::new(idx * 8, 8));
        f64::from_le_bytes(bytes.try_into().expect("8 bytes"))
    }

    fn write_f64(&mut self, obj: ObjectId, idx: u32, v: f64) {
        self.write(obj, idx * 8, v.to_le_bytes().to_vec());
    }

    /// Read `n` consecutive f64 elements starting at element `start`.
    fn read_f64s(&mut self, obj: ObjectId, start: u32, n: u32) -> Vec<f64> {
        let bytes = self.read(obj, ByteRange::new(start * 8, n * 8));
        bytes.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().expect("8"))).collect()
    }

    /// Write consecutive f64 elements starting at element `start`.
    fn write_f64s(&mut self, obj: ObjectId, start: u32, vals: &[f64]) {
        let mut bytes = Vec::with_capacity(vals.len() * 8);
        for v in vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.write(obj, start * 8, bytes);
    }

    fn read_i64(&mut self, obj: ObjectId, idx: u32) -> i64 {
        let bytes = self.read(obj, ByteRange::new(idx * 8, 8));
        i64::from_le_bytes(bytes.try_into().expect("8 bytes"))
    }

    fn write_i64(&mut self, obj: ObjectId, idx: u32, v: i64) {
        self.write(obj, idx * 8, v.to_le_bytes().to_vec());
    }

    fn read_i64s(&mut self, obj: ObjectId, start: u32, n: u32) -> Vec<i64> {
        let bytes = self.read(obj, ByteRange::new(start * 8, n * 8));
        bytes.chunks_exact(8).map(|c| i64::from_le_bytes(c.try_into().expect("8"))).collect()
    }

    fn write_i64s(&mut self, obj: ObjectId, start: u32, vals: &[i64]) {
        let mut bytes = Vec::with_capacity(vals.len() * 8);
        for v in vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.write(obj, start * 8, bytes);
    }

    fn read_u8(&mut self, obj: ObjectId, idx: u32) -> u8 {
        self.read(obj, ByteRange::new(idx, 1))[0]
    }

    fn write_u8(&mut self, obj: ObjectId, idx: u32, v: u8) {
        self.write(obj, idx, vec![v]);
    }
}

impl<T: Par + ?Sized> ParExt for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// A toy in-memory Par for testing the typed extension methods.
    struct MemPar {
        objs: HashMap<ObjectId, Vec<u8>>,
    }

    impl Par for MemPar {
        fn self_id(&self) -> usize {
            0
        }
        fn n_threads(&self) -> usize {
            1
        }
        fn read(&mut self, obj: ObjectId, range: ByteRange) -> Vec<u8> {
            self.objs[&obj][range.start as usize..range.end() as usize].to_vec()
        }
        fn write(&mut self, obj: ObjectId, start: u32, data: Vec<u8>) {
            let o = self.objs.get_mut(&obj).unwrap();
            o[start as usize..start as usize + data.len()].copy_from_slice(&data);
        }
        fn fetch_add(&mut self, obj: ObjectId, offset: u32, delta: i64) -> i64 {
            let old = self.read_i64(obj, offset / 8);
            self.write_i64(obj, offset / 8, old + delta);
            old
        }
        fn lock(&mut self, _: LockId) {}
        fn unlock(&mut self, _: LockId) {}
        fn barrier(&mut self, _: BarrierId) {}
        fn cond_wait(&mut self, _: CondId, _: LockId) {}
        fn cond_signal(&mut self, _: CondId, _: bool) {}
        fn phase(&mut self, _: u32) {}
        fn compute(&mut self, _: u64) {}
        fn flush(&mut self) {}
    }

    #[test]
    fn f64_roundtrip() {
        let obj = ObjectId(0);
        let mut p = MemPar { objs: HashMap::from([(obj, vec![0u8; 64])]) };
        p.write_f64(obj, 3, -2.5);
        assert_eq!(p.read_f64(obj, 3), -2.5);
        p.write_f64s(obj, 0, &[1.0, 2.0, 3.0]);
        assert_eq!(p.read_f64s(obj, 0, 4), vec![1.0, 2.0, 3.0, -2.5]);
    }

    #[test]
    fn i64_and_u8_roundtrip() {
        let obj = ObjectId(0);
        let mut p = MemPar { objs: HashMap::from([(obj, vec![0u8; 64])]) };
        p.write_i64s(obj, 1, &[7, -9]);
        assert_eq!(p.read_i64s(obj, 1, 2), vec![7, -9]);
        assert_eq!(p.read_i64(obj, 2), -9);
        p.write_u8(obj, 0, 200);
        assert_eq!(p.read_u8(obj, 0), 200);
    }

    #[test]
    fn fetch_add_on_mempar() {
        let obj = ObjectId(0);
        let mut p = MemPar { objs: HashMap::from([(obj, vec![0u8; 8])]) };
        assert_eq!(p.fetch_add(obj, 0, 5), 0);
        assert_eq!(p.fetch_add(obj, 0, 2), 5);
        assert_eq!(p.read_i64(obj, 0), 7);
    }
}

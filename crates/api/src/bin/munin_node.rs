//! `munin-node` — one node of a distributed run.
//!
//! Spawned by the coordinator (`munin_tcp::TcpWorldBuilder`); not meant to
//! be started by hand. The process connects its control stream to the
//! coordinator, receives the run configuration — including the protocol
//! tag, resolved against this binary's registry of linked protocols — and
//! then runs its node's coherence server until told to finish.
//!
//! The binary lives in `munin-api` (not the fabric crate) because this is
//! the one place that must link every protocol: the fabric stays
//! protocol-agnostic, and adding a protocol means adding one registry
//! entry here.
//!
//! ```text
//! munin-node --connect 127.0.0.1:<port> --node <index>
//! ```

fn main() {
    let mut args = std::env::args().skip(1);
    let mut connect: Option<String> = None;
    let mut node: Option<u16> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => connect = args.next(),
            "--node" => node = args.next().and_then(|v| v.parse().ok()),
            other => {
                eprintln!("munin-node: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    let (Some(connect), Some(node)) = (connect, node) else {
        eprintln!("usage: munin-node --connect <addr> --node <index>");
        std::process::exit(2);
    };
    std::process::exit(munin_tcp::node::run_node(&connect, node, &munin_api::node_protos()));
}

//! # munin-api
//!
//! The portable DSM programming interface — the role Presto plays in the
//! paper ("programmers write their programs using a shared memory model,
//! inserting declarations to provide object-specific information to the
//! Munin runtime system").
//!
//! Applications are written once against the [`Par`] trait and run
//! unmodified on three backends:
//!
//! * **Munin** — the type-specific coherence runtime (`munin-core`) on the
//!   deterministic simulator;
//! * **Ivy** — the page-based strictly-coherent baseline (`munin-ivy`) on
//!   the same simulator;
//! * **Native** — real OS threads against true shared memory (the "Sequent
//!   Symmetry" reference), used to validate results and compare behaviour.
//!
//! The [`harness`] builds the world, places objects and threads, runs the
//! program, and returns the traffic/timing report experiments consume.
//!
//! ```
//! use munin_api::{Backend, Par, ParExt, ProgramBuilder};
//! use munin_types::{MuninConfig, SharingType};
//!
//! let mut p = ProgramBuilder::new(2);
//! let table = p.object("table", 64, SharingType::WriteOnce, 0);
//! let sums = p.object("sums", 16, SharingType::Result, 0);
//! let bar = p.barrier(0, 2);
//! for t in 0..2 {
//!     p.thread(t, move |par: &mut dyn Par| {
//!         if par.self_id() == 0 {
//!             par.write_f64s(table, 0, &[2.0; 8]);
//!             par.phase(1); // publish the write-once table
//!         }
//!         par.barrier(bar);
//!         let v = par.read_f64(table, par.self_id() as u32); // replicated read
//!         par.write_f64(sums, par.self_id() as u32, v * 10.0); // delayed update
//!         par.barrier(bar);
//!         if par.self_id() == 0 {
//!             assert_eq!(par.read_f64s(sums, 0, 2), vec![20.0, 20.0]);
//!         }
//!     });
//! }
//! let outcome = p.run(Backend::Munin(MuninConfig::default()));
//! outcome.assert_clean();
//! assert!(outcome.report().stats.messages > 0); // real coherence traffic
//! ```

pub mod harness;
pub mod monitor;
pub mod native;
pub mod par;

pub use harness::{Backend, Outcome, ProgramBuilder};
pub use monitor::Monitor;
pub use par::{Par, ParExt};

//! # munin-api
//!
//! The portable DSM programming interface — the role Presto plays in the
//! paper ("programmers write their programs using a shared memory model,
//! inserting declarations to provide object-specific information to the
//! Munin runtime system").
//!
//! Applications declare **typed shared objects** — [`munin_types::SharedArray`]
//! and [`munin_types::SharedScalar`] handles that carry the element type, the
//! length and the [`munin_types::SharingType`] annotation — and access them
//! through the [`ParTyped`] methods (`read_into` / `write_from` / `get` /
//! `set` / `load` / `store` / [`ParTyped::region`]). Out-of-bounds or
//! type-confused accesses fail right at the call site with a precise message;
//! bulk access into caller-owned buffers is zero-copy down to the backend.
//!
//! Programs are written once against the object-safe [`Par`] contract and run
//! unmodified on three backends:
//!
//! * **Munin** — the type-specific coherence runtime (`munin-core`) on the
//!   deterministic simulator;
//! * **Ivy** — the page-based strictly-coherent baseline (`munin-ivy`) on the
//!   same simulator;
//! * **Native** — real OS threads against true shared memory (the "Sequent
//!   Symmetry" reference), used to validate results and compare behaviour.
//!
//! The [`harness`] builds the world, places objects and threads, runs the
//! program, and returns the traffic/timing report experiments consume.
//!
//! ```
//! use munin_api::{Backend, Par, ParTyped, ProgramBuilder};
//! use munin_types::{MuninConfig, SharingType};
//!
//! let mut p = ProgramBuilder::new(2);
//! let table = p.array::<f64>("table", 8, SharingType::WriteOnce, 0);
//! let sums = p.array::<f64>("sums", 2, SharingType::Result, 0);
//! let bar = p.barrier(0, 2);
//! for t in 0..2 {
//!     p.thread(t, move |par: &mut dyn Par| {
//!         if par.self_id() == 0 {
//!             par.write_from(&table, 0, &[2.0; 8]);
//!             par.phase(1); // publish the write-once table
//!         }
//!         par.barrier(bar);
//!         let v = par.get(&table, par.self_id() as u32); // replicated read
//!         par.set(&sums, par.self_id() as u32, v * 10.0); // delayed update
//!         par.barrier(bar);
//!         if par.self_id() == 0 {
//!             assert_eq!(par.read_all(&sums), vec![20.0, 20.0]);
//!         }
//!     });
//! }
//! let outcome = p.run(Backend::Munin(MuninConfig::default()));
//! outcome.assert_clean();
//! assert!(outcome.report().stats.messages > 0); // real coherence traffic
//! ```

pub mod harness;
pub mod monitor;
pub mod native;
pub mod par;

/// The protocol registry linked into the `munin-node` binary: every
/// protocol a distributed run may ask a child process to speak. This crate
/// is the one place that names all protocols — the TCP fabric dispatches
/// children purely by [`munin_proto::Protocol::TAG`], so adding a protocol
/// to the fabric means adding one `node_entry` line here.
pub fn node_protos() -> Vec<(u8, munin_tcp::node::NodeRunFn)> {
    use munin_tcp::node::node_entry;
    let protos = vec![
        node_entry::<munin_core::MuninProto>(),
        node_entry::<munin_ivy::IvyProto>(),
        node_entry::<munin_tardis::TardisProto>(),
    ];
    for (i, (a, _)) in protos.iter().enumerate() {
        assert!(protos.iter().skip(i + 1).all(|(b, _)| a != b), "duplicate protocol wire tag {a}");
    }
    protos
}

pub use harness::{Backend, Outcome, ProgramBuilder};
pub use monitor::Monitor;
pub use munin_obs::{MetricsSnapshot, OpClass, OpSpan};
pub use munin_rt::{ComputeMode, RtTuning, SpinWait};
pub use munin_tcp::{tcp_support, TcpTuning};
pub use munin_types::{
    Element, OpToken, SharedArray, SharedScalar, Telemetry, TokenState, TokenValue,
};
#[allow(deprecated)]
pub use par::ParExt;
pub use par::{Par, ParTyped, Region};

//! The native shared-memory backend: real OS threads, real locks — the
//! "Sequent Symmetry" the paper's study programs originally ran on.
//!
//! Used as the semantic reference (the same application code must produce
//! the same results here as on either DSM backend) and for wall-clock
//! comparison. There is no network and no coherence: objects are plain
//! byte vectors behind reader-writer locks.

use crate::par::Par;
use munin_types::{BarrierId, ByteRange, CondId, LockId, ObjectId};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::HashMap;
use std::sync::{Arc, Barrier};

/// A manually lockable mutex (guards can't span `Par::lock`/`Par::unlock`
/// calls, so we implement holding explicitly).
#[derive(Default)]
struct HeldLock {
    held: Mutex<bool>,
    cv: Condvar,
}

impl HeldLock {
    fn acquire(&self) {
        let mut g = self.held.lock();
        while *g {
            self.cv.wait(&mut g);
        }
        *g = true;
    }

    fn release(&self) {
        let mut g = self.held.lock();
        *g = false;
        self.cv.notify_one();
    }
}

/// A native condition variable: a generation counter + condvar. Every
/// signal bumps the generation and wakes everyone (Mesa semantics permit
/// spurious wakeups; predicates are re-tested).
#[derive(Default)]
struct NativeCond {
    generation: Mutex<u64>,
    cv: Condvar,
}

/// Shared state of a native run.
pub struct NativeWorld {
    objects: HashMap<ObjectId, RwLock<Vec<u8>>>,
    locks: Vec<HeldLock>,
    barriers: Vec<Barrier>,
    conds: Vec<NativeCond>,
    n_threads: usize,
}

impl NativeWorld {
    pub fn new(
        objects: impl IntoIterator<Item = (ObjectId, usize)>,
        n_locks: usize,
        barrier_counts: &[usize],
        n_conds: usize,
        n_threads: usize,
    ) -> Arc<Self> {
        Arc::new(NativeWorld {
            objects: objects
                .into_iter()
                .map(|(id, size)| (id, RwLock::new(vec![0u8; size])))
                .collect(),
            locks: (0..n_locks).map(|_| HeldLock::default()).collect(),
            barriers: barrier_counts.iter().map(|c| Barrier::new(*c)).collect(),
            conds: (0..n_conds).map(|_| NativeCond::default()).collect(),
            n_threads,
        })
    }

    /// Read an object's final bytes after the run (result collection).
    pub fn snapshot(&self, obj: ObjectId) -> Vec<u8> {
        self.objects[&obj].read().clone()
    }
}

/// Per-thread handle implementing [`Par`] over the native world.
pub struct NativeCtx {
    world: Arc<NativeWorld>,
    id: usize,
}

impl NativeCtx {
    pub fn new(world: Arc<NativeWorld>, id: usize) -> Self {
        NativeCtx { world, id }
    }
}

impl Par for NativeCtx {
    fn self_id(&self) -> usize {
        self.id
    }

    fn n_threads(&self) -> usize {
        self.world.n_threads
    }

    fn read_raw_into(&mut self, obj: ObjectId, range: ByteRange, out: &mut [u8]) {
        let g = self.world.objects[&obj].read();
        out.copy_from_slice(&g[range.start as usize..range.end() as usize]);
    }

    fn write_raw(&mut self, obj: ObjectId, start: u32, data: &[u8]) {
        let mut g = self.world.objects[&obj].write();
        g[start as usize..start as usize + data.len()].copy_from_slice(data);
    }

    fn fetch_add(&mut self, obj: ObjectId, offset: u32, delta: i64) -> i64 {
        let mut g = self.world.objects[&obj].write();
        let s = offset as usize;
        let old = i64::from_le_bytes(g[s..s + 8].try_into().expect("8 bytes"));
        g[s..s + 8].copy_from_slice(&old.wrapping_add(delta).to_le_bytes());
        old
    }

    fn lock(&mut self, lock: LockId) {
        self.world.locks[lock.index()].acquire();
    }

    fn unlock(&mut self, lock: LockId) {
        self.world.locks[lock.index()].release();
    }

    fn barrier(&mut self, barrier: BarrierId) {
        self.world.barriers[barrier.index()].wait();
    }

    fn cond_wait(&mut self, cond: CondId, lock: LockId) {
        let nc = &self.world.conds[cond.index()];
        // Read the generation while still inside the monitor: a signal can
        // only happen while the monitor lock is held, so no wakeup between
        // this read and the wait below can be missed.
        let gen = *nc.generation.lock();
        self.world.locks[lock.index()].release();
        {
            let mut g = nc.generation.lock();
            while *g == gen {
                nc.cv.wait(&mut g);
            }
        }
        self.world.locks[lock.index()].acquire();
    }

    fn cond_signal(&mut self, cond: CondId, _broadcast: bool) {
        let nc = &self.world.conds[cond.index()];
        *nc.generation.lock() += 1;
        nc.cv.notify_all();
    }

    fn phase(&mut self, _phase: u32) {}

    fn compute(&mut self, _us: u64) {
        // Native runs do real work; modelled compute time is a no-op.
    }

    fn flush(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::ParTyped;
    use munin_types::{SharedArray, SharedScalar, SharingType};

    #[test]
    fn native_world_basics() {
        let w = NativeWorld::new([(ObjectId(0), 64)], 1, &[2], 0, 2);
        let arr: SharedArray<f64> = SharedArray::from_raw(ObjectId(0), 8, SharingType::WriteMany);
        let mut a = NativeCtx::new(w.clone(), 0);
        a.set(&arr, 2, 9.0);
        assert_eq!(a.get(&arr, 2), 9.0);
        assert_eq!(a.self_id(), 0);
        assert_eq!(a.n_threads(), 2);
        assert_eq!(w.snapshot(ObjectId(0)).len(), 64);
    }

    #[test]
    fn native_locks_exclude_and_barriers_meet() {
        let w = NativeWorld::new([(ObjectId(0), 8)], 1, &[4], 0, 4);
        let ctr: SharedScalar<i64> =
            SharedScalar::from_raw(ObjectId(0), SharingType::GeneralReadWrite);
        let mut joins = Vec::new();
        for i in 0..4 {
            let w = w.clone();
            joins.push(std::thread::spawn(move || {
                let mut ctx = NativeCtx::new(w, i);
                for _ in 0..100 {
                    ctx.lock(LockId(0));
                    let v = ctx.load(&ctr);
                    ctx.store(&ctr, v + 1);
                    ctx.unlock(LockId(0));
                }
                ctx.barrier(BarrierId(0));
                // After the barrier everyone must see the final count.
                assert_eq!(ctx.load(&ctr), 400);
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    }

    #[test]
    fn native_fetch_add_is_atomic() {
        let w = NativeWorld::new([(ObjectId(0), 8)], 0, &[], 0, 8);
        let mut joins = Vec::new();
        for i in 0..8 {
            let w = w.clone();
            joins.push(std::thread::spawn(move || {
                let mut ctx = NativeCtx::new(w, i);
                let mut seen = Vec::new();
                for _ in 0..50 {
                    seen.push(ctx.fetch_add(ObjectId(0), 0, 1));
                }
                seen
            }));
        }
        let mut all: Vec<i64> = joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..400).collect::<Vec<i64>>());
    }
}

//! The program harness: declare shared objects and synchronization objects,
//! spawn threads, pick a backend, run.
//!
//! The same [`ProgramBuilder`] program runs on Munin (type-specific
//! coherence), Ivy (page-based strict coherence) or native threads; the
//! experiments in `munin-bench` are all phrased as "build program once, run
//! under several backends/configurations, compare reports".

use crate::native::{NativeCtx, NativeWorld};
use crate::par::Par;
use munin_core::MuninProto;
use munin_ivy::IvyProto;
use munin_proto::Protocol;
use munin_rt::{RtCtx, RtTuning, RtWorldBuilder};
use munin_sim::{RunReport, ThreadCtx, Tracer, TransportConfig, WorldBuilder};
use munin_tardis::TardisProto;
use munin_tcp::{TcpTuning, TcpWorldBuilder, TestFault};
use munin_types::{
    BarrierDecl, BarrierId, CondDecl, CondId, Element, IvyConfig, LockDecl, LockId, MuninConfig,
    NodeId, ObjectDecl, ObjectId, SharedArray, SharedScalar, SharingType, SyncDecls, TardisConfig,
};

/// Which runtime executes the program.
#[derive(Debug, Clone)]
pub enum Backend {
    /// The Munin runtime on the deterministic simulator.
    Munin(MuninConfig),
    /// The Ivy baseline on the deterministic simulator.
    Ivy(IvyConfig),
    /// The Munin runtime on the real-time kernel: one OS thread per node
    /// server, truly parallel app threads, wall-clock measurements.
    MuninRt(MuninConfig),
    /// The Ivy baseline on the real-time kernel.
    IvyRt(IvyConfig),
    /// The Munin runtime on the multi-process TCP fabric: one OS process
    /// per node (`munin-node` children), protocol messages as
    /// length-prefixed frames on one stream per node pair, application
    /// threads hosted by the coordinator. Probe
    /// [`tcp_support`](munin_tcp::tcp_support) before selecting this in an
    /// environment that may lack loopback sockets or the node binary.
    MuninTcp(MuninConfig),
    /// The Ivy baseline on the TCP fabric.
    IvyTcp(IvyConfig),
    /// Tardis timestamp-lease coherence on the deterministic simulator.
    Tardis(TardisConfig),
    /// Tardis on the real-time kernel.
    TardisRt(TardisConfig),
    /// Tardis on the TCP fabric.
    TardisTcp(TardisConfig),
    /// Real threads, real shared memory (semantic reference).
    Native,
}

/// Which kernel a backend runs its servers on. Every non-native backend is
/// a (protocol × fabric) product; this is the fabric axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fabric {
    /// The deterministic virtual-time simulator.
    Sim = 0,
    /// The in-process real-time kernel (one OS thread per node server).
    Rt = 1,
    /// The multi-process TCP fabric (one OS process per node).
    Tcp = 2,
}

impl Backend {
    /// The fabric axis of the (protocol × fabric) decomposition; `None`
    /// for the native reference backend.
    fn fabric(&self) -> Option<Fabric> {
        match self {
            Backend::Munin(_) | Backend::Ivy(_) | Backend::Tardis(_) => Some(Fabric::Sim),
            Backend::MuninRt(_) | Backend::IvyRt(_) | Backend::TardisRt(_) => Some(Fabric::Rt),
            Backend::MuninTcp(_) | Backend::IvyTcp(_) | Backend::TardisTcp(_) => Some(Fabric::Tcp),
            Backend::Native => None,
        }
    }

    /// The protocol axis: the protocol's per-fabric backend-name table
    /// ([`Protocol::BACKEND_NAMES`]). `None` for native.
    fn proto_names(&self) -> Option<[&'static str; 3]> {
        match self {
            Backend::Munin(_) | Backend::MuninRt(_) | Backend::MuninTcp(_) => {
                Some(MuninProto::BACKEND_NAMES)
            }
            Backend::Ivy(_) | Backend::IvyRt(_) | Backend::IvyTcp(_) => {
                Some(IvyProto::BACKEND_NAMES)
            }
            Backend::Tardis(_) | Backend::TardisRt(_) | Backend::TardisTcp(_) => {
                Some(TardisProto::BACKEND_NAMES)
            }
            Backend::Native => None,
        }
    }

    /// Default lossless transport matching the backend's cost model. The
    /// real-time backends use OS channels, not the simulated transport, so
    /// (like Native) the value is unused for them.
    fn transport(&self) -> TransportConfig {
        match self {
            Backend::Munin(c) => TransportConfig::lossless(c.cost.clone()),
            Backend::Ivy(c) => TransportConfig::lossless(c.cost.clone()),
            Backend::Tardis(c) => TransportConfig::lossless(c.cost.clone()),
            _ => TransportConfig::default(),
        }
    }

    /// Short display name, used in reports and error messages. Sourced
    /// from each protocol's [`Protocol::BACKEND_NAMES`], so a protocol's
    /// naming lives in its own crate.
    pub fn name(&self) -> &'static str {
        match (self.proto_names(), self.fabric()) {
            (Some(names), Some(fabric)) => names[fabric as usize],
            _ => "Native",
        }
    }

    /// Does this backend run on a wall-clock kernel (in-process rt or the
    /// multi-process TCP fabric)?
    pub fn is_realtime(&self) -> bool {
        matches!(self.fabric(), Some(Fabric::Rt | Fabric::Tcp))
    }

    /// Does this backend span multiple OS processes?
    pub fn is_distributed(&self) -> bool {
        self.fabric() == Some(Fabric::Tcp)
    }

    /// Every (protocol × fabric) backend with default configs, in
    /// protocol-major order. The one list the cross-backend tests and
    /// traffic benches iterate — a new protocol shows up everywhere by
    /// extending this (and [`Backend::parse`]), nowhere else. `Native` is
    /// excluded: it is the semantic reference, not a protocol backend, and
    /// callers that want it add it explicitly. Distributed entries are
    /// included; gate them with [`Backend::is_distributed`] +
    /// [`munin_tcp::tcp_support`] where the environment may lack them.
    pub fn matrix() -> Vec<Backend> {
        vec![
            Backend::Munin(MuninConfig::default()),
            Backend::MuninRt(MuninConfig::default()),
            Backend::MuninTcp(MuninConfig::default()),
            Backend::Ivy(IvyConfig::default()),
            Backend::IvyRt(IvyConfig::default()),
            Backend::IvyTcp(IvyConfig::default()),
            Backend::Tardis(TardisConfig::default()),
            Backend::TardisRt(TardisConfig::default()),
            Backend::TardisTcp(TardisConfig::default()),
        ]
    }

    /// Parse a backend name (as printed by [`Backend::name`], or the
    /// kebab-case CLI spelling like `munin-tcp`/`tardis-rt`) into a
    /// default-config backend. Drives the study/bench CLIs.
    pub fn parse(name: &str) -> Option<Backend> {
        if name.eq_ignore_ascii_case("native") {
            return Some(Backend::Native);
        }
        let canon: String = name.chars().filter(|c| *c != '-' && *c != '_').collect();
        Backend::matrix().into_iter().find(|b| b.name().eq_ignore_ascii_case(&canon))
    }
}

/// Result of a run.
pub struct Outcome {
    /// Simulation report (None for native runs).
    pub report: Option<RunReport>,
    /// Wall-clock duration of the run (host time; only meaningful for
    /// native runs).
    pub wall: std::time::Duration,
    /// Which backend produced this outcome (for diagnostics).
    backend: &'static str,
}

impl Outcome {
    /// The simulation report; panics (naming the backend) if the run has
    /// none. Use [`Outcome::try_report`] when the backend may be native.
    pub fn report(&self) -> &RunReport {
        match &self.report {
            Some(r) => r,
            None => panic!(
                "no simulation report: this program ran on the {} backend, which executes \
                 real threads and produces only wall-clock timing — use try_report() (or \
                 Outcome::wall) for backend-agnostic code",
                self.backend
            ),
        }
    }

    /// The simulation report, if the backend produced one (native runs do
    /// not).
    pub fn try_report(&self) -> Option<&RunReport> {
        self.report.as_ref()
    }

    /// Name of the backend that produced this outcome.
    pub fn backend_name(&self) -> &'static str {
        self.backend
    }

    /// The run's telemetry snapshot, if the backend records one (wall-clock
    /// fabrics with `RtTuning::telemetry` not `Off`; the simulator and
    /// native backends never do).
    pub fn metrics(&self) -> Option<&munin_obs::MetricsSnapshot> {
        self.report.as_ref().and_then(|r| r.metrics.as_ref())
    }

    /// Panic unless the run was clean (native runs are clean if they joined).
    pub fn assert_clean(&self) -> &Self {
        if let Some(r) = &self.report {
            r.assert_clean();
        }
        self
    }
}

type ThreadBody = Box<dyn FnOnce(&mut dyn Par) + Send + 'static>;

/// Builder for a portable parallel program.
pub struct ProgramBuilder {
    n_nodes: usize,
    objects: Vec<ObjectDecl>,
    locks: Vec<LockDecl>,
    barriers: Vec<BarrierDecl>,
    conds: Vec<CondDecl>,
    threads: Vec<(NodeId, ThreadBody)>,
    rt_tuning: RtTuning,
    tcp_fault: Option<TestFault>,
    coverage: Option<std::sync::Arc<munin_obs::CoverageMap>>,
}

impl ProgramBuilder {
    pub fn new(n_nodes: usize) -> Self {
        assert!(n_nodes > 0);
        ProgramBuilder {
            n_nodes,
            objects: Vec::new(),
            locks: Vec::new(),
            barriers: Vec::new(),
            conds: Vec::new(),
            threads: Vec::new(),
            rt_tuning: RtTuning::default(),
            tcp_fault: None,
            coverage: None,
        }
    }

    /// Tuning for the real-time backends (compute mode, stall timeout);
    /// ignored by the simulator and native backends.
    pub fn rt_tuning(&mut self, tuning: RtTuning) -> &mut Self {
        self.rt_tuning = tuning;
        self
    }

    /// Inject a process-level fault (node kill, half-closed stream) on the
    /// TCP backends — the fault-campaign hook for real-fabric failures.
    /// Ignored by every other backend.
    pub fn inject_tcp_fault(&mut self, fault: TestFault) -> &mut Self {
        self.tcp_fault = Some(fault);
        self
    }

    /// Attach a protocol-state coverage recorder; the run's servers note
    /// (protocol, object, state, event) transitions into it on every
    /// backend (sim, rt, tcp). Ignored by the native backend, which has no
    /// protocol underneath. `None` (the default) keeps the note sites to a
    /// single predicted branch.
    pub fn coverage(&mut self, map: std::sync::Arc<munin_obs::CoverageMap>) -> &mut Self {
        self.coverage = Some(map);
        self
    }

    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Declare a typed shared array of `len` elements of `T`, homed on node
    /// `home`. The returned handle carries the element type, length and
    /// sharing annotation, so every access through it is bounds- and
    /// type-checked at the API layer.
    #[track_caller]
    pub fn array<T: Element>(
        &mut self,
        name: &str,
        len: u32,
        sharing: SharingType,
        home: usize,
    ) -> SharedArray<T> {
        let bytes = (len as u64).checked_mul(T::SIZE as u64).filter(|b| *b <= u32::MAX as u64);
        let bytes =
            bytes.unwrap_or_else(|| panic!("array `{name}`: {len} x {} overflows u32", T::NAME));
        let id = self.object(name, bytes as u32, sharing, home);
        SharedArray::from_raw(id, len, sharing)
    }

    /// Declare a typed shared array from a declaration template (see
    /// [`ObjectDecl::template`]) — for lock-associated migratory arrays and
    /// eager producer-consumer arrays. The template's id, size and home are
    /// filled in here.
    #[track_caller]
    pub fn array_decl<T: Element>(
        &mut self,
        mut decl: ObjectDecl,
        len: u32,
        home: usize,
    ) -> SharedArray<T> {
        let bytes = (len as u64).checked_mul(T::SIZE as u64).filter(|b| *b <= u32::MAX as u64);
        decl.size = bytes
            .unwrap_or_else(|| panic!("array `{}`: {len} x {} overflows u32", decl.name, T::NAME))
            as u32;
        let sharing = decl.sharing;
        let id = self.object_decl(decl, home);
        SharedArray::from_raw(id, len, sharing)
    }

    /// Declare a typed shared scalar of `T`, homed on node `home`.
    pub fn scalar<T: Element>(
        &mut self,
        name: &str,
        sharing: SharingType,
        home: usize,
    ) -> SharedScalar<T> {
        let id = self.object(name, T::SIZE as u32, sharing, home);
        SharedScalar::from_raw(id, sharing)
    }

    /// Declare a typed shared scalar from a declaration template (the
    /// scalar analogue of [`ProgramBuilder::array_decl`]).
    pub fn scalar_decl<T: Element>(
        &mut self,
        mut decl: ObjectDecl,
        home: usize,
    ) -> SharedScalar<T> {
        decl.size = T::SIZE as u32;
        let sharing = decl.sharing;
        let id = self.object_decl(decl, home);
        SharedScalar::from_raw(id, sharing)
    }

    /// Declare an untyped shared object homed on `home` (node index) and
    /// return its raw id. Prefer the typed [`ProgramBuilder::array`] /
    /// [`ProgramBuilder::scalar`]; the raw form remains for runtimes and
    /// experiment plumbing that work below the typed layer.
    pub fn object(&mut self, name: &str, size: u32, sharing: SharingType, home: usize) -> ObjectId {
        let id = ObjectId(self.objects.len() as u64);
        let decl = ObjectDecl::new(id, name, size, sharing, NodeId(home as u16));
        self.objects.push(decl);
        id
    }

    /// Declare a shared object from a full declaration template (for
    /// lock-associated migratory objects and eager producer-consumer
    /// objects). The id and home are overwritten.
    pub fn object_decl(&mut self, mut decl: ObjectDecl, home: usize) -> ObjectId {
        let id = ObjectId(self.objects.len() as u64);
        decl.id = id;
        decl.home = NodeId(home as u16);
        self.objects.push(decl);
        id
    }

    /// Declare a distributed lock homed on `home`.
    pub fn lock(&mut self, home: usize) -> LockId {
        let id = LockId(self.locks.len() as u32);
        self.locks.push(LockDecl { id, home: NodeId(home as u16) });
        id
    }

    /// Declare a barrier with `count` participants, homed on `home`.
    pub fn barrier(&mut self, home: usize, count: u32) -> BarrierId {
        let id = BarrierId(self.barriers.len() as u32);
        self.barriers.push(BarrierDecl { id, home: NodeId(home as u16), count });
        id
    }

    /// Declare a condition variable homed on `home` (Munin backend only).
    pub fn cond(&mut self, home: usize) -> CondId {
        let id = CondId(self.conds.len() as u32);
        self.conds.push(CondDecl { id, home: NodeId(home as u16) });
        id
    }

    /// Spawn a program thread on node `node`.
    pub fn thread(&mut self, node: usize, f: impl FnOnce(&mut dyn Par) + Send + 'static) {
        assert!(node < self.n_nodes, "thread placed on unknown node {node}");
        self.threads.push((NodeId(node as u16), Box::new(f)));
    }

    /// Number of threads spawned so far.
    pub fn n_threads(&self) -> usize {
        self.threads.len()
    }

    /// Snapshot of the declared objects (for the sharing-study classifier,
    /// which compares observed behaviour against the annotations).
    pub fn objects(&self) -> Vec<ObjectDecl> {
        self.objects.clone()
    }

    /// Clear (or set) the eager flag on every producer-consumer object —
    /// the lazy-propagation ablation of experiment E7.
    pub fn set_eager_all(&mut self, eager: bool) {
        for d in &mut self.objects {
            if d.sharing == SharingType::ProducerConsumer {
                d.eager = eager;
            }
        }
    }

    /// Rewrite every object's sharing annotation — the "single static
    /// protocol" ablation (e.g. force everything to `GeneralReadWrite` to
    /// measure what Munin's type-specific dispatch buys). Lock associations
    /// are dropped when the type changes away from `Migratory`.
    pub fn retype_all(&mut self, f: impl Fn(SharingType) -> SharingType) {
        for d in &mut self.objects {
            let nt = f(d.sharing);
            if nt != d.sharing {
                d.sharing = nt;
                if nt != SharingType::Migratory {
                    d.associated_lock = None;
                }
                d.eager = false;
            }
        }
    }

    fn sync_decls(&self) -> SyncDecls {
        SyncDecls {
            locks: self.locks.clone(),
            barriers: self.barriers.clone(),
            conds: self.conds.clone(),
        }
    }

    /// Run on the chosen backend with the default (lossless) transport.
    pub fn run(self, backend: Backend) -> Outcome {
        let transport = backend.transport();
        self.run_with(backend, transport, None)
    }

    /// Run with an explicit transport configuration (loss injection, shared
    /// medium) and/or a tracer.
    pub fn run_with(
        self,
        backend: Backend,
        transport: TransportConfig,
        tracer: Option<Box<dyn Tracer>>,
    ) -> Outcome {
        let started = std::time::Instant::now();
        let backend_name = backend.name();
        match backend {
            Backend::Native => {
                let world = NativeWorld::new(
                    self.objects.iter().map(|d| (d.id, d.size as usize)),
                    self.locks.len(),
                    &self.barriers.iter().map(|b| b.count as usize).collect::<Vec<_>>(),
                    self.conds.len(),
                    self.threads.len(),
                );
                let mut joins = Vec::new();
                for (i, (_node, body)) in self.threads.into_iter().enumerate() {
                    let w = world.clone();
                    joins.push(std::thread::spawn(move || {
                        let mut ctx = NativeCtx::new(w, i);
                        body(&mut ctx);
                    }));
                }
                for j in joins {
                    j.join().expect("native program thread panicked");
                }
                Outcome { report: None, wall: started.elapsed(), backend: backend_name }
            }
            // Every other backend is a (protocol × fabric) product: one
            // generic arm per fabric, protocol plugged in via the
            // `Protocol` seam. Adding a protocol means adding its three
            // `Backend` variants here — no new run logic.
            Backend::Munin(cfg) => {
                self.run_sim_proto::<MuninProto>(cfg, transport, tracer, started, backend_name)
            }
            Backend::Ivy(cfg) => {
                self.run_sim_proto::<IvyProto>(cfg, transport, tracer, started, backend_name)
            }
            Backend::Tardis(cfg) => {
                self.run_sim_proto::<TardisProto>(cfg, transport, tracer, started, backend_name)
            }
            // The real-time backends run over OS channels: simulated-wire
            // features (loss injection, shared medium, tracing) cannot be
            // honored, and silently dropping them would let an experiment
            // measure something other than what it configured — reject
            // loudly instead (in `run_rt_proto`/`run_tcp_proto`).
            Backend::MuninRt(cfg) => {
                self.run_rt_proto::<MuninProto>(cfg, &transport, &tracer, started, backend_name)
            }
            Backend::IvyRt(cfg) => {
                self.run_rt_proto::<IvyProto>(cfg, &transport, &tracer, started, backend_name)
            }
            Backend::TardisRt(cfg) => {
                self.run_rt_proto::<TardisProto>(cfg, &transport, &tracer, started, backend_name)
            }
            // The distributed backends: same thread bodies, same `RtCtx`
            // surface — the world builder forwards remote-node operations
            // over the per-node control streams.
            Backend::MuninTcp(cfg) => {
                self.run_tcp_proto::<MuninProto>(cfg, &transport, &tracer, started, backend_name)
            }
            Backend::IvyTcp(cfg) => {
                self.run_tcp_proto::<IvyProto>(cfg, &transport, &tracer, started, backend_name)
            }
            Backend::TardisTcp(cfg) => {
                self.run_tcp_proto::<TardisProto>(cfg, &transport, &tracer, started, backend_name)
            }
        }
    }

    /// Run protocol `Pr` on the deterministic simulator.
    fn run_sim_proto<Pr: Protocol>(
        self,
        cfg: Pr::Config,
        transport: TransportConfig,
        tracer: Option<Box<dyn Tracer>>,
        started: std::time::Instant,
        backend: &'static str,
    ) -> Outcome {
        let sync = self.sync_decls();
        let n_nodes = self.n_nodes;
        let decls = self.objects.clone();
        let mut b = WorldBuilder::new(n_nodes).transport(transport);
        if let Some(t) = tracer {
            b = b.tracer(t);
        }
        if let Some(map) = self.coverage.clone() {
            b = b.coverage(map);
        }
        for d in &self.objects {
            let id = b.declare(d.clone(), d.home);
            debug_assert_eq!(id, d.id, "builder ids must stay dense");
        }
        for (node, body) in self.threads {
            b.spawn(node, move |ctx: &mut ThreadCtx| body(ctx));
        }
        let servers: Vec<Pr::Server> = (0..n_nodes)
            .map(|i| Pr::server(&cfg, NodeId(i as u16), n_nodes, &decls, &sync))
            .collect();
        let report = b.build(servers).run();
        Outcome { report: Some(report), wall: started.elapsed(), backend }
    }

    /// Run protocol `Pr` on the in-process real-time kernel.
    fn run_rt_proto<Pr: Protocol>(
        self,
        cfg: Pr::Config,
        transport: &TransportConfig,
        tracer: &Option<Box<dyn Tracer>>,
        started: std::time::Instant,
        backend: &'static str,
    ) -> Outcome {
        assert_rt_supports(transport, tracer, backend);
        let sync = self.sync_decls();
        let n_nodes = self.n_nodes;
        let decls = self.objects.clone();
        let mut b = RtWorldBuilder::<Pr::Msg>::new(n_nodes)
            .cost(Pr::cost(&cfg).clone())
            .tuning(self.rt_tuning.clone());
        if let Some(map) = self.coverage.clone() {
            b = b.coverage(map);
        }
        for d in &self.objects {
            let id = b.declare(d.clone(), d.home);
            debug_assert_eq!(id, d.id, "builder ids must stay dense");
        }
        for (node, body) in self.threads {
            b.spawn(node, move |ctx: &mut RtCtx<Pr::Msg>| body(ctx));
        }
        let servers: Vec<Pr::Server> = (0..n_nodes)
            .map(|i| Pr::server(&cfg, NodeId(i as u16), n_nodes, &decls, &sync))
            .collect();
        let report = b.run(servers);
        Outcome { report: Some(report), wall: started.elapsed(), backend }
    }

    /// Run protocol `Pr` on the multi-process TCP fabric.
    fn run_tcp_proto<Pr: Protocol>(
        self,
        cfg: Pr::Config,
        transport: &TransportConfig,
        tracer: &Option<Box<dyn Tracer>>,
        started: std::time::Instant,
        backend: &'static str,
    ) -> Outcome {
        assert_rt_supports(transport, tracer, backend);
        let sync = self.sync_decls();
        let mut tuning = TcpTuning::from(self.rt_tuning.clone());
        tuning.test_fault = self.tcp_fault;
        let mut b = TcpWorldBuilder::<Pr::Msg>::new(self.n_nodes).tuning(tuning);
        if let Some(map) = self.coverage.clone() {
            b = b.coverage(map);
        }
        for d in &self.objects {
            let id = b.declare(d.clone(), d.home);
            debug_assert_eq!(id, d.id, "builder ids must stay dense");
        }
        for (node, body) in self.threads {
            b.spawn(node, move |ctx: &mut RtCtx<Pr::Msg>| body(ctx));
        }
        let report = b.run_proto::<Pr>(cfg, sync);
        Outcome { report: Some(report), wall: started.elapsed(), backend }
    }
}

/// The real-time kernel's wires are OS channels: no loss injection, no
/// shared-medium serialization, no tracer. Reject configurations that ask
/// for them so experiments fail loudly instead of measuring the wrong
/// thing. (The transport's cost model is irrelevant here — rt servers take
/// their cost model from the backend config.)
fn assert_rt_supports(
    transport: &TransportConfig,
    tracer: &Option<Box<dyn Tracer>>,
    backend: &str,
) {
    assert!(
        tracer.is_none(),
        "the {backend} backend runs on the real-time kernel, which has no tracer hook; \
         run the program on the simulator backend to trace it"
    );
    assert!(
        transport.drop_prob == 0.0 && !transport.serialize_medium,
        "the {backend} backend runs over OS channels and cannot simulate message loss or a \
         shared medium; use the simulator backend for transport experiments"
    );
}

/// Convenience: run a simple report-returning simulation and unwrap it.
pub fn run_sim(builder: ProgramBuilder, backend: Backend) -> RunReport {
    let out = builder.run(backend);
    out.report.expect("sim backend")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::ParTyped;
    use std::sync::atomic::{AtomicI64, Ordering};
    use std::sync::Arc;

    /// One program, three backends, identical results.
    fn counting_program(n: usize) -> (ProgramBuilder, Arc<AtomicI64>) {
        let mut p = ProgramBuilder::new(n);
        let ctr = p.scalar::<i64>("ctr", SharingType::GeneralReadWrite, 0);
        let l = p.lock(0);
        let bar = p.barrier(0, n as u32);
        let total = Arc::new(AtomicI64::new(-1));
        for i in 0..n {
            let total = total.clone();
            p.thread(i, move |par| {
                for _ in 0..5 {
                    par.lock(l);
                    let v = par.load(&ctr);
                    par.store(&ctr, v + 1);
                    par.unlock(l);
                }
                par.barrier(bar);
                if par.self_id() == 0 {
                    par.lock(l);
                    total.store(par.load(&ctr), Ordering::SeqCst);
                    par.unlock(l);
                }
            });
        }
        (p, total)
    }

    #[test]
    fn try_report_present_on_sim_absent_on_native() {
        let (p, _) = counting_program(2);
        let o = p.run(Backend::Munin(MuninConfig::default()));
        assert!(o.try_report().is_some());
        assert_eq!(o.backend_name(), "Munin");

        let (p, _) = counting_program(2);
        let o = p.run(Backend::Native);
        assert!(o.try_report().is_none());
        assert_eq!(o.backend_name(), "Native");
    }

    #[test]
    fn native_report_panic_names_the_backend() {
        let (p, _) = counting_program(2);
        let o = p.run(Backend::Native);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = o.report();
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("Native backend"), "panic message was: {msg}");
        assert!(msg.contains("try_report"), "panic message was: {msg}");
    }

    #[test]
    fn same_program_runs_on_munin() {
        let (p, total) = counting_program(3);
        p.run(Backend::Munin(MuninConfig::default())).assert_clean();
        assert_eq!(total.load(Ordering::SeqCst), 15);
    }

    #[test]
    fn same_program_runs_on_ivy() {
        let (p, total) = counting_program(3);
        p.run(Backend::Ivy(IvyConfig::default())).assert_clean();
        assert_eq!(total.load(Ordering::SeqCst), 15);
    }

    #[test]
    fn same_program_runs_on_ivy_central_locks() {
        let (p, total) = counting_program(3);
        p.run(Backend::Ivy(IvyConfig::default().with_central_locks())).assert_clean();
        assert_eq!(total.load(Ordering::SeqCst), 15);
    }

    #[test]
    fn same_program_runs_native() {
        let (p, total) = counting_program(3);
        p.run(Backend::Native).assert_clean();
        assert_eq!(total.load(Ordering::SeqCst), 15);
    }

    #[test]
    fn uncontended_remote_lock_costs_constant_messages_on_both() {
        // Repeated lock/unlock by one remote node: Munin's proxy fetches
        // the token once and re-grants locally; Ivy's spin lock acquires
        // the page once and TASes locally. Both exploit locality — the
        // difference the paper cares about appears under *contention*
        // (experiment E13), not here.
        let build = |n: usize| {
            let mut p = ProgramBuilder::new(n);
            let l = p.lock(0);
            p.thread(n - 1, move |par| {
                for _ in 0..50 {
                    par.lock(l);
                    par.unlock(l);
                }
            });
            p
        };
        let munin = run_sim(build(2), Backend::Munin(MuninConfig::default()));
        munin.assert_clean();
        let ivy = run_sim(build(2), Backend::Ivy(IvyConfig::default()));
        ivy.assert_clean();
        assert!(
            munin.stats.messages <= 6,
            "proxy locks: constant messages, got {}",
            munin.stats.messages
        );
        assert!(
            ivy.stats.messages <= 6,
            "owned spin page: constant messages, got {}",
            ivy.stats.messages
        );
    }
}

//! The program harness: declare shared objects and synchronization objects,
//! spawn threads, pick a backend, run.
//!
//! The same [`ProgramBuilder`] program runs on Munin (type-specific
//! coherence), Ivy (page-based strict coherence) or native threads; the
//! experiments in `munin-bench` are all phrased as "build program once, run
//! under several backends/configurations, compare reports".

use crate::native::{NativeCtx, NativeWorld};
use crate::par::Par;
use munin_core::MuninServer;
use munin_ivy::IvyServer;
use munin_sim::{RunReport, ThreadCtx, Tracer, TransportConfig, WorldBuilder};
use munin_types::{
    BarrierDecl, BarrierId, CondDecl, CondId, IvyConfig, LockDecl, LockId, MuninConfig, NodeId,
    ObjectDecl, ObjectId, SharingType, SyncDecls,
};

/// Which runtime executes the program.
#[derive(Debug, Clone)]
pub enum Backend {
    /// The Munin runtime on the deterministic simulator.
    Munin(MuninConfig),
    /// The Ivy baseline on the deterministic simulator.
    Ivy(IvyConfig),
    /// Real threads, real shared memory (semantic reference).
    Native,
}

impl Backend {
    /// Default lossless transport matching the backend's cost model.
    fn transport(&self) -> TransportConfig {
        match self {
            Backend::Munin(c) => TransportConfig::lossless(c.cost.clone()),
            Backend::Ivy(c) => TransportConfig::lossless(c.cost.clone()),
            Backend::Native => TransportConfig::default(),
        }
    }
}

/// Result of a run.
pub struct Outcome {
    /// Simulation report (None for native runs).
    pub report: Option<RunReport>,
    /// Wall-clock duration of the run (host time; only meaningful for
    /// native runs).
    pub wall: std::time::Duration,
}

impl Outcome {
    /// The simulation report; panics for native runs.
    pub fn report(&self) -> &RunReport {
        self.report.as_ref().expect("native runs have no simulation report")
    }

    /// Panic unless the run was clean (native runs are clean if they joined).
    pub fn assert_clean(&self) -> &Self {
        if let Some(r) = &self.report {
            r.assert_clean();
        }
        self
    }
}

type ThreadBody = Box<dyn FnOnce(&mut dyn Par) + Send + 'static>;

/// Builder for a portable parallel program.
pub struct ProgramBuilder {
    n_nodes: usize,
    objects: Vec<ObjectDecl>,
    locks: Vec<LockDecl>,
    barriers: Vec<BarrierDecl>,
    conds: Vec<CondDecl>,
    threads: Vec<(NodeId, ThreadBody)>,
}

impl ProgramBuilder {
    pub fn new(n_nodes: usize) -> Self {
        assert!(n_nodes > 0);
        ProgramBuilder {
            n_nodes,
            objects: Vec::new(),
            locks: Vec::new(),
            barriers: Vec::new(),
            conds: Vec::new(),
            threads: Vec::new(),
        }
    }

    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Declare a shared object homed on `home` (node index). Returns its id.
    pub fn object(
        &mut self,
        name: &str,
        size: u32,
        sharing: SharingType,
        home: usize,
    ) -> ObjectId {
        let id = ObjectId(self.objects.len() as u64);
        let decl = ObjectDecl::new(id, name, size, sharing, NodeId(home as u16));
        self.objects.push(decl);
        id
    }

    /// Declare a shared object from a full declaration template (for
    /// lock-associated migratory objects and eager producer-consumer
    /// objects). The id and home are overwritten.
    pub fn object_decl(&mut self, mut decl: ObjectDecl, home: usize) -> ObjectId {
        let id = ObjectId(self.objects.len() as u64);
        decl.id = id;
        decl.home = NodeId(home as u16);
        self.objects.push(decl);
        id
    }

    /// Declare a distributed lock homed on `home`.
    pub fn lock(&mut self, home: usize) -> LockId {
        let id = LockId(self.locks.len() as u32);
        self.locks.push(LockDecl { id, home: NodeId(home as u16) });
        id
    }

    /// Declare a barrier with `count` participants, homed on `home`.
    pub fn barrier(&mut self, home: usize, count: u32) -> BarrierId {
        let id = BarrierId(self.barriers.len() as u32);
        self.barriers.push(BarrierDecl { id, home: NodeId(home as u16), count });
        id
    }

    /// Declare a condition variable homed on `home` (Munin backend only).
    pub fn cond(&mut self, home: usize) -> CondId {
        let id = CondId(self.conds.len() as u32);
        self.conds.push(CondDecl { id, home: NodeId(home as u16) });
        id
    }

    /// Spawn a program thread on node `node`.
    pub fn thread(&mut self, node: usize, f: impl FnOnce(&mut dyn Par) + Send + 'static) {
        assert!(node < self.n_nodes, "thread placed on unknown node {node}");
        self.threads.push((NodeId(node as u16), Box::new(f)));
    }

    /// Number of threads spawned so far.
    pub fn n_threads(&self) -> usize {
        self.threads.len()
    }

    /// Snapshot of the declared objects (for the sharing-study classifier,
    /// which compares observed behaviour against the annotations).
    pub fn objects(&self) -> Vec<ObjectDecl> {
        self.objects.clone()
    }

    /// Clear (or set) the eager flag on every producer-consumer object —
    /// the lazy-propagation ablation of experiment E7.
    pub fn set_eager_all(&mut self, eager: bool) {
        for d in &mut self.objects {
            if d.sharing == SharingType::ProducerConsumer {
                d.eager = eager;
            }
        }
    }

    /// Rewrite every object's sharing annotation — the "single static
    /// protocol" ablation (e.g. force everything to `GeneralReadWrite` to
    /// measure what Munin's type-specific dispatch buys). Lock associations
    /// are dropped when the type changes away from `Migratory`.
    pub fn retype_all(&mut self, f: impl Fn(SharingType) -> SharingType) {
        for d in &mut self.objects {
            let nt = f(d.sharing);
            if nt != d.sharing {
                d.sharing = nt;
                if nt != SharingType::Migratory {
                    d.associated_lock = None;
                }
                d.eager = false;
            }
        }
    }

    fn sync_decls(&self) -> SyncDecls {
        SyncDecls {
            locks: self.locks.clone(),
            barriers: self.barriers.clone(),
            conds: self.conds.clone(),
        }
    }

    /// Run on the chosen backend with the default (lossless) transport.
    pub fn run(self, backend: Backend) -> Outcome {
        let transport = backend.transport();
        self.run_with(backend, transport, None)
    }

    /// Run with an explicit transport configuration (loss injection, shared
    /// medium) and/or a tracer.
    pub fn run_with(
        self,
        backend: Backend,
        transport: TransportConfig,
        tracer: Option<Box<dyn Tracer>>,
    ) -> Outcome {
        let started = std::time::Instant::now();
        match backend {
            Backend::Native => {
                let world = NativeWorld::new(
                    self.objects.iter().map(|d| (d.id, d.size as usize)),
                    self.locks.len(),
                    &self
                        .barriers
                        .iter()
                        .map(|b| b.count as usize)
                        .collect::<Vec<_>>(),
                    self.conds.len(),
                    self.threads.len(),
                );
                let mut joins = Vec::new();
                for (i, (_node, body)) in self.threads.into_iter().enumerate() {
                    let w = world.clone();
                    joins.push(std::thread::spawn(move || {
                        let mut ctx = NativeCtx::new(w, i);
                        body(&mut ctx);
                    }));
                }
                for j in joins {
                    j.join().expect("native program thread panicked");
                }
                Outcome { report: None, wall: started.elapsed() }
            }
            Backend::Munin(cfg) => {
                let sync = self.sync_decls();
                let n_nodes = self.n_nodes;
                let mut b = WorldBuilder::new(n_nodes).transport(transport);
                if let Some(t) = tracer {
                    b = b.tracer(t);
                }
                for d in &self.objects {
                    let id = b.declare(d.clone(), d.home);
                    debug_assert_eq!(id, d.id, "builder ids must stay dense");
                }
                for (node, body) in self.threads {
                    b.spawn(node, move |ctx: &mut ThreadCtx| body(ctx));
                }
                let servers: Vec<MuninServer> = (0..n_nodes)
                    .map(|i| MuninServer::new(NodeId(i as u16), cfg.clone(), sync.clone()))
                    .collect();
                let report = b.build(servers).run();
                Outcome { report: Some(report), wall: started.elapsed() }
            }
            Backend::Ivy(cfg) => {
                let sync = self.sync_decls();
                let n_nodes = self.n_nodes;
                let decls = self.objects.clone();
                let mut b = WorldBuilder::new(n_nodes).transport(transport);
                if let Some(t) = tracer {
                    b = b.tracer(t);
                }
                for d in &self.objects {
                    let id = b.declare(d.clone(), d.home);
                    debug_assert_eq!(id, d.id);
                }
                for (node, body) in self.threads {
                    b.spawn(node, move |ctx: &mut ThreadCtx| body(ctx));
                }
                let servers: Vec<IvyServer> = (0..n_nodes)
                    .map(|i| IvyServer::new(NodeId(i as u16), cfg.clone(), n_nodes, &decls, &sync))
                    .collect();
                let report = b.build(servers).run();
                Outcome { report: Some(report), wall: started.elapsed() }
            }
        }
    }
}

/// Convenience: run a simple report-returning simulation and unwrap it.
pub fn run_sim(builder: ProgramBuilder, backend: Backend) -> RunReport {
    let out = builder.run(backend);
    out.report.expect("sim backend")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::ParExt;
    use std::sync::atomic::{AtomicI64, Ordering};
    use std::sync::Arc;

    /// One program, three backends, identical results.
    fn counting_program(n: usize) -> (ProgramBuilder, Arc<AtomicI64>) {
        let mut p = ProgramBuilder::new(n);
        let ctr = p.object("ctr", 8, SharingType::GeneralReadWrite, 0);
        let l = p.lock(0);
        let bar = p.barrier(0, n as u32);
        let total = Arc::new(AtomicI64::new(-1));
        for i in 0..n {
            let total = total.clone();
            p.thread(i, move |par| {
                for _ in 0..5 {
                    par.lock(l);
                    let v = par.read_i64(ctr, 0);
                    par.write_i64(ctr, 0, v + 1);
                    par.unlock(l);
                }
                par.barrier(bar);
                if par.self_id() == 0 {
                    par.lock(l);
                    total.store(par.read_i64(ctr, 0), Ordering::SeqCst);
                    par.unlock(l);
                }
            });
        }
        (p, total)
    }

    #[test]
    fn same_program_runs_on_munin() {
        let (p, total) = counting_program(3);
        p.run(Backend::Munin(MuninConfig::default())).assert_clean();
        assert_eq!(total.load(Ordering::SeqCst), 15);
    }

    #[test]
    fn same_program_runs_on_ivy() {
        let (p, total) = counting_program(3);
        p.run(Backend::Ivy(IvyConfig::default())).assert_clean();
        assert_eq!(total.load(Ordering::SeqCst), 15);
    }

    #[test]
    fn same_program_runs_on_ivy_central_locks() {
        let (p, total) = counting_program(3);
        p.run(Backend::Ivy(IvyConfig::default().with_central_locks())).assert_clean();
        assert_eq!(total.load(Ordering::SeqCst), 15);
    }

    #[test]
    fn same_program_runs_native() {
        let (p, total) = counting_program(3);
        p.run(Backend::Native).assert_clean();
        assert_eq!(total.load(Ordering::SeqCst), 15);
    }

    #[test]
    fn uncontended_remote_lock_costs_constant_messages_on_both() {
        // Repeated lock/unlock by one remote node: Munin's proxy fetches
        // the token once and re-grants locally; Ivy's spin lock acquires
        // the page once and TASes locally. Both exploit locality — the
        // difference the paper cares about appears under *contention*
        // (experiment E13), not here.
        let build = |n: usize| {
            let mut p = ProgramBuilder::new(n);
            let l = p.lock(0);
            p.thread(n - 1, move |par| {
                for _ in 0..50 {
                    par.lock(l);
                    par.unlock(l);
                }
            });
            p
        };
        let munin = run_sim(build(2), Backend::Munin(MuninConfig::default()));
        munin.assert_clean();
        let ivy = run_sim(build(2), Backend::Ivy(IvyConfig::default()));
        ivy.assert_clean();
        assert!(
            munin.stats.messages <= 6,
            "proxy locks: constant messages, got {}",
            munin.stats.messages
        );
        assert!(
            ivy.stats.messages <= 6,
            "owned spin page: constant messages, got {}",
            ivy.stats.messages
        );
    }
}

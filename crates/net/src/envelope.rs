//! Message envelopes and payload metadata.

use munin_types::{NodeId, VirtualTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Coarse classification of protocol messages, used in the traffic tables.
///
/// The experiment harness reports traffic split along these lines so the
/// "who pays for what" arguments of the paper (data motion vs coherence
/// control vs synchronization) are visible directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MsgClass {
    /// Carries object bytes: fault replies, migrations, refreshes, diffs.
    Data,
    /// Coherence control without data: requests, invalidations, directory
    /// updates.
    Control,
    /// Delayed-update propagation (diffs). Kept separate from `Data` so the
    /// DUQ experiments can show combining directly.
    Update,
    /// Lock/barrier/condition traffic.
    Sync,
    /// Acknowledgements, including the reliability layer's acks.
    Ack,
}

impl MsgClass {
    pub const ALL: [MsgClass; 5] =
        [MsgClass::Data, MsgClass::Control, MsgClass::Update, MsgClass::Sync, MsgClass::Ack];

    pub fn label(self) -> &'static str {
        match self {
            MsgClass::Data => "data",
            MsgClass::Control => "control",
            MsgClass::Update => "update",
            MsgClass::Sync => "sync",
            MsgClass::Ack => "ack",
        }
    }
}

impl fmt::Display for MsgClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Metadata every protocol payload must expose so the substrate can account
/// for it and model its latency without knowing the protocol.
pub trait PayloadInfo {
    /// Coarse class for the traffic tables.
    fn class(&self) -> MsgClass;
    /// Fine-grained kind ("ReadReq", "Diff", "LockGrant", ...) for per-kind
    /// breakdowns.
    fn kind(&self) -> &'static str;
    /// Bytes this message would occupy on the wire **beyond** the fixed
    /// header (i.e. the payload the latency model charges for).
    fn wire_bytes(&self) -> usize;
    /// If handling this message *is* the authoritative ("home node") step
    /// of an op some application thread is blocked on, the id of that
    /// thread — the observability layer stamps the home leg of the op's
    /// causal span there. Default `None`: most protocol traffic is not
    /// attributable to a single waiting thread.
    fn span_home_thread(&self) -> Option<munin_types::ThreadId> {
        None
    }
}

/// A message in flight from `src` to `dst`.
#[derive(Debug, Clone)]
pub struct Envelope<P> {
    pub src: NodeId,
    pub dst: NodeId,
    /// Per-(src,dst) sequence number assigned by the transport; consumed by
    /// the receiver's [`crate::ReorderBuffer`] to guarantee FIFO delivery.
    pub seq: u64,
    /// Virtual time at which the message was handed to the transport.
    pub sent_at: VirtualTime,
    pub payload: P,
}

impl<P: PayloadInfo> Envelope<P> {
    pub fn class(&self) -> MsgClass {
        self.payload.class()
    }

    pub fn wire_bytes(&self) -> usize {
        self.payload.wire_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake(usize);
    impl PayloadInfo for Fake {
        fn class(&self) -> MsgClass {
            MsgClass::Data
        }
        fn kind(&self) -> &'static str {
            "Fake"
        }
        fn wire_bytes(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn envelope_delegates_to_payload() {
        let e = Envelope {
            src: NodeId(0),
            dst: NodeId(1),
            seq: 7,
            sent_at: VirtualTime::ZERO,
            payload: Fake(128),
        };
        assert_eq!(e.class(), MsgClass::Data);
        assert_eq!(e.wire_bytes(), 128);
    }

    #[test]
    fn class_labels_unique() {
        let mut labels: Vec<_> = MsgClass::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), MsgClass::ALL.len());
    }
}

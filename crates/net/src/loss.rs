//! Deterministic message-loss injection.
//!
//! The 1990 prototype ran over raw Ethernet via the V kernel, which provided
//! reliable request/response on top of an unreliable datagram layer. Our
//! reliability layer (acks + retransmission, in `munin-sim`) plays that role;
//! this module decides — deterministically, from a seed — which transmissions
//! are dropped, so failure-injection tests are reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Bernoulli message-loss model with a deterministic stream.
#[derive(Debug, Clone)]
pub struct LossModel {
    drop_prob: f64,
    rng: SmallRng,
    dropped: u64,
    offered: u64,
}

impl LossModel {
    /// `drop_prob` is clamped to `[0, 1)`; a lossless model never consults
    /// the RNG so adding `LossModel::lossless()` to a run cannot perturb a
    /// seeded experiment.
    pub fn new(drop_prob: f64, seed: u64) -> Self {
        LossModel {
            drop_prob: drop_prob.clamp(0.0, 0.999),
            rng: SmallRng::seed_from_u64(seed),
            dropped: 0,
            offered: 0,
        }
    }

    pub fn lossless() -> Self {
        LossModel::new(0.0, 0)
    }

    /// Returns true if this transmission should be dropped.
    pub fn should_drop(&mut self) -> bool {
        self.offered += 1;
        if self.drop_prob == 0.0 {
            return false;
        }
        let drop = self.rng.gen_bool(self.drop_prob);
        if drop {
            self.dropped += 1;
        }
        drop
    }

    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn offered(&self) -> u64 {
        self.offered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_never_drops() {
        let mut m = LossModel::lossless();
        for _ in 0..1000 {
            assert!(!m.should_drop());
        }
        assert_eq!(m.dropped(), 0);
        assert_eq!(m.offered(), 1000);
    }

    #[test]
    fn seeded_stream_is_deterministic() {
        let mut a = LossModel::new(0.3, 42);
        let mut b = LossModel::new(0.3, 42);
        let va: Vec<bool> = (0..200).map(|_| a.should_drop()).collect();
        let vb: Vec<bool> = (0..200).map(|_| b.should_drop()).collect();
        assert_eq!(va, vb);
        assert!(a.dropped() > 0, "p=0.3 over 200 trials drops something");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = LossModel::new(0.5, 1);
        let mut b = LossModel::new(0.5, 2);
        let va: Vec<bool> = (0..64).map(|_| a.should_drop()).collect();
        let vb: Vec<bool> = (0..64).map(|_| b.should_drop()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let mut m = LossModel::new(0.25, 7);
        for _ in 0..10_000 {
            m.should_drop();
        }
        let rate = m.dropped() as f64 / m.offered() as f64;
        assert!((rate - 0.25).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn probability_is_clamped() {
        let mut m = LossModel::new(5.0, 3);
        // Must not drop with probability 1.0 (which would livelock the
        // reliability layer): clamped to 0.999.
        let all: Vec<bool> = (0..20_000).map(|_| m.should_drop()).collect();
        assert!(all.iter().any(|d| !d));
    }
}

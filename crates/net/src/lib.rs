//! # munin-net
//!
//! Message-passing network substrate for the Munin reproduction — the stand-in
//! for the paper's "Ethernet network of SUN workstations" running the
//! V kernel.
//!
//! The paper's quantitative claims are about protocol behaviour: how many
//! messages cross the wire, how many bytes they carry, and which operations
//! must wait for round trips. This crate therefore provides exactly the
//! mechanisms those measurements need:
//!
//! * [`Envelope`] / [`PayloadInfo`] — typed messages with wire-size and
//!   classification metadata,
//! * [`LatencyModel`] — virtual-time delivery latency derived from the
//!   [`munin_types::CostModel`],
//! * [`NetStats`] — per-class and per-kind message/byte accounting,
//! * [`LossModel`] + [`ReorderBuffer`] — deterministic loss injection and the
//!   receiver-side sequencing that the reliability layer uses to preserve
//!   FIFO delivery per (source, destination) pair,
//! * multicast accounting — one send with hardware multicast, `k` sends
//!   without (the paper's "well designed network interface" discussion).

pub mod envelope;
pub mod fault;
pub mod latency;
pub mod loss;
pub mod reorder;
pub mod seed;
pub mod stats;

pub use envelope::{Envelope, MsgClass, PayloadInfo};
pub use fault::{LinkFault, LinkFaultKind, LinkSchedule};
pub use latency::LatencyModel;
pub use loss::LossModel;
pub use reorder::ReorderBuffer;
pub use seed::{derive, SeedGuard};
pub use stats::{KindStat, NetStats};

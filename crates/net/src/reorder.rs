//! Receiver-side sequencing.
//!
//! The coherence protocols assume FIFO channels between node pairs (the DUQ's
//! program-order guarantee relies on it: if thread A updates X then Y, remote
//! nodes must see X's update first). With loss + retransmission, messages can
//! arrive out of order; the `ReorderBuffer` holds early arrivals until the
//! gap fills, and discards duplicates from retransmission.

use std::collections::BTreeMap;

/// Per-(source, destination) sequencer: releases messages strictly in
/// sequence-number order, exactly once.
#[derive(Debug)]
pub struct ReorderBuffer<P> {
    next_seq: u64,
    pending: BTreeMap<u64, P>,
    duplicates: u64,
}

impl<P> Default for ReorderBuffer<P> {
    fn default() -> Self {
        ReorderBuffer { next_seq: 0, pending: BTreeMap::new(), duplicates: 0 }
    }
}

impl<P> ReorderBuffer<P> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Offer an arrival; returns every message now deliverable, in order.
    ///
    /// A duplicate (seq already delivered or already pending) is counted and
    /// dropped.
    pub fn offer(&mut self, seq: u64, payload: P) -> Vec<P> {
        if seq < self.next_seq || self.pending.contains_key(&seq) {
            self.duplicates += 1;
            return Vec::new();
        }
        self.pending.insert(seq, payload);
        let mut out = Vec::new();
        while let Some(p) = self.pending.remove(&self.next_seq) {
            out.push(p);
            self.next_seq += 1;
        }
        out
    }

    /// Sequence number the receiver is waiting for (everything below has been
    /// delivered); used as the cumulative-ack value.
    pub fn expected(&self) -> u64 {
        self.next_seq
    }

    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Number of out-of-order arrivals currently parked.
    pub fn parked(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn in_order_stream_passes_through() {
        let mut rb = ReorderBuffer::new();
        for i in 0..5u64 {
            assert_eq!(rb.offer(i, i), vec![i]);
        }
        assert_eq!(rb.expected(), 5);
        assert_eq!(rb.duplicates(), 0);
    }

    #[test]
    fn gap_holds_then_releases_in_order() {
        let mut rb = ReorderBuffer::new();
        assert_eq!(rb.offer(1, "b"), Vec::<&str>::new());
        assert_eq!(rb.offer(2, "c"), Vec::<&str>::new());
        assert_eq!(rb.parked(), 2);
        assert_eq!(rb.offer(0, "a"), vec!["a", "b", "c"]);
        assert_eq!(rb.parked(), 0);
    }

    #[test]
    fn duplicates_are_dropped() {
        let mut rb = ReorderBuffer::new();
        assert_eq!(rb.offer(0, 'x'), vec!['x']);
        assert_eq!(rb.offer(0, 'x'), Vec::<char>::new());
        assert_eq!(rb.offer(2, 'z'), Vec::<char>::new());
        assert_eq!(rb.offer(2, 'z'), Vec::<char>::new());
        assert_eq!(rb.duplicates(), 2);
        assert_eq!(rb.offer(1, 'y'), vec!['y', 'z']);
    }

    proptest! {
        /// Any arrival order with any duplication pattern delivers exactly
        /// 0..n, each once, in order.
        #[test]
        fn delivers_exactly_once_in_order(
            n in 1usize..40,
            shuffle_seed in any::<u64>(),
            dup_mask in proptest::collection::vec(any::<bool>(), 40)
        ) {
            use rand::seq::SliceRandom;
            use rand::SeedableRng;
            let mut arrivals: Vec<u64> = (0..n as u64).collect();
            // Duplicate some seqs, then shuffle deterministically.
            for i in 0..n {
                if dup_mask[i] {
                    arrivals.push(i as u64);
                }
            }
            let mut rng = rand::rngs::SmallRng::seed_from_u64(shuffle_seed);
            arrivals.shuffle(&mut rng);

            let mut rb = ReorderBuffer::new();
            let mut delivered = Vec::new();
            for seq in arrivals {
                delivered.extend(rb.offer(seq, seq));
            }
            let want: Vec<u64> = (0..n as u64).collect();
            prop_assert_eq!(delivered, want);
            prop_assert_eq!(rb.expected(), n as u64);
            prop_assert_eq!(rb.parked(), 0);
        }
    }
}

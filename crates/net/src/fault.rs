//! Link-level fault windows: partitions and node isolation.
//!
//! A [`LinkFault`] cuts a set of links for a window of virtual time. The
//! transport consults [`LinkSchedule::cut`] for every transmission (data and
//! acks alike); a cut transmission vanishes from the wire exactly like an
//! injected loss, so the reliability layer's retransmission machinery is what
//! carries traffic across a healed partition.

use munin_types::NodeId;

/// Which links a fault severs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkFaultKind {
    /// Split the nodes into `group` vs the rest: messages cross the cut in
    /// neither direction. Within each side traffic is unaffected.
    Partition { group: Vec<NodeId> },
    /// Sever every link touching one node (crash-like from the outside: the
    /// node keeps computing but nothing it sends or is sent arrives).
    Isolate { node: NodeId },
}

/// One fault window over virtual time `[from_us, until_us)`.
///
/// `until_us == u64::MAX` means the fault never heals (a permanent partition;
/// the transport's bounded retransmission then reports the give-up).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkFault {
    pub from_us: u64,
    pub until_us: u64,
    pub kind: LinkFaultKind,
}

impl LinkFault {
    pub fn partition(group: Vec<NodeId>, from_us: u64, until_us: u64) -> Self {
        LinkFault { from_us, until_us, kind: LinkFaultKind::Partition { group } }
    }

    pub fn isolate(node: NodeId, from_us: u64, until_us: u64) -> Self {
        LinkFault { from_us, until_us, kind: LinkFaultKind::Isolate { node } }
    }

    /// Does this fault sever `src -> dst` at virtual time `now_us`?
    pub fn cuts(&self, src: NodeId, dst: NodeId, now_us: u64) -> bool {
        if now_us < self.from_us || now_us >= self.until_us || src == dst {
            return false;
        }
        match &self.kind {
            LinkFaultKind::Partition { group } => group.contains(&src) != group.contains(&dst),
            LinkFaultKind::Isolate { node } => src == *node || dst == *node,
        }
    }
}

/// An ordered set of fault windows, consulted per transmission.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkSchedule {
    pub faults: Vec<LinkFault>,
}

impl LinkSchedule {
    pub fn new(faults: Vec<LinkFault>) -> Self {
        LinkSchedule { faults }
    }

    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// True if any window severs `src -> dst` at `now_us`.
    pub fn cut(&self, src: NodeId, dst: NodeId, now_us: u64) -> bool {
        self.faults.iter().any(|f| f.cuts(src, dst, now_us))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_cuts_across_the_group_boundary_only() {
        let f = LinkFault::partition(vec![NodeId(0), NodeId(1)], 100, 200);
        assert!(f.cuts(NodeId(0), NodeId(2), 150), "inside window, across cut");
        assert!(f.cuts(NodeId(2), NodeId(1), 150), "cut is bidirectional");
        assert!(!f.cuts(NodeId(0), NodeId(1), 150), "same side unaffected");
        assert!(!f.cuts(NodeId(2), NodeId(3), 150), "other side unaffected");
        assert!(!f.cuts(NodeId(0), NodeId(2), 99), "before window");
        assert!(!f.cuts(NodeId(0), NodeId(2), 200), "window end is exclusive");
    }

    #[test]
    fn isolate_severs_every_link_of_one_node() {
        let f = LinkFault::isolate(NodeId(1), 0, u64::MAX);
        assert!(f.cuts(NodeId(1), NodeId(0), 5));
        assert!(f.cuts(NodeId(2), NodeId(1), 5));
        assert!(!f.cuts(NodeId(0), NodeId(2), 5));
        assert!(!f.cuts(NodeId(1), NodeId(1), 5), "self-delivery never crosses the wire");
    }

    #[test]
    fn schedule_is_the_union_of_windows() {
        let s = LinkSchedule::new(vec![
            LinkFault::partition(vec![NodeId(0)], 0, 100),
            LinkFault::isolate(NodeId(2), 50, 150),
        ]);
        assert!(s.cut(NodeId(0), NodeId(1), 10), "first window");
        assert!(s.cut(NodeId(2), NodeId(1), 120), "second window");
        assert!(!s.cut(NodeId(0), NodeId(1), 120), "first healed");
        assert!(!s.cut(NodeId(1), NodeId(3), 70), "untouched link");
        assert!(LinkSchedule::default().is_empty());
    }
}

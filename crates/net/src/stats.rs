//! Traffic accounting.
//!
//! Every experiment table in `EXPERIMENTS.md` is ultimately a readout of this
//! structure: messages and bytes, split by [`MsgClass`] and by fine-grained
//! message kind, plus multicast savings.

use crate::envelope::MsgClass;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Count + bytes for one message kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindStat {
    pub count: u64,
    pub bytes: u64,
}

/// Aggregated network statistics for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    /// Total messages placed on the wire (multicast counted per actual
    /// transmission under the configured hardware model).
    pub messages: u64,
    /// Total payload bytes on the wire.
    pub bytes: u64,
    /// Messages/bytes by coarse class.
    pub by_class: BTreeMap<MsgClass, KindStat>,
    /// Messages/bytes by fine-grained kind name.
    pub by_kind: BTreeMap<String, KindStat>,
    /// Logical multicast operations performed.
    pub multicasts: u64,
    /// Transmissions saved by hardware multicast (fanout minus actual sends).
    pub multicast_saved: u64,
    /// Transmissions dropped by loss injection (retransmissions then add to
    /// `messages` when they occur).
    pub dropped: u64,
    /// Retransmissions performed by the reliability layer.
    pub retransmissions: u64,
    /// Transmissions the reliability layer abandoned after exhausting its
    /// retry budget (only possible under injected link faults that outlast
    /// the budget, e.g. a permanent partition).
    pub gave_up: u64,
}

impl NetStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one wire transmission.
    pub fn record(&mut self, class: MsgClass, kind: &'static str, bytes: usize) {
        self.messages += 1;
        self.bytes += bytes as u64;
        let c = self.by_class.entry(class).or_default();
        c.count += 1;
        c.bytes += bytes as u64;
        let k = match self.by_kind.get_mut(kind) {
            Some(k) => k,
            None => self.by_kind.entry(kind.to_owned()).or_default(),
        };
        k.count += 1;
        k.bytes += bytes as u64;
    }

    /// Record a logical multicast of fanout `fanout` realized with
    /// `actual_sends` transmissions (the per-transmission `record` calls are
    /// made separately by the transport).
    pub fn record_multicast(&mut self, fanout: usize, actual_sends: usize) {
        self.multicasts += 1;
        self.multicast_saved += (fanout.saturating_sub(actual_sends)) as u64;
    }

    pub fn record_drop(&mut self) {
        self.dropped += 1;
    }

    pub fn record_retransmission(&mut self) {
        self.retransmissions += 1;
    }

    pub fn record_gave_up(&mut self) {
        self.gave_up += 1;
    }

    pub fn class(&self, c: MsgClass) -> KindStat {
        self.by_class.get(&c).copied().unwrap_or_default()
    }

    pub fn kind(&self, k: &str) -> KindStat {
        self.by_kind.get(k).copied().unwrap_or_default()
    }

    /// Messages excluding acks — the figure most comparable across
    /// reliability settings.
    pub fn messages_excluding_acks(&self) -> u64 {
        self.messages - self.class(MsgClass::Ack).count
    }

    /// Fold another stats block into this one (e.g. summing per-node
    /// transports).
    pub fn merge(&mut self, other: &NetStats) {
        self.messages += other.messages;
        self.bytes += other.bytes;
        self.multicasts += other.multicasts;
        self.multicast_saved += other.multicast_saved;
        self.dropped += other.dropped;
        self.retransmissions += other.retransmissions;
        self.gave_up += other.gave_up;
        for (c, s) in &other.by_class {
            let e = self.by_class.entry(*c).or_default();
            e.count += s.count;
            e.bytes += s.bytes;
        }
        for (k, s) in &other.by_kind {
            let e = self.by_kind.entry(k.clone()).or_default();
            e.count += s.count;
            e.bytes += s.bytes;
        }
    }
}

impl fmt::Display for NetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "messages: {}  bytes: {}", self.messages, self.bytes)?;
        for c in MsgClass::ALL {
            let s = self.class(c);
            if s.count > 0 {
                writeln!(f, "  {:<8} {:>8} msgs {:>12} bytes", c.label(), s.count, s.bytes)?;
            }
        }
        if self.multicasts > 0 {
            writeln!(
                f,
                "  multicasts: {} (saved {} sends)",
                self.multicasts, self.multicast_saved
            )?;
        }
        if self.dropped > 0 || self.retransmissions > 0 {
            writeln!(f, "  dropped: {}  retransmitted: {}", self.dropped, self.retransmissions)?;
        }
        if self.gave_up > 0 {
            writeln!(f, "  gave up: {}", self.gave_up)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_by_class_and_kind() {
        let mut s = NetStats::new();
        s.record(MsgClass::Data, "ReadReply", 1024);
        s.record(MsgClass::Data, "ReadReply", 1024);
        s.record(MsgClass::Control, "ReadReq", 0);
        assert_eq!(s.messages, 3);
        assert_eq!(s.bytes, 2048);
        assert_eq!(s.class(MsgClass::Data).count, 2);
        assert_eq!(s.kind("ReadReply").bytes, 2048);
        assert_eq!(s.kind("ReadReq").count, 1);
        assert_eq!(s.kind("nonexistent").count, 0);
    }

    #[test]
    fn ack_exclusion() {
        let mut s = NetStats::new();
        s.record(MsgClass::Update, "Diff", 64);
        s.record(MsgClass::Ack, "DiffAck", 0);
        assert_eq!(s.messages, 2);
        assert_eq!(s.messages_excluding_acks(), 1);
    }

    #[test]
    fn multicast_savings() {
        let mut s = NetStats::new();
        s.record_multicast(8, 1);
        s.record_multicast(4, 4);
        assert_eq!(s.multicasts, 2);
        assert_eq!(s.multicast_saved, 7);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = NetStats::new();
        a.record(MsgClass::Data, "X", 10);
        a.record_drop();
        let mut b = NetStats::new();
        b.record(MsgClass::Data, "X", 5);
        b.record(MsgClass::Sync, "LockReq", 0);
        b.record_retransmission();
        b.record_gave_up();
        a.merge(&b);
        assert_eq!(a.messages, 3);
        assert_eq!(a.bytes, 15);
        assert_eq!(a.kind("X").count, 2);
        assert_eq!(a.class(MsgClass::Sync).count, 1);
        assert_eq!(a.dropped, 1);
        assert_eq!(a.retransmissions, 1);
        assert_eq!(a.gave_up, 1);
    }

    #[test]
    fn display_renders_nonempty_classes() {
        let mut s = NetStats::new();
        s.record(MsgClass::Sync, "LockGrant", 16);
        let out = s.to_string();
        assert!(out.contains("sync"));
        assert!(!out.contains("control"), "empty classes omitted: {out}");
    }
}

//! Virtual-time delivery latency.

use munin_types::{CostModel, VirtualTime};

/// Computes when a message sent now arrives at its destination.
///
/// The model is intentionally simple — fixed per-message cost plus a per-KiB
/// cost — because the paper's comparisons depend on message *counts* and
/// *sizes*, not on queueing microstructure. A `serialize` flag adds a shared
/// half-duplex medium approximation (each concurrent sender's message is
/// pushed back behind the previous one), which matters only for the stall-time
/// experiments (E7) and is off by default.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    cost: CostModel,
    /// If true, model the Ethernet as a shared medium: deliveries are spaced
    /// so the wire carries one message at a time.
    serialize_medium: bool,
    /// Virtual time at which the shared medium becomes free.
    wire_free_at: VirtualTime,
}

impl LatencyModel {
    pub fn new(cost: CostModel) -> Self {
        LatencyModel { cost, serialize_medium: false, wire_free_at: VirtualTime::ZERO }
    }

    pub fn with_serialized_medium(mut self, on: bool) -> Self {
        self.serialize_medium = on;
        self
    }

    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Delivery time of a message with `payload_bytes` handed to the
    /// transport at `now`.
    pub fn delivery_time(&mut self, now: VirtualTime, payload_bytes: usize) -> VirtualTime {
        let latency = self.cost.msg_latency_us(payload_bytes);
        if self.serialize_medium {
            // Occupy the wire for the transmission part of the latency.
            let start = now.max(self.wire_free_at);
            let arrive = start + latency;
            self.wire_free_at = arrive;
            arrive
        } else {
            now + latency
        }
    }

    /// Number of sender-side transmissions a multicast to `fanout`
    /// destinations costs under this model's hardware assumptions.
    pub fn multicast_sends(&self, fanout: usize) -> usize {
        self.cost.multicast_sends(fanout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unserialized_medium_delivers_in_parallel() {
        let mut m = LatencyModel::new(CostModel::ethernet_1990());
        let t0 = VirtualTime::ZERO;
        let a = m.delivery_time(t0, 0);
        let b = m.delivery_time(t0, 0);
        assert_eq!(a, b, "two control messages sent at t0 both arrive at t0+fixed");
        assert_eq!(a.as_micros(), 1_000);
    }

    #[test]
    fn serialized_medium_spaces_messages() {
        let mut m = LatencyModel::new(CostModel::ethernet_1990()).with_serialized_medium(true);
        let t0 = VirtualTime::ZERO;
        let a = m.delivery_time(t0, 0);
        let b = m.delivery_time(t0, 0);
        assert_eq!(a.as_micros(), 1_000);
        assert_eq!(b.as_micros(), 2_000, "second message queues behind the first");
        // After the wire goes idle, latency resets to base.
        let c = m.delivery_time(VirtualTime::micros(10_000), 0);
        assert_eq!(c.as_micros(), 11_000);
    }

    #[test]
    fn payload_bytes_increase_latency() {
        let mut m = LatencyModel::new(CostModel::ethernet_1990());
        let small = m.delivery_time(VirtualTime::ZERO, 16);
        let large = m.delivery_time(VirtualTime::ZERO, 8192);
        assert!(large > small);
    }
}

//! Virtual-time delivery latency.

use munin_types::{CostModel, VirtualTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Computes when a message sent now arrives at its destination.
///
/// The model is intentionally simple — fixed per-message cost plus a per-KiB
/// cost — because the paper's comparisons depend on message *counts* and
/// *sizes*, not on queueing microstructure. A `serialize` flag adds a shared
/// half-duplex medium approximation (each concurrent sender's message is
/// pushed back behind the previous one), which matters only for the stall-time
/// experiments (E7) and is off by default.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    cost: CostModel,
    /// If true, model the Ethernet as a shared medium: deliveries are spaced
    /// so the wire carries one message at a time.
    serialize_medium: bool,
    /// Virtual time at which the shared medium becomes free.
    wire_free_at: VirtualTime,
    /// Seeded per-message jitter in `[0, max_us]`; `None` keeps latency a
    /// pure function of payload size. Jitter makes later sends overtake
    /// earlier ones, which exercises the receiver's reorder buffer.
    jitter: Option<(u64, SmallRng)>,
}

impl LatencyModel {
    pub fn new(cost: CostModel) -> Self {
        LatencyModel {
            cost,
            serialize_medium: false,
            wire_free_at: VirtualTime::ZERO,
            jitter: None,
        }
    }

    pub fn with_serialized_medium(mut self, on: bool) -> Self {
        self.serialize_medium = on;
        self
    }

    /// Add deterministic delivery jitter of up to `max_us` virtual
    /// microseconds per message, drawn from the seeded stream. A `max_us` of
    /// zero leaves the model untouched (the RNG is never consulted).
    pub fn with_jitter(mut self, max_us: u64, seed: u64) -> Self {
        self.jitter =
            if max_us == 0 { None } else { Some((max_us, SmallRng::seed_from_u64(seed))) };
        self
    }

    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Delivery time of a message with `payload_bytes` handed to the
    /// transport at `now`.
    pub fn delivery_time(&mut self, now: VirtualTime, payload_bytes: usize) -> VirtualTime {
        let mut latency = self.cost.msg_latency_us(payload_bytes);
        if let Some((max_us, rng)) = &mut self.jitter {
            latency += rng.gen_range(0..=*max_us);
        }
        if self.serialize_medium {
            // Occupy the wire for the transmission part of the latency.
            let start = now.max(self.wire_free_at);
            let arrive = start + latency;
            self.wire_free_at = arrive;
            arrive
        } else {
            now + latency
        }
    }

    /// Number of sender-side transmissions a multicast to `fanout`
    /// destinations costs under this model's hardware assumptions.
    pub fn multicast_sends(&self, fanout: usize) -> usize {
        self.cost.multicast_sends(fanout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unserialized_medium_delivers_in_parallel() {
        let mut m = LatencyModel::new(CostModel::ethernet_1990());
        let t0 = VirtualTime::ZERO;
        let a = m.delivery_time(t0, 0);
        let b = m.delivery_time(t0, 0);
        assert_eq!(a, b, "two control messages sent at t0 both arrive at t0+fixed");
        assert_eq!(a.as_micros(), 1_000);
    }

    #[test]
    fn serialized_medium_spaces_messages() {
        let mut m = LatencyModel::new(CostModel::ethernet_1990()).with_serialized_medium(true);
        let t0 = VirtualTime::ZERO;
        let a = m.delivery_time(t0, 0);
        let b = m.delivery_time(t0, 0);
        assert_eq!(a.as_micros(), 1_000);
        assert_eq!(b.as_micros(), 2_000, "second message queues behind the first");
        // After the wire goes idle, latency resets to base.
        let c = m.delivery_time(VirtualTime::micros(10_000), 0);
        assert_eq!(c.as_micros(), 11_000);
    }

    #[test]
    fn jitter_is_seeded_bounded_and_reordering() {
        let base = LatencyModel::new(CostModel::ethernet_1990())
            .delivery_time(VirtualTime::ZERO, 0)
            .as_micros();
        let run = |seed: u64| -> Vec<u64> {
            let mut m = LatencyModel::new(CostModel::ethernet_1990()).with_jitter(5_000, seed);
            (0..64).map(|_| m.delivery_time(VirtualTime::ZERO, 0).as_micros()).collect()
        };
        let a = run(9);
        assert_eq!(a, run(9), "same seed, same jitter stream");
        assert_ne!(a, run(10));
        assert!(a.iter().all(|t| (base..=base + 5_000).contains(t)), "jitter bounded");
        assert!(a.windows(2).any(|w| w[0] > w[1]), "jitter must be able to reorder deliveries");
        // max_us = 0 degenerates to the pure model.
        let mut z = LatencyModel::new(CostModel::ethernet_1990()).with_jitter(0, 9);
        assert_eq!(z.delivery_time(VirtualTime::ZERO, 0).as_micros(), base);
    }

    #[test]
    fn payload_bytes_increase_latency() {
        let mut m = LatencyModel::new(CostModel::ethernet_1990());
        let small = m.delivery_time(VirtualTime::ZERO, 16);
        let large = m.delivery_time(VirtualTime::ZERO, 8192);
        assert!(large > small);
    }
}

//! Campaign seed plumbing.
//!
//! Every randomized model in this crate (loss, latency jitter) and every
//! campaign generator derives its RNG stream from *one* u64 campaign seed via
//! [`derive`], so a single number replays an entire run. [`SeedGuard`] makes
//! red runs replayable: constructed at the top of a seeded test, it prints the
//! seed when the thread unwinds, so the log of any failure carries the one
//! value needed to reproduce it.

/// Derive an independent substream seed from a campaign seed and a role tag.
///
/// FNV-1a over the tag folds the role into a 64-bit value, then a SplitMix64
/// finalizer mixes it with the campaign seed so `derive(s, "loss")` and
/// `derive(s, "latency")` are decorrelated while each remains a pure function
/// of `(seed, tag)`.
pub fn derive(seed: u64, tag: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in tag.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    let mut z = seed ^ h;
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Prints the governing seed if the owning scope panics.
///
/// ```text
/// let _guard = SeedGuard::new("reliability", seed);
/// ... seeded assertions ...
/// ```
///
/// On a clean exit the guard is silent; on an assertion failure the drop
/// handler runs during unwind and emits `SEED ... (replay with ...)` to
/// stderr, which the test harness surfaces with the failure output.
pub struct SeedGuard {
    what: &'static str,
    seed: u64,
}

impl SeedGuard {
    pub fn new(what: &'static str, seed: u64) -> Self {
        SeedGuard { what, seed }
    }
}

impl Drop for SeedGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!("SEED {} failed with seed {} — replay with that seed", self.what, self.seed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_is_a_pure_function() {
        assert_eq!(derive(42, "loss"), derive(42, "loss"));
        assert_eq!(derive(7, "latency"), derive(7, "latency"));
    }

    #[test]
    fn tags_decorrelate_substreams() {
        assert_ne!(derive(42, "loss"), derive(42, "latency"));
        assert_ne!(derive(42, "loss"), derive(43, "loss"));
        assert_ne!(derive(0, "gen"), derive(0, "plan"));
    }

    #[test]
    fn silent_guard_on_clean_exit() {
        let _g = SeedGuard::new("unit", 1);
        // Dropping without a panic must not print (can't assert stderr here,
        // but the path is exercised for coverage and must not itself panic).
    }
}

//! Allocation regression tests for the telemetry hot path.
//!
//! The observability pitch is "always-on": telemetry rides inside every
//! op on the wall-clock fabrics, so recording must never allocate — not
//! in `Off` (a branch), not in `Counters` (atomic adds into preallocated
//! arrays), and not in `Spans` (ring pushes into buffers reserved at
//! construction). These tests pin that down with a counting global
//! allocator, driving every hot-path entry point far past the ring
//! capacity so overwrite-oldest paths are exercised too.

use munin_net::NetStats;
use munin_obs::{AccessKind, ObsCollector, OpClass, SPAN_RING_CAP};
use munin_types::{ObjectId, Telemetry, ThreadId};

#[path = "../../mem/testsupport/counting_alloc.rs"]
mod counting_alloc;
use counting_alloc::{allocs_of, CountingAlloc};

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Drive every hot-path recording entry point, well past the span ring
/// capacity so the overwrite-oldest branch runs.
fn hammer(c: &ObsCollector) {
    let t = ThreadId(0);
    for i in 0..(SPAN_RING_CAP as u64 * 3) {
        c.record_op(t, OpClass::FetchAdd, i % 2 == 0, 5 + i % 7);
        c.note_access(ObjectId(i % 8), AccessKind::Atomic);
        c.note_wire_arrival(t, 1_000 + i);
        c.srv_dispatch(t);
        c.srv_home(t);
        let _ = c.srv_finish(t);
        c.client_span(t, i + 1, OpClass::FetchAdd, false, 1_000 + i, 2_000 + i);
    }
}

#[test]
fn recording_never_allocates_in_any_mode() {
    for mode in [Telemetry::Off, Telemetry::Counters, Telemetry::Spans] {
        let c = ObsCollector::new(mode, 2);
        // Warm-up pass: lazy one-time costs (none expected) must not hide
        // in the measured pass.
        hammer(&c);
        let n = allocs_of(|| hammer(&c));
        assert_eq!(n, 0, "telemetry {mode:?} allocated {n} times on the hot path");
    }
}

#[test]
fn snapshot_may_allocate_but_recording_around_it_does_not() {
    // The snapshot path is allowed to allocate (it builds the merged
    // report), but it must not flip the recorders into an allocating
    // state afterwards.
    let c = ObsCollector::new(Telemetry::Spans, 2);
    hammer(&c);
    let snap = c.snapshot(NetStats::default());
    assert!(!snap.spans.is_empty(), "spans mode must surface the span tail");
    let n = allocs_of(|| hammer(&c));
    assert_eq!(n, 0, "recording after a snapshot allocated {n} times");
}

//! # munin-obs
//!
//! Runtime observability for the wall-clock fabrics (`MuninRt`/`MuninTcp`
//! and the Ivy twins). The paper's premise is that *measuring* access
//! behaviour is what unlocks type-specific coherence; `crates/trace`
//! reproduces that offline for the virtual-time simulator, and this crate
//! gives the production fabrics the same eyes while they run:
//!
//! * **Per-op latency histograms** — log-bucketed (power-of-2, HDR-style)
//!   fixed arrays, one set per application thread, split by op class and
//!   blocking-vs-pipelined. Recording is a bucket index plus a few relaxed
//!   atomic adds: no locks, no allocation, no syscalls on the hot path.
//! * **Causal remote-op spans** — the fabric is per-thread FIFO and the
//!   server-side `OpGate` admits at most one outstanding op per thread, so
//!   a per-thread sequence number stamps each op exactly once on both
//!   sides. Wall-clock (`SystemTime`) stamps at issue, wire forward,
//!   server dispatch, home-node handling, reply and resume are kept in
//!   fixed rings and joined into [`OpSpan`]s at teardown.
//! * **A live metrics surface** — [`MetricsSnapshot`] merges the
//!   histograms, per-object access counters and [`NetStats`] at any
//!   moment (teardown, SIGUSR1, mid-run), renders as Prometheus-style
//!   text exposition or first-party JSON, and lands in
//!   `RunReport::metrics`.
//!
//! Everything is gated by [`munin_types::Telemetry`]: `Off` costs one
//! branch, `Counters` (the default) the histogram/counter adds, `Spans`
//! additionally the `SystemTime` stamps and ring pushes.

mod collect;
pub mod cover;
mod hist;
mod snapshot;
mod span;

pub use collect::{AccessKind, ObsCollector, OBJ_TABLE_SLOTS, SPAN_RING_CAP};
pub use cover::{CovRow, CoverageMap, CoverageSnapshot, Transition};
pub use hist::{bucket_floor_us, AtomicHistogram, Histogram, OpClass, HIST_BUCKETS};
pub use snapshot::{ClassStat, MetricsSnapshot, ObjectStat};
pub use span::{OpSpan, SrvSpan};

/// Microseconds since the UNIX epoch — the span clock. `SystemTime` is the
/// one clock the multi-process fabric's loopback children share with the
/// coordinator, so stamps taken in different processes on the same host
/// are directly comparable (the residual error is scheduler noise, not
/// clock-domain skew).
pub fn wall_us() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone_enough() {
        let a = wall_us();
        let b = wall_us();
        assert!(b >= a, "SystemTime went backwards within one test: {a} -> {b}");
        // Sanity: we are after 2020 (1.58e15 µs), i.e. the epoch math holds.
        assert!(a > 1_500_000_000_000_000, "implausible wall stamp {a}");
    }
}

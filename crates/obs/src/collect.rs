//! The per-world collector both fabrics thread through their shared
//! state.
//!
//! One `ObsCollector` lives in the rt kernel's `Shared` (each process of
//! the TCP fabric has its own and the wire carries the server halves
//! home). Layout is strictly per-thread: the client-side recorders are
//! touched only by the owning application thread, the server-side state
//! only by the (single) server loop currently holding that thread's op —
//! so the mutexes below are uncontended by construction and exist to make
//! concurrent snapshots sound, not to arbitrate writers.
//!
//! Everything is preallocated at construction: recording never allocates.

use crate::hist::{AtomicHistogram, OpClass};
use crate::snapshot::{join_spans, ClassStat, MetricsSnapshot, ObjectStat};
use crate::span::{ClientSpan, Ring, SrvSpan};
use crate::wall_us;
use munin_net::NetStats;
use munin_types::{ObjectId, Telemetry, ThreadId};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Spans kept per thread (client ring, server ring and home-stamp ring
/// each): the observability tail a failing run ships with its artifacts.
pub const SPAN_RING_CAP: usize = 128;

/// Slots in the fixed per-object access table. Objects beyond the table's
/// reach are counted in `overflow` rather than dropped silently.
pub const OBJ_TABLE_SLOTS: usize = 64;

/// Expected upper bound on ops queued between wire arrival and gate
/// dispatch (the client windows in-flight ops far below this).
const ARRIVAL_QUEUE_CAP: usize = 1024;

/// What an access did to an object — feeds the per-object counters the
/// future retyping detectors read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    Read,
    Write,
    Atomic,
}

/// Server-side per-thread span state. The gate admits one op per thread,
/// so `cur` is the op the protocol server currently holds.
#[derive(Debug)]
struct SrvState {
    /// Wire-forward stamps for ops that arrived but are not yet
    /// dispatched (queued in the gate). FIFO matches dispatch order.
    arrivals: VecDeque<u64>,
    /// Dispatches counted so far — the server half of the span seq.
    next_seq: u64,
    /// (seq, fwd_us, dispatch_us) of the op currently in the server.
    cur: Option<(u64, u64, u64)>,
    done: Ring<SrvSpan>,
}

#[derive(Debug)]
struct ThreadObs {
    /// `[class][blocking|pipelined]` latency recorders.
    hist: Vec<AtomicHistogram>,
    client: Mutex<Ring<ClientSpan>>,
    srv: Mutex<SrvState>,
    homes: Mutex<Ring<u64>>,
}

impl ThreadObs {
    fn new() -> Self {
        ThreadObs {
            hist: (0..OpClass::COUNT * 2).map(|_| AtomicHistogram::default()).collect(),
            client: Mutex::new(Ring::new(SPAN_RING_CAP)),
            srv: Mutex::new(SrvState {
                arrivals: VecDeque::with_capacity(ARRIVAL_QUEUE_CAP),
                next_seq: 0,
                cur: None,
                done: Ring::new(SPAN_RING_CAP),
            }),
            homes: Mutex::new(Ring::new(SPAN_RING_CAP)),
        }
    }
}

/// Fixed-size per-object access counters: open addressing over
/// [`OBJ_TABLE_SLOTS`] slots, claimed by CAS on first touch. A full table
/// counts further objects in `overflow` — no allocation, ever.
#[derive(Debug)]
struct ObjTable {
    keys: Vec<AtomicU64>,
    reads: Vec<AtomicU64>,
    writes: Vec<AtomicU64>,
    atomics: Vec<AtomicU64>,
    overflow: AtomicU64,
}

impl ObjTable {
    fn new() -> Self {
        ObjTable {
            keys: (0..OBJ_TABLE_SLOTS).map(|_| AtomicU64::new(0)).collect(),
            reads: (0..OBJ_TABLE_SLOTS).map(|_| AtomicU64::new(0)).collect(),
            writes: (0..OBJ_TABLE_SLOTS).map(|_| AtomicU64::new(0)).collect(),
            atomics: (0..OBJ_TABLE_SLOTS).map(|_| AtomicU64::new(0)).collect(),
            overflow: AtomicU64::new(0),
        }
    }

    fn note(&self, obj: ObjectId, kind: AccessKind) {
        let key = obj.0.wrapping_add(1);
        let start = (obj.0 as usize) % OBJ_TABLE_SLOTS;
        for probe in 0..OBJ_TABLE_SLOTS {
            let i = (start + probe) % OBJ_TABLE_SLOTS;
            let k = self.keys[i].load(Ordering::Relaxed);
            let claimed = k == key
                || (k == 0
                    && self.keys[i]
                        .compare_exchange(0, key, Ordering::Relaxed, Ordering::Relaxed)
                        .map(|_| true)
                        .unwrap_or_else(|cur| cur == key));
            if claimed {
                let ctr = match kind {
                    AccessKind::Read => &self.reads[i],
                    AccessKind::Write => &self.writes[i],
                    AccessKind::Atomic => &self.atomics[i],
                };
                ctr.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        self.overflow.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> (Vec<ObjectStat>, u64) {
        let mut out = Vec::new();
        for i in 0..OBJ_TABLE_SLOTS {
            let k = self.keys[i].load(Ordering::Relaxed);
            if k == 0 {
                continue;
            }
            out.push(ObjectStat {
                obj: ObjectId(k - 1),
                reads: self.reads[i].load(Ordering::Relaxed),
                writes: self.writes[i].load(Ordering::Relaxed),
                atomics: self.atomics[i].load(Ordering::Relaxed),
            });
        }
        out.sort_by_key(|s| s.obj.0);
        (out, self.overflow.load(Ordering::Relaxed))
    }
}

/// The collector: one per world (per process on the TCP fabric).
#[derive(Debug)]
pub struct ObsCollector {
    mode: Telemetry,
    threads: Vec<ThreadObs>,
    objects: ObjTable,
}

impl ObsCollector {
    pub fn new(mode: Telemetry, n_threads: usize) -> Self {
        // With telemetry off, size nothing: the collector is a branch.
        let slots = if mode.enabled() { n_threads } else { 0 };
        ObsCollector {
            mode,
            threads: (0..slots).map(|_| ThreadObs::new()).collect(),
            objects: ObjTable::new(),
        }
    }

    pub fn mode(&self) -> Telemetry {
        self.mode
    }

    pub fn enabled(&self) -> bool {
        self.mode.enabled()
    }

    pub fn spans(&self) -> bool {
        self.mode.spans()
    }

    #[inline]
    fn slot(&self, t: ThreadId) -> Option<&ThreadObs> {
        self.threads.get(t.0 as usize)
    }

    // ---- client side (the op hot path) --------------------------------

    /// Record one completed op's wall latency.
    #[inline]
    pub fn record_op(&self, t: ThreadId, class: OpClass, pipelined: bool, us: u64) {
        if let Some(s) = self.slot(t) {
            s.hist[class.index() * 2 + pipelined as usize].record(us);
        }
    }

    /// Count an application-level access against its object.
    #[inline]
    pub fn note_access(&self, obj: ObjectId, kind: AccessKind) {
        if self.mode.enabled() {
            self.objects.note(obj, kind);
        }
    }

    /// Record the client half of a span (called at the token wait).
    pub fn client_span(
        &self,
        t: ThreadId,
        seq: u64,
        class: OpClass,
        pipelined: bool,
        issue_us: u64,
        resume_us: u64,
    ) {
        if !self.mode.spans() {
            return;
        }
        if let Some(s) = self.slot(t) {
            s.client.lock().unwrap_or_else(|p| p.into_inner()).push(ClientSpan {
                seq,
                class,
                pipelined,
                issue_us,
                resume_us,
            });
        }
    }

    // ---- serving side -------------------------------------------------

    /// A forwarded op for `t` just came off the wire (TCP children only);
    /// remember its forward stamp for the dispatch that will follow.
    pub fn note_wire_arrival(&self, t: ThreadId, fwd_us: u64) {
        if !self.mode.spans() || fwd_us == 0 {
            return;
        }
        if let Some(s) = self.slot(t) {
            s.srv.lock().unwrap_or_else(|p| p.into_inner()).arrivals.push_back(fwd_us);
        }
    }

    /// The gate just handed `t`'s next op to the protocol server: stamp
    /// it and assign the next per-thread seq.
    pub fn srv_dispatch(&self, t: ThreadId) {
        if !self.mode.spans() {
            return;
        }
        if let Some(s) = self.slot(t) {
            let mut srv = s.srv.lock().unwrap_or_else(|p| p.into_inner());
            // A previous op that never resumed would leave `cur` behind;
            // close it degenerately so seq alignment survives.
            if let Some((seq, fwd, disp)) = srv.cur.take() {
                srv.done.push(SrvSpan { seq, fwd_us: fwd, dispatch_us: disp, reply_us: disp });
            }
            // Pre-increment: the client numbers issues starting at 1, and
            // gate dispatches happen once per issue in the same order.
            srv.next_seq += 1;
            let seq = srv.next_seq;
            let fwd = srv.arrivals.pop_front().unwrap_or(0);
            srv.cur = Some((seq, fwd, wall_us()));
        }
    }

    /// The op the server held for `t` just produced its result: stamp the
    /// reply, file the span, and return it (the TCP child attaches it to
    /// the `Resume` frame).
    pub fn srv_finish(&self, t: ThreadId) -> Option<SrvSpan> {
        if !self.mode.spans() {
            return None;
        }
        let s = self.slot(t)?;
        let mut srv = s.srv.lock().unwrap_or_else(|p| p.into_inner());
        let (seq, fwd_us, dispatch_us) = srv.cur.take()?;
        let span = SrvSpan { seq, fwd_us, dispatch_us, reply_us: wall_us() };
        srv.done.push(span);
        Some(span)
    }

    /// Ingest a server half that arrived over the wire (coordinator side).
    pub fn srv_record(&self, t: ThreadId, span: SrvSpan) {
        if !self.mode.spans() {
            return;
        }
        if let Some(s) = self.slot(t) {
            s.srv.lock().unwrap_or_else(|p| p.into_inner()).done.push(span);
        }
    }

    /// The home node just handled the authoritative part of an op issued
    /// by `t` (e.g. the fetch-add at the object's home).
    pub fn srv_home(&self, t: ThreadId) {
        if !self.mode.spans() {
            return;
        }
        if let Some(s) = self.slot(t) {
            s.homes.lock().unwrap_or_else(|p| p.into_inner()).push(wall_us());
        }
    }

    /// Drain the home stamps for shipping in a TCP child's `Done` frame.
    pub fn take_homes(&self) -> Vec<(ThreadId, u64)> {
        if !self.mode.spans() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (i, s) in self.threads.iter().enumerate() {
            let t = ThreadId(i as u32);
            for us in s.homes.lock().unwrap_or_else(|p| p.into_inner()).take_in_order() {
                out.push((t, us));
            }
        }
        out
    }

    /// Ingest home stamps shipped from a remote node.
    pub fn ingest_homes(&self, homes: &[(ThreadId, u64)]) {
        if !self.mode.spans() {
            return;
        }
        for (t, us) in homes {
            if let Some(s) = self.slot(*t) {
                s.homes.lock().unwrap_or_else(|p| p.into_inner()).push(*us);
            }
        }
    }

    // ---- snapshot ------------------------------------------------------

    /// Merge everything recorded so far into a [`MetricsSnapshot`]. Safe
    /// to call while the world is still running (the SIGUSR1 path does);
    /// concurrent recording simply lands in the next snapshot.
    pub fn snapshot(&self, net: NetStats) -> MetricsSnapshot {
        let mut hists: Vec<ClassStat> = Vec::new();
        for class in OpClass::ALL {
            for pipelined in [false, true] {
                let mut merged = crate::Histogram::default();
                for s in &self.threads {
                    let h = &s.hist[class.index() * 2 + pipelined as usize];
                    if !h.is_empty() {
                        merged.merge(&h.snapshot());
                    }
                }
                if !merged.is_empty() {
                    hists.push(ClassStat { class, pipelined, hist: merged });
                }
            }
        }
        let (objects, objects_overflow) = self.objects.snapshot();

        let mut spans = Vec::new();
        let mut spans_dropped = 0u64;
        if self.mode.spans() {
            for (i, s) in self.threads.iter().enumerate() {
                let t = ThreadId(i as u32);
                let client = s.client.lock().unwrap_or_else(|p| p.into_inner());
                let srv = s.srv.lock().unwrap_or_else(|p| p.into_inner());
                let homes = s.homes.lock().unwrap_or_else(|p| p.into_inner());
                spans_dropped += client.dropped + srv.done.dropped;
                let clients: Vec<_> = client.iter_in_order().copied().collect();
                let srvs: Vec<_> = srv.done.iter_in_order().copied().collect();
                let home_stamps: Vec<u64> = homes.iter_in_order().copied().collect();
                spans.extend(join_spans(t, &clients, &srvs, &home_stamps));
            }
        }

        MetricsSnapshot {
            telemetry: self.mode,
            hists,
            objects,
            objects_overflow,
            net,
            spans,
            spans_dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_mode_records_nothing() {
        let c = ObsCollector::new(Telemetry::Off, 2);
        c.record_op(ThreadId(0), OpClass::Read, false, 10);
        c.note_access(ObjectId(3), AccessKind::Read);
        c.srv_dispatch(ThreadId(0));
        assert!(c.srv_finish(ThreadId(0)).is_none());
        let snap = c.snapshot(NetStats::default());
        assert!(snap.hists.is_empty());
        assert!(snap.objects.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn counters_mode_fills_histograms_and_objects() {
        let c = ObsCollector::new(Telemetry::Counters, 2);
        c.record_op(ThreadId(0), OpClass::FetchAdd, false, 7);
        c.record_op(ThreadId(1), OpClass::FetchAdd, false, 9);
        c.record_op(ThreadId(1), OpClass::FetchAdd, true, 3);
        c.note_access(ObjectId(5), AccessKind::Atomic);
        c.note_access(ObjectId(5), AccessKind::Atomic);
        c.note_access(ObjectId(6), AccessKind::Write);
        let snap = c.snapshot(NetStats::default());
        let blocking = snap
            .hists
            .iter()
            .find(|h| h.class == OpClass::FetchAdd && !h.pipelined)
            .expect("blocking fetch-add histogram");
        assert_eq!(blocking.hist.count, 2);
        assert_eq!(blocking.hist.sum_us, 16);
        let piped = snap
            .hists
            .iter()
            .find(|h| h.class == OpClass::FetchAdd && h.pipelined)
            .expect("pipelined fetch-add histogram");
        assert_eq!(piped.hist.count, 1);
        assert_eq!(snap.objects.len(), 2);
        assert_eq!(snap.objects[0].atomics, 2);
        assert_eq!(snap.objects[1].writes, 1);
        // Counters mode keeps no spans.
        c.srv_dispatch(ThreadId(0));
        assert!(c.srv_finish(ThreadId(0)).is_none());
    }

    #[test]
    fn spans_join_client_server_and_home_halves() {
        let c = ObsCollector::new(Telemetry::Spans, 1);
        let t = ThreadId(0);
        // Op 0: dispatched and finished, with a home stamp in-window.
        c.note_wire_arrival(t, wall_us());
        c.srv_dispatch(t);
        c.srv_home(t);
        let srv = c.srv_finish(t).expect("server half");
        assert_eq!(srv.seq, 1, "seq numbering starts at 1, like the client's");
        assert!(srv.fwd_us > 0 && srv.reply_us >= srv.dispatch_us);
        c.client_span(t, 1, OpClass::FetchAdd, false, srv.fwd_us - 1, srv.reply_us + 1);
        let snap = c.snapshot(NetStats::default());
        assert_eq!(snap.spans.len(), 1);
        let s = &snap.spans[0];
        assert_eq!(s.seq, 1);
        assert_eq!(s.class, OpClass::FetchAdd);
        assert!(s.fwd_us.is_some());
        assert!(s.home_us.is_some(), "home stamp should match the dispatch..reply window");
        assert!(s.reply_us.is_some());
        let sum: u64 = s.segments().iter().map(|(_, a, b)| b - a).sum();
        assert_eq!(sum, s.total_us());
    }

    #[test]
    fn object_table_overflow_counts_instead_of_dropping() {
        let c = ObsCollector::new(Telemetry::Counters, 1);
        for i in 0..(OBJ_TABLE_SLOTS as u64 + 10) {
            c.note_access(ObjectId(i), AccessKind::Read);
        }
        let snap = c.snapshot(NetStats::default());
        assert_eq!(snap.objects.len(), OBJ_TABLE_SLOTS);
        assert_eq!(snap.objects_overflow, 10);
    }

    #[test]
    fn homes_round_trip_through_take_and_ingest() {
        let child = ObsCollector::new(Telemetry::Spans, 2);
        child.srv_home(ThreadId(1));
        child.srv_home(ThreadId(1));
        let shipped = child.take_homes();
        assert_eq!(shipped.len(), 2);
        assert!(child.take_homes().is_empty(), "take drains");
        let coord = ObsCollector::new(Telemetry::Spans, 2);
        coord.ingest_homes(&shipped);
        // Join them: fabricate matching client+server halves around them.
        let t = ThreadId(1);
        let us = shipped[0].1;
        coord.srv_record(t, SrvSpan { seq: 0, fwd_us: 0, dispatch_us: us - 1, reply_us: us + 1 });
        coord.client_span(t, 0, OpClass::Lock, false, us - 2, us + 2);
        let snap = coord.snapshot(NetStats::default());
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].home_us, Some(us));
    }
}

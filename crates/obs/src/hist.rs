//! Log-bucketed latency histograms and the op classification they are
//! keyed by.
//!
//! Buckets are powers of two: bucket `i` holds observations in
//! `[2^i, 2^(i+1))` µs (bucket 0 also takes 0 µs). Forty buckets cover
//! half a trillion microseconds — several days — so no observation is
//! ever out of range in practice and the top bucket just saturates.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-2 buckets per histogram.
pub const HIST_BUCKETS: usize = 40;

/// Coarse classification of DSM operations for latency accounting.
/// Mirrors `DsmOp` but collapses the variants that share a latency
/// profile; `Other` catches phase markers, exits and anything future.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    Alloc,
    Read,
    Write,
    FetchAdd,
    Lock,
    Unlock,
    Barrier,
    Cond,
    Flush,
    Other,
}

impl OpClass {
    /// Every class, in `index()` order.
    pub const ALL: [OpClass; OpClass::COUNT] = [
        OpClass::Alloc,
        OpClass::Read,
        OpClass::Write,
        OpClass::FetchAdd,
        OpClass::Lock,
        OpClass::Unlock,
        OpClass::Barrier,
        OpClass::Cond,
        OpClass::Flush,
        OpClass::Other,
    ];

    /// Number of distinct classes.
    pub const COUNT: usize = 10;

    /// Dense index for array-backed recorders.
    pub fn index(&self) -> usize {
        match self {
            OpClass::Alloc => 0,
            OpClass::Read => 1,
            OpClass::Write => 2,
            OpClass::FetchAdd => 3,
            OpClass::Lock => 4,
            OpClass::Unlock => 5,
            OpClass::Barrier => 6,
            OpClass::Cond => 7,
            OpClass::Flush => 8,
            OpClass::Other => 9,
        }
    }

    /// Stable label used in metrics output.
    pub fn label(&self) -> &'static str {
        match self {
            OpClass::Alloc => "alloc",
            OpClass::Read => "read",
            OpClass::Write => "write",
            OpClass::FetchAdd => "fetch_add",
            OpClass::Lock => "lock",
            OpClass::Unlock => "unlock",
            OpClass::Barrier => "barrier",
            OpClass::Cond => "cond",
            OpClass::Flush => "flush",
            OpClass::Other => "other",
        }
    }

    /// The class at dense index `i` (inverse of [`OpClass::index`]).
    pub fn from_index(i: usize) -> OpClass {
        OpClass::ALL[i]
    }
}

/// Bucket index for a latency observation.
fn bucket_index(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        ((63 - us.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Lower edge (µs) of bucket `i` — used when rendering bucket boundaries.
pub fn bucket_floor_us(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// An owned, mergeable histogram: the snapshot/report form.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    pub buckets: [u64; HIST_BUCKETS],
    pub count: u64,
    pub sum_us: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; HIST_BUCKETS], count: 0, sum_us: 0 }
    }
}

impl Histogram {
    pub fn record(&mut self, us: u64) {
        self.buckets[bucket_index(us)] += 1;
        self.count += 1;
        self.sum_us += us;
    }

    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean latency in µs (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in [0,1]) by linear interpolation inside
    /// the covering power-of-2 bucket. Log buckets bound the relative
    /// error at 2x, which is plenty for p50/p90/p99 trend lines.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo = bucket_floor_us(i) as f64;
                let hi = if i == 0 { 2.0 } else { (1u64 << (i + 1)) as f64 };
                let frac = (rank - seen) as f64 / n as f64;
                return (lo + frac * (hi - lo)) as u64;
            }
            seen += n;
        }
        bucket_floor_us(HIST_BUCKETS - 1)
    }

    pub fn p50_us(&self) -> u64 {
        self.quantile_us(0.50)
    }
    pub fn p90_us(&self) -> u64 {
        self.quantile_us(0.90)
    }
    pub fn p99_us(&self) -> u64 {
        self.quantile_us(0.99)
    }
}

/// The hot-path form: a fixed array of relaxed atomics. One per
/// (thread, class, pipelined?) slot, preallocated at world construction,
/// written only by the owning thread and read by whoever snapshots.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    #[inline]
    pub fn record(&self, us: u64) {
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    pub fn is_empty(&self) -> bool {
        self.count.load(Ordering::Relaxed) == 0
    }

    pub fn snapshot(&self) -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_power_of_two_ranges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn quantiles_bracket_the_observations() {
        let mut h = Histogram::default();
        for us in [10u64, 12, 14, 100, 120, 140, 1000, 1200, 1400, 50_000] {
            h.record(us);
        }
        assert_eq!(h.count, 10);
        let p50 = h.p50_us();
        assert!((8..=256).contains(&p50), "p50 {p50} outside the mid cluster");
        let p99 = h.p99_us();
        assert!(p99 >= 32_768, "p99 {p99} must land in the 50ms outlier bucket");
        assert!(h.p50_us() <= h.p90_us() && h.p90_us() <= h.p99_us());
    }

    #[test]
    fn merge_adds_counts_and_sums() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        a.record(5);
        b.record(500);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum_us, 512);
    }

    #[test]
    fn atomic_snapshot_matches_plain() {
        let ah = AtomicHistogram::default();
        let mut h = Histogram::default();
        for us in [0u64, 1, 33, 900, 1_000_000] {
            ah.record(us);
            h.record(us);
        }
        assert_eq!(ah.snapshot(), h);
    }

    #[test]
    fn class_indices_are_dense_and_invertible() {
        for (i, c) in OpClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(OpClass::from_index(i), *c);
        }
    }
}

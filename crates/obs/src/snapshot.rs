//! The merged metrics surface: what teardown folds into
//! `RunReport::metrics`, what SIGUSR1 dumps mid-run, and what
//! `scripts/bench.sh` writes out as `metrics.json`.

use crate::hist::{Histogram, OpClass};
use crate::span::{ClientSpan, OpSpan, SrvSpan};
use munin_net::NetStats;
use munin_types::{ObjectId, Telemetry, ThreadId};
use std::fmt::Write as _;

/// One (op class, blocking-vs-pipelined) latency distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassStat {
    pub class: OpClass,
    pub pipelined: bool,
    pub hist: Histogram,
}

impl ClassStat {
    /// "blocking" or "pipelined" — the metrics label.
    pub fn mode_label(&self) -> &'static str {
        if self.pipelined {
            "pipelined"
        } else {
            "blocking"
        }
    }
}

/// Access totals for one shared object.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectStat {
    pub obj: ObjectId,
    pub reads: u64,
    pub writes: u64,
    pub atomics: u64,
}

/// Everything the fabrics observed about a run, merged at one moment.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    pub telemetry: Telemetry,
    /// Per-(class, mode) latency histograms; only non-empty entries.
    pub hists: Vec<ClassStat>,
    /// Per-object access counters (first [`crate::OBJ_TABLE_SLOTS`]
    /// objects touched; the rest land in `objects_overflow`).
    pub objects: Vec<ObjectStat>,
    pub objects_overflow: u64,
    /// Wire statistics at snapshot time.
    pub net: NetStats,
    /// Joined causal spans (tail of at most [`crate::SPAN_RING_CAP`] per
    /// thread; empty unless telemetry is `Spans`).
    pub spans: Vec<OpSpan>,
    /// Span halves lost to ring overwrites (recorded so a truncated tail
    /// never reads as a complete history).
    pub spans_dropped: u64,
}

impl MetricsSnapshot {
    /// Prometheus-style text exposition.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# TYPE munin_op_latency_us summary\n");
        for cs in &self.hists {
            let (c, m) = (cs.class.label(), cs.mode_label());
            for (q, v) in
                [("0.5", cs.hist.p50_us()), ("0.9", cs.hist.p90_us()), ("0.99", cs.hist.p99_us())]
            {
                let _ = writeln!(
                    out,
                    "munin_op_latency_us{{class=\"{c}\",mode=\"{m}\",quantile=\"{q}\"}} {v}"
                );
            }
            let _ = writeln!(
                out,
                "munin_op_latency_us_sum{{class=\"{c}\",mode=\"{m}\"}} {}",
                cs.hist.sum_us
            );
            let _ = writeln!(
                out,
                "munin_op_latency_us_count{{class=\"{c}\",mode=\"{m}\"}} {}",
                cs.hist.count
            );
        }
        out.push_str("# TYPE munin_object_accesses_total counter\n");
        for o in &self.objects {
            for (kind, v) in [("read", o.reads), ("write", o.writes), ("atomic", o.atomics)] {
                if v > 0 {
                    let _ = writeln!(
                        out,
                        "munin_object_accesses_total{{obj=\"{}\",kind=\"{kind}\"}} {v}",
                        o.obj.0
                    );
                }
            }
        }
        if self.objects_overflow > 0 {
            let _ = writeln!(out, "munin_object_table_overflow_total {}", self.objects_overflow);
        }
        let _ = writeln!(out, "munin_net_messages_total {}", self.net.messages);
        let _ = writeln!(out, "munin_net_bytes_total {}", self.net.bytes);
        if self.telemetry.spans() {
            let _ = writeln!(out, "munin_spans_recorded {}", self.spans.len());
            let _ = writeln!(out, "munin_spans_dropped_total {}", self.spans_dropped);
        }
        out
    }

    /// First-party JSON (schema documented in the README's Observability
    /// section); `spans` carries the joined tail when telemetry is
    /// `Spans`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(
            out,
            "  \"telemetry\": \"{}\",",
            match self.telemetry {
                Telemetry::Off => "off",
                Telemetry::Counters => "counters",
                Telemetry::Spans => "spans",
            }
        );
        out.push_str("  \"ops\": [\n");
        for (i, cs) in self.hists.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"class\": \"{}\", \"mode\": \"{}\", \"count\": {}, \
                 \"mean_us\": {:.1}, \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}}}",
                cs.class.label(),
                cs.mode_label(),
                cs.hist.count,
                cs.hist.mean_us(),
                cs.hist.p50_us(),
                cs.hist.p90_us(),
                cs.hist.p99_us()
            );
            out.push_str(if i + 1 < self.hists.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n  \"objects\": [\n");
        for (i, o) in self.objects.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"obj\": {}, \"reads\": {}, \"writes\": {}, \"atomics\": {}}}",
                o.obj.0, o.reads, o.writes, o.atomics
            );
            out.push_str(if i + 1 < self.objects.len() { ",\n" } else { "\n" });
        }
        let _ = writeln!(out, "  ],\n  \"objects_overflow\": {},", self.objects_overflow);
        let _ = writeln!(
            out,
            "  \"net\": {{\"messages\": {}, \"bytes\": {}}},",
            self.net.messages, self.net.bytes
        );
        let _ = writeln!(out, "  \"spans_dropped\": {},", self.spans_dropped);
        out.push_str("  \"spans\": [\n");
        for (i, s) in self.spans.iter().enumerate() {
            let opt = |v: Option<u64>| v.map(|u| u.to_string()).unwrap_or_else(|| "null".into());
            let _ = write!(
                out,
                "    {{\"thread\": {}, \"seq\": {}, \"class\": \"{}\", \"pipelined\": {}, \
                 \"issue_us\": {}, \"fwd_us\": {}, \"dispatch_us\": {}, \"home_us\": {}, \
                 \"reply_us\": {}, \"resume_us\": {}}}",
                s.thread.0,
                s.seq,
                s.class.label(),
                s.pipelined,
                s.issue_us,
                opt(s.fwd_us),
                opt(s.dispatch_us),
                opt(s.home_us),
                opt(s.reply_us),
                s.resume_us
            );
            out.push_str(if i + 1 < self.spans.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The latency distribution for one (class, mode), if any op of that
    /// shape ran.
    pub fn class_hist(&self, class: OpClass, pipelined: bool) -> Option<&Histogram> {
        self.hists
            .iter()
            .find(|cs| cs.class == class && cs.pipelined == pipelined)
            .map(|cs| &cs.hist)
    }
}

/// Join one thread's client and server span halves by per-thread seq,
/// then fold the (time-ordered) home stamps into the op whose
/// dispatch..reply window contains them. All stamps come from one host
/// clock (`SystemTime` on the same machine, even across the TCP fabric's
/// processes), so the home handling lands strictly inside its op's
/// dispatch..reply window and containment *is* causality — no slack.
/// Widening the window would misattribute stamps: back-to-back ops finish
/// microseconds apart, so any slack swallows the next op's home stamp.
/// Ops of one thread are serialized by the gate, so the windows do not
/// overlap and in-order matching is unambiguous; unmatched home stamps
/// (e.g. a clock step mid-run) are dropped.
pub(crate) fn join_spans(
    thread: ThreadId,
    clients: &[ClientSpan],
    srvs: &[SrvSpan],
    homes: &[u64],
) -> Vec<OpSpan> {
    let mut homes: Vec<u64> = homes.to_vec();
    homes.sort_unstable();
    let mut next_home = 0usize;
    let mut out = Vec::with_capacity(clients.len());
    for c in clients {
        let srv = srvs.iter().find(|s| s.seq == c.seq);
        let mut home_us = None;
        if let Some(s) = srv {
            let (lo, hi) = (s.dispatch_us, s.reply_us);
            while next_home < homes.len() && homes[next_home] < lo {
                next_home += 1;
            }
            if next_home < homes.len() && homes[next_home] <= hi {
                home_us = Some(homes[next_home]);
                next_home += 1;
            }
        }
        out.push(OpSpan {
            thread,
            seq: c.seq,
            class: c.class,
            pipelined: c.pipelined,
            issue_us: c.issue_us,
            fwd_us: srv.map(|s| s.fwd_us).filter(|f| *f > 0),
            dispatch_us: srv.map(|s| s.dispatch_us),
            home_us,
            reply_us: srv.map(|s| s.reply_us),
            resume_us: c.resume_us,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cspan(seq: u64, issue: u64, resume: u64) -> ClientSpan {
        ClientSpan {
            seq,
            class: OpClass::FetchAdd,
            pipelined: false,
            issue_us: issue,
            resume_us: resume,
        }
    }

    #[test]
    fn join_matches_by_seq_and_window() {
        let clients = vec![cspan(0, 100, 200), cspan(1, 210, 300)];
        let srvs = vec![
            SrvSpan { seq: 0, fwd_us: 110, dispatch_us: 130, reply_us: 180 },
            SrvSpan { seq: 1, fwd_us: 0, dispatch_us: 230, reply_us: 280 },
        ];
        let homes = vec![150, 250];
        let joined = join_spans(ThreadId(0), &clients, &srvs, &homes);
        assert_eq!(joined.len(), 2);
        assert_eq!(joined[0].home_us, Some(150));
        assert_eq!(joined[0].fwd_us, Some(110));
        assert_eq!(joined[1].home_us, Some(250));
        assert_eq!(joined[1].fwd_us, None, "fwd 0 means no wire hop");
    }

    #[test]
    fn join_survives_missing_halves() {
        // Client ring kept more than the server ring (overwrites).
        let clients = vec![cspan(5, 100, 200)];
        let joined = join_spans(ThreadId(0), &clients, &[], &[777_000_000]);
        assert_eq!(joined.len(), 1);
        assert!(joined[0].dispatch_us.is_none());
        assert!(joined[0].home_us.is_none(), "no window, no home match");
        assert_eq!(joined[0].total_us(), 100);
    }

    #[test]
    fn renderers_cover_every_section() {
        let mut h = Histogram::default();
        for us in [10, 20, 30] {
            h.record(us);
        }
        let snap = MetricsSnapshot {
            telemetry: Telemetry::Spans,
            hists: vec![ClassStat { class: OpClass::FetchAdd, pipelined: false, hist: h }],
            objects: vec![ObjectStat { obj: ObjectId(2), reads: 1, writes: 0, atomics: 9 }],
            objects_overflow: 0,
            net: NetStats::default(),
            spans: vec![OpSpan {
                thread: ThreadId(0),
                seq: 0,
                class: OpClass::FetchAdd,
                pipelined: true,
                issue_us: 1,
                fwd_us: None,
                dispatch_us: Some(2),
                home_us: None,
                reply_us: Some(3),
                resume_us: 4,
            }],
            spans_dropped: 0,
        };
        let text = snap.render_text();
        assert!(text.contains(
            "munin_op_latency_us{class=\"fetch_add\",mode=\"blocking\",quantile=\"0.5\"}"
        ));
        assert!(text.contains("munin_object_accesses_total{obj=\"2\",kind=\"atomic\"} 9"));
        assert!(text.contains("munin_spans_recorded 1"));
        let json = snap.render_json();
        assert!(json.contains("\"class\": \"fetch_add\""));
        assert!(json.contains("\"home_us\": null"));
        assert!(json.contains("\"resume_us\": 4"));
        assert!(snap.class_hist(OpClass::FetchAdd, false).is_some());
        assert!(snap.class_hist(OpClass::Read, false).is_none());
    }
}

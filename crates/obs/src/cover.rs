//! Protocol-state transition coverage.
//!
//! A [`CoverageMap`] records which (protocol, object-type, state, event)
//! transitions actually fired in a run — the observability substrate for
//! coverage-guided fault campaigns (`crates/campaign`'s explore mode). The
//! protocol servers note transitions through the kernel seam
//! (`KernelApi::coverage`), so the same instrumentation feeds all three
//! fabrics:
//!
//! * **sim / rt** — servers share one map through the world builder; notes
//!   land directly.
//! * **tcp** — each child process keeps its own map and ships its rows home
//!   in the `Done` control frame, where the coordinator ingests them (the
//!   same teardown merge as `NetStats` shards and home-leg span stamps).
//!
//! Cost model: a run without a map pays one `Option` branch per note site.
//! A run with a map pays a mutex lock and a hash-map bump — transitions
//! fire at protocol-event rate (per fault/flush/lease action, not per
//! byte), so this is observability-grade, not hot-path-grade, overhead.

use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

/// One protocol-state transition, identified structurally. All four parts
/// are `&'static str` so noting a transition allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Transition {
    /// Protocol short name (`"munin"`, `"ivy"`, `"tardis"`).
    pub proto: &'static str,
    /// Object-type axis: the sharing annotation label (`"write-many"`,
    /// `"migratory"`, ...) or a structural class (`"page"`, `"lock"`,
    /// `"barrier"`).
    pub object: &'static str,
    /// Coarse protocol state the event fired in.
    pub state: &'static str,
    /// The transition event itself.
    pub event: &'static str,
}

impl Transition {
    pub const fn new(
        proto: &'static str,
        object: &'static str,
        state: &'static str,
        event: &'static str,
    ) -> Self {
        Transition { proto, object, state, event }
    }

    /// Canonical `proto/object/state/event` key (the manifest format).
    pub fn key(&self) -> String {
        format!("{}/{}/{}/{}", self.proto, self.object, self.state, self.event)
    }
}

/// One owned coverage row: a transition plus how often it fired. This is
/// the wire/reporting form — child processes ship these home in `Done`
/// frames, and snapshots are sorted lists of them.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CovRow {
    pub proto: String,
    pub object: String,
    pub state: String,
    pub event: String,
    pub count: u64,
}

impl CovRow {
    /// Canonical `proto/object/state/event` key (the manifest format).
    pub fn key(&self) -> String {
        format!("{}/{}/{}/{}", self.proto, self.object, self.state, self.event)
    }
}

type OwnedKey = (String, String, String, String);

/// Thread-safe transition recorder shared by every server of one run.
///
/// Two stores: `local` is keyed by the static [`Transition`] tuples the
/// in-process note path uses (no allocation after a key's first note);
/// `ingested` holds rows that arrived over the wire from child processes,
/// keyed by owned strings. [`CoverageMap::rows`] merges both.
#[derive(Debug, Default)]
pub struct CoverageMap {
    local: Mutex<HashMap<Transition, u64>>,
    ingested: Mutex<BTreeMap<OwnedKey, u64>>,
}

impl CoverageMap {
    pub fn new() -> Self {
        CoverageMap::default()
    }

    /// Record one firing of `t`.
    pub fn note(&self, t: Transition) {
        *self.local.lock().unwrap_or_else(|p| p.into_inner()).entry(t).or_insert(0) += 1;
    }

    /// Merge rows shipped home by another process (the coordinator's
    /// `Done`-frame path).
    pub fn ingest(&self, rows: &[CovRow]) {
        let mut ing = self.ingested.lock().unwrap_or_else(|p| p.into_inner());
        for r in rows {
            *ing.entry((r.proto.clone(), r.object.clone(), r.state.clone(), r.event.clone()))
                .or_insert(0) += r.count;
        }
    }

    /// Merged, sorted snapshot of everything recorded so far.
    pub fn rows(&self) -> Vec<CovRow> {
        let mut merged: BTreeMap<OwnedKey, u64> =
            self.ingested.lock().unwrap_or_else(|p| p.into_inner()).clone();
        for (t, n) in self.local.lock().unwrap_or_else(|p| p.into_inner()).iter() {
            *merged
                .entry((
                    t.proto.to_string(),
                    t.object.to_string(),
                    t.state.to_string(),
                    t.event.to_string(),
                ))
                .or_insert(0) += n;
        }
        merged
            .into_iter()
            .map(|((proto, object, state, event), count)| CovRow {
                proto,
                object,
                state,
                event,
                count,
            })
            .collect()
    }

    pub fn snapshot(&self) -> CoverageSnapshot {
        CoverageSnapshot { rows: self.rows() }
    }

    /// Number of distinct transitions recorded.
    pub fn distinct(&self) -> usize {
        let ing = self.ingested.lock().unwrap_or_else(|p| p.into_inner());
        let loc = self.local.lock().unwrap_or_else(|p| p.into_inner());
        let mut n = ing.len();
        for t in loc.keys() {
            let k = (
                t.proto.to_string(),
                t.object.to_string(),
                t.state.to_string(),
                t.event.to_string(),
            );
            if !ing.contains_key(&k) {
                n += 1;
            }
        }
        n
    }
}

/// An immutable, sorted view of a [`CoverageMap`] — what campaign runs
/// return and what explore-mode reports are rendered from.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageSnapshot {
    /// Sorted by (proto, object, state, event).
    pub rows: Vec<CovRow>,
}

impl CoverageSnapshot {
    /// Distinct transitions (rows are already deduplicated).
    pub fn distinct(&self) -> usize {
        self.rows.len()
    }

    /// Total transition firings.
    pub fn total(&self) -> u64 {
        self.rows.iter().map(|r| r.count).sum()
    }

    /// Does this snapshot contain a transition the other lacks?
    pub fn covers_new(&self, seen: &CoverageSnapshot) -> bool {
        let known: std::collections::BTreeSet<&CovRow> = seen.rows.iter().collect();
        // Compare keys only: counts differ run to run.
        let keys: std::collections::BTreeSet<String> = known.iter().map(|r| r.key()).collect();
        self.rows.iter().any(|r| !keys.contains(&r.key()))
    }

    /// Union the other snapshot into this one (counts add; key set unions).
    pub fn merge(&mut self, other: &CoverageSnapshot) {
        let mut map: BTreeMap<OwnedKey, u64> = BTreeMap::new();
        for r in self.rows.iter().chain(other.rows.iter()) {
            *map.entry((r.proto.clone(), r.object.clone(), r.state.clone(), r.event.clone()))
                .or_insert(0) += r.count;
        }
        self.rows = map
            .into_iter()
            .map(|((proto, object, state, event), count)| CovRow {
                proto,
                object,
                state,
                event,
                count,
            })
            .collect();
    }

    /// Render the human report: one `count  proto/object/state/event` line
    /// per row, widest counts first aligned.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in &self.rows {
            let _ = writeln!(out, "{:>8}  {}", r.count, r.key());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T1: Transition = Transition::new("tardis", "write-many", "lease-expired", "renew-req");
    const T2: Transition = Transition::new("munin", "migratory", "remote", "migrate-in");

    #[test]
    fn note_and_snapshot_round_trip() {
        let m = CoverageMap::new();
        m.note(T1);
        m.note(T1);
        m.note(T2);
        let snap = m.snapshot();
        assert_eq!(snap.distinct(), 2);
        assert_eq!(snap.total(), 3);
        assert_eq!(m.distinct(), 2);
        let t1 = snap.rows.iter().find(|r| r.key() == T1.key()).unwrap();
        assert_eq!(t1.count, 2);
    }

    #[test]
    fn ingest_merges_with_local_notes() {
        let m = CoverageMap::new();
        m.note(T1);
        let rows = vec![
            CovRow {
                proto: "tardis".into(),
                object: "write-many".into(),
                state: "lease-expired".into(),
                event: "renew-req".into(),
                count: 3,
            },
            CovRow {
                proto: "ivy".into(),
                object: "page".into(),
                state: "owned".into(),
                event: "yield".into(),
                count: 1,
            },
        ];
        m.ingest(&rows);
        let snap = m.snapshot();
        assert_eq!(snap.distinct(), 2);
        assert_eq!(snap.rows.iter().find(|r| r.proto == "tardis").unwrap().count, 4);
    }

    #[test]
    fn covers_new_compares_key_sets_not_counts() {
        let m = CoverageMap::new();
        m.note(T1);
        let a = m.snapshot();
        m.note(T1); // more firings, same key
        let b = m.snapshot();
        assert!(!b.covers_new(&a), "same key set, higher count is not new coverage");
        m.note(T2);
        let c = m.snapshot();
        assert!(c.covers_new(&a));
    }

    #[test]
    fn merge_unions_keys_and_adds_counts() {
        let m1 = CoverageMap::new();
        m1.note(T1);
        let m2 = CoverageMap::new();
        m2.note(T1);
        m2.note(T2);
        let mut u = m1.snapshot();
        u.merge(&m2.snapshot());
        assert_eq!(u.distinct(), 2);
        assert_eq!(u.total(), 3);
    }
}

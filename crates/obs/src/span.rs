//! Causal span records and the fixed-capacity rings that hold their tails.
//!
//! A remote op's life, with the wall-clock stamps each side takes:
//!
//! ```text
//! client thread      issue ──────────────────────────────────► resume
//!                      │                                          ▲
//! coordinator fwd      └─► fwd (TCP only: op enters the wire)     │
//!                            │                                    │
//! serving node            dispatch (OpGate hands the op to        │
//!                            │      the protocol server)          │
//! home node                home (AtomicReq/CLockReq handled       │
//!                            │      at the authoritative copy)    │
//! serving node             reply (result leaves the server) ──────┘
//! ```
//!
//! `dispatch` doubles as the protocol-server-handle stamp: the gate
//! dispatch *is* the `on_op` call in this architecture, so the two span
//! points the wire protocol distinguishes collapse into one instant here.
//!
//! Sequence numbers are per-thread: the client counts ops as it issues
//! them and the serving side counts them as the gate dispatches them; the
//! fabric is per-thread FIFO and the gate admits one op per thread at a
//! time, so the two counts align exactly and `(thread, seq)` joins the
//! halves without any id riding the data path.

use crate::hist::OpClass;
use munin_types::ThreadId;

/// The server half of a span, recorded by the node that served the op
/// (and shipped over the control stream when that node is a remote
/// process).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SrvSpan {
    /// Per-thread dispatch sequence number (starts at 1, matching the
    /// client's issue numbering).
    pub seq: u64,
    /// Wall µs when the coordinator forwarded the op onto the wire;
    /// 0 when the op never crossed a process boundary (rt fabric, or a
    /// thread served by the coordinator-resident node 0).
    pub fwd_us: u64,
    /// Wall µs when the gate dispatched the op to the protocol server.
    pub dispatch_us: u64,
    /// Wall µs when the result left the server (resume/complete).
    pub reply_us: u64,
}

/// The client half of a span, recorded at the token wait.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ClientSpan {
    pub seq: u64,
    pub class: OpClass,
    pub pipelined: bool,
    pub issue_us: u64,
    pub resume_us: u64,
}

/// A fully joined span: one op's causal timeline across processes. The
/// optional stamps are missing when the op never reached that stage (a
/// local hit has no home leg) or when the matching ring entry was
/// overwritten before teardown (only the last [`crate::SPAN_RING_CAP`]
/// spans per thread are kept).
#[derive(Debug, Clone, PartialEq)]
pub struct OpSpan {
    pub thread: ThreadId,
    pub seq: u64,
    pub class: OpClass,
    pub pipelined: bool,
    pub issue_us: u64,
    pub fwd_us: Option<u64>,
    pub dispatch_us: Option<u64>,
    pub home_us: Option<u64>,
    pub reply_us: Option<u64>,
    pub resume_us: u64,
}

impl OpSpan {
    /// End-to-end wall latency (µs) as the client saw it.
    pub fn total_us(&self) -> u64 {
        self.resume_us.saturating_sub(self.issue_us)
    }

    /// The named segments of the span, in causal order, as
    /// (label, start_us, end_us) — only the stages this op went through.
    /// Adjacent segments share endpoints, so their lengths telescope to
    /// [`OpSpan::total_us`] exactly (the stamps are one clock).
    pub fn segments(&self) -> Vec<(&'static str, u64, u64)> {
        let mut marks: Vec<(&'static str, u64)> = vec![("issue", self.issue_us)];
        if let Some(f) = self.fwd_us {
            marks.push(("fwd", f));
        }
        if let Some(d) = self.dispatch_us {
            marks.push(("dispatch", d));
        }
        if let Some(h) = self.home_us {
            marks.push(("home", h));
        }
        if let Some(r) = self.reply_us {
            marks.push(("reply", r));
        }
        marks.push(("resume", self.resume_us));
        marks.windows(2).map(|w| (w[1].0, w[0].1, w[1].1)).collect()
    }
}

/// A fixed-capacity overwrite-oldest ring. The buffer is reserved up
/// front, so pushes never allocate; once full, new entries replace the
/// oldest and `dropped` counts what was lost.
#[derive(Debug)]
pub(crate) struct Ring<T> {
    buf: Vec<T>,
    cap: usize,
    next: usize,
    pub dropped: u64,
}

impl<T: Clone> Ring<T> {
    pub fn new(cap: usize) -> Self {
        Ring { buf: Vec::with_capacity(cap), cap, next: 0, dropped: 0 }
    }

    pub fn push(&mut self, v: T) {
        if self.buf.len() < self.cap {
            self.buf.push(v);
        } else {
            self.buf[self.next] = v;
            self.next = (self.next + 1) % self.cap;
            self.dropped += 1;
        }
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Entries oldest-first.
    pub fn iter_in_order(&self) -> impl Iterator<Item = &T> {
        self.buf[self.next..].iter().chain(self.buf[..self.next].iter())
    }

    /// Drain into a fresh Vec, oldest-first, leaving the ring empty (the
    /// reserved capacity is kept).
    pub fn take_in_order(&mut self) -> Vec<T> {
        let out: Vec<T> = self.iter_in_order().cloned().collect();
        self.buf.clear();
        self.next = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest_and_reports_order() {
        let mut r: Ring<u32> = Ring::new(3);
        for v in 0..5 {
            r.push(v);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped, 2);
        assert_eq!(r.iter_in_order().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(r.take_in_order(), vec![2, 3, 4]);
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn segments_telescope_to_total() {
        let s = OpSpan {
            thread: ThreadId(1),
            seq: 7,
            class: OpClass::FetchAdd,
            pipelined: false,
            issue_us: 100,
            fwd_us: Some(110),
            dispatch_us: Some(130),
            home_us: Some(160),
            reply_us: Some(180),
            resume_us: 200,
        };
        let segs = s.segments();
        assert_eq!(segs.len(), 5);
        let sum: u64 = segs.iter().map(|(_, a, b)| b - a).sum();
        assert_eq!(sum, s.total_us());
        assert_eq!(segs[0].0, "fwd");
        assert_eq!(segs.last().unwrap().0, "resume");
    }

    #[test]
    fn local_spans_have_two_segments() {
        let s = OpSpan {
            thread: ThreadId(0),
            seq: 0,
            class: OpClass::Read,
            pipelined: true,
            issue_us: 50,
            fwd_us: None,
            dispatch_us: Some(60),
            home_us: None,
            reply_us: Some(70),
            resume_us: 90,
        };
        let segs = s.segments();
        assert_eq!(
            segs.iter().map(|(n, _, _)| *n).collect::<Vec<_>>(),
            vec!["dispatch", "reply", "resume"]
        );
        let sum: u64 = segs.iter().map(|(_, a, b)| b - a).sum();
        assert_eq!(sum, 40);
    }
}

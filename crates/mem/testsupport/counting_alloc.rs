//! A counting global allocator shared by the allocation-regression tests
//! and benches (included via `#[path]`, not a cargo dependency, because a
//! `#[global_allocator]` must be installed by each binary itself).
//!
//! Counts every allocation, and separately those at or above [`BIG`] —
//! the "full-object copy" detector for the 1 MiB flush workloads: 64 KiB
//! is three orders of magnitude above any legitimate per-flush allocation,
//! so the threshold separates object clones from ordinary bookkeeping with
//! a huge margin.
#![allow(dead_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Allocations of at least this size count as "big" (full-object copies in
/// the 1 MiB workloads).
pub const BIG: usize = 64 * 1024;

static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
static BIG_ALLOCS: AtomicU64 = AtomicU64::new(0);

pub struct CountingAlloc;

// SAFETY: delegates directly to `System`; the counters have no side effects
// on allocation behaviour.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

fn note(size: usize) {
    TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    if size >= BIG {
        BIG_ALLOCS.fetch_add(1, Ordering::Relaxed);
    }
}

/// Total allocations (of any size) so far.
pub fn total_allocs() -> u64 {
    TOTAL_ALLOCS.load(Ordering::Relaxed)
}

/// Allocations of at least [`BIG`] bytes so far.
pub fn big_allocs() -> u64 {
    BIG_ALLOCS.load(Ordering::Relaxed)
}

/// Allocations performed while running `f`.
pub fn allocs_of(mut f: impl FnMut()) -> u64 {
    let before = total_allocs();
    f();
    total_allocs() - before
}

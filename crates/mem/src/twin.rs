//! Twin management for delayed updates.
//!
//! Before the first local write to a loosely-coherent object (since the last
//! flush), the runtime snapshots the object's pristine bytes — its *twin*.
//! At flush time the working copy is diffed against the twin, producing the
//! minimal update to propagate; the twin is then refreshed (or dropped).
//!
//! The twin also lets incoming remote diffs be applied to *both* the working
//! copy and the twin while local writes are pending, so a later local flush
//! does not re-send (or overwrite) bytes the remote thread wrote — the
//! merge behaviour that makes concurrent writers to independent portions of
//! a write-many object work.

use crate::diff::Diff;
use munin_types::ObjectId;
use std::collections::HashMap;

/// Twins for the objects with pending local modifications on one node.
#[derive(Debug, Default)]
pub struct TwinStore {
    twins: HashMap<ObjectId, Vec<u8>>,
}

impl TwinStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot `current` as the twin for `obj` if none exists yet.
    /// Returns true if a new twin was created.
    pub fn ensure(&mut self, obj: ObjectId, current: &[u8]) -> bool {
        if self.twins.contains_key(&obj) {
            return false;
        }
        self.twins.insert(obj, current.to_vec());
        true
    }

    pub fn has(&self, obj: ObjectId) -> bool {
        self.twins.contains_key(&obj)
    }

    /// Diff `current` against the twin and *drop* the twin (flush
    /// completed). Returns `None` if no twin exists.
    pub fn take_diff(&mut self, obj: ObjectId, current: &[u8]) -> Option<Diff> {
        let twin = self.twins.remove(&obj)?;
        Some(Diff::between(&twin, current))
    }

    /// Diff `current` against the twin and refresh the twin to `current`
    /// (flush completed but further writes are expected).
    pub fn diff_and_refresh(&mut self, obj: ObjectId, current: &[u8]) -> Option<Diff> {
        let twin = self.twins.get_mut(&obj)?;
        let d = Diff::between(twin, current);
        twin.clear();
        twin.extend_from_slice(current);
        Some(d)
    }

    /// Apply an incoming remote diff to the twin as well, so the remote
    /// thread's bytes are not treated as local modifications at the next
    /// flush.
    pub fn apply_remote(&mut self, obj: ObjectId, diff: &Diff) {
        if let Some(twin) = self.twins.get_mut(&obj) {
            diff.apply(twin);
        }
    }

    /// Drop a twin without diffing (invalidation / migration away).
    pub fn drop_twin(&mut self, obj: ObjectId) {
        self.twins.remove(&obj);
    }

    pub fn len(&self) -> usize {
        self.twins.len()
    }

    pub fn is_empty(&self) -> bool {
        self.twins.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use munin_types::ByteRange;

    const OBJ: ObjectId = ObjectId(7);

    #[test]
    fn ensure_is_first_write_only() {
        let mut t = TwinStore::new();
        assert!(t.ensure(OBJ, &[1, 2, 3]));
        assert!(!t.ensure(OBJ, &[9, 9, 9]), "second ensure must not clobber the twin");
        let d = t.take_diff(OBJ, &[1, 2, 9]).unwrap();
        assert_eq!(d.data_bytes(), 1, "only byte 2 changed vs the original twin");
    }

    #[test]
    fn take_diff_drops_twin() {
        let mut t = TwinStore::new();
        t.ensure(OBJ, &[0; 4]);
        let _ = t.take_diff(OBJ, &[0, 1, 0, 0]).unwrap();
        assert!(!t.has(OBJ));
        assert!(t.take_diff(OBJ, &[0; 4]).is_none());
    }

    #[test]
    fn diff_and_refresh_keeps_twin_current() {
        let mut t = TwinStore::new();
        t.ensure(OBJ, &[0; 4]);
        let d1 = t.diff_and_refresh(OBJ, &[1, 0, 0, 0]).unwrap();
        assert_eq!(d1.data_bytes(), 1);
        // Next flush only sees the *new* change.
        let d2 = t.diff_and_refresh(OBJ, &[1, 2, 0, 0]).unwrap();
        assert_eq!(d2.data_bytes(), 1);
        assert_eq!(d2.ranges(), vec![ByteRange::new(1, 1)]);
    }

    #[test]
    fn remote_diff_does_not_reflush() {
        // Local thread wrote byte 0; remote thread wrote byte 3. The remote
        // diff arrives before the local flush. The local flush must contain
        // only byte 0.
        let mut t = TwinStore::new();
        let mut working = vec![0u8; 4];
        working[0] = 1; // local write
        t.ensure(OBJ, &[0; 4]);

        let remote = Diff::overwrite(ByteRange::new(3, 1), vec![9]);
        remote.apply(&mut working);
        t.apply_remote(OBJ, &remote);

        let flush = t.take_diff(OBJ, &working).unwrap();
        assert_eq!(flush.ranges(), vec![ByteRange::new(0, 1)]);
    }

    #[test]
    fn drop_twin_discards_pending() {
        let mut t = TwinStore::new();
        t.ensure(OBJ, &[0; 2]);
        t.drop_twin(OBJ);
        assert!(t.is_empty());
    }
}

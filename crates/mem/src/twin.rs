//! Dirty-range twin management for delayed updates.
//!
//! Before a local write lands on a loosely-coherent object, the runtime
//! snapshots the pristine bytes of *the range being written* — a per-region
//! twin. The store keeps, per object, a sorted list of disjoint dirty
//! regions, each carrying the snapshot of its pristine bytes. At flush time
//! the working copy is diffed against the snapshots **region by region**, so
//! a flush costs O(bytes written), never O(object size): one dirty byte in a
//! 1 MiB object snapshots one byte and scans one byte.
//!
//! Adjacent/overlapping writes coalesce into a single region (the common
//! sequential-fill pattern extends the last region's snapshot in place), so
//! region count tracks the number of *distinct* dirty areas, not the number
//! of writes.
//!
//! The snapshots also let incoming remote diffs be patched into the twin
//! while local writes are pending ([`TwinStore::apply_remote`]), so a later
//! local flush does not re-send (or overwrite) bytes a remote thread wrote —
//! the merge behaviour that makes concurrent writers to independent portions
//! of a write-many object work. Remote runs that fall *outside* every dirty
//! region need no bookkeeping at all: those bytes are not locally dirty and
//! are never re-flushed.

use crate::diff::Diff;
use munin_types::{ByteRange, ObjectId};
use std::collections::{HashMap, VecDeque};

/// One dirty region: the range local writes have touched, plus the pristine
/// bytes it held before the first of those writes.
///
/// The snapshot is a deque so the region can grow in *either* direction at
/// amortized O(new bytes): forward fills extend the back, backward fills
/// push the front — neither re-copies the accumulated snapshot.
#[derive(Debug)]
struct Region {
    range: ByteRange,
    snap: VecDeque<u8>,
}

/// Sorted, disjoint, non-touching dirty regions of one object.
#[derive(Debug, Default)]
struct TwinEntry {
    regions: Vec<Region>,
}

impl TwinEntry {
    /// Record a write to `range`, snapshotting the not-yet-covered parts of
    /// it from `current` (which must still hold the pre-write bytes).
    fn note_write(&mut self, range: ByteRange, current: &[u8]) {
        // Window of regions touching (overlapping or adjacent to) `range`.
        let lo = self.regions.partition_point(|r| r.range.end() < range.start);
        let hi = self.regions.partition_point(|r| r.range.start <= range.end());
        if lo == hi {
            // No neighbours: brand-new region.
            let mut snap = VecDeque::with_capacity(range.len as usize);
            snap.extend(&current[range.start as usize..range.end() as usize]);
            self.regions.insert(lo, Region { range, snap });
            return;
        }
        if hi - lo == 1 {
            // One neighbour: grow it in place (rewrites inside the region
            // fall through both branches for free). Head growth uses
            // push_front so descending fills stay amortized O(new bytes),
            // the mirror of the ascending-fill tail extension.
            let r = &mut self.regions[lo];
            if range.end() > r.range.end() {
                r.snap.extend(&current[r.range.end() as usize..range.end() as usize]);
                r.range.len = range.end() - r.range.start;
            }
            if range.start < r.range.start {
                for &b in current[range.start as usize..r.range.start as usize].iter().rev() {
                    r.snap.push_front(b);
                }
                r.range.len += r.range.start - range.start;
                r.range.start = range.start;
            }
            return;
        }
        // General case (a write bridging several regions): fuse the window
        // plus `range` into one region, keeping existing snapshots and
        // filling the gaps from `current`.
        let hull = self.regions[lo..hi].iter().fold(range, |acc, r| acc.union_hull(r.range));
        let mut snap = VecDeque::with_capacity(hull.len as usize);
        let mut cur = hull.start;
        for r in &self.regions[lo..hi] {
            if r.range.start > cur {
                snap.extend(&current[cur as usize..r.range.start as usize]);
            }
            snap.extend(&r.snap);
            cur = r.range.end();
        }
        if cur < hull.end() {
            snap.extend(&current[cur as usize..hull.end() as usize]);
        }
        self.regions[lo] = Region { range: hull, snap };
        self.regions.drain(lo + 1..hi);
    }

    /// Overwrite the snapshotted bytes that intersect `range` with the
    /// corresponding slice of `bytes` (remote writes must not read back as
    /// local modifications).
    fn patch(&mut self, range: ByteRange, bytes: &[u8]) {
        debug_assert_eq!(range.len as usize, bytes.len());
        let lo = self.regions.partition_point(|r| r.range.end() <= range.start);
        for r in &mut self.regions[lo..] {
            if r.range.start >= range.end() {
                break;
            }
            let Some(i) = r.range.intersect(range) else { continue };
            let dst = (i.start - r.range.start) as usize;
            let src = (i.start - range.start) as usize;
            let len = i.len as usize;
            // Copy across the deque's (at most) two segments at memcpy
            // speed without linearizing it — a patch must stay O(copied
            // bytes) even when interleaved with head-growing writes.
            let (front, back) = r.snap.as_mut_slices();
            let n1 = front.len().saturating_sub(dst).min(len);
            if n1 > 0 {
                front[dst..dst + n1].copy_from_slice(&bytes[src..src + n1]);
            }
            if n1 < len {
                // Entering this branch, dst + n1 >= front.len(): either the
                // front copy was clipped at the segment end, or (n1 == 0)
                // the whole copy starts past the front segment.
                let dst2 = dst + n1 - front.len();
                back[dst2..dst2 + (len - n1)].copy_from_slice(&bytes[src + n1..src + len]);
            }
        }
    }

    /// Diff `current` against every region snapshot, in order.
    fn diff(&mut self, current: &[u8]) -> Diff {
        let mut d = Diff::default();
        for r in &mut self.regions {
            assert!(
                r.range.end() as usize <= current.len(),
                "working copy shorter than its dirty region {}",
                r.range
            );
            d.append_scan(
                r.range.start,
                r.snap.make_contiguous(),
                &current[r.range.start as usize..r.range.end() as usize],
            );
        }
        d
    }

    fn dirty_bytes(&self) -> usize {
        self.regions.iter().map(|r| r.range.len as usize).sum()
    }
}

/// Twins for the objects with pending local modifications on one node.
#[derive(Debug, Default)]
pub struct TwinStore {
    twins: HashMap<ObjectId, TwinEntry>,
}

impl TwinStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a local write to `range` of `obj`, lazily snapshotting the
    /// pristine bytes of any part of the range not already covered.
    /// `current` is the object's working copy, *before* the write lands.
    pub fn note_write(&mut self, obj: ObjectId, range: ByteRange, current: &[u8]) {
        if range.is_empty() {
            return;
        }
        debug_assert!(range.fits_in(current.len() as u32), "write beyond object");
        self.twins.entry(obj).or_default().note_write(range, current);
    }

    pub fn has(&self, obj: ObjectId) -> bool {
        self.twins.contains_key(&obj)
    }

    /// Diff `current` against the dirty-region snapshots and *drop* the twin
    /// (flush completed). Scans only the dirty regions, O(bytes written).
    /// Returns `None` if no twin exists.
    pub fn take_diff(&mut self, obj: ObjectId, current: &[u8]) -> Option<Diff> {
        let mut entry = self.twins.remove(&obj)?;
        Some(entry.diff(current))
    }

    /// Apply an incoming remote diff to the twin as well, so the remote
    /// thread's bytes are not treated as local modifications at the next
    /// flush. Only the runs intersecting dirty regions need patching.
    pub fn apply_remote(&mut self, obj: ObjectId, diff: &Diff) {
        if let Some(entry) = self.twins.get_mut(&obj) {
            for (range, bytes) in diff.runs() {
                entry.patch(*range, bytes);
            }
        }
    }

    /// [`Self::apply_remote`] for one raw range (the eager-push path patches
    /// straight from the write's byte slice without building a diff).
    pub fn patch(&mut self, obj: ObjectId, range: ByteRange, bytes: &[u8]) {
        if let Some(entry) = self.twins.get_mut(&obj) {
            entry.patch(range, bytes);
        }
    }

    /// Drop a twin without diffing (invalidation / migration away).
    pub fn drop_twin(&mut self, obj: ObjectId) {
        self.twins.remove(&obj);
    }

    /// Total dirty (snapshotted) bytes across `obj`'s regions.
    pub fn dirty_bytes(&self, obj: ObjectId) -> usize {
        self.twins.get(&obj).map_or(0, |e| e.dirty_bytes())
    }

    /// Number of distinct dirty regions for `obj`.
    pub fn region_count(&self, obj: ObjectId) -> usize {
        self.twins.get(&obj).map_or(0, |e| e.regions.len())
    }

    pub fn len(&self) -> usize {
        self.twins.len()
    }

    pub fn is_empty(&self) -> bool {
        self.twins.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const OBJ: ObjectId = ObjectId(7);

    #[test]
    fn first_write_snapshot_wins() {
        let mut t = TwinStore::new();
        let whole = ByteRange::new(0, 3);
        t.note_write(OBJ, whole, &[1, 2, 3]);
        // A later write to the same range must not re-snapshot (the bytes
        // are already dirty; their pristine values are fixed).
        t.note_write(OBJ, whole, &[9, 9, 9]);
        let d = t.take_diff(OBJ, &[1, 2, 9]).unwrap();
        assert_eq!(d.data_bytes(), 1, "only byte 2 changed vs the original snapshot");
    }

    #[test]
    fn take_diff_drops_twin() {
        let mut t = TwinStore::new();
        t.note_write(OBJ, ByteRange::new(0, 4), &[0; 4]);
        let _ = t.take_diff(OBJ, &[0, 1, 0, 0]).unwrap();
        assert!(!t.has(OBJ));
        assert!(t.take_diff(OBJ, &[0; 4]).is_none());
    }

    #[test]
    fn flush_then_rewrite_only_sees_new_change() {
        let mut t = TwinStore::new();
        let mut cur = vec![0u8; 4];
        t.note_write(OBJ, ByteRange::new(0, 1), &cur);
        cur[0] = 1;
        let d1 = t.take_diff(OBJ, &cur).unwrap();
        assert_eq!(d1.data_bytes(), 1);
        // Next flush only sees the *new* change.
        t.note_write(OBJ, ByteRange::new(1, 1), &cur);
        cur[1] = 2;
        let d2 = t.take_diff(OBJ, &cur).unwrap();
        assert_eq!(d2.data_bytes(), 1);
        assert_eq!(d2.ranges(), vec![ByteRange::new(1, 1)]);
    }

    #[test]
    fn remote_diff_does_not_reflush() {
        // Local thread wrote byte 0; remote thread wrote byte 3. The remote
        // diff arrives before the local flush. The local flush must contain
        // only byte 0.
        let mut t = TwinStore::new();
        let mut working = vec![0u8; 4];
        t.note_write(OBJ, ByteRange::new(0, 1), &working);
        working[0] = 1; // local write

        let remote = Diff::overwrite(ByteRange::new(3, 1), vec![9]);
        remote.apply(&mut working);
        t.apply_remote(OBJ, &remote);

        let flush = t.take_diff(OBJ, &working).unwrap();
        assert_eq!(flush.ranges(), vec![ByteRange::new(0, 1)]);
    }

    #[test]
    fn remote_diff_inside_dirty_region_is_patched() {
        // Local write snapshots [0,4); a remote run then lands inside the
        // region. Without the patch those bytes would diff against the stale
        // snapshot and be re-sent as local writes.
        let mut t = TwinStore::new();
        let mut working = vec![0u8; 8];
        t.note_write(OBJ, ByteRange::new(0, 4), &working);
        working[0] = 1; // the actual local modification

        let remote = Diff::overwrite(ByteRange::new(2, 4), vec![9, 9, 9, 9]);
        remote.apply(&mut working);
        t.apply_remote(OBJ, &remote);

        let flush = t.take_diff(OBJ, &working).unwrap();
        assert_eq!(flush.ranges(), vec![ByteRange::new(0, 1)], "{flush:?}");
    }

    #[test]
    fn drop_twin_discards_pending() {
        let mut t = TwinStore::new();
        t.note_write(OBJ, ByteRange::new(0, 2), &[0; 2]);
        t.drop_twin(OBJ);
        assert!(t.is_empty());
    }

    #[test]
    fn snapshot_is_proportional_to_writes_not_object() {
        let mut t = TwinStore::new();
        let mut cur = vec![0u8; 1 << 20];
        t.note_write(OBJ, ByteRange::new(17, 1), &cur);
        cur[17] = 5;
        assert_eq!(t.dirty_bytes(OBJ), 1, "one dirty byte snapshots one byte");
        assert_eq!(t.region_count(OBJ), 1);
        let d = t.take_diff(OBJ, &cur).unwrap();
        assert_eq!(d.ranges(), vec![ByteRange::new(17, 1)]);
    }

    #[test]
    fn sequential_fill_coalesces_into_one_region() {
        let mut t = TwinStore::new();
        let mut cur = vec![0u8; 1024];
        for i in 0..64u32 {
            let r = ByteRange::new(i * 8, 8);
            t.note_write(OBJ, r, &cur);
            for b in &mut cur[(i * 8) as usize..(i * 8 + 8) as usize] {
                *b = 1;
            }
        }
        assert_eq!(t.region_count(OBJ), 1, "adjacent writes fuse");
        assert_eq!(t.dirty_bytes(OBJ), 512);
        let d = t.take_diff(OBJ, &cur).unwrap();
        assert_eq!(d.ranges(), vec![ByteRange::new(0, 512)]);
    }

    #[test]
    fn descending_fill_coalesces_into_one_region() {
        // The mirror image of the sequential fill: back-to-front writes
        // grow the region's head (push_front path) instead of re-fusing.
        let mut t = TwinStore::new();
        let mut cur = vec![9u8; 1024];
        for i in (0..64u32).rev() {
            let r = ByteRange::new(i * 8, 8);
            t.note_write(OBJ, r, &cur);
            for b in &mut cur[(i * 8) as usize..(i * 8 + 8) as usize] {
                *b = 1;
            }
        }
        assert_eq!(t.region_count(OBJ), 1, "adjacent writes fuse");
        assert_eq!(t.dirty_bytes(OBJ), 512);
        let d = t.take_diff(OBJ, &cur).unwrap();
        assert_eq!(d.ranges(), vec![ByteRange::new(0, 512)]);
        assert_eq!(d.data_bytes(), 512);
    }

    #[test]
    fn gap_filling_write_fuses_regions() {
        let mut t = TwinStore::new();
        let mut cur = vec![7u8; 64];
        t.note_write(OBJ, ByteRange::new(0, 8), &cur);
        cur[0] = 1;
        t.note_write(OBJ, ByteRange::new(24, 8), &cur);
        cur[24] = 2;
        assert_eq!(t.region_count(OBJ), 2);
        // Bridge the gap (plus overlap into both neighbours).
        t.note_write(OBJ, ByteRange::new(4, 24), &cur);
        cur[10] = 3;
        assert_eq!(t.region_count(OBJ), 1);
        assert_eq!(t.dirty_bytes(OBJ), 32);
        let d = t.take_diff(OBJ, &cur).unwrap();
        // Snapshots taken before each write were pristine, so exactly the
        // three modified bytes diff.
        assert_eq!(d.data_bytes(), 3);
    }

    #[test]
    fn patch_spans_a_wrapped_snapshot() {
        // Head growth wraps the deque; a remote patch crossing the wrap
        // point must land on both segments.
        let mut t = TwinStore::new();
        let mut working = vec![0u8; 64];
        t.note_write(OBJ, ByteRange::new(32, 16), &working); // back half first
        t.note_write(OBJ, ByteRange::new(16, 16), &working); // head growth wraps
        for b in &mut working[16..48] {
            *b = 1; // the local writes themselves
        }
        let remote = Diff::overwrite(ByteRange::new(24, 16), vec![9; 16]);
        remote.apply(&mut working);
        t.apply_remote(OBJ, &remote);
        let flush = t.take_diff(OBJ, &working).unwrap();
        // Remote bytes [24,40) are patched out; only [16,24) and [40,48)
        // remain as local changes.
        assert_eq!(flush.ranges(), vec![ByteRange::new(16, 8), ByteRange::new(40, 8)]);
    }

    #[test]
    fn backward_extension_keeps_earlier_snapshots() {
        let mut t = TwinStore::new();
        let mut cur = vec![0u8; 32];
        t.note_write(OBJ, ByteRange::new(16, 8), &cur);
        for b in &mut cur[16..24] {
            *b = 1;
        }
        // Prepend-adjacent write: region grows left; the old snapshot (the
        // zeros, not the 1s) must be preserved for [16,24).
        t.note_write(OBJ, ByteRange::new(8, 8), &cur);
        for b in &mut cur[8..16] {
            *b = 2;
        }
        assert_eq!(t.region_count(OBJ), 1);
        let d = t.take_diff(OBJ, &cur).unwrap();
        assert_eq!(d.ranges(), vec![ByteRange::new(8, 16)]);
        assert_eq!(d.data_bytes(), 16);
    }

    proptest! {
        /// Dirty-range-bounded diffing produces byte-identical runs to a
        /// full-object scan, for arbitrary write patterns.
        #[test]
        fn bounded_diff_equals_full_scan(
            size in 16usize..512,
            writes in proptest::collection::vec(
                (any::<prop::sample::Index>(), 1u32..24, any::<u8>()), 0..24),
        ) {
            let pristine: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
            let mut working = pristine.clone();
            let mut t = TwinStore::new();
            for (idx, len, val) in writes {
                let start = idx.index(size) as u32;
                let len = len.min(size as u32 - start);
                let range = ByteRange::new(start, len);
                t.note_write(OBJ, range, &working);
                for b in &mut working[start as usize..(start + len) as usize] {
                    // Some writes are no-ops on some bytes, exercising runs
                    // that are narrower than their dirty region.
                    *b = b.wrapping_add(val % 3);
                }
            }
            let bounded = t.take_diff(OBJ, &working).unwrap_or_default();
            let full = Diff::between(&pristine, &working);
            prop_assert_eq!(bounded, full);
        }

        /// Remote patches arriving between local writes never leak remote
        /// bytes into the local flush, and local bytes always flush.
        #[test]
        fn remote_patch_interleaving_is_exact(
            local in proptest::collection::vec((0u32..56, 1u32..8), 1..8),
            remote in proptest::collection::vec((0u32..56, 1u32..8), 0..8),
        ) {
            let size = 64usize;
            let pristine = vec![0u8; size];
            let mut working = pristine.clone();
            let mut reference = pristine.clone(); // pristine + remote only
            let mut t = TwinStore::new();
            let mut li = local.iter();
            let mut ri = remote.iter();
            loop {
                match (li.next(), ri.next()) {
                    (None, None) => break,
                    (l, r) => {
                        if let Some(&(s, len)) = l {
                            let range = ByteRange::new(s, len.min(size as u32 - s));
                            t.note_write(OBJ, range, &working);
                            for b in &mut working[s as usize..(s + range.len) as usize] {
                                *b = 1;
                            }
                        }
                        if let Some(&(s, len)) = r {
                            let range = ByteRange::new(s, len.min(size as u32 - s));
                            let bytes = vec![2u8; range.len as usize];
                            let d = Diff::overwrite(range, bytes);
                            d.apply(&mut working);
                            d.apply(&mut reference);
                            t.apply_remote(OBJ, &d);
                        }
                    }
                }
            }
            // Flushing local changes over "pristine + remote" must exactly
            // reproduce the working copy.
            let flush = t.take_diff(OBJ, &working).unwrap();
            let mut rebuilt = reference.clone();
            flush.apply(&mut rebuilt);
            prop_assert_eq!(rebuilt, working);
        }
    }
}

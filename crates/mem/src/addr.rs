//! The Ivy baseline's flat shared address space.
//!
//! Ivy provides "a virtual address space that is shared among all the
//! processors", divided into fixed-size pages; "all sharing is on a per-page
//! basis, entailing the possibility of significant amounts of false
//! sharing". This module reproduces that: objects are *placed* at addresses
//! (packed back-to-back, or page-aligned as an ablation), and every access
//! is translated from (object, byte range) to the page pieces it touches.
//!
//! Placement is deterministic given the declaration order, so every node
//! computes the identical layout without communication — exactly like a
//! linker laying out a shared segment.

use munin_types::{AllocPolicy, ByteRange, ObjectId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A page number in the flat space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PageId(pub u64);

impl PageId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pg{}", self.0)
    }
}

/// One page-sized (or smaller) piece of an object access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagePiece {
    /// Which page.
    pub page: PageId,
    /// Offset of the piece within the page.
    pub off_in_page: u32,
    /// Offset of the piece within the *object*.
    pub obj_offset: u32,
    /// Piece length in bytes.
    pub len: u32,
}

/// Deterministic object placement + translation.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    page_size: u32,
    policy: AllocPolicy,
    next_addr: u64,
    bases: HashMap<ObjectId, (u64, u32)>, // (base address, size)
}

impl AddressSpace {
    pub fn new(page_size: u32, policy: AllocPolicy) -> Self {
        assert!(page_size.is_power_of_two(), "page size must be a power of two");
        AddressSpace { page_size, policy, next_addr: 0, bases: HashMap::new() }
    }

    pub fn page_size(&self) -> u32 {
        self.page_size
    }

    /// Place an object; returns its base address. Word-aligns packed
    /// placements (8 bytes) so numeric views never straddle for alignment
    /// reasons alone.
    pub fn place(&mut self, obj: ObjectId, size: u32) -> u64 {
        let base = match self.policy {
            AllocPolicy::Packed => (self.next_addr + 7) & !7,
            AllocPolicy::PageAligned => {
                let ps = self.page_size as u64;
                self.next_addr.div_ceil(ps) * ps
            }
        };
        self.next_addr = base + size as u64;
        self.bases.insert(obj, (base, size));
        base
    }

    pub fn base(&self, obj: ObjectId) -> Option<u64> {
        self.bases.get(&obj).map(|(b, _)| *b)
    }

    pub fn size(&self, obj: ObjectId) -> Option<u32> {
        self.bases.get(&obj).map(|(_, s)| *s)
    }

    /// Total pages the placed objects span.
    pub fn page_count(&self) -> u64 {
        self.next_addr.div_ceil(self.page_size as u64)
    }

    /// Page containing flat address `addr`.
    pub fn page_of(&self, addr: u64) -> PageId {
        PageId(addr / self.page_size as u64)
    }

    /// Translate an access to `range` of `obj` into per-page pieces, in
    /// ascending page order.
    pub fn pieces(&self, obj: ObjectId, range: ByteRange) -> Option<Vec<PagePiece>> {
        let (base, size) = *self.bases.get(&obj)?;
        if !range.fits_in(size) {
            return None;
        }
        let ps = self.page_size as u64;
        let mut out = Vec::new();
        let mut obj_off = range.start;
        let mut remaining = range.len;
        while remaining > 0 {
            let addr = base + obj_off as u64;
            let page = PageId(addr / ps);
            let off_in_page = (addr % ps) as u32;
            let take = remaining.min(self.page_size - off_in_page);
            out.push(PagePiece { page, off_in_page, obj_offset: obj_off, len: take });
            obj_off += take;
            remaining -= take;
        }
        Some(out)
    }

    /// All pages an object occupies (for sizing page tables).
    pub fn pages_of_object(&self, obj: ObjectId) -> Option<Vec<PageId>> {
        let (base, size) = *self.bases.get(&obj)?;
        if size == 0 {
            return Some(Vec::new());
        }
        let ps = self.page_size as u64;
        let first = base / ps;
        let last = (base + size as u64 - 1) / ps;
        Some((first..=last).map(PageId).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn packed_placement_shares_pages() {
        let mut a = AddressSpace::new(1024, AllocPolicy::Packed);
        let o1 = ObjectId(0);
        let o2 = ObjectId(1);
        a.place(o1, 100);
        a.place(o2, 100);
        // Both objects in page 0 — false sharing territory.
        assert_eq!(a.pages_of_object(o1).unwrap(), vec![PageId(0)]);
        assert_eq!(a.pages_of_object(o2).unwrap(), vec![PageId(0)]);
        assert_eq!(a.base(o2).unwrap(), 104, "word aligned after 100 bytes");
    }

    #[test]
    fn page_aligned_placement_isolates_objects() {
        let mut a = AddressSpace::new(1024, AllocPolicy::PageAligned);
        let o1 = ObjectId(0);
        let o2 = ObjectId(1);
        a.place(o1, 100);
        a.place(o2, 100);
        assert_eq!(a.base(o2).unwrap(), 1024);
        assert_eq!(a.pages_of_object(o2).unwrap(), vec![PageId(1)]);
        assert_eq!(a.page_count(), 2);
    }

    #[test]
    fn pieces_split_at_page_boundaries() {
        let mut a = AddressSpace::new(256, AllocPolicy::Packed);
        let o = ObjectId(0);
        a.place(o, 1000);
        // Access [200, 600) spans pages 0,1,2.
        let pieces = a.pieces(o, ByteRange::new(200, 400)).unwrap();
        assert_eq!(pieces.len(), 3);
        assert_eq!(
            pieces[0],
            PagePiece { page: PageId(0), off_in_page: 200, obj_offset: 200, len: 56 }
        );
        assert_eq!(
            pieces[1],
            PagePiece { page: PageId(1), off_in_page: 0, obj_offset: 256, len: 256 }
        );
        assert_eq!(
            pieces[2],
            PagePiece { page: PageId(2), off_in_page: 0, obj_offset: 512, len: 88 }
        );
    }

    #[test]
    fn out_of_bounds_access_rejected() {
        let mut a = AddressSpace::new(256, AllocPolicy::Packed);
        let o = ObjectId(0);
        a.place(o, 100);
        assert!(a.pieces(o, ByteRange::new(90, 20)).is_none());
        assert!(a.pieces(ObjectId(9), ByteRange::new(0, 1)).is_none());
    }

    #[test]
    fn placement_is_deterministic() {
        let build = || {
            let mut a = AddressSpace::new(512, AllocPolicy::Packed);
            for i in 0..20 {
                a.place(ObjectId(i), (i as u32 + 1) * 13);
            }
            (0..20).map(|i| a.base(ObjectId(i)).unwrap()).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    proptest! {
        /// Pieces tile the requested range exactly: contiguous object
        /// offsets, lengths sum to the range, and no piece crosses a page
        /// boundary.
        #[test]
        fn pieces_tile_the_range(
            page_pow in 6u32..12,
            sizes in proptest::collection::vec(1u32..5000, 1..10),
            pick in any::<prop::sample::Index>(),
            start_frac in 0.0f64..1.0,
            len_frac in 0.0f64..1.0,
        ) {
            let ps = 1u32 << page_pow;
            let mut a = AddressSpace::new(ps, AllocPolicy::Packed);
            for (i, s) in sizes.iter().enumerate() {
                a.place(ObjectId(i as u64), *s);
            }
            let idx = pick.index(sizes.len());
            let obj = ObjectId(idx as u64);
            let size = sizes[idx];
            let start = ((size - 1) as f64 * start_frac) as u32;
            let len = 1 + (((size - start - 1) as f64) * len_frac) as u32;
            let range = ByteRange::new(start, len);
            let pieces = a.pieces(obj, range).unwrap();

            let mut expect_off = start;
            let mut total = 0u32;
            for p in &pieces {
                prop_assert_eq!(p.obj_offset, expect_off);
                prop_assert!(p.off_in_page + p.len <= ps, "piece crosses page boundary");
                prop_assert!(p.len > 0);
                expect_off += p.len;
                total += p.len;
            }
            prop_assert_eq!(total, len);
            // Pages ascend.
            for w in pieces.windows(2) {
                prop_assert!(w[1].page.0 == w[0].page.0 + 1);
            }
        }
    }
}

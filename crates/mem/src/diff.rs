//! Run-length diffs.
//!
//! A [`Diff`] is the wire representation of "what changed in this object":
//! a sorted list of disjoint byte ranges with their new contents. Diffs are
//! produced by comparing a working copy against its twin (see
//! [`crate::twin`]), shipped by the delayed update queue, and applied at
//! receivers. Applying diffs from different threads that wrote *independent*
//! portions of an object commutes — which is exactly why Munin's loose
//! coherence can let multiple writers proceed without synchronization.

use munin_types::ByteRange;
use serde::{Deserialize, Serialize};

/// Per-range wire overhead: offset (4) + length (4).
const RANGE_HEADER_BYTES: usize = 8;

/// A run-length encoded update to one object.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Diff {
    /// Sorted, disjoint, non-adjacent ranges with their new bytes.
    runs: Vec<(ByteRange, Vec<u8>)>,
}

impl Diff {
    /// Compare `new` against the pristine `old` (the twin) and record every
    /// differing run. Both slices must be the same length.
    pub fn between(old: &[u8], new: &[u8]) -> Diff {
        assert_eq!(old.len(), new.len(), "diff requires equal-length buffers");
        let mut runs = Vec::new();
        let mut i = 0usize;
        let n = new.len();
        while i < n {
            if old[i] != new[i] {
                let start = i;
                while i < n && old[i] != new[i] {
                    i += 1;
                }
                runs.push((
                    ByteRange::new(start as u32, (i - start) as u32),
                    new[start..i].to_vec(),
                ));
            } else {
                i += 1;
            }
        }
        Diff { runs }
    }

    /// A diff that overwrites `range` with `data` unconditionally (used by
    /// write-without-fetch paths where no twin exists, e.g. result objects
    /// written before ever being read).
    pub fn overwrite(range: ByteRange, data: Vec<u8>) -> Diff {
        assert_eq!(range.len as usize, data.len());
        if range.is_empty() {
            return Diff::default();
        }
        Diff { runs: vec![(range, data)] }
    }

    /// No changes?
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of distinct runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Total payload bytes (data only).
    pub fn data_bytes(&self) -> usize {
        self.runs.iter().map(|(_, d)| d.len()).sum()
    }

    /// Bytes this diff occupies on the wire (runs + per-run headers).
    pub fn wire_bytes(&self) -> usize {
        self.data_bytes() + self.runs.len() * RANGE_HEADER_BYTES
    }

    /// Iterate over the runs.
    pub fn runs(&self) -> impl Iterator<Item = (&ByteRange, &[u8])> {
        self.runs.iter().map(|(r, d)| (r, d.as_slice()))
    }

    /// Apply to `data` (last-applied-wins on overlap, which is the legal
    /// loose-coherence outcome for unsynchronized overlapping writes).
    ///
    /// Panics if any run is out of bounds — receivers validated the object
    /// size when the copy was created, so an out-of-bounds run is a protocol
    /// bug, not an application error.
    pub fn apply(&self, data: &mut [u8]) {
        for (range, bytes) in &self.runs {
            let start = range.start as usize;
            let end = start + range.len as usize;
            data[start..end].copy_from_slice(bytes);
        }
    }

    /// Fold `later` into `self`, with `later` taking precedence on overlap.
    /// Used to combine successive flushes addressed to the same destination
    /// into one message ("delaying updates allows the system to combine
    /// updates to the same object").
    pub fn merge(&mut self, later: &Diff) {
        if later.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = later.clone();
            return;
        }
        // Materialize over the covering hull — simple and correct; diffs are
        // small relative to objects.
        let hull_end =
            self.runs.iter().chain(later.runs.iter()).map(|(r, _)| r.end()).max().unwrap() as usize;
        let hull_start =
            self.runs.iter().chain(later.runs.iter()).map(|(r, _)| r.start).min().unwrap() as usize;
        // Track which bytes are defined; undefined gaps must not enter runs.
        let width = hull_end - hull_start;
        let mut buf = vec![0u8; width];
        let mut defined = vec![false; width];
        for (r, d) in self.runs.iter().chain(later.runs.iter()) {
            let s = r.start as usize - hull_start;
            buf[s..s + d.len()].copy_from_slice(d);
            for f in &mut defined[s..s + d.len()] {
                *f = true;
            }
        }
        let mut runs = Vec::new();
        let mut i = 0usize;
        while i < width {
            if defined[i] {
                let start = i;
                while i < width && defined[i] {
                    i += 1;
                }
                runs.push((
                    ByteRange::new((hull_start + start) as u32, (i - start) as u32),
                    buf[start..i].to_vec(),
                ));
            } else {
                i += 1;
            }
        }
        self.runs = runs;
    }

    /// The ranges this diff touches.
    pub fn ranges(&self) -> Vec<ByteRange> {
        self.runs.iter().map(|(r, _)| *r).collect()
    }

    /// Does this diff write any byte that `other` also writes?
    pub fn overlaps(&self, other: &Diff) -> bool {
        self.runs.iter().any(|(r, _)| other.runs.iter().any(|(o, _)| r.overlaps(*o)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_buffers_produce_empty_diff() {
        let a = vec![7u8; 64];
        let d = Diff::between(&a, &a);
        assert!(d.is_empty());
        assert_eq!(d.wire_bytes(), 0);
    }

    #[test]
    fn single_run_detected() {
        let old = vec![0u8; 16];
        let mut new = old.clone();
        new[4..8].copy_from_slice(&[1, 2, 3, 4]);
        let d = Diff::between(&old, &new);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.data_bytes(), 4);
        assert_eq!(d.wire_bytes(), 4 + 8);
        let mut target = old.clone();
        d.apply(&mut target);
        assert_eq!(target, new);
    }

    #[test]
    fn multiple_runs_skip_unchanged_bytes() {
        let old = vec![0u8; 10];
        let new = vec![1, 0, 1, 1, 0, 0, 1, 0, 0, 1];
        let d = Diff::between(&old, &new);
        assert_eq!(d.run_count(), 4);
        assert_eq!(d.data_bytes(), 5);
    }

    #[test]
    fn disjoint_diffs_commute() {
        // Two threads write independent halves — the heart of write-many.
        let base = vec![0u8; 8];
        let mut a_ver = base.clone();
        a_ver[0..4].copy_from_slice(&[1, 1, 1, 1]);
        let mut b_ver = base.clone();
        b_ver[4..8].copy_from_slice(&[2, 2, 2, 2]);
        let da = Diff::between(&base, &a_ver);
        let db = Diff::between(&base, &b_ver);
        assert!(!da.overlaps(&db));

        let mut ab = base.clone();
        da.apply(&mut ab);
        db.apply(&mut ab);
        let mut ba = base.clone();
        db.apply(&mut ba);
        da.apply(&mut ba);
        assert_eq!(ab, ba);
        assert_eq!(ab, vec![1, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn merge_combines_and_later_wins() {
        let mut d1 = Diff::overwrite(ByteRange::new(0, 4), vec![1, 1, 1, 1]);
        let d2 = Diff::overwrite(ByteRange::new(2, 4), vec![2, 2, 2, 2]);
        d1.merge(&d2);
        let mut buf = vec![0u8; 8];
        d1.apply(&mut buf);
        assert_eq!(buf, vec![1, 1, 2, 2, 2, 2, 0, 0]);
        assert_eq!(d1.run_count(), 1, "adjacent runs coalesce: {d1:?}");
    }

    #[test]
    fn merge_preserves_gaps() {
        let mut d1 = Diff::overwrite(ByteRange::new(0, 2), vec![1, 1]);
        let d2 = Diff::overwrite(ByteRange::new(6, 2), vec![2, 2]);
        d1.merge(&d2);
        assert_eq!(d1.run_count(), 2, "gap between runs must survive merge");
        let mut buf = vec![9u8; 8];
        d1.apply(&mut buf);
        assert_eq!(buf, vec![1, 1, 9, 9, 9, 9, 2, 2]);
    }

    #[test]
    fn merge_into_empty_clones() {
        let mut d = Diff::default();
        let other = Diff::overwrite(ByteRange::new(1, 2), vec![5, 6]);
        d.merge(&other);
        assert_eq!(d, other);
        // And merging empty into non-empty is a no-op.
        let snapshot = d.clone();
        d.merge(&Diff::default());
        assert_eq!(d, snapshot);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn length_mismatch_panics() {
        Diff::between(&[0u8; 4], &[0u8; 5]);
    }

    proptest! {
        /// apply(diff(old→new)) over old always reconstructs new.
        #[test]
        fn diff_apply_roundtrip(
            old in proptest::collection::vec(any::<u8>(), 1..200),
            seed_positions in proptest::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 0..32)
        ) {
            let mut new = old.clone();
            for (idx, val) in seed_positions {
                let i = idx.index(new.len());
                new[i] = val;
            }
            let d = Diff::between(&old, &new);
            let mut rebuilt = old.clone();
            d.apply(&mut rebuilt);
            prop_assert_eq!(rebuilt, new);
        }

        /// A diff's runs are sorted, disjoint and non-adjacent, and its
        /// data_bytes equals the hamming-differing byte count.
        #[test]
        fn diff_runs_are_canonical(
            old in proptest::collection::vec(any::<u8>(), 1..120),
            flips in proptest::collection::vec(any::<prop::sample::Index>(), 0..40)
        ) {
            let mut new = old.clone();
            for idx in flips {
                let i = idx.index(new.len());
                new[i] = new[i].wrapping_add(1);
            }
            let d = Diff::between(&old, &new);
            let ranges = d.ranges();
            for w in ranges.windows(2) {
                prop_assert!(w[0].end() < w[1].start, "sorted + gap: {:?}", ranges);
            }
            let differing = old.iter().zip(&new).filter(|(a, b)| a != b).count();
            prop_assert_eq!(d.data_bytes(), differing);
        }

        /// Merging two diffs then applying equals applying them in sequence.
        #[test]
        fn merge_equals_sequential_apply(
            base in proptest::collection::vec(any::<u8>(), 16..64),
            w1 in (0usize..48, proptest::collection::vec(any::<u8>(), 1..16)),
            w2 in (0usize..48, proptest::collection::vec(any::<u8>(), 1..16)),
        ) {
            let clip = |start: usize, data: &Vec<u8>| {
                let start = start.min(base.len() - 1);
                let len = data.len().min(base.len() - start);
                (ByteRange::new(start as u32, len as u32), data[..len].to_vec())
            };
            let (r1, d1) = clip(w1.0, &w1.1);
            let (r2, d2) = clip(w2.0, &w2.1);
            let diff1 = Diff::overwrite(r1, d1);
            let diff2 = Diff::overwrite(r2, d2);

            let mut seq = base.clone();
            diff1.apply(&mut seq);
            diff2.apply(&mut seq);

            let mut merged = diff1.clone();
            merged.merge(&diff2);
            let mut via_merge = base.clone();
            merged.apply(&mut via_merge);

            prop_assert_eq!(seq, via_merge);
        }
    }
}

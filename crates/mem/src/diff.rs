//! Run-length diffs.
//!
//! A [`Diff`] is the wire representation of "what changed in this object":
//! a sorted list of disjoint byte ranges with their new contents. Diffs are
//! produced by comparing a working copy against its twin (see
//! [`crate::twin`]), shipped by the delayed update queue, and applied at
//! receivers. Applying diffs from different threads that wrote *independent*
//! portions of an object commutes — which is exactly why Munin's loose
//! coherence can let multiple writers proceed without synchronization.
//!
//! ## Layout
//!
//! A diff is a *run table* over a single contiguous payload buffer: each run
//! records its object-relative [`ByteRange`] plus an offset into the shared
//! `data` vector. An N-run diff therefore costs two allocations total (one
//! run table, one payload buffer), not one allocation per run, and clones of
//! a diff are two `memcpy`s. Runs are always appended in ascending object
//! order, so run payloads are contiguous and in-order inside `data`.
//!
//! ## Scan cost
//!
//! [`Diff::between`] compares u64-sized chunks and only drops to byte
//! granularity around a mismatch, so scanning the unchanged portions of a
//! buffer runs at word speed. The flush path never hands it a whole object
//! anyway: [`crate::twin::TwinStore`] bounds the scan to the byte ranges
//! local writes actually touched, making flush cost O(bytes written).

use munin_types::ByteRange;
use serde::{Deserialize, Serialize};

/// Per-range wire overhead: offset (4) + length (4).
const RANGE_HEADER_BYTES: usize = 8;

/// One run of the table: `range` within the object, payload at
/// `data[offset .. offset + range.len]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Run {
    range: ByteRange,
    offset: u32,
}

/// A run-length encoded update to one object.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Diff {
    /// Sorted, disjoint, non-adjacent ranges; payload offsets ascend with
    /// the ranges (runs are packed into `data` in object order).
    runs: Vec<Run>,
    /// Concatenated payloads of every run.
    data: Vec<u8>,
}

impl Diff {
    /// Compare `new` against the pristine `old` (the twin) and record every
    /// differing run. Both slices must be the same length.
    pub fn between(old: &[u8], new: &[u8]) -> Diff {
        assert_eq!(old.len(), new.len(), "diff requires equal-length buffers");
        let mut d = Diff::default();
        d.append_scan(0, old, new);
        d
    }

    /// Scan `old` vs `new` (equal-length windows of one object, starting at
    /// object offset `base`) and append the differing runs. Callers must
    /// append windows in ascending, non-touching order so the run table
    /// stays canonical; [`crate::twin::TwinStore`] uses this to diff only
    /// the dirty regions of an object.
    pub(crate) fn append_scan(&mut self, base: u32, old: &[u8], new: &[u8]) {
        debug_assert_eq!(old.len(), new.len());
        let n = new.len();
        let mut i = 0usize;
        while i < n {
            // Skip equal bytes a word at a time; on a mismatching word, jump
            // straight to its first differing byte (little-endian order puts
            // the lowest-index byte in the lowest bits of the XOR).
            while i + 8 <= n {
                let a = u64::from_le_bytes(old[i..i + 8].try_into().expect("8-byte chunk"));
                let b = u64::from_le_bytes(new[i..i + 8].try_into().expect("8-byte chunk"));
                if a == b {
                    i += 8;
                } else {
                    i += ((a ^ b).trailing_zeros() / 8) as usize;
                    break;
                }
            }
            while i < n && old[i] == new[i] {
                i += 1;
            }
            if i >= n {
                break;
            }
            let start = i;
            while i < n && old[i] != new[i] {
                i += 1;
            }
            self.push_run(base + start as u32, &new[start..i]);
        }
    }

    /// Append a run, coalescing with the previous run when adjacent. Runs
    /// must be pushed in ascending order.
    fn push_run(&mut self, start: u32, bytes: &[u8]) {
        debug_assert!(!bytes.is_empty());
        if let Some(last) = self.runs.last_mut() {
            debug_assert!(last.range.end() <= start, "runs must be pushed in order");
            if last.range.end() == start {
                last.range.len += bytes.len() as u32;
                self.data.extend_from_slice(bytes);
                return;
            }
        }
        self.runs.push(Run {
            range: ByteRange::new(start, bytes.len() as u32),
            offset: self.data.len() as u32,
        });
        self.data.extend_from_slice(bytes);
    }

    /// A diff that overwrites `range` with `data` unconditionally (used by
    /// write-without-fetch paths where no twin exists, e.g. result objects
    /// written before ever being read).
    pub fn overwrite(range: ByteRange, data: Vec<u8>) -> Diff {
        assert_eq!(range.len as usize, data.len());
        if range.is_empty() {
            return Diff::default();
        }
        Diff { runs: vec![Run { range, offset: 0 }], data }
    }

    /// Append a run while rebuilding a diff from its wire form. Runs must
    /// arrive in ascending object order with non-empty payloads — exactly
    /// the invariant [`Diff::runs`] iterates in — so a decode → encode of
    /// any diff is the identity. Returns `false` (leaving the diff
    /// untouched) instead of panicking when the input violates the
    /// invariant, so a corrupt frame surfaces as a decode error rather than
    /// a crash in the transport.
    pub fn append_run(&mut self, start: u32, bytes: &[u8]) -> bool {
        if bytes.is_empty()
            || u32::try_from(bytes.len()).is_err()
            || start.checked_add(bytes.len() as u32).is_none()
            || self.runs.last().is_some_and(|last| last.range.end() > start)
        {
            return false;
        }
        self.push_run(start, bytes);
        true
    }

    /// No changes?
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of distinct runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Total payload bytes (data only).
    pub fn data_bytes(&self) -> usize {
        self.data.len()
    }

    /// Bytes this diff occupies on the wire (runs + per-run headers).
    pub fn wire_bytes(&self) -> usize {
        self.data_bytes() + self.runs.len() * RANGE_HEADER_BYTES
    }

    /// Payload slice of run `i`.
    fn run_bytes(&self, i: usize) -> &[u8] {
        let r = &self.runs[i];
        &self.data[r.offset as usize..r.offset as usize + r.range.len as usize]
    }

    /// Iterate over the runs.
    pub fn runs(&self) -> impl Iterator<Item = (&ByteRange, &[u8])> {
        (0..self.runs.len()).map(move |i| (&self.runs[i].range, self.run_bytes(i)))
    }

    /// Apply to `data` (last-applied-wins on overlap, which is the legal
    /// loose-coherence outcome for unsynchronized overlapping writes).
    ///
    /// Panics if any run is out of bounds — receivers validated the object
    /// size when the copy was created, so an out-of-bounds run is a protocol
    /// bug, not an application error.
    pub fn apply(&self, data: &mut [u8]) {
        for i in 0..self.runs.len() {
            let range = self.runs[i].range;
            let start = range.start as usize;
            let end = start + range.len as usize;
            data[start..end].copy_from_slice(self.run_bytes(i));
        }
    }

    /// Fold `later` into `self`, with `later` taking precedence on overlap.
    /// Used to combine successive flushes addressed to the same destination
    /// into one message ("delaying updates allows the system to combine
    /// updates to the same object").
    ///
    /// Cost is O(runs + payload bytes): the two sorted run lists are merged
    /// with a two-pointer walk (`self`'s runs clipped against `later`'s
    /// coverage, `later`'s runs taken whole), never materializing the
    /// covering hull — two diffs at far ends of a large object cost their
    /// own bytes, not the distance between them.
    pub fn merge(&mut self, later: &Diff) {
        if later.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = later.clone();
            return;
        }
        // 1. Clip self's runs against later's coverage: the surviving
        //    sub-pieces, in order. A later-run may span several self-runs,
        //    so the cursor into later's runs only advances once a run is
        //    provably behind the current position.
        let mut pieces: Vec<(u32, &[u8])> = Vec::new();
        let mut bi = 0usize;
        for i in 0..self.runs.len() {
            let range = self.runs[i].range;
            let bytes = self.run_bytes(i);
            while bi < later.runs.len() && later.runs[bi].range.end() <= range.start {
                bi += 1;
            }
            let mut bj = bi;
            let mut cur = range.start;
            while cur < range.end() {
                if bj >= later.runs.len() || later.runs[bj].range.start >= range.end() {
                    pieces.push((cur, &bytes[(cur - range.start) as usize..]));
                    break;
                }
                let b = later.runs[bj].range;
                if b.start > cur {
                    let s = (cur - range.start) as usize;
                    let e = (b.start - range.start) as usize;
                    pieces.push((cur, &bytes[s..e]));
                }
                cur = b.end().min(range.end()).max(cur);
                if b.end() <= range.end() {
                    bj += 1;
                }
            }
        }
        // 2. Merge the (disjoint, sorted) piece list with later's runs.
        let mut out = Diff {
            runs: Vec::with_capacity(pieces.len() + later.runs.len()),
            data: Vec::with_capacity(self.data.len() + later.data.len()),
        };
        let mut pi = 0usize;
        let mut li = 0usize;
        while pi < pieces.len() || li < later.runs.len() {
            let take_piece = li >= later.runs.len()
                || (pi < pieces.len() && pieces[pi].0 < later.runs[li].range.start);
            if take_piece {
                out.push_run(pieces[pi].0, pieces[pi].1);
                pi += 1;
            } else {
                out.push_run(later.runs[li].range.start, later.run_bytes(li));
                li += 1;
            }
        }
        *self = out;
    }

    /// The ranges this diff touches.
    pub fn ranges(&self) -> Vec<ByteRange> {
        self.runs.iter().map(|r| r.range).collect()
    }

    /// Does this diff write any byte that `other` also writes?
    pub fn overlaps(&self, other: &Diff) -> bool {
        self.runs.iter().any(|r| other.runs.iter().any(|o| r.range.overlaps(o.range)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_buffers_produce_empty_diff() {
        let a = vec![7u8; 64];
        let d = Diff::between(&a, &a);
        assert!(d.is_empty());
        assert_eq!(d.wire_bytes(), 0);
    }

    #[test]
    fn single_run_detected() {
        let old = vec![0u8; 16];
        let mut new = old.clone();
        new[4..8].copy_from_slice(&[1, 2, 3, 4]);
        let d = Diff::between(&old, &new);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.data_bytes(), 4);
        assert_eq!(d.wire_bytes(), 4 + 8);
        let mut target = old.clone();
        d.apply(&mut target);
        assert_eq!(target, new);
    }

    #[test]
    fn multiple_runs_skip_unchanged_bytes() {
        let old = vec![0u8; 10];
        let new = vec![1, 0, 1, 1, 0, 0, 1, 0, 0, 1];
        let d = Diff::between(&old, &new);
        assert_eq!(d.run_count(), 4);
        assert_eq!(d.data_bytes(), 5);
    }

    #[test]
    fn word_boundaries_are_respected() {
        // Runs starting/ending at every offset around the 8-byte chunk
        // boundaries the scanner uses.
        for size in [7usize, 8, 9, 15, 16, 17, 31, 64] {
            for start in 0..size {
                for len in 1..=(size - start) {
                    let old = vec![0xA5u8; size];
                    let mut new = old.clone();
                    for b in &mut new[start..start + len] {
                        *b = 0x5A;
                    }
                    let d = Diff::between(&old, &new);
                    assert_eq!(d.run_count(), 1, "size={size} start={start} len={len}");
                    assert_eq!(
                        d.ranges(),
                        vec![ByteRange::new(start as u32, len as u32)],
                        "size={size} start={start} len={len}"
                    );
                    let mut target = old.clone();
                    d.apply(&mut target);
                    assert_eq!(target, new);
                }
            }
        }
    }

    #[test]
    fn disjoint_diffs_commute() {
        // Two threads write independent halves — the heart of write-many.
        let base = vec![0u8; 8];
        let mut a_ver = base.clone();
        a_ver[0..4].copy_from_slice(&[1, 1, 1, 1]);
        let mut b_ver = base.clone();
        b_ver[4..8].copy_from_slice(&[2, 2, 2, 2]);
        let da = Diff::between(&base, &a_ver);
        let db = Diff::between(&base, &b_ver);
        assert!(!da.overlaps(&db));

        let mut ab = base.clone();
        da.apply(&mut ab);
        db.apply(&mut ab);
        let mut ba = base.clone();
        db.apply(&mut ba);
        da.apply(&mut ba);
        assert_eq!(ab, ba);
        assert_eq!(ab, vec![1, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn merge_combines_and_later_wins() {
        let mut d1 = Diff::overwrite(ByteRange::new(0, 4), vec![1, 1, 1, 1]);
        let d2 = Diff::overwrite(ByteRange::new(2, 4), vec![2, 2, 2, 2]);
        d1.merge(&d2);
        let mut buf = vec![0u8; 8];
        d1.apply(&mut buf);
        assert_eq!(buf, vec![1, 1, 2, 2, 2, 2, 0, 0]);
        assert_eq!(d1.run_count(), 1, "adjacent runs coalesce: {d1:?}");
    }

    #[test]
    fn merge_preserves_gaps() {
        let mut d1 = Diff::overwrite(ByteRange::new(0, 2), vec![1, 1]);
        let d2 = Diff::overwrite(ByteRange::new(6, 2), vec![2, 2]);
        d1.merge(&d2);
        assert_eq!(d1.run_count(), 2, "gap between runs must survive merge");
        let mut buf = vec![9u8; 8];
        d1.apply(&mut buf);
        assert_eq!(buf, vec![1, 1, 9, 9, 9, 9, 2, 2]);
    }

    #[test]
    fn merge_does_not_materialize_the_hull() {
        // Two single-byte runs 16 MiB apart: the merged diff must stay two
        // bytes of payload, not 16 MiB.
        let mut d1 = Diff::overwrite(ByteRange::new(0, 1), vec![1]);
        let d2 = Diff::overwrite(ByteRange::new(16 << 20, 1), vec![2]);
        d1.merge(&d2);
        assert_eq!(d1.run_count(), 2);
        assert_eq!(d1.data_bytes(), 2);
        assert_eq!(d1.wire_bytes(), 2 + 16);
    }

    #[test]
    fn merge_later_spanning_several_earlier_runs() {
        // Earlier: three runs; later: one run covering the middle one and
        // parts of the outer two.
        let mut d1 = Diff::overwrite(ByteRange::new(0, 4), vec![1; 4]);
        d1.merge(&Diff::overwrite(ByteRange::new(8, 4), vec![2; 4]));
        d1.merge(&Diff::overwrite(ByteRange::new(16, 4), vec![3; 4]));
        assert_eq!(d1.run_count(), 3);
        let later = Diff::overwrite(ByteRange::new(2, 16), vec![7; 16]);
        d1.merge(&later);
        let mut buf = vec![0u8; 24];
        d1.apply(&mut buf);
        let mut want = vec![0u8; 24];
        want[0..4].copy_from_slice(&[1; 4]);
        want[8..12].copy_from_slice(&[2; 4]);
        want[16..20].copy_from_slice(&[3; 4]);
        want[2..18].copy_from_slice(&[7; 16]);
        assert_eq!(buf, want);
        assert_eq!(d1.run_count(), 1, "everything touches: {d1:?}");
    }

    #[test]
    fn merge_into_empty_clones() {
        let mut d = Diff::default();
        let other = Diff::overwrite(ByteRange::new(1, 2), vec![5, 6]);
        d.merge(&other);
        assert_eq!(d, other);
        // And merging empty into non-empty is a no-op.
        let snapshot = d.clone();
        d.merge(&Diff::default());
        assert_eq!(d, snapshot);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn length_mismatch_panics() {
        Diff::between(&[0u8; 4], &[0u8; 5]);
    }

    proptest! {
        /// apply(diff(old→new)) over old always reconstructs new.
        #[test]
        fn diff_apply_roundtrip(
            old in proptest::collection::vec(any::<u8>(), 1..200),
            seed_positions in proptest::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 0..32)
        ) {
            let mut new = old.clone();
            for (idx, val) in seed_positions {
                let i = idx.index(new.len());
                new[i] = val;
            }
            let d = Diff::between(&old, &new);
            let mut rebuilt = old.clone();
            d.apply(&mut rebuilt);
            prop_assert_eq!(rebuilt, new);
        }

        /// A diff's runs are sorted, disjoint and non-adjacent, and its
        /// data_bytes equals the hamming-differing byte count.
        #[test]
        fn diff_runs_are_canonical(
            old in proptest::collection::vec(any::<u8>(), 1..120),
            flips in proptest::collection::vec(any::<prop::sample::Index>(), 0..40)
        ) {
            let mut new = old.clone();
            for idx in flips {
                let i = idx.index(new.len());
                new[i] = new[i].wrapping_add(1);
            }
            let d = Diff::between(&old, &new);
            let ranges = d.ranges();
            for w in ranges.windows(2) {
                prop_assert!(w[0].end() < w[1].start, "sorted + gap: {:?}", ranges);
            }
            let differing = old.iter().zip(&new).filter(|(a, b)| a != b).count();
            prop_assert_eq!(d.data_bytes(), differing);
        }

        /// Merging two diffs then applying equals applying them in sequence.
        #[test]
        fn merge_equals_sequential_apply(
            base in proptest::collection::vec(any::<u8>(), 16..64),
            w1 in (0usize..48, proptest::collection::vec(any::<u8>(), 1..16)),
            w2 in (0usize..48, proptest::collection::vec(any::<u8>(), 1..16)),
        ) {
            let clip = |start: usize, data: &Vec<u8>| {
                let start = start.min(base.len() - 1);
                let len = data.len().min(base.len() - start);
                (ByteRange::new(start as u32, len as u32), data[..len].to_vec())
            };
            let (r1, d1) = clip(w1.0, &w1.1);
            let (r2, d2) = clip(w2.0, &w2.1);
            let diff1 = Diff::overwrite(r1, d1);
            let diff2 = Diff::overwrite(r2, d2);

            let mut seq = base.clone();
            diff1.apply(&mut seq);
            diff2.apply(&mut seq);

            let mut merged = diff1.clone();
            merged.merge(&diff2);
            let mut via_merge = base.clone();
            merged.apply(&mut via_merge);

            prop_assert_eq!(seq, via_merge);
        }

        /// Merging multi-run diffs equals sequential application, and the
        /// merged diff stays canonical (two-pointer merge, no hull).
        #[test]
        fn merge_multirun_equals_sequential_apply(
            base in proptest::collection::vec(any::<u8>(), 32..128),
            flips1 in proptest::collection::vec(any::<prop::sample::Index>(), 0..24),
            flips2 in proptest::collection::vec(any::<prop::sample::Index>(), 0..24),
        ) {
            let mut v1 = base.clone();
            for idx in flips1 {
                let i = idx.index(v1.len());
                v1[i] = v1[i].wrapping_add(1);
            }
            let diff1 = Diff::between(&base, &v1);
            let mut v2 = v1.clone();
            for idx in flips2 {
                let i = idx.index(v2.len());
                v2[i] = v2[i].wrapping_add(1);
            }
            let diff2 = Diff::between(&v1, &v2);

            let mut merged = diff1.clone();
            merged.merge(&diff2);
            let mut via_merge = base.clone();
            merged.apply(&mut via_merge);
            prop_assert_eq!(&via_merge, &v2);

            let ranges = merged.ranges();
            for w in ranges.windows(2) {
                prop_assert!(w[0].end() < w[1].start, "canonical after merge: {:?}", ranges);
            }
        }
    }
}

//! Per-node object storage.
//!
//! Each node's server keeps the bytes of every object it currently has a
//! copy of. The store is protocol-agnostic: validity/ownership state lives
//! in the protocol layer; this is just bounds-checked bytes plus the
//! little-endian integer views used by atomic counters and work queues.

use munin_types::{ByteRange, DsmError, DsmResult, ObjectId};
use std::collections::HashMap;

/// Bytes of local object copies.
#[derive(Debug, Default)]
pub struct ObjectStore {
    objects: HashMap<ObjectId, Vec<u8>>,
}

impl ObjectStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a copy (zero-filled) of `size` bytes. No-op if present.
    pub fn ensure_zeroed(&mut self, obj: ObjectId, size: u32) -> &mut Vec<u8> {
        self.objects.entry(obj).or_insert_with(|| vec![0; size as usize])
    }

    /// Install a copy with the given bytes, replacing any existing copy.
    pub fn install(&mut self, obj: ObjectId, data: Vec<u8>) {
        self.objects.insert(obj, data);
    }

    /// Drop the local copy (invalidation / migration away).
    pub fn evict(&mut self, obj: ObjectId) -> Option<Vec<u8>> {
        self.objects.remove(&obj)
    }

    pub fn contains(&self, obj: ObjectId) -> bool {
        self.objects.contains_key(&obj)
    }

    pub fn get(&self, obj: ObjectId) -> Option<&[u8]> {
        self.objects.get(&obj).map(|v| v.as_slice())
    }

    pub fn get_mut(&mut self, obj: ObjectId) -> Option<&mut Vec<u8>> {
        self.objects.get_mut(&obj)
    }

    /// Read `range`, bounds-checked.
    pub fn read(&self, obj: ObjectId, range: ByteRange) -> DsmResult<Vec<u8>> {
        let data = self.objects.get(&obj).ok_or(DsmError::UnknownObject(obj))?;
        if !range.fits_in(data.len() as u32) {
            return Err(DsmError::OutOfBounds { obj, range, size: data.len() as u32 });
        }
        Ok(data[range.start as usize..range.end() as usize].to_vec())
    }

    /// Write `bytes` at `range.start`, bounds-checked.
    pub fn write(&mut self, obj: ObjectId, range: ByteRange, bytes: &[u8]) -> DsmResult<()> {
        debug_assert_eq!(range.len as usize, bytes.len());
        let data = self.objects.get_mut(&obj).ok_or(DsmError::UnknownObject(obj))?;
        if !range.fits_in(data.len() as u32) {
            return Err(DsmError::OutOfBounds { obj, range, size: data.len() as u32 });
        }
        data[range.start as usize..range.end() as usize].copy_from_slice(bytes);
        Ok(())
    }

    /// Atomic fetch-and-add on the little-endian i64 at `offset`; returns the
    /// previous value. ("More elaborate synchronization objects, such as
    /// monitors and atomic integers, are built on top.")
    pub fn fetch_add_i64(&mut self, obj: ObjectId, offset: u32, delta: i64) -> DsmResult<i64> {
        let range = ByteRange::new(offset, 8);
        let data = self.objects.get_mut(&obj).ok_or(DsmError::UnknownObject(obj))?;
        if !range.fits_in(data.len() as u32) {
            return Err(DsmError::OutOfBounds { obj, range, size: data.len() as u32 });
        }
        let s = offset as usize;
        let old = i64::from_le_bytes(data[s..s + 8].try_into().expect("8-byte slice"));
        let new = old.wrapping_add(delta);
        data[s..s + 8].copy_from_slice(&new.to_le_bytes());
        Ok(old)
    }

    /// Number of objects with local copies.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Total bytes held locally (memory-economy diagnostics: replication of
    /// large objects "can restrict the size of the problems that can be
    /// solved").
    pub fn resident_bytes(&self) -> usize {
        self.objects.values().map(|v| v.len()).sum()
    }
}

/// Read a little-endian i64 out of a byte slice (helper shared by typed
/// views in the API layer).
pub fn read_i64_le(data: &[u8], offset: usize) -> i64 {
    i64::from_le_bytes(data[offset..offset + 8].try_into().expect("8-byte slice"))
}

/// Write a little-endian i64 into a byte slice.
pub fn write_i64_le(data: &mut [u8], offset: usize, value: i64) {
    data[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
}

/// Read a little-endian f64.
pub fn read_f64_le(data: &[u8], offset: usize) -> f64 {
    f64::from_le_bytes(data[offset..offset + 8].try_into().expect("8-byte slice"))
}

/// Write a little-endian f64.
pub fn write_f64_le(data: &mut [u8], offset: usize, value: f64) {
    data[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    const OBJ: ObjectId = ObjectId(1);

    #[test]
    fn install_read_write_roundtrip() {
        let mut s = ObjectStore::new();
        s.install(OBJ, vec![0; 16]);
        s.write(OBJ, ByteRange::new(4, 3), &[9, 8, 7]).unwrap();
        assert_eq!(s.read(OBJ, ByteRange::new(3, 5)).unwrap(), vec![0, 9, 8, 7, 0]);
    }

    #[test]
    fn unknown_object_errors() {
        let s = ObjectStore::new();
        assert_eq!(s.read(OBJ, ByteRange::new(0, 1)).unwrap_err(), DsmError::UnknownObject(OBJ));
    }

    #[test]
    fn out_of_bounds_errors() {
        let mut s = ObjectStore::new();
        s.install(OBJ, vec![0; 8]);
        let err = s.read(OBJ, ByteRange::new(5, 4)).unwrap_err();
        assert!(matches!(err, DsmError::OutOfBounds { size: 8, .. }));
        let err = s.write(OBJ, ByteRange::new(8, 1), &[1]).unwrap_err();
        assert!(matches!(err, DsmError::OutOfBounds { .. }));
    }

    #[test]
    fn fetch_add_returns_previous_and_wraps() {
        let mut s = ObjectStore::new();
        s.install(OBJ, vec![0; 16]);
        assert_eq!(s.fetch_add_i64(OBJ, 8, 5).unwrap(), 0);
        assert_eq!(s.fetch_add_i64(OBJ, 8, -2).unwrap(), 5);
        assert_eq!(s.fetch_add_i64(OBJ, 8, 0).unwrap(), 3);
        // Offset 0 is untouched.
        assert_eq!(read_i64_le(s.get(OBJ).unwrap(), 0), 0);
        // Wrapping, not panicking.
        s.write(OBJ, ByteRange::new(0, 8), &i64::MAX.to_le_bytes()).unwrap();
        assert_eq!(s.fetch_add_i64(OBJ, 0, 1).unwrap(), i64::MAX);
        assert_eq!(read_i64_le(s.get(OBJ).unwrap(), 0), i64::MIN);
    }

    #[test]
    fn fetch_add_bounds_checked() {
        let mut s = ObjectStore::new();
        s.install(OBJ, vec![0; 8]);
        assert!(s.fetch_add_i64(OBJ, 4, 1).is_err(), "8-byte read at offset 4 of size 8");
        assert!(s.fetch_add_i64(OBJ, 0, 1).is_ok());
    }

    #[test]
    fn evict_and_residency() {
        let mut s = ObjectStore::new();
        s.install(OBJ, vec![0; 100]);
        s.install(ObjectId(2), vec![0; 28]);
        assert_eq!(s.resident_bytes(), 128);
        assert_eq!(s.len(), 2);
        let evicted = s.evict(OBJ).unwrap();
        assert_eq!(evicted.len(), 100);
        assert!(!s.contains(OBJ));
        assert_eq!(s.resident_bytes(), 28);
    }

    #[test]
    fn ensure_zeroed_is_idempotent() {
        let mut s = ObjectStore::new();
        s.ensure_zeroed(OBJ, 4);
        s.write(OBJ, ByteRange::new(0, 1), &[42]).unwrap();
        s.ensure_zeroed(OBJ, 4);
        assert_eq!(s.read(OBJ, ByteRange::new(0, 1)).unwrap(), vec![42]);
    }

    #[test]
    fn le_helpers_roundtrip() {
        let mut buf = vec![0u8; 24];
        write_i64_le(&mut buf, 0, -123456789);
        write_f64_le(&mut buf, 8, 3.25);
        assert_eq!(read_i64_le(&buf, 0), -123456789);
        assert_eq!(read_f64_le(&buf, 8), 3.25);
    }
}

//! # munin-mem
//!
//! Distributed memory management for the Munin reproduction.
//!
//! Four pieces, each used by both runtimes or by the Munin protocols:
//!
//! * [`store`] — per-node storage of local object copies with bounds-checked
//!   range access and little-endian integer views (for atomic counters);
//! * [`diff`] — run-length encoded differences between two versions of an
//!   object's bytes. This is how the delayed update queue ships only the
//!   bytes a thread actually wrote, and how concurrent writers to
//!   independent portions of a write-many object merge without conflict;
//! * [`twin`] — twin management: before a thread writes a loosely-coherent
//!   object, the runtime snapshots ("twins") the pristine bytes so the flush
//!   can diff against them;
//! * [`addr`] — the Ivy baseline's flat shared address space: object
//!   placement (packed or page-aligned) and object-range → page-range
//!   translation, which is where false sharing comes from.

pub mod addr;
pub mod diff;
pub mod store;
pub mod twin;

pub use addr::{AddressSpace, PageId, PagePiece};
pub use diff::Diff;
pub use store::ObjectStore;
pub use twin::TwinStore;

//! # munin-mem
//!
//! Distributed memory management for the Munin reproduction.
//!
//! Four pieces, each used by both runtimes or by the Munin protocols:
//!
//! * [`store`] — per-node storage of local object copies with bounds-checked
//!   range access and little-endian integer views (for atomic counters);
//! * [`diff`] — run-length encoded differences between two versions of an
//!   object's bytes: a run table over one shared payload buffer, built with
//!   a word-at-a-time scan. This is how the delayed update queue ships only
//!   the bytes a thread actually wrote, and how concurrent writers to
//!   independent portions of a write-many object merge without conflict;
//! * [`twin`] — dirty-range twin management: as each local write lands on a
//!   loosely-coherent object, the runtime snapshots the pristine bytes of
//!   *that range* (coalescing adjacent writes into regions), so flush-time
//!   diffing scans only what was written;
//! * [`addr`] — the Ivy baseline's flat shared address space: object
//!   placement (packed or page-aligned) and object-range → page-range
//!   translation, which is where false sharing comes from.
//!
//! ## The dirty-range architecture
//!
//! The paper's "delayed updates" mechanism is only cheap if its cost tracks
//! the write set, not the object: a thread touching 64 bytes of a 1 MiB
//! array must not pay 1 MiB of twin copy plus a 1 MiB scan at the next
//! synchronization. The pipeline therefore keeps everything O(bytes
//! written):
//!
//! 1. **Write** — [`twin::TwinStore::note_write`] snapshots the written
//!    range's pristine bytes (lazily, merging adjacent regions; rewriting an
//!    already-dirty range is free).
//! 2. **Flush** — [`twin::TwinStore::take_diff`] diffs each dirty region
//!    against the working copy in place (no clone), producing one [`Diff`]
//!    whose N runs live in a single payload allocation.
//! 3. **Distribute** — the protocol layer (munin-core) wraps the diff in an
//!    `Arc`, so fanning it out to K copyset members shares one payload.
//!
//! Incoming remote diffs patch the snapshots ([`twin::TwinStore::apply_remote`])
//! so remote bytes are never mistaken for local modifications — and runs
//! outside every dirty region need no work at all.

pub mod addr;
pub mod diff;
pub mod store;
pub mod twin;

pub use addr::{AddressSpace, PageId, PagePiece};
pub use diff::Diff;
pub use store::ObjectStore;
pub use twin::TwinStore;

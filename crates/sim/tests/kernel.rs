//! Direct tests of kernel facilities that the protocol crates exercise only
//! indirectly: server timers, tracer hooks, multicast accounting, and the
//! registry.

use munin_net::{MsgClass, PayloadInfo};
use munin_sim::{
    DsmOp, KernelApi, OpOutcome, OpResult, Server, ThreadCtx, TraceEvent, Tracer, TransportConfig,
    WorldBuilder,
};
use munin_types::{ByteRange, CostModel, NodeId, ObjectId, ThreadId, VirtualTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

#[derive(Debug, Clone)]
struct Ping;

impl PayloadInfo for Ping {
    fn class(&self) -> MsgClass {
        MsgClass::Control
    }
    fn kind(&self) -> &'static str {
        "Ping"
    }
    fn wire_bytes(&self) -> usize {
        0
    }
}

/// A server that completes reads only after a chain of timers: tests
/// set_timer/on_timer plumbing and virtual-time spacing.
struct TimerServer {
    node: NodeId,
    pending: Option<ThreadId>,
    fired: Arc<Mutex<Vec<(u64, u64)>>>, // (token, at_us)
}

impl Server for TimerServer {
    type Payload = Ping;

    fn on_op(&mut self, k: &mut dyn KernelApi<Ping>, thread: ThreadId, op: DsmOp) -> OpOutcome {
        match op {
            DsmOp::Read { .. } => {
                self.pending = Some(thread);
                k.set_timer(self.node, 100, 1);
                OpOutcome::Blocked
            }
            _ => OpOutcome::unit(0),
        }
    }

    fn on_message(&mut self, _k: &mut dyn KernelApi<Ping>, _f: NodeId, _p: Ping) {}

    fn on_timer(&mut self, k: &mut dyn KernelApi<Ping>, token: u64) {
        self.fired.lock().unwrap().push((token, k.now().as_micros()));
        if token < 3 {
            k.set_timer(self.node, 100, token + 1);
        } else if let Some(t) = self.pending.take() {
            k.complete(t, OpResult::Bytes(vec![7]), 0);
        }
    }
}

#[test]
fn timers_chain_with_exact_virtual_spacing() {
    let fired = Arc::new(Mutex::new(Vec::new()));
    let mut b = WorldBuilder::new(1);
    b.spawn(NodeId(0), |ctx: &mut ThreadCtx| {
        let v = ctx.read(ObjectId(0), ByteRange::new(0, 1));
        assert_eq!(v, vec![7]);
    });
    let report =
        b.build(vec![TimerServer { node: NodeId(0), pending: None, fired: fired.clone() }]).run();
    report.assert_clean();
    let fired = fired.lock().unwrap();
    assert_eq!(fired.len(), 3);
    assert_eq!(fired[0], (1, 100));
    assert_eq!(fired[1], (2, 200));
    assert_eq!(fired[2], (3, 300));
}

/// A tracer capturing message kinds, validating the tracer hook sees sends.
struct KindTracer {
    ops: Arc<AtomicU64>,
    msgs: Arc<AtomicU64>,
}

impl Tracer for KindTracer {
    fn record(&mut self, event: TraceEvent<'_>) {
        match event {
            TraceEvent::OpIssued { .. } => {
                self.ops.fetch_add(1, Ordering::Relaxed);
            }
            TraceEvent::MessageSent { kind, .. } => {
                assert_eq!(kind, "Ping");
                self.msgs.fetch_add(1, Ordering::Relaxed);
            }
            TraceEvent::OpCompleted { .. } => {}
        }
    }
}

/// Server: every read pings the other node, which bounces the ping back;
/// two messages per read. Waiters complete FIFO.
struct PingServer {
    node: NodeId,
    waiting: std::collections::VecDeque<ThreadId>,
}

impl PingServer {
    fn new(node: NodeId) -> Self {
        PingServer { node, waiting: std::collections::VecDeque::new() }
    }
}

impl Server for PingServer {
    type Payload = Ping;

    fn on_op(&mut self, k: &mut dyn KernelApi<Ping>, thread: ThreadId, op: DsmOp) -> OpOutcome {
        match op {
            DsmOp::Read { .. } => {
                self.waiting.push_back(thread);
                k.send(self.node, NodeId(1 - self.node.0), Ping);
                OpOutcome::Blocked
            }
            _ => OpOutcome::unit(0),
        }
    }

    fn on_message(&mut self, k: &mut dyn KernelApi<Ping>, from: NodeId, _p: Ping) {
        if let Some(t) = self.waiting.pop_front() {
            k.complete(t, OpResult::Bytes(vec![1]), 0);
        } else {
            k.send(self.node, from, Ping);
        }
    }
}

#[test]
fn tracer_sees_every_op_and_message() {
    let ops = Arc::new(AtomicU64::new(0));
    let msgs = Arc::new(AtomicU64::new(0));
    let mut b =
        WorldBuilder::new(2).tracer(Box::new(KindTracer { ops: ops.clone(), msgs: msgs.clone() }));
    b.spawn(NodeId(0), |ctx: &mut ThreadCtx| {
        for _ in 0..3 {
            ctx.read(ObjectId(0), ByteRange::new(0, 1));
        }
    });
    let report = b.build(vec![PingServer::new(NodeId(0)), PingServer::new(NodeId(1))]).run();
    report.assert_clean();
    assert_eq!(msgs.load(Ordering::Relaxed), 6, "2 pings per read");
    // 3 reads + 1 exit op.
    assert_eq!(ops.load(Ordering::Relaxed), 4);
}

#[test]
fn serialized_medium_stretches_completion_time() {
    let run = |serialize: bool| {
        let mut cfg = TransportConfig::lossless(CostModel::ethernet_1990());
        cfg.serialize_medium = serialize;
        let mut b = WorldBuilder::new(2).transport(cfg);
        // Two concurrent requesters saturate the wire.
        for _ in 0..2 {
            b.spawn(NodeId(0), |ctx: &mut ThreadCtx| {
                for _ in 0..5 {
                    ctx.read(ObjectId(0), ByteRange::new(0, 1));
                }
            });
        }
        b.build(vec![PingServer::new(NodeId(0)), PingServer::new(NodeId(1))]).run()
    };
    let free = run(false);
    let shared = run(true);
    assert_eq!(free.stats.messages, shared.stats.messages);
    assert!(
        shared.finished_at > free.finished_at,
        "a shared half-duplex medium must stretch the schedule ({} vs {})",
        shared.finished_at,
        free.finished_at
    );
}

#[test]
fn registry_assigns_dense_ids_and_survives_retype() {
    let mut b = WorldBuilder::new(1);
    let d1 = munin_types::ObjectDecl::new(
        ObjectId(0),
        "a",
        8,
        munin_types::SharingType::WriteMany,
        NodeId(0),
    );
    let id1 = b.declare(d1.clone(), NodeId(0));
    let id2 = b.declare(d1, NodeId(0));
    assert_eq!(id1, ObjectId(0));
    assert_eq!(id2, ObjectId(1));
    b.spawn(NodeId(0), |ctx: &mut ThreadCtx| ctx.compute(1));
    let report = b
        .build(vec![TimerServer {
            node: NodeId(0),
            pending: None,
            fired: Arc::new(Mutex::new(Vec::new())),
        }])
        .run();
    report.assert_clean();
    assert_eq!(report.finished_at, VirtualTime::micros(1));
}

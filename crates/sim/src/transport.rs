//! The reliable, FIFO, loss-injectable transport.
//!
//! Plays the role of the V kernel's inter-node communication: the coherence
//! protocols above assume messages between a pair of nodes arrive in the
//! order sent, exactly once. The wire itself may reorder (a small control
//! message overtakes a large data transfer) and — when loss injection is
//! enabled — drop messages; this layer restores FIFO-exactly-once with
//! per-pair sequence numbers, a receiver-side [`ReorderBuffer`], cumulative
//! acknowledgements, and go-back-N retransmission.
//!
//! With loss disabled (the default for protocol experiments) no acks or
//! retransmission state exist, so the traffic tables contain protocol
//! messages only.

use crate::event::{EventKind, EventQueue};
use munin_net::{
    derive, LatencyModel, LinkSchedule, LossModel, MsgClass, NetStats, PayloadInfo, ReorderBuffer,
};
use munin_types::{CostModel, NodeId, VirtualTime};
use std::collections::{BTreeMap, HashMap};

/// Transport configuration.
///
/// All randomized behaviour (loss rolls, delivery jitter) derives from the
/// single `seed` via per-role substreams, so one u64 replays the whole run.
#[derive(Debug, Clone)]
pub struct TransportConfig {
    pub cost: CostModel,
    /// Probability that any single wire transmission is dropped.
    pub drop_prob: f64,
    /// Seed for every deterministic random stream in this transport.
    pub seed: u64,
    /// Retransmission timeout (virtual µs). Only relevant when reliable.
    pub retx_timeout_us: u64,
    /// Model the network as a shared half-duplex medium (messages queue
    /// behind each other on the wire).
    pub serialize_medium: bool,
    /// Per-message delivery jitter bound (virtual µs, 0 = none). Jitter lets
    /// small messages overtake large ones and vice versa, exercising the
    /// receiver-side reorder buffer.
    pub jitter_us: u64,
    /// Scheduled link faults (partitions, node isolation windows).
    pub link_faults: LinkSchedule,
    /// Retransmission attempts per message before the transport gives up
    /// (counted in `NetStats::gave_up` and surfaced as a run error). Bounds
    /// virtual time under permanent partitions.
    pub max_retx: u32,
}

impl TransportConfig {
    pub fn lossless(cost: CostModel) -> Self {
        TransportConfig {
            cost,
            drop_prob: 0.0,
            seed: 0,
            retx_timeout_us: 10_000,
            serialize_medium: false,
            jitter_us: 0,
            link_faults: LinkSchedule::default(),
            max_retx: 40,
        }
    }

    pub fn lossy(cost: CostModel, drop_prob: f64, seed: u64) -> Self {
        let mut cfg = TransportConfig::lossless(cost);
        cfg.drop_prob = drop_prob;
        cfg.seed = seed;
        cfg
    }

    pub fn with_jitter(mut self, jitter_us: u64) -> Self {
        self.jitter_us = jitter_us;
        self
    }

    pub fn with_link_faults(mut self, faults: LinkSchedule) -> Self {
        self.link_faults = faults;
        self
    }
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig::lossless(CostModel::default())
    }
}

/// What actually travels on the wire: an application (protocol) payload, or
/// a transport-level cumulative ack.
#[derive(Debug, Clone)]
pub enum Wire<P> {
    App(P),
    /// Cumulative ack: "I have delivered every seq below `upto`".
    Ack {
        upto: u64,
    },
}

/// A buffered unacked message awaiting possible retransmission.
#[derive(Debug, Clone)]
struct Unacked<P> {
    payload: P,
    /// Retransmissions already attempted for this message.
    retries: u32,
}

#[derive(Debug)]
struct PairState<P> {
    /// Next sequence number to assign for sends on this (src → dst) pair.
    next_seq: u64,
    /// Receiver side: reorder/dedup buffer (keyed on the reverse pair at the
    /// destination's entry).
    reorder: ReorderBuffer<P>,
    /// Sender side: messages not yet cumulatively acked (only with loss).
    unacked: BTreeMap<u64, Unacked<P>>,
    /// Is a retransmission timer outstanding for this pair?
    retx_armed: bool,
}

impl<P> Default for PairState<P> {
    fn default() -> Self {
        PairState {
            next_seq: 0,
            reorder: ReorderBuffer::new(),
            unacked: BTreeMap::new(),
            retx_armed: false,
        }
    }
}

/// The transport. Owned by the simulation kernel; all scheduling goes
/// through the kernel's event queue, passed in by the caller.
#[derive(Debug)]
pub struct Transport<P> {
    cfg: TransportConfig,
    latency: LatencyModel,
    loss: LossModel,
    /// Keyed by (src, dst): state for the directed pair. The entry at key
    /// (a, b) holds a's sender state towards b *and* b's receiver state from
    /// a (they are the two ends of the same directed channel).
    pairs: HashMap<(NodeId, NodeId), PairState<P>>,
    reliable: bool,
}

impl<P: PayloadInfo + Clone> Transport<P> {
    pub fn new(cfg: TransportConfig) -> Self {
        let latency = LatencyModel::new(cfg.cost.clone())
            .with_serialized_medium(cfg.serialize_medium)
            .with_jitter(cfg.jitter_us, derive(cfg.seed, "latency"));
        let loss = LossModel::new(cfg.drop_prob, derive(cfg.seed, "loss"));
        // Link faults silently eat transmissions, so they need the same
        // ack/retransmission machinery that recovers injected loss.
        let reliable = cfg.drop_prob > 0.0 || !cfg.link_faults.is_empty();
        Transport { cfg, latency, loss, pairs: HashMap::new(), reliable }
    }

    pub fn cost(&self) -> &CostModel {
        self.latency.cost()
    }

    fn pair(&mut self, src: NodeId, dst: NodeId) -> &mut PairState<P> {
        self.pairs.entry((src, dst)).or_default()
    }

    /// Send `payload` from `src` to `dst`. Accounts the transmission,
    /// applies loss, schedules delivery, and (with loss enabled) buffers for
    /// retransmission.
    pub fn send(
        &mut self,
        now: VirtualTime,
        events: &mut EventQueue<Wire<P>>,
        stats: &mut NetStats,
        src: NodeId,
        dst: NodeId,
        payload: P,
    ) {
        let seq = {
            let pair = self.pair(src, dst);
            let s = pair.next_seq;
            pair.next_seq += 1;
            s
        };
        self.transmit(now, events, stats, src, dst, seq, payload, false);
    }

    /// Multicast `payload` from `src` to each node in `dsts`.
    ///
    /// With hardware multicast the wire carries one transmission (one stats
    /// record, one loss roll); without it, each destination is a separate
    /// unicast. Per-destination sequence numbers are consumed either way so
    /// FIFO per pair is preserved.
    pub fn multicast(
        &mut self,
        now: VirtualTime,
        events: &mut EventQueue<Wire<P>>,
        stats: &mut NetStats,
        src: NodeId,
        dsts: &[NodeId],
        payload: P,
    ) {
        if dsts.is_empty() {
            return;
        }
        let hw = self.cost().hardware_multicast && !self.reliable;
        let actual = if hw { 1 } else { dsts.len() };
        stats.record_multicast(dsts.len(), actual);
        if hw {
            // One transmission: one stats record, one loss roll, delivered to
            // every destination at the same instant.
            stats.record(payload.class(), payload.kind(), payload.wire_bytes());
            let arrive = self.latency.delivery_time(now, payload.wire_bytes());
            for &dst in dsts {
                let seq = {
                    let pair = self.pair(src, dst);
                    let s = pair.next_seq;
                    pair.next_seq += 1;
                    s
                };
                events.push(
                    arrive,
                    EventKind::Deliver { src, dst, seq, wire: Wire::App(payload.clone()) },
                );
            }
        } else {
            for &dst in dsts {
                self.send(now, events, stats, src, dst, payload.clone());
            }
        }
    }

    /// One wire transmission (fresh send or retransmission).
    #[allow(clippy::too_many_arguments)]
    fn transmit(
        &mut self,
        now: VirtualTime,
        events: &mut EventQueue<Wire<P>>,
        stats: &mut NetStats,
        src: NodeId,
        dst: NodeId,
        seq: u64,
        payload: P,
        is_retx: bool,
    ) {
        stats.record(payload.class(), payload.kind(), payload.wire_bytes());
        if is_retx {
            stats.record_retransmission();
        }
        if self.reliable {
            let pair = self.pair(src, dst);
            pair.unacked.entry(seq).or_insert(Unacked { payload: payload.clone(), retries: 0 });
            if !pair.retx_armed {
                pair.retx_armed = true;
                events.push(now + self.cfg.retx_timeout_us, EventKind::RetxTimer { src, dst });
            }
        }
        if self.cfg.link_faults.cut(src, dst, now.as_micros()) {
            stats.record_drop();
            return; // Severed link: retransmission carries it across a heal.
        }
        if self.loss.should_drop() {
            stats.record_drop();
            return; // The retransmission timer will recover it (if reliable).
        }
        let arrive = self.latency.delivery_time(now, payload.wire_bytes());
        events.push(arrive, EventKind::Deliver { src, dst, seq, wire: Wire::App(payload) });
    }

    /// Handle an arrival at `dst`. Returns the app payloads now deliverable
    /// to the server, in FIFO order. May schedule ack transmissions.
    pub fn receive(
        &mut self,
        now: VirtualTime,
        events: &mut EventQueue<Wire<P>>,
        stats: &mut NetStats,
        src: NodeId,
        dst: NodeId,
        seq: u64,
        wire: Wire<P>,
    ) -> Vec<P> {
        match wire {
            Wire::Ack { upto } => {
                // Ack travels dst-ward on the reverse pair; clear the sender
                // state for (dst, src)... careful: an ack arriving *at* `dst`
                // acknowledges messages `dst` sent to `src`.
                let pair = self.pair(dst, src);
                pair.unacked = pair.unacked.split_off(&upto);
                Vec::new()
            }
            Wire::App(payload) => {
                let released = {
                    let pair = self.pair(src, dst);
                    pair.reorder.offer(seq, payload)
                };
                if self.reliable {
                    // Cumulative ack back to the sender. Acks are themselves
                    // lossy but never retransmitted; later acks supersede.
                    let upto = self.pair(src, dst).reorder.expected();
                    stats.record(MsgClass::Ack, "NetAck", 0);
                    if self.cfg.link_faults.cut(dst, src, now.as_micros()) {
                        stats.record_drop();
                        return released;
                    }
                    if !self.loss.should_drop() {
                        let arrive = self.latency.delivery_time(now, 0);
                        events.push(
                            arrive,
                            EventKind::Deliver {
                                src: dst,
                                dst: src,
                                seq: 0,
                                wire: Wire::Ack { upto },
                            },
                        );
                    } else {
                        stats.record_drop();
                    }
                }
                released
            }
        }
    }

    /// Retransmission timer for pair (src → dst) fired.
    pub fn on_retx_timer(
        &mut self,
        now: VirtualTime,
        events: &mut EventQueue<Wire<P>>,
        stats: &mut NetStats,
        src: NodeId,
        dst: NodeId,
    ) {
        let max_retx = self.cfg.max_retx;
        let outstanding: Vec<(u64, P)> = {
            let pair = self.pair(src, dst);
            pair.retx_armed = false;
            let exhausted: Vec<u64> = pair
                .unacked
                .iter_mut()
                .filter_map(|(s, u)| {
                    u.retries += 1;
                    (u.retries > max_retx).then_some(*s)
                })
                .collect();
            for s in exhausted {
                // Retry budget exhausted (the link fault outlasted it): stop
                // retransmitting and let the run report the abandonment.
                pair.unacked.remove(&s);
                stats.record_gave_up();
            }
            pair.unacked.iter().map(|(s, u)| (*s, u.payload.clone())).collect()
        };
        if outstanding.is_empty() {
            return;
        }
        for (seq, payload) in outstanding {
            self.transmit(now, events, stats, src, dst, seq, payload, true);
        }
    }

    /// Messages buffered but not yet acknowledged (diagnostics / tests).
    pub fn total_unacked(&self) -> usize {
        self.pairs.values().map(|p| p.unacked.len()).sum()
    }

    /// Duplicate deliveries suppressed by the reorder buffers.
    pub fn total_duplicates(&self) -> u64 {
        self.pairs.values().map(|p| p.reorder.duplicates()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind};

    #[derive(Debug, Clone, PartialEq)]
    struct P(u32, usize); // id, bytes

    impl PayloadInfo for P {
        fn class(&self) -> MsgClass {
            MsgClass::Data
        }
        fn kind(&self) -> &'static str {
            "P"
        }
        fn wire_bytes(&self) -> usize {
            self.1
        }
    }

    /// Drive the transport + queue to completion, returning delivered
    /// payloads at each node in order.
    fn drain(
        t: &mut Transport<P>,
        q: &mut EventQueue<Wire<P>>,
        stats: &mut NetStats,
    ) -> Vec<(NodeId, P)> {
        let mut out = Vec::new();
        while let Some(Event { at, kind, .. }) = q.pop() {
            match kind {
                EventKind::Deliver { src, dst, seq, wire } => {
                    for p in t.receive(at, q, stats, src, dst, seq, wire) {
                        out.push((dst, p));
                    }
                }
                EventKind::RetxTimer { src, dst } => t.on_retx_timer(at, q, stats, src, dst),
                _ => unreachable!(),
            }
        }
        out
    }

    #[test]
    fn lossless_unicast_delivers_fifo_despite_size_inversion() {
        let mut t = Transport::new(TransportConfig::lossless(CostModel::ethernet_1990()));
        let mut q = EventQueue::new();
        let mut s = NetStats::new();
        let (a, b) = (NodeId(0), NodeId(1));
        // Big message first (slow), tiny message second (fast): the wire
        // would invert them; FIFO sequencing must not.
        t.send(VirtualTime::ZERO, &mut q, &mut s, a, b, P(1, 64 * 1024));
        t.send(VirtualTime::ZERO, &mut q, &mut s, a, b, P(2, 0));
        let got = drain(&mut t, &mut q, &mut s);
        assert_eq!(got, vec![(b, P(1, 64 * 1024)), (b, P(2, 0))]);
        assert_eq!(s.messages, 2);
        assert_eq!(s.class(MsgClass::Ack).count, 0, "no acks when lossless");
    }

    #[test]
    fn lossy_transport_recovers_and_dedups() {
        let cfg = TransportConfig::lossy(CostModel::ethernet_1990(), 0.4, 99);
        let mut t = Transport::new(cfg);
        let mut q = EventQueue::new();
        let mut s = NetStats::new();
        let (a, b) = (NodeId(0), NodeId(1));
        for i in 0..20 {
            t.send(VirtualTime::micros(i * 10), &mut q, &mut s, a, b, P(i as u32, 128));
        }
        let got = drain(&mut t, &mut q, &mut s);
        let ids: Vec<u32> = got.iter().map(|(_, p)| p.0).collect();
        assert_eq!(ids, (0..20).collect::<Vec<_>>(), "exactly once, in order");
        assert!(s.dropped > 0, "loss model dropped something");
        assert!(s.retransmissions > 0, "retransmission recovered the drops");
        assert_eq!(t.total_unacked(), 0, "everything eventually acked");
    }

    #[test]
    fn lossy_is_deterministic() {
        let run = || {
            let cfg = TransportConfig::lossy(CostModel::ethernet_1990(), 0.3, 7);
            let mut t = Transport::new(cfg);
            let mut q = EventQueue::new();
            let mut s = NetStats::new();
            for i in 0..30 {
                t.send(
                    VirtualTime::micros(i * 5),
                    &mut q,
                    &mut s,
                    NodeId(0),
                    NodeId(1),
                    P(i as u32, 16),
                );
            }
            drain(&mut t, &mut q, &mut s);
            (s.messages, s.dropped, s.retransmissions)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn software_multicast_counts_per_destination() {
        let mut cost = CostModel::ethernet_1990();
        cost.hardware_multicast = false;
        let mut t = Transport::new(TransportConfig::lossless(cost));
        let mut q = EventQueue::new();
        let mut s = NetStats::new();
        let dsts = [NodeId(1), NodeId(2), NodeId(3)];
        t.multicast(VirtualTime::ZERO, &mut q, &mut s, NodeId(0), &dsts, P(0, 1024));
        assert_eq!(s.messages, 3);
        assert_eq!(s.multicast_saved, 0);
        let got = drain(&mut t, &mut q, &mut s);
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn hardware_multicast_is_one_transmission() {
        let mut cost = CostModel::ethernet_1990();
        cost.hardware_multicast = true;
        let mut t = Transport::new(TransportConfig::lossless(cost));
        let mut q = EventQueue::new();
        let mut s = NetStats::new();
        let dsts = [NodeId(1), NodeId(2), NodeId(3), NodeId(4)];
        t.multicast(VirtualTime::ZERO, &mut q, &mut s, NodeId(0), &dsts, P(0, 1024));
        assert_eq!(s.messages, 1, "one wire transmission");
        assert_eq!(s.multicast_saved, 3);
        let got = drain(&mut t, &mut q, &mut s);
        assert_eq!(got.len(), 4, "but all four destinations receive it");
    }

    #[test]
    fn jitter_reorders_the_wire_but_delivery_stays_fifo() {
        let cfg = TransportConfig::lossless(CostModel::ethernet_1990()).with_jitter(50_000);
        let mut t = Transport::new(cfg);
        let mut q = EventQueue::new();
        let mut s = NetStats::new();
        let (a, b) = (NodeId(0), NodeId(1));
        for i in 0..32 {
            t.send(VirtualTime::micros(i * 10), &mut q, &mut s, a, b, P(i as u32, 16));
        }
        let got = drain(&mut t, &mut q, &mut s);
        let ids: Vec<u32> = got.iter().map(|(_, p)| p.0).collect();
        assert_eq!(ids, (0..32).collect::<Vec<_>>(), "reorder buffer restores FIFO");
        assert!(t.total_duplicates() == 0);
    }

    #[test]
    fn healed_partition_is_recovered_by_retransmission() {
        use munin_net::{LinkFault, LinkSchedule};
        let cfg = TransportConfig::lossless(CostModel::ethernet_1990()).with_link_faults(
            LinkSchedule::new(vec![LinkFault::partition(vec![NodeId(0)], 0, 60_000)]),
        );
        let mut t = Transport::new(cfg);
        let mut q = EventQueue::new();
        let mut s = NetStats::new();
        t.send(VirtualTime::ZERO, &mut q, &mut s, NodeId(0), NodeId(1), P(7, 64));
        let got = drain(&mut t, &mut q, &mut s);
        assert_eq!(got, vec![(NodeId(1), P(7, 64))], "delivered after the heal");
        assert!(s.dropped > 0, "the partition ate the first transmission");
        assert!(s.retransmissions > 0);
        assert_eq!(s.gave_up, 0);
        assert_eq!(t.total_unacked(), 0);
    }

    #[test]
    fn permanent_isolation_gives_up_and_terminates() {
        use munin_net::{LinkFault, LinkSchedule};
        let cfg = TransportConfig::lossless(CostModel::ethernet_1990())
            .with_link_faults(LinkSchedule::new(vec![LinkFault::isolate(NodeId(1), 0, u64::MAX)]));
        let mut t = Transport::new(cfg);
        let mut q = EventQueue::new();
        let mut s = NetStats::new();
        t.send(VirtualTime::ZERO, &mut q, &mut s, NodeId(0), NodeId(1), P(1, 64));
        let got = drain(&mut t, &mut q, &mut s);
        assert!(got.is_empty(), "nothing crosses a permanent isolation");
        assert_eq!(s.gave_up, 1, "bounded retries abandon the message");
        assert_eq!(s.retransmissions as u32, t.cfg.max_retx);
        assert_eq!(t.total_unacked(), 0, "abandoned entries are dropped");
    }

    #[test]
    fn empty_multicast_is_free() {
        let mut t = Transport::new(TransportConfig::default());
        let mut q = EventQueue::new();
        let mut s = NetStats::new();
        t.multicast(VirtualTime::ZERO, &mut q, &mut s, NodeId(0), &[], P(0, 8));
        assert_eq!(s.messages, 0);
        assert_eq!(s.multicasts, 0);
    }
}

//! The operations an application thread can request from its node's DSM
//! server, and the results it gets back.
//!
//! This is the boundary that replaces the paper's page-fault trap: every
//! shared access funnels through one of these operations, and the node
//! server's fault handlers see exactly what a VM-based implementation's
//! handlers would see (object, byte range, read/write).

use munin_types::{BarrierId, ByteRange, CondId, DsmError, LockId, ObjectDecl, ObjectId};

/// One request from an application thread to the DSM runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum DsmOp {
    /// Dynamically allocate a shared object (setup-time allocation goes
    /// through the same path before threads start).
    Alloc(ObjectDecl),
    /// Read `range` of `obj`; resolves to [`OpResult::Bytes`].
    Read { obj: ObjectId, range: ByteRange },
    /// Write `data` at `range.start` of `obj` (`data.len() == range.len`).
    Write { obj: ObjectId, range: ByteRange, data: Vec<u8> },
    /// Atomic fetch-and-add on an 8-byte little-endian integer at `offset`.
    /// Used for distributed counters and work-queue indices; resolves to the
    /// *previous* value as [`OpResult::Value`].
    AtomicFetchAdd { obj: ObjectId, offset: u32, delta: i64 },
    /// Acquire a distributed lock (blocks until granted).
    Lock(LockId),
    /// Release a distributed lock.
    Unlock(LockId),
    /// Wait at a barrier until all participants arrive.
    BarrierWait(BarrierId),
    /// Release the lock and wait on the condition variable (monitor-style);
    /// re-acquires the lock before returning.
    CondWait { cond: CondId, lock: LockId },
    /// Wake one (or all) waiters of a condition variable. The caller must
    /// hold the associated monitor lock.
    CondSignal { cond: CondId, broadcast: bool },
    /// Flush this thread's delayed update queue without synchronizing.
    Flush,
    /// Mark a program phase boundary; phase 0 is initialization. Consumed by
    /// the tracer (the study's init-vs-compute split) and by the write-once
    /// protocol (publication point).
    Phase(u32),
    /// Pure computation costing `us` of virtual time; no DSM interaction.
    Compute(u64),
    /// Thread termination. Sent automatically when the thread body returns
    /// (or panics — the panic flag is carried in the wrapper, not here).
    Exit,
}

impl DsmOp {
    /// Is this one of the explicit synchronization operations that flush the
    /// delayed update queue? ("the delayed update queue must be flushed
    /// whenever a thread synchronizes", including thread exit.)
    pub fn is_synchronizing(&self) -> bool {
        matches!(
            self,
            DsmOp::Lock(_)
                | DsmOp::Unlock(_)
                | DsmOp::BarrierWait(_)
                | DsmOp::CondWait { .. }
                | DsmOp::CondSignal { .. }
                | DsmOp::Flush
                | DsmOp::Exit
        )
    }

    /// Short label for traces.
    pub fn label(&self) -> &'static str {
        match self {
            DsmOp::Alloc(_) => "alloc",
            DsmOp::Read { .. } => "read",
            DsmOp::Write { .. } => "write",
            DsmOp::AtomicFetchAdd { .. } => "fetch-add",
            DsmOp::Lock(_) => "lock",
            DsmOp::Unlock(_) => "unlock",
            DsmOp::BarrierWait(_) => "barrier",
            DsmOp::CondWait { .. } => "cond-wait",
            DsmOp::CondSignal { .. } => "cond-signal",
            DsmOp::Flush => "flush",
            DsmOp::Phase(_) => "phase",
            DsmOp::Compute(_) => "compute",
            DsmOp::Exit => "exit",
        }
    }
}

/// Completion value of a [`DsmOp`].
#[derive(Debug, Clone, PartialEq)]
pub enum OpResult {
    Unit,
    Bytes(Vec<u8>),
    Value(i64),
    Object(ObjectId),
    Err(DsmError),
}

impl OpResult {
    /// Unwrap bytes; panics (with the runtime error if present) otherwise.
    pub fn into_bytes(self) -> Vec<u8> {
        match self {
            OpResult::Bytes(b) => b,
            OpResult::Err(e) => panic!("DSM read failed: {e}"),
            other => panic!("expected bytes, got {other:?}"),
        }
    }

    pub fn into_value(self) -> i64 {
        match self {
            OpResult::Value(v) => v,
            OpResult::Err(e) => panic!("DSM atomic failed: {e}"),
            other => panic!("expected value, got {other:?}"),
        }
    }

    pub fn into_object(self) -> ObjectId {
        match self {
            OpResult::Object(o) => o,
            OpResult::Err(e) => panic!("DSM alloc failed: {e}"),
            other => panic!("expected object id, got {other:?}"),
        }
    }

    /// Panic if this result is an error (for unit-valued ops).
    pub fn expect_unit(self) {
        match self {
            OpResult::Unit => {}
            OpResult::Err(e) => panic!("DSM op failed: {e}"),
            other => panic!("expected unit, got {other:?}"),
        }
    }

    pub fn err(&self) -> Option<&DsmError> {
        match self {
            OpResult::Err(e) => Some(e),
            _ => None,
        }
    }
}

/// What the server tells the kernel after seeing an op.
#[derive(Debug)]
pub enum OpOutcome {
    /// The op finished locally: resume the thread after `cost_us` of virtual
    /// time with `result`.
    Done { result: OpResult, cost_us: u64 },
    /// The op needs remote interaction (or must wait for a lock/barrier);
    /// the server will call [`crate::Kernel::complete`] later.
    Blocked,
}

impl OpOutcome {
    pub fn done(result: OpResult, cost_us: u64) -> Self {
        OpOutcome::Done { result, cost_us }
    }

    pub fn unit(cost_us: u64) -> Self {
        OpOutcome::Done { result: OpResult::Unit, cost_us }
    }

    pub fn fail(err: DsmError) -> Self {
        OpOutcome::Done { result: OpResult::Err(err), cost_us: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use munin_types::NodeId;
    use munin_types::SharingType;

    #[test]
    fn synchronizing_ops() {
        assert!(DsmOp::Lock(LockId(0)).is_synchronizing());
        assert!(DsmOp::Unlock(LockId(0)).is_synchronizing());
        assert!(DsmOp::BarrierWait(BarrierId(0)).is_synchronizing());
        assert!(DsmOp::Exit.is_synchronizing());
        assert!(DsmOp::Flush.is_synchronizing());
        assert!(!DsmOp::Read { obj: ObjectId(0), range: ByteRange::new(0, 4) }.is_synchronizing());
        assert!(!DsmOp::Compute(10).is_synchronizing());
        assert!(!DsmOp::Phase(1).is_synchronizing());
    }

    #[test]
    fn result_unwrappers() {
        assert_eq!(OpResult::Bytes(vec![1, 2]).into_bytes(), vec![1, 2]);
        assert_eq!(OpResult::Value(-3).into_value(), -3);
        assert_eq!(OpResult::Object(ObjectId(9)).into_object(), ObjectId(9));
        OpResult::Unit.expect_unit();
    }

    #[test]
    #[should_panic(expected = "DSM read failed")]
    fn error_result_panics_with_context() {
        OpResult::Err(DsmError::UnknownObject(ObjectId(1))).into_bytes();
    }

    #[test]
    fn alloc_label() {
        let decl = ObjectDecl::new(ObjectId(0), "x", 8, SharingType::WriteMany, NodeId(0));
        assert_eq!(DsmOp::Alloc(decl).label(), "alloc");
    }
}

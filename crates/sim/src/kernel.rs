//! The kernel-services seam between protocol servers and the runtime that
//! hosts them.
//!
//! [`crate::Server`] implementations (the Munin per-node server, the Ivy
//! manager) do not care *how* they are scheduled — only that they can send
//! protocol messages, complete blocked threads, register declarations, arm
//! timers and report errors. [`KernelApi`] captures exactly that contract,
//! so the same protocol logic runs on two very different kernels:
//!
//! * the **virtual-time kernel** ([`crate::Kernel`] inside
//!   [`crate::World`]) — deterministic discrete-event simulation, one
//!   runnable thread at a time;
//! * the **real-time kernel** (`munin-rt`) — one OS thread per node server,
//!   per-node message channels, app threads truly in parallel, wall-clock
//!   timers.
//!
//! The trait is object-safe on purpose: servers take
//! `&mut dyn KernelApi<P>`, which keeps every fault handler monomorphic
//! (no per-kernel code duplication) and keeps the `Server` trait itself
//! kernel-agnostic.

use crate::op::OpResult;
use munin_net::PayloadInfo;
use munin_types::{
    CostModel, LockId, NodeId, ObjectDecl, ObjectId, SharingType, ThreadId, VirtualTime,
};

/// Kernel services available to a [`crate::Server`] while it handles
/// operations, messages and timers.
///
/// Implemented by the deterministic virtual-time kernel
/// ([`crate::Kernel`]) and by the real-time kernel (`munin_rt::RtKernel`).
pub trait KernelApi<P: PayloadInfo + Clone> {
    /// Current time: virtual microseconds on the simulator, wall-clock
    /// microseconds since run start on the real-time kernel.
    fn now(&self) -> VirtualTime;

    /// The cost model in force. On the simulator every charge below advances
    /// the clock; the real-time kernel keeps the model purely for the
    /// protocols' bookkeeping (real latencies are measured, not modelled).
    fn cost(&self) -> &CostModel;

    /// Send a protocol message to another node's server.
    fn send(&mut self, src: NodeId, dst: NodeId, payload: P);

    /// Multicast a protocol message. Callers pass sorted destination lists
    /// so simulator traces stay stable across refactorings.
    fn multicast(&mut self, src: NodeId, dsts: &[NodeId], payload: P);

    /// End-of-step batching hook: kernels that coalesce outbound sends
    /// flush everything buffered since the last call as one channel
    /// message per destination. The hosting event loop calls this after
    /// each bounded batch of server events, before it can block again, so
    /// no buffered message is ever stranded behind a sleeping server. The
    /// virtual-time kernel delivers every send eagerly into its event
    /// queue, so its implementation is the default no-op.
    fn flush_outbound(&mut self) {}

    /// Complete a blocked thread's pending operation. `extra_cost_us` is
    /// virtual time on the simulator; the real-time kernel resumes the
    /// thread immediately (its cost *is* the elapsed wall clock).
    fn complete(&mut self, thread: ThreadId, result: OpResult, extra_cost_us: u64);

    /// Register a server timer: `on_timer(token)` fires on `node`'s server
    /// after `delay_us` (virtual or wall-clock microseconds).
    fn set_timer(&mut self, node: NodeId, delay_us: u64, token: u64);

    /// Allocate a fresh object id and register its declaration. The
    /// declaration's `id` field is overwritten with the assigned id and
    /// `home` with the allocating node.
    fn register_decl(&mut self, decl: ObjectDecl, home: NodeId) -> ObjectId;

    /// Look up an object's declaration (cloned — declarations are tiny and
    /// servers cache the hot fields). Declarations are globally known (the
    /// paper compiles them into the program), so this models no
    /// communication.
    fn decl(&self, obj: ObjectId) -> Option<ObjectDecl>;

    /// Ids of objects declared with `lock` as their associated lock, sorted
    /// by id. This is the lock-token piggyback query — it runs on every
    /// token pass, so it is a targeted lookup returning plain ids rather
    /// than a clone of the whole registry.
    fn assoc_objects(&self, lock: LockId) -> Vec<ObjectId>;

    /// Change an object's sharing annotation at runtime — the paper's §4
    /// dynamic re-typing. The caller (the object's home server) is
    /// responsible for resetting protocol state.
    fn retype(&mut self, obj: ObjectId, sharing: SharingType);

    /// Monotone counter bumped on every runtime retype; servers use it to
    /// revalidate their declaration caches cheaply.
    fn registry_version(&self) -> u64;

    /// Report a server-detected error (invariant violation, livelock). The
    /// run continues but the report will not be clean.
    fn error(&mut self, msg: String);

    /// The run's protocol-state coverage recorder, when one is attached
    /// (campaign explore mode). Default is `None`, so an uninstrumented run
    /// pays exactly one predicted branch per note site — protocol servers
    /// call `if let Some(c) = k.coverage() { c.note(...) }`.
    fn coverage(&self) -> Option<&munin_obs::CoverageMap> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Never constructed: only the type is needed for the object-safety
    // check below.
    #[derive(Debug, Clone)]
    #[allow(dead_code)]
    struct Nop;

    impl PayloadInfo for Nop {
        fn class(&self) -> munin_net::MsgClass {
            munin_net::MsgClass::Control
        }
        fn kind(&self) -> &'static str {
            "Nop"
        }
        fn wire_bytes(&self) -> usize {
            0
        }
    }

    // Object safety is the load-bearing property: the whole protocol layer
    // takes `&mut dyn KernelApi<P>`.
    #[test]
    fn kernel_api_is_object_safe() {
        fn _takes_dyn(_: &mut dyn KernelApi<Nop>) {}
    }
}

//! Tracing hooks.
//!
//! The sharing study (paper §2) needs a per-access record of who touched
//! what, when, and how; the kernel emits one [`TraceEvent`] per operation
//! issue/completion and per message. The default tracer is a no-op with zero
//! allocation on the hot path.

use crate::op::DsmOp;
use munin_net::MsgClass;
use munin_types::{NodeId, ThreadId, VirtualTime};

/// One observable event inside the kernel.
#[derive(Debug, Clone)]
pub enum TraceEvent<'a> {
    /// A thread issued an operation.
    OpIssued { at: VirtualTime, thread: ThreadId, node: NodeId, op: &'a DsmOp },
    /// A previously issued operation completed (the thread is being resumed).
    /// `waited_us` is virtual time between issue and resume.
    OpCompleted {
        at: VirtualTime,
        thread: ThreadId,
        node: NodeId,
        label: &'static str,
        waited_us: u64,
    },
    /// A message was placed on the wire.
    MessageSent {
        at: VirtualTime,
        src: NodeId,
        dst: NodeId,
        class: MsgClass,
        kind: &'static str,
        bytes: usize,
    },
}

/// Observer of kernel events. Implementations must be deterministic (they
/// run inside the simulation loop).
pub trait Tracer: Send {
    fn record(&mut self, event: TraceEvent<'_>);
}

/// The default no-op tracer.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTracer;

impl Tracer for NullTracer {
    #[inline]
    fn record(&mut self, _event: TraceEvent<'_>) {}
}

/// A tracer that counts events — handy in tests.
#[derive(Debug, Default)]
pub struct CountingTracer {
    pub ops_issued: u64,
    pub ops_completed: u64,
    pub messages: u64,
}

impl Tracer for CountingTracer {
    fn record(&mut self, event: TraceEvent<'_>) {
        match event {
            TraceEvent::OpIssued { .. } => self.ops_issued += 1,
            TraceEvent::OpCompleted { .. } => self.ops_completed += 1,
            TraceEvent::MessageSent { .. } => self.messages += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_tracer_counts() {
        let mut t = CountingTracer::default();
        t.record(TraceEvent::OpIssued {
            at: VirtualTime::ZERO,
            thread: ThreadId(0),
            node: NodeId(0),
            op: &DsmOp::Compute(5),
        });
        t.record(TraceEvent::MessageSent {
            at: VirtualTime::ZERO,
            src: NodeId(0),
            dst: NodeId(1),
            class: MsgClass::Data,
            kind: "X",
            bytes: 10,
        });
        assert_eq!(t.ops_issued, 1);
        assert_eq!(t.messages, 1);
        assert_eq!(t.ops_completed, 0);
    }

    #[test]
    fn null_tracer_is_send() {
        fn assert_send<T: Send>(_: T) {}
        assert_send(NullTracer);
    }
}

//! # munin-sim
//!
//! Deterministic discrete-event simulation kernel for the Munin
//! reproduction.
//!
//! ## Why a simulator
//!
//! The paper's system intercepted shared-memory accesses with VM page faults
//! on SUN workstations and measured protocol traffic over real Ethernet.
//! Reproducing the *claims* (message counts, bytes, stall structure) does not
//! need real signals or real wires — it needs the protocols executed
//! faithfully under a controlled concurrency model. This kernel provides:
//!
//! * **virtual time** — every latency comes from the
//!   [`munin_types::CostModel`]; wall clock never affects results;
//! * **deterministic scheduling** — application threads are real OS threads,
//!   but exactly one runs at a time, rendezvoused with the event loop, so a
//!   given (program, config, seed) always produces the identical event
//!   sequence, message counts and traces;
//! * **a server abstraction** ([`Server`]) — each node hosts a coherence
//!   server (Munin's per-node server, or the Ivy manager) that handles local
//!   threads' access faults and remote protocol messages;
//! * **a transport** with per-pair FIFO delivery, optional deterministic
//!   message loss, acknowledgements and go-back-N retransmission (the
//!   V kernel's reliable layer), multicast, and full traffic accounting.
//!
//! Application code is written in ordinary blocking style against
//! [`ThreadCtx`]; each DSM operation is a rendezvous with the event loop.

pub mod event;
pub mod kernel;
pub mod op;
pub mod report;
pub mod thread;
pub mod tracer;
pub mod transport;
pub mod world;

pub use kernel::KernelApi;
pub use munin_obs::{CovRow, CoverageMap, CoverageSnapshot, Transition};
pub use op::{DsmOp, OpOutcome, OpResult};
pub use report::RunReport;
pub use thread::ThreadCtx;
pub use tracer::{NullTracer, TraceEvent, Tracer};
pub use transport::TransportConfig;
pub use world::{Kernel, Server, World, WorldBuilder};

//! Run reports: everything an experiment reads out of a finished simulation.

use munin_net::NetStats;
use munin_types::VirtualTime;
use std::collections::BTreeMap;

/// Per-op-label wait accounting: (completions, total virtual µs spent between
/// issue and resume).
pub type WaitTable = BTreeMap<&'static str, (u64, u64)>;

/// Wall-clock section of a [`RunReport`] — filled in by the real-time
/// kernel (`munin-rt`), where elapsed host time *is* the measurement. The
/// virtual-time simulator leaves it `None` (its wall clock is a host
/// artifact, not a result).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WallClock {
    /// Real elapsed time from the first thread starting to the last thread
    /// (and all protocol servers) shutting down.
    pub elapsed: std::time::Duration,
    /// Application threads that ran in parallel.
    pub workers: usize,
    /// Protocol server threads (one per node).
    pub nodes: usize,
}

impl WallClock {
    /// Elapsed microseconds (saturated to u64), the unit the wait tables use.
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.elapsed.as_micros()).unwrap_or(u64::MAX)
    }
}

/// Result of running a [`crate::World`] to completion.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Virtual time when the last event was processed. On the real-time
    /// kernel this mirrors `wall` (microseconds of real elapsed time).
    pub finished_at: VirtualTime,
    /// Total network traffic.
    pub stats: NetStats,
    /// Total DSM operations issued by application threads.
    pub ops: u64,
    /// Per-thread wait breakdown by op label ("read", "lock", ...).
    pub thread_waits: Vec<WaitTable>,
    /// Errors: panicked threads, deadlock diagnostics, server-reported
    /// invariant violations.
    pub errors: Vec<String>,
    /// True if the run ended with live-but-blocked threads (simulator:
    /// event-queue quiescence; real-time kernel: stall watchdog).
    pub deadlocked: bool,
    /// Wall-clock measurements — `Some` only for real-time kernel runs.
    pub wall: Option<WallClock>,
    /// On-demand state dumps (SIGUSR1 / `debug_stuck_state` requests that
    /// were *not* stall diagnostics), one entry per responding node. The
    /// wall-clock fabrics (rt and tcp) fill this; a clean run may carry
    /// dumps.
    pub dumps: Vec<String>,
    /// Telemetry snapshot (latency histograms, per-object access counters,
    /// remote-op spans) merged at teardown. `None` when the run's fabric
    /// does not record telemetry (the virtual-time simulator, or a
    /// wall-clock run with `Telemetry::Off`).
    pub metrics: Option<munin_obs::MetricsSnapshot>,
}

impl RunReport {
    /// Did the run complete without panics, deadlock or server errors?
    pub fn is_clean(&self) -> bool {
        !self.deadlocked && self.errors.is_empty()
    }

    /// Panic with diagnostics unless the run was clean. Experiments use this
    /// so misbehaving protocols fail loudly.
    pub fn assert_clean(&self) -> &Self {
        if !self.is_clean() {
            panic!(
                "simulation run was not clean (deadlocked={}): {:#?}",
                self.deadlocked, self.errors
            );
        }
        self
    }

    /// Aggregate wait time across all threads for one op label.
    pub fn total_wait_us(&self, label: &str) -> u64 {
        self.thread_waits.iter().filter_map(|w| w.get(label)).map(|(_, us)| us).sum()
    }

    /// Aggregate completion count across all threads for one op label.
    pub fn total_ops(&self, label: &str) -> u64 {
        self.thread_waits.iter().filter_map(|w| w.get(label)).map(|(n, _)| n).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_aggregation() {
        let mut w0 = WaitTable::new();
        w0.insert("read", (3, 300));
        let mut w1 = WaitTable::new();
        w1.insert("read", (1, 50));
        w1.insert("lock", (2, 2000));
        let r = RunReport {
            finished_at: VirtualTime::micros(5000),
            stats: NetStats::new(),
            ops: 6,
            thread_waits: vec![w0, w1],
            errors: vec![],
            deadlocked: false,
            wall: None,
            dumps: Vec::new(),
            metrics: None,
        };
        assert_eq!(r.total_wait_us("read"), 350);
        assert_eq!(r.total_ops("read"), 4);
        assert_eq!(r.total_wait_us("lock"), 2000);
        assert_eq!(r.total_wait_us("barrier"), 0);
        assert!(r.is_clean());
    }

    #[test]
    #[should_panic(expected = "not clean")]
    fn assert_clean_panics_on_deadlock() {
        let r = RunReport {
            finished_at: VirtualTime::ZERO,
            stats: NetStats::new(),
            ops: 0,
            thread_waits: vec![],
            errors: vec!["t0 blocked in lock".into()],
            deadlocked: true,
            wall: None,
            dumps: Vec::new(),
            metrics: None,
        };
        r.assert_clean();
    }
}

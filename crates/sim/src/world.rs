//! The simulation world: event loop, kernel services, and the [`Server`]
//! trait that coherence runtimes implement.
//!
//! One [`World`] = one distributed system: `n` nodes, each hosting one
//! protocol server and any number of application threads. The world owns a
//! virtual clock and an event queue; application threads are real OS threads
//! but exactly one executes at a time (rendezvous with the loop), so the
//! entire run — message counts, interleavings, traces — is a deterministic
//! function of (program, configuration, seed).

use crate::event::{EventKind, EventQueue};
use crate::kernel::KernelApi;
use crate::op::{DsmOp, OpOutcome, OpResult};
use crate::report::{RunReport, WaitTable};
use crate::thread::{ThreadCtx, ThreadReq};
use crate::tracer::{NullTracer, TraceEvent, Tracer};
use crate::transport::{Transport, TransportConfig, Wire};
use crossbeam_channel::{unbounded, Receiver, Sender};
use munin_net::PayloadInfo;
use munin_types::{CostModel, NodeId, ObjectDecl, ObjectId, ThreadId, VirtualTime};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread::JoinHandle;

/// A per-node coherence server: the software that the paper's page-fault
/// handler invokes ("the server checks what type of object the thread
/// faulted on and invokes the appropriate fault handler").
pub trait Server: Send {
    /// Protocol message type exchanged between servers.
    type Payload: PayloadInfo + Clone + Send + std::fmt::Debug + 'static;

    /// Handle an operation issued by a local application thread.
    ///
    /// Return [`OpOutcome::Done`] for local completion, or
    /// [`OpOutcome::Blocked`] and later call [`KernelApi::complete`] once the
    /// protocol finishes the fault.
    fn on_op(
        &mut self,
        kernel: &mut dyn KernelApi<Self::Payload>,
        thread: ThreadId,
        op: DsmOp,
    ) -> OpOutcome;

    /// Handle a protocol message from another node's server.
    fn on_message(
        &mut self,
        kernel: &mut dyn KernelApi<Self::Payload>,
        from: NodeId,
        payload: Self::Payload,
    );

    /// Handle a timer previously registered with [`KernelApi::set_timer`].
    fn on_timer(&mut self, _kernel: &mut dyn KernelApi<Self::Payload>, _token: u64) {}

    /// Describe internal state for the deadlock report (diagnostic only).
    fn debug_stuck_state(&self) -> String {
        String::new()
    }
}

struct ThreadRec {
    node: NodeId,
    resume_tx: Sender<OpResult>,
    done: bool,
    /// (issue time, op label) of the operation currently awaiting completion.
    pending: Option<(VirtualTime, &'static str)>,
    waits: WaitTable,
}

/// Kernel services available to servers while they handle ops, messages and
/// timers: the clock, the transport, the object-declaration registry, thread
/// placement, timers and error reporting.
pub struct Kernel<P: PayloadInfo + Clone> {
    now: VirtualTime,
    events: EventQueue<Wire<P>>,
    transport: Transport<P>,
    stats_ext: munin_net::NetStats,
    registry: HashMap<ObjectId, ObjectDecl>,
    registry_version: u64,
    next_object: u64,
    threads: Vec<ThreadRec>,
    threads_on: Vec<Vec<ThreadId>>,
    tracer: Box<dyn Tracer>,
    ops: u64,
    errors: Vec<String>,
    /// Protocol-state coverage recorder, when the run is instrumented
    /// (campaign explore mode attaches one through the builder).
    coverage: Option<std::sync::Arc<munin_obs::CoverageMap>>,
}

impl<P: PayloadInfo + Clone> Kernel<P> {
    /// Current virtual time.
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// The cost model in force.
    pub fn cost(&self) -> &CostModel {
        self.transport.cost()
    }

    /// Send a protocol message to another node's server.
    pub fn send(&mut self, src: NodeId, dst: NodeId, payload: P) {
        debug_assert_ne!(src, dst, "servers handle local work locally, not by self-send");
        self.tracer.record(TraceEvent::MessageSent {
            at: self.now,
            src,
            dst,
            class: payload.class(),
            kind: payload.kind(),
            bytes: payload.wire_bytes(),
        });
        self.transport.send(self.now, &mut self.events, &mut self.stats_ext, src, dst, payload);
    }

    /// Multicast a protocol message. Destination list order does not affect
    /// determinism (deliveries are scheduled in list order with stable
    /// tie-breaking), but callers should pass sorted lists so traces are
    /// stable across refactorings.
    pub fn multicast(&mut self, src: NodeId, dsts: &[NodeId], payload: P) {
        for &d in dsts {
            self.tracer.record(TraceEvent::MessageSent {
                at: self.now,
                src,
                dst: d,
                class: payload.class(),
                kind: payload.kind(),
                bytes: payload.wire_bytes(),
            });
        }
        self.transport.multicast(
            self.now,
            &mut self.events,
            &mut self.stats_ext,
            src,
            dsts,
            payload,
        );
    }

    /// Complete a blocked thread's pending operation: the thread resumes
    /// `extra_cost_us` of virtual time from now.
    pub fn complete(&mut self, thread: ThreadId, result: OpResult, extra_cost_us: u64) {
        debug_assert!(
            !self.threads[thread.index()].done,
            "completing an op for exited thread {thread}"
        );
        self.events.push(self.now + extra_cost_us, EventKind::ThreadResume { thread, result });
    }

    /// Register a server timer: `on_timer(token)` fires on `node`'s server
    /// after `delay_us`.
    pub fn set_timer(&mut self, node: NodeId, delay_us: u64, token: u64) {
        self.events.push(self.now + delay_us, EventKind::Timer { node, token });
    }

    /// Allocate a fresh object id and register its declaration. The
    /// declaration's `id` field is overwritten with the assigned id and
    /// `home` with the allocating node.
    pub fn register_decl(&mut self, mut decl: ObjectDecl, home: NodeId) -> ObjectId {
        let id = ObjectId(self.next_object);
        self.next_object += 1;
        decl.id = id;
        decl.home = home;
        self.registry.insert(id, decl);
        id
    }

    /// Look up an object's declaration. Declarations are globally known
    /// (the paper compiles them into the program), so this lookup models no
    /// communication.
    pub fn decl(&self, obj: ObjectId) -> Option<&ObjectDecl> {
        self.registry.get(&obj)
    }

    /// Change an object's sharing annotation at runtime — the paper's §4
    /// "the system might be able to detect that an object is being
    /// continuously updated by one thread and read by another [and] define
    /// the object as a producer-consumer shared object and treat it
    /// accordingly". The caller (the object's home server) is responsible
    /// for resetting protocol state (invalidating outstanding copies).
    pub fn retype(&mut self, obj: ObjectId, sharing: munin_types::SharingType) {
        if let Some(d) = self.registry.get_mut(&obj) {
            d.sharing = sharing;
            self.registry_version += 1;
        }
    }

    /// Monotone counter bumped on every runtime retype; servers use it to
    /// revalidate their declaration caches cheaply.
    pub fn registry_version(&self) -> u64 {
        self.registry_version
    }

    /// All registered declarations, sorted by id (stable for traces).
    pub fn decls_sorted(&self) -> Vec<&ObjectDecl> {
        let mut v: Vec<&ObjectDecl> = self.registry.values().collect();
        v.sort_by_key(|d| d.id);
        v
    }

    /// Node hosting `thread`.
    pub fn node_of(&self, thread: ThreadId) -> NodeId {
        self.threads[thread.index()].node
    }

    /// Threads placed on `node`.
    pub fn threads_on(&self, node: NodeId) -> &[ThreadId] {
        &self.threads_on[node.index()]
    }

    /// Total application threads.
    pub fn n_threads(&self) -> usize {
        self.threads.len()
    }

    /// Report a server-detected error (invariant violation, livelock). The
    /// run continues but the report will not be clean.
    pub fn error(&mut self, msg: impl Into<String>) {
        let msg = msg.into();
        if std::env::var_os("MUNIN_DEBUG_ERRORS").is_some() {
            eprintln!("[kernel error] {msg}");
        }
        self.errors.push(msg);
    }

    /// Network statistics so far (experiments read the final copy from the
    /// [`RunReport`]).
    pub fn stats(&self) -> &munin_net::NetStats {
        &self.stats_ext
    }
}

/// The virtual-time kernel exposes its services through the kernel seam, so
/// the same servers run here and on the real-time kernel (`munin-rt`).
impl<P: PayloadInfo + Clone> KernelApi<P> for Kernel<P> {
    fn now(&self) -> VirtualTime {
        Kernel::now(self)
    }
    fn cost(&self) -> &CostModel {
        Kernel::cost(self)
    }
    fn send(&mut self, src: NodeId, dst: NodeId, payload: P) {
        Kernel::send(self, src, dst, payload)
    }
    fn multicast(&mut self, src: NodeId, dsts: &[NodeId], payload: P) {
        Kernel::multicast(self, src, dsts, payload)
    }
    fn flush_outbound(&mut self) {
        // Trivial pass-through: `send`/`multicast` already pushed their
        // deliveries into the event queue — there is nothing buffered.
    }
    fn complete(&mut self, thread: ThreadId, result: OpResult, extra_cost_us: u64) {
        Kernel::complete(self, thread, result, extra_cost_us)
    }
    fn set_timer(&mut self, node: NodeId, delay_us: u64, token: u64) {
        Kernel::set_timer(self, node, delay_us, token)
    }
    fn register_decl(&mut self, decl: ObjectDecl, home: NodeId) -> ObjectId {
        Kernel::register_decl(self, decl, home)
    }
    fn decl(&self, obj: ObjectId) -> Option<ObjectDecl> {
        Kernel::decl(self, obj).cloned()
    }
    fn assoc_objects(&self, lock: munin_types::LockId) -> Vec<ObjectId> {
        let mut v: Vec<ObjectId> = self
            .registry
            .values()
            .filter(|d| d.associated_lock == Some(lock))
            .map(|d| d.id)
            .collect();
        v.sort_unstable();
        v
    }
    fn retype(&mut self, obj: ObjectId, sharing: munin_types::SharingType) {
        Kernel::retype(self, obj, sharing)
    }
    fn registry_version(&self) -> u64 {
        Kernel::registry_version(self)
    }
    fn error(&mut self, msg: String) {
        Kernel::error(self, msg)
    }
    fn coverage(&self) -> Option<&munin_obs::CoverageMap> {
        self.coverage.as_deref()
    }
}

/// Builder for a [`World`]: configure nodes, transport, tracer; declare
/// objects; spawn application threads; then [`WorldBuilder::build`] with one
/// server per node.
pub struct WorldBuilder {
    n_nodes: usize,
    transport: TransportConfig,
    tracer: Box<dyn Tracer>,
    #[allow(clippy::type_complexity)]
    spawns: Vec<(NodeId, Box<dyn FnOnce(&mut ThreadCtx) + Send + 'static>)>,
    decls: Vec<ObjectDecl>,
    next_object: u64,
    coverage: Option<std::sync::Arc<munin_obs::CoverageMap>>,
}

impl WorldBuilder {
    pub fn new(n_nodes: usize) -> Self {
        assert!(n_nodes > 0, "a world needs at least one node");
        WorldBuilder {
            n_nodes,
            transport: TransportConfig::default(),
            tracer: Box::new(NullTracer),
            spawns: Vec::new(),
            decls: Vec::new(),
            next_object: 0,
            coverage: None,
        }
    }

    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    pub fn transport(mut self, cfg: TransportConfig) -> Self {
        self.transport = cfg;
        self
    }

    /// Attach a protocol-state coverage recorder: servers note transitions
    /// into it through [`KernelApi::coverage`].
    pub fn coverage(mut self, map: std::sync::Arc<munin_obs::CoverageMap>) -> Self {
        self.coverage = Some(map);
        self
    }

    pub fn tracer(mut self, tracer: Box<dyn Tracer>) -> Self {
        self.tracer = tracer;
        self
    }

    /// Declare a shared object before the run starts (the common case: the
    /// paper's programs declare shared data with annotations processed at
    /// compile time). Returns the assigned id.
    pub fn declare(&mut self, mut decl: ObjectDecl, home: NodeId) -> ObjectId {
        assert!(home.index() < self.n_nodes, "home {home} out of range");
        let id = ObjectId(self.next_object);
        self.next_object += 1;
        decl.id = id;
        decl.home = home;
        self.decls.push(decl);
        id
    }

    /// Spawn an application thread on `node`. Threads start simultaneously
    /// at virtual time zero, in spawn order.
    pub fn spawn(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut ThreadCtx) + Send + 'static,
    ) -> ThreadId {
        assert!(node.index() < self.n_nodes, "node {node} out of range");
        let id = ThreadId(self.spawns.len() as u32);
        self.spawns.push((node, Box::new(f)));
        id
    }

    /// Finalize with one server per node (`servers[i]` serves `NodeId(i)`).
    pub fn build<S: Server>(self, servers: Vec<S>) -> World<S> {
        assert_eq!(servers.len(), self.n_nodes, "need exactly one server per node");
        let (req_tx, req_rx) = unbounded();
        let n_threads = self.spawns.len();
        let mut threads = Vec::with_capacity(n_threads);
        let mut threads_on: Vec<Vec<ThreadId>> = vec![Vec::new(); self.n_nodes];
        let mut joins = Vec::with_capacity(n_threads);

        for (idx, (node, body)) in self.spawns.into_iter().enumerate() {
            let tid = ThreadId(idx as u32);
            let (resume_tx, resume_rx) = unbounded();
            threads_on[node.index()].push(tid);
            let mut ctx = ThreadCtx {
                thread: tid,
                node,
                n_nodes: self.n_nodes,
                n_threads,
                req_tx: req_tx.clone(),
                resume_rx,
            };
            let join = std::thread::Builder::new()
                .name(format!("sim-{tid}"))
                .spawn(move || {
                    // Wait for the initial resume before running the body.
                    if ctx.resume_rx.recv().is_err() {
                        return; // World torn down before start.
                    }
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        body(&mut ctx);
                        // Graceful exit is itself a synchronization point
                        // (flushes the delayed update queue).
                        ctx.op(DsmOp::Exit);
                    }));
                    let exit = match result {
                        Ok(()) => ThreadReq::Exited(None),
                        Err(p) => {
                            let msg = p
                                .downcast_ref::<String>()
                                .cloned()
                                .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                                .unwrap_or_else(|| "non-string panic payload".to_string());
                            ThreadReq::Exited(Some(msg))
                        }
                    };
                    let _ = ctx.req_tx.send((tid, exit));
                })
                .expect("failed to spawn simulation thread");
            joins.push(join);
            threads.push(ThreadRec {
                node,
                resume_tx,
                done: false,
                pending: None,
                waits: WaitTable::new(),
            });
        }

        let mut registry = HashMap::new();
        for d in self.decls {
            registry.insert(d.id, d);
        }

        World {
            kernel: Kernel {
                now: VirtualTime::ZERO,
                events: EventQueue::new(),
                transport: Transport::new(self.transport),
                stats_ext: munin_net::NetStats::new(),
                registry,
                registry_version: 0,
                next_object: self.next_object,
                threads,
                threads_on,
                tracer: self.tracer,
                ops: 0,
                errors: Vec::new(),
                coverage: self.coverage,
            },
            servers,
            req_rx,
            joins,
        }
    }
}

/// A fully built distributed system, ready to run.
pub struct World<S: Server> {
    kernel: Kernel<S::Payload>,
    servers: Vec<S>,
    req_rx: Receiver<(ThreadId, ThreadReq)>,
    joins: Vec<JoinHandle<()>>,
}

impl<S: Server> World<S> {
    /// Run the world to completion: until every thread has exited and every
    /// in-flight message has been delivered. Returns the run report; the
    /// world (and its tracer) are consumed — retrieve tracer output via the
    /// tracer's own shared state.
    pub fn run(mut self) -> RunReport {
        let n_threads = self.kernel.threads.len();
        let mut live = n_threads;

        // All threads become runnable at t=0 in spawn order.
        for idx in 0..n_threads {
            self.kernel.events.push(
                VirtualTime::ZERO,
                EventKind::ThreadResume { thread: ThreadId(idx as u32), result: OpResult::Unit },
            );
        }

        while let Some(ev) = self.kernel.events.pop() {
            self.kernel.now = ev.at;
            match ev.kind {
                EventKind::ThreadResume { thread, result } => {
                    let rec = &mut self.kernel.threads[thread.index()];
                    if rec.done {
                        continue;
                    }
                    if let Some((issued, label)) = rec.pending.take() {
                        let waited = self.kernel.now.since(issued);
                        let e = rec.waits.entry(label).or_insert((0, 0));
                        e.0 += 1;
                        e.1 += waited;
                        let node = rec.node;
                        self.kernel.tracer.record(TraceEvent::OpCompleted {
                            at: self.kernel.now,
                            thread,
                            node,
                            label,
                            waited_us: waited,
                        });
                    }
                    if self.kernel.threads[thread.index()].resume_tx.send(result).is_err() {
                        // Thread body aborted outside our protocol.
                        self.kernel.threads[thread.index()].done = true;
                        live -= 1;
                        self.kernel.error(format!("{thread} dropped its resume channel"));
                        continue;
                    }
                    // The resumed thread is the only runnable one; it either
                    // issues the next op or exits.
                    match self.req_rx.recv() {
                        Ok((tid, ThreadReq::Op(op))) => {
                            debug_assert_eq!(tid, thread, "rendezvous protocol violated");
                            self.dispatch_op(tid, op);
                        }
                        Ok((tid, ThreadReq::Exited(panic))) => {
                            debug_assert_eq!(tid, thread);
                            self.kernel.threads[tid.index()].done = true;
                            live -= 1;
                            if let Some(msg) = panic {
                                self.kernel.error(format!("{tid} panicked: {msg}"));
                            }
                        }
                        Err(_) => {
                            self.kernel.error("request channel closed unexpectedly".to_string());
                            break;
                        }
                    }
                }
                EventKind::Deliver { src, dst, seq, wire } => {
                    let released = self.kernel.transport.receive(
                        self.kernel.now,
                        &mut self.kernel.events,
                        &mut self.kernel.stats_ext,
                        src,
                        dst,
                        seq,
                        wire,
                    );
                    for payload in released {
                        self.servers[dst.index()].on_message(&mut self.kernel, src, payload);
                    }
                }
                EventKind::Timer { node, token } => {
                    self.servers[node.index()].on_timer(&mut self.kernel, token);
                }
                EventKind::RetxTimer { src, dst } => {
                    self.kernel.transport.on_retx_timer(
                        self.kernel.now,
                        &mut self.kernel.events,
                        &mut self.kernel.stats_ext,
                        src,
                        dst,
                    );
                }
            }
        }

        if self.kernel.stats_ext.gave_up > 0 {
            // A link fault outlasted the retransmission budget: messages were
            // silently abandoned, so protocol state may be inconsistent. The
            // run must not read as clean.
            self.kernel.error(format!(
                "transport gave up on {} message(s) after exhausting retransmissions \
                 (link fault outlasted the retry budget)",
                self.kernel.stats_ext.gave_up
            ));
        }

        let deadlocked = live > 0;
        if deadlocked {
            let blocked: Vec<String> = self
                .kernel
                .threads
                .iter()
                .enumerate()
                .filter(|(_, r)| !r.done)
                .map(|(i, r)| {
                    let label = r.pending.map(|(_, l)| l).unwrap_or("<not blocked in an op>");
                    format!("t{i} blocked in '{label}'")
                })
                .collect();
            self.kernel.error(format!(
                "deadlock: {} thread(s) still blocked with no pending events: {}",
                live,
                blocked.join(", ")
            ));
            if std::env::var_os("MUNIN_DEBUG_ERRORS").is_some() {
                for (i, srv) in self.servers.iter().enumerate() {
                    let dump = srv.debug_stuck_state();
                    if !dump.is_empty() {
                        eprintln!("[deadlock dump n{i}] {dump}");
                    }
                }
            }
            // Tear down: dropping resume senders makes blocked threads panic
            // out of their recv, which their wrappers catch.
            for rec in &mut self.kernel.threads {
                let (dead_tx, _) = unbounded();
                rec.resume_tx = dead_tx;
            }
        }

        // The world-side req receiver must outlive thread teardown; drain it.
        drop(self.req_rx);
        for j in self.joins {
            let _ = j.join();
        }

        RunReport {
            finished_at: self.kernel.now,
            stats: self.kernel.stats_ext,
            ops: self.kernel.ops,
            thread_waits: self.kernel.threads.into_iter().map(|t| t.waits).collect(),
            errors: self.kernel.errors,
            deadlocked,
            wall: None,
            dumps: Vec::new(),
            metrics: None,
        }
    }

    fn dispatch_op(&mut self, thread: ThreadId, op: DsmOp) {
        self.kernel.ops += 1;
        let node = self.kernel.threads[thread.index()].node;
        self.kernel.tracer.record(TraceEvent::OpIssued {
            at: self.kernel.now,
            thread,
            node,
            op: &op,
        });
        self.kernel.threads[thread.index()].pending = Some((self.kernel.now, op.label()));
        match op {
            DsmOp::Compute(us) => {
                self.kernel.complete(thread, OpResult::Unit, us);
            }
            other => {
                let outcome = self.servers[node.index()].on_op(&mut self.kernel, thread, other);
                match outcome {
                    OpOutcome::Done { result, cost_us } => {
                        self.kernel.complete(thread, result, cost_us);
                    }
                    OpOutcome::Blocked => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use munin_net::MsgClass;
    use munin_types::{ByteRange, SharingType};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// A toy protocol: every `Read` asks the remote node `1` for bytes; node
    /// 1 replies with the requested length filled with the request count.
    #[derive(Debug, Clone)]
    enum EchoMsg {
        Req { thread: ThreadId, len: u32 },
        Reply { thread: ThreadId, data: Vec<u8> },
    }

    impl PayloadInfo for EchoMsg {
        fn class(&self) -> MsgClass {
            match self {
                EchoMsg::Req { .. } => MsgClass::Control,
                EchoMsg::Reply { .. } => MsgClass::Data,
            }
        }
        fn kind(&self) -> &'static str {
            match self {
                EchoMsg::Req { .. } => "EchoReq",
                EchoMsg::Reply { .. } => "EchoReply",
            }
        }
        fn wire_bytes(&self) -> usize {
            match self {
                EchoMsg::Req { .. } => 0,
                EchoMsg::Reply { data, .. } => data.len(),
            }
        }
    }

    struct EchoServer {
        node: NodeId,
        served: u8,
    }

    impl Server for EchoServer {
        type Payload = EchoMsg;

        fn on_op(
            &mut self,
            k: &mut dyn KernelApi<EchoMsg>,
            thread: ThreadId,
            op: DsmOp,
        ) -> OpOutcome {
            match op {
                DsmOp::Read { range, .. } => {
                    if self.node == NodeId(1) {
                        // Local hit.
                        OpOutcome::done(OpResult::Bytes(vec![0; range.len as usize]), 1)
                    } else {
                        k.send(self.node, NodeId(1), EchoMsg::Req { thread, len: range.len });
                        OpOutcome::Blocked
                    }
                }
                DsmOp::Exit | DsmOp::Phase(_) | DsmOp::Flush => OpOutcome::unit(0),
                other => panic!("echo server got {other:?}"),
            }
        }

        fn on_message(&mut self, k: &mut dyn KernelApi<EchoMsg>, from: NodeId, payload: EchoMsg) {
            match payload {
                EchoMsg::Req { thread, len } => {
                    self.served += 1;
                    let data = vec![self.served; len as usize];
                    k.send(self.node, from, EchoMsg::Reply { thread, data });
                }
                EchoMsg::Reply { thread, data } => {
                    k.complete(thread, OpResult::Bytes(data), 10);
                }
            }
        }
    }

    fn echo_world(bodies: Vec<(NodeId, Box<dyn FnOnce(&mut ThreadCtx) + Send>)>) -> RunReport {
        let mut b = WorldBuilder::new(2);
        for (node, body) in bodies {
            b.spawn(node, body);
        }
        let servers = vec![
            EchoServer { node: NodeId(0), served: 0 },
            EchoServer { node: NodeId(1), served: 0 },
        ];
        b.build(servers).run()
    }

    #[test]
    fn remote_read_round_trip_advances_virtual_time() {
        let got = Arc::new(AtomicU64::new(0));
        let got2 = got.clone();
        let report = echo_world(vec![(
            NodeId(0),
            Box::new(move |ctx: &mut ThreadCtx| {
                let bytes = ctx.read(ObjectId(0), ByteRange::new(0, 4));
                got2.store(bytes[0] as u64, Ordering::SeqCst);
            }),
        )]);
        report.assert_clean();
        assert_eq!(got.load(Ordering::SeqCst), 1);
        assert_eq!(report.stats.messages, 2, "request + reply");
        // Two 1 ms-class messages: finishes at >= 2 ms of virtual time.
        assert!(report.finished_at.as_micros() >= 2_000, "{}", report.finished_at);
        assert_eq!(report.total_ops("read"), 1);
        assert!(report.total_wait_us("read") >= 2_000);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let report = echo_world(vec![
                (
                    NodeId(0),
                    Box::new(|ctx: &mut ThreadCtx| {
                        for _ in 0..5 {
                            ctx.read(ObjectId(0), ByteRange::new(0, 64));
                            ctx.compute(100);
                        }
                    }) as Box<dyn FnOnce(&mut ThreadCtx) + Send>,
                ),
                (
                    NodeId(0),
                    Box::new(|ctx: &mut ThreadCtx| {
                        for _ in 0..3 {
                            ctx.read(ObjectId(0), ByteRange::new(0, 16));
                        }
                    }) as Box<dyn FnOnce(&mut ThreadCtx) + Send>,
                ),
            ]);
            (report.finished_at, report.stats.messages, report.stats.bytes, report.ops)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn local_reads_send_no_messages() {
        let report = echo_world(vec![(
            NodeId(1),
            Box::new(|ctx: &mut ThreadCtx| {
                for _ in 0..10 {
                    ctx.read(ObjectId(0), ByteRange::new(0, 8));
                }
            }),
        )]);
        report.assert_clean();
        assert_eq!(report.stats.messages, 0);
    }

    #[test]
    fn panicking_thread_is_reported_not_hung() {
        let report = echo_world(vec![(
            NodeId(0),
            Box::new(|_ctx: &mut ThreadCtx| {
                panic!("application bug!");
            }),
        )]);
        assert!(!report.is_clean());
        assert!(report.errors[0].contains("application bug"), "{:?}", report.errors);
        assert!(!report.deadlocked);
    }

    /// A server that never completes a read: the world must detect deadlock
    /// and tear down rather than hang the test process.
    struct BlackHoleServer;

    impl Server for BlackHoleServer {
        type Payload = EchoMsg;
        fn on_op(&mut self, _k: &mut dyn KernelApi<EchoMsg>, _t: ThreadId, op: DsmOp) -> OpOutcome {
            match op {
                DsmOp::Read { .. } => OpOutcome::Blocked,
                _ => OpOutcome::unit(0),
            }
        }
        fn on_message(&mut self, _k: &mut dyn KernelApi<EchoMsg>, _f: NodeId, _p: EchoMsg) {}
    }

    #[test]
    fn deadlock_is_detected_and_reported() {
        let mut b = WorldBuilder::new(1);
        b.spawn(NodeId(0), |ctx: &mut ThreadCtx| {
            ctx.read(ObjectId(0), ByteRange::new(0, 4));
        });
        let report = b.build(vec![BlackHoleServer]).run();
        assert!(report.deadlocked);
        assert!(report.errors.iter().any(|e| e.contains("deadlock")), "{:?}", report.errors);
        assert!(report.errors.iter().any(|e| e.contains("read")), "{:?}", report.errors);
    }

    #[test]
    fn declared_objects_are_visible_in_registry() {
        let mut b = WorldBuilder::new(2);
        let decl = ObjectDecl::new(ObjectId(0), "m", 64, SharingType::WriteMany, NodeId(0));
        let id = b.declare(decl, NodeId(1));
        assert_eq!(id, ObjectId(0));
        b.spawn(NodeId(0), move |ctx: &mut ThreadCtx| {
            ctx.compute(1);
        });
        let w = b.build(vec![
            EchoServer { node: NodeId(0), served: 0 },
            EchoServer { node: NodeId(1), served: 0 },
        ]);
        assert_eq!(w.kernel.decl(id).unwrap().home, NodeId(1));
        assert_eq!(w.kernel.decl(id).unwrap().name, "m");
        let report = w.run();
        report.assert_clean();
    }

    #[test]
    fn compute_costs_virtual_time_without_server_involvement() {
        let report = echo_world(vec![(
            NodeId(0),
            Box::new(|ctx: &mut ThreadCtx| {
                ctx.compute(12_345);
            }),
        )]);
        report.assert_clean();
        assert_eq!(report.stats.messages, 0);
        assert!(report.finished_at.as_micros() >= 12_345);
    }

    #[test]
    fn threads_interleave_by_virtual_time_not_spawn_order() {
        // Thread B (spawned second) does cheap ops; thread A does one huge
        // compute. B must finish long before A's op completes.
        let order = Arc::new(parking_lot_free_vec());
        let o1 = order.clone();
        let o2 = order.clone();
        let report = echo_world(vec![
            (
                NodeId(0),
                Box::new(move |ctx: &mut ThreadCtx| {
                    ctx.compute(1_000_000);
                    o1.lock().unwrap().push('A');
                }),
            ),
            (
                NodeId(0),
                Box::new(move |ctx: &mut ThreadCtx| {
                    ctx.compute(10);
                    o2.lock().unwrap().push('B');
                }),
            ),
        ]);
        report.assert_clean();
        assert_eq!(*order.lock().unwrap(), vec!['B', 'A']);
    }

    fn parking_lot_free_vec() -> std::sync::Mutex<Vec<char>> {
        std::sync::Mutex::new(Vec::new())
    }
}

//! The event queue.
//!
//! Events are ordered by virtual time, with a global push-sequence number as
//! the tie-breaker. The tie-breaker is what makes simultaneous events (two
//! messages arriving at the same instant, a thread resuming while a timer
//! fires) execute in a reproducible order.

use crate::op::OpResult;
use munin_types::{NodeId, ThreadId, VirtualTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug)]
pub enum EventKind<W> {
    /// Resume an application thread with the result of its pending op.
    ThreadResume { thread: ThreadId, result: OpResult },
    /// A wire transmission arrives at `dst`.
    Deliver { src: NodeId, dst: NodeId, seq: u64, wire: W },
    /// A server timer registered via `Kernel::set_timer`.
    Timer { node: NodeId, token: u64 },
    /// The transport's retransmission timer for the (src, dst) pair.
    RetxTimer { src: NodeId, dst: NodeId },
}

#[derive(Debug)]
pub struct Event<W> {
    pub at: VirtualTime,
    pub seq: u64,
    pub kind: EventKind<W>,
}

impl<W> PartialEq for Event<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Event<W> {}

impl<W> Ord for Event<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl<W> PartialOrd for Event<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-queue of events in (virtual time, insertion order).
#[derive(Debug)]
pub struct EventQueue<W> {
    heap: BinaryHeap<Event<W>>,
    next_seq: u64,
}

impl<W> Default for EventQueue<W> {
    fn default() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }
}

impl<W> EventQueue<W> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, at: VirtualTime, kind: EventKind<W>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    pub fn pop(&mut self) -> Option<Event<W>> {
        self.heap.pop()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resume(t: u32) -> EventKind<()> {
        EventKind::ThreadResume { thread: ThreadId(t), result: OpResult::Unit }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(VirtualTime::micros(30), resume(0));
        q.push(VirtualTime::micros(10), resume(1));
        q.push(VirtualTime::micros(20), resume(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.at.as_micros()).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = VirtualTime::micros(5);
        q.push(t, resume(7));
        q.push(t, resume(8));
        q.push(t, resume(9));
        let mut threads = Vec::new();
        while let Some(e) = q.pop() {
            if let EventKind::ThreadResume { thread, .. } = e.kind {
                threads.push(thread.0);
            }
        }
        assert_eq!(threads, vec![7, 8, 9], "FIFO among simultaneous events");
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::<()>::new();
        assert!(q.is_empty());
        q.push(VirtualTime::ZERO, resume(0));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}

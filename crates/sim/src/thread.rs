//! The application-thread side of the rendezvous.
//!
//! Application code receives a [`ThreadCtx`] and performs blocking DSM
//! operations on it. Each operation is a rendezvous: the thread sends the
//! request to the event loop and parks until the loop resumes it with the
//! result. Exactly one application thread executes at any wall-clock moment,
//! which is what makes runs deterministic.

use crate::op::{DsmOp, OpResult};
use crossbeam_channel::{Receiver, Sender};
use munin_types::{BarrierId, ByteRange, CondId, LockId, NodeId, ObjectDecl, ObjectId, ThreadId};

/// What a thread tells the world.
#[derive(Debug)]
pub(crate) enum ThreadReq {
    Op(DsmOp),
    /// The thread body returned (`None`) or panicked (`Some(msg)`).
    Exited(Option<String>),
}

/// Handle through which application code talks to the simulated DSM.
pub struct ThreadCtx {
    pub(crate) thread: ThreadId,
    pub(crate) node: NodeId,
    pub(crate) n_nodes: usize,
    pub(crate) n_threads: usize,
    pub(crate) req_tx: Sender<(ThreadId, ThreadReq)>,
    pub(crate) resume_rx: Receiver<OpResult>,
}

impl ThreadCtx {
    /// This thread's global id.
    pub fn thread_id(&self) -> ThreadId {
        self.thread
    }

    /// The node this thread runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Total nodes in the world.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Total application threads in the world.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Issue a raw operation and block until it completes.
    ///
    /// Panics if the simulation kernel went away (deadlock teardown) — the
    /// panic is caught by the thread wrapper and reported as a run error.
    pub fn op(&mut self, op: DsmOp) -> OpResult {
        self.req_tx
            .send((self.thread, ThreadReq::Op(op)))
            .expect("simulation kernel vanished while thread was running");
        self.resume_rx
            .recv()
            .expect("simulation kernel tore down (deadlock?) while thread was blocked")
    }

    // ---- convenience wrappers -------------------------------------------

    /// Allocate a shared object; the declaration's `id` and `home` fields are
    /// filled in by the runtime (home = this thread's node).
    pub fn alloc(&mut self, decl: ObjectDecl) -> ObjectId {
        self.op(DsmOp::Alloc(decl)).into_object()
    }

    /// Read a byte range of an object.
    pub fn read(&mut self, obj: ObjectId, range: ByteRange) -> Vec<u8> {
        self.op(DsmOp::Read { obj, range }).into_bytes()
    }

    /// Read a byte range of an object into a caller-owned buffer
    /// (`out.len()` must equal `range.len`). The rendezvous still transfers
    /// one owned buffer from the server side, but the caller-facing path
    /// allocates nothing, which is what the typed API layers on.
    pub fn read_into(&mut self, obj: ObjectId, range: ByteRange, out: &mut [u8]) {
        let bytes = self.op(DsmOp::Read { obj, range }).into_bytes();
        assert_eq!(
            out.len(),
            bytes.len(),
            "read_into buffer is {} bytes for a {} byte range",
            out.len(),
            bytes.len()
        );
        out.copy_from_slice(&bytes);
    }

    /// Write bytes at `start` within an object.
    pub fn write(&mut self, obj: ObjectId, start: u32, data: Vec<u8>) {
        let range = ByteRange::new(start, data.len() as u32);
        self.op(DsmOp::Write { obj, range, data }).expect_unit();
    }

    /// Write borrowed bytes at `start` within an object. One copy into the
    /// request message is inherent to the rendezvous; the caller keeps its
    /// buffer.
    pub fn write_raw(&mut self, obj: ObjectId, start: u32, data: &[u8]) {
        self.write(obj, start, data.to_vec());
    }

    /// Atomic fetch-and-add on the i64 at `offset`; returns the old value.
    pub fn fetch_add(&mut self, obj: ObjectId, offset: u32, delta: i64) -> i64 {
        self.op(DsmOp::AtomicFetchAdd { obj, offset, delta }).into_value()
    }

    pub fn lock(&mut self, lock: LockId) {
        self.op(DsmOp::Lock(lock)).expect_unit();
    }

    pub fn unlock(&mut self, lock: LockId) {
        self.op(DsmOp::Unlock(lock)).expect_unit();
    }

    pub fn barrier(&mut self, barrier: BarrierId) {
        self.op(DsmOp::BarrierWait(barrier)).expect_unit();
    }

    /// Monitor wait: releases `lock`, waits for a signal, re-acquires.
    pub fn cond_wait(&mut self, cond: CondId, lock: LockId) {
        self.op(DsmOp::CondWait { cond, lock }).expect_unit();
    }

    pub fn cond_signal(&mut self, cond: CondId) {
        self.op(DsmOp::CondSignal { cond, broadcast: false }).expect_unit();
    }

    pub fn cond_broadcast(&mut self, cond: CondId) {
        self.op(DsmOp::CondSignal { cond, broadcast: true }).expect_unit();
    }

    /// Flush this thread's delayed update queue.
    pub fn flush(&mut self) {
        self.op(DsmOp::Flush).expect_unit();
    }

    /// Mark the beginning of program phase `n` (phase 0 = initialization; the
    /// first call with `n >= 1` publishes write-once objects).
    pub fn phase(&mut self, n: u32) {
        self.op(DsmOp::Phase(n)).expect_unit();
    }

    /// Spend `us` microseconds of virtual compute time.
    pub fn compute(&mut self, us: u64) {
        self.op(DsmOp::Compute(us)).expect_unit();
    }
}

#[cfg(test)]
mod tests {
    // ThreadCtx is exercised end-to-end in world.rs tests; here we only pin
    // down the request encoding of the convenience wrappers via a fake
    // kernel loop.
    use super::*;
    use crossbeam_channel::unbounded;

    fn fake_ctx() -> (ThreadCtx, Receiver<(ThreadId, ThreadReq)>, Sender<OpResult>) {
        let (req_tx, req_rx) = unbounded();
        let (resume_tx, resume_rx) = unbounded();
        let ctx = ThreadCtx {
            thread: ThreadId(3),
            node: NodeId(1),
            n_nodes: 4,
            n_threads: 8,
            req_tx,
            resume_rx,
        };
        (ctx, req_rx, resume_tx)
    }

    #[test]
    fn write_encodes_range_from_data_len() {
        let (mut ctx, req_rx, resume_tx) = fake_ctx();
        resume_tx.send(OpResult::Unit).unwrap();
        ctx.write(ObjectId(5), 8, vec![1, 2, 3]);
        let (tid, req) = req_rx.try_recv().unwrap();
        assert_eq!(tid, ThreadId(3));
        match req {
            ThreadReq::Op(DsmOp::Write { obj, range, data }) => {
                assert_eq!(obj, ObjectId(5));
                assert_eq!(range, ByteRange::new(8, 3));
                assert_eq!(data, vec![1, 2, 3]);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn metadata_accessors() {
        let (ctx, _rx, _tx) = fake_ctx();
        assert_eq!(ctx.thread_id(), ThreadId(3));
        assert_eq!(ctx.node(), NodeId(1));
        assert_eq!(ctx.n_nodes(), 4);
        assert_eq!(ctx.n_threads(), 8);
    }
}

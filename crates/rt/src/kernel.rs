//! [`RtKernel`]: the per-node-server implementation of the
//! [`munin_sim::KernelApi`] seam over channels, atomics and wall-clock
//! timers.

use crate::fabric::{MsgBody, NodeEvent, Shared};
use crate::timer::TimerReq;
use munin_net::PayloadInfo;
use munin_sim::{KernelApi, OpResult};
use munin_types::{CostModel, NodeId, ObjectDecl, ObjectId, SharingType, ThreadId, VirtualTime};
use std::sync::atomic::Ordering;
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Kernel services for one node's server thread.
///
/// Each server thread owns its own `RtKernel` — including its own clones of
/// every peer inbox sender — so sends from node A to node B always travel
/// through A's clone of B's channel, preserving the per-(src,dst) FIFO
/// ordering the protocols assume. Send failures are ignored by design: they
/// only happen when the destination already shut down during teardown.
///
/// With `coalesce` on (the default), protocol sends issued while the server
/// handles one batch of inbox events are buffered per destination and
/// flushed as a single [`NodeEvent::Batch`] channel message when the step
/// ends ([`KernelApi::flush_outbound`], called by the server loop before it
/// blocks again) — a K-item fan-out costs the fabric one channel operation
/// and one receiver wake-up per destination instead of one per item. The
/// outbox is strictly per-destination and in send order, so coalescing
/// never reorders a (src,dst) pair.
pub struct RtKernel<P> {
    pub(crate) node: NodeId,
    pub(crate) cost: CostModel,
    pub(crate) inboxes: Vec<Sender<NodeEvent<P>>>,
    pub(crate) resumes: Vec<Sender<OpResult>>,
    pub(crate) timer_tx: Sender<TimerReq>,
    pub(crate) shared: Arc<Shared>,
    /// Per-kernel traffic accounting, returned by the owning server thread
    /// when its loop exits and merged into the run totals there — keeps the
    /// send path free of cross-node locking.
    pub(crate) stats: munin_net::NetStats,
    /// Coalesce outbound sends into per-destination batches (see above);
    /// off reproduces the one-channel-send-per-message fabric.
    pub(crate) coalesce: bool,
    /// Outbound messages buffered during the current server step, one queue
    /// per destination node.
    pub(crate) outbox: Vec<Vec<(NodeId, MsgBody<P>)>>,
    /// Threads whose blocked op completed this step (via
    /// [`KernelApi::complete`]); drained by the server loop's op gate.
    pub(crate) completions: Vec<ThreadId>,
}

impl<P> RtKernel<P> {
    /// This node's traffic counters, taken by the owning server loop when
    /// it exits (the world merges every node's share into the run totals).
    pub(crate) fn take_stats(&mut self) -> munin_net::NetStats {
        std::mem::take(&mut self.stats)
    }

    fn deliver(&mut self, dst: NodeId, src: NodeId, body: MsgBody<P>) {
        if self.coalesce {
            self.outbox[dst.index()].push((src, body));
        } else {
            let _ = self.inboxes[dst.index()].send(NodeEvent::Msg(src, body));
        }
    }
}

impl<P: PayloadInfo + Clone> crate::serve::NodeKernel<P> for RtKernel<P> {
    fn node_id(&self) -> NodeId {
        self.node
    }

    fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    fn resume(&mut self, thread: ThreadId, result: OpResult) {
        // Close the span's server half; the in-process fabric has no wire
        // hop, so the SrvSpan stays in the collector's ring (nothing to
        // attach to a reply frame).
        let _ = self.shared.obs.srv_finish(thread);
        let _ = self.resumes[thread.index()].send(result);
    }

    fn take_completions(&mut self) -> Vec<ThreadId> {
        std::mem::take(&mut self.completions)
    }

    fn take_stats(&mut self) -> munin_net::NetStats {
        RtKernel::take_stats(self)
    }
}

impl<P: PayloadInfo + Clone> KernelApi<P> for RtKernel<P> {
    fn now(&self) -> VirtualTime {
        VirtualTime::micros(self.shared.now_us())
    }

    fn cost(&self) -> &CostModel {
        &self.cost
    }

    fn send(&mut self, src: NodeId, dst: NodeId, payload: P) {
        debug_assert_eq!(src, self.node, "rt kernels send on behalf of their own node");
        debug_assert_ne!(src, dst, "servers handle local work locally, not by self-send");
        self.stats.record(payload.class(), payload.kind(), payload.wire_bytes());
        self.deliver(dst, src, MsgBody::Owned(payload));
    }

    fn multicast(&mut self, src: NodeId, dsts: &[NodeId], payload: P) {
        // Match the simulated transport: an empty destination list is not a
        // multicast (keeps `stats.multicasts` comparable across kernels).
        if dsts.is_empty() {
            return;
        }
        for _ in dsts {
            self.stats.record(payload.class(), payload.kind(), payload.wire_bytes());
        }
        // No hardware multicast on a channel fabric: fanout == sends. The
        // *payload*, however, is shared — one `Arc` for every destination
        // instead of a deep clone per destination.
        self.stats.record_multicast(dsts.len(), dsts.len());
        let shared_payload = Arc::new(payload);
        for &dst in dsts {
            debug_assert_ne!(src, dst);
            self.deliver(dst, src, MsgBody::Shared(shared_payload.clone()));
        }
    }

    fn flush_outbound(&mut self) {
        if !self.coalesce {
            return;
        }
        for dst in 0..self.outbox.len() {
            match self.outbox[dst].len() {
                0 => continue,
                // A lone message needs no batch wrapper (and no Vec on the
                // receiving side).
                1 => {
                    let (src, body) = self.outbox[dst].pop().expect("len checked");
                    let _ = self.inboxes[dst].send(NodeEvent::Msg(src, body));
                }
                _ => {
                    let items = std::mem::take(&mut self.outbox[dst]);
                    let _ = self.inboxes[dst].send(NodeEvent::Batch(items));
                }
            }
        }
    }

    fn complete(&mut self, thread: ThreadId, result: OpResult, _extra_cost_us: u64) {
        // Modelled completion cost is a virtual-time concept; here the
        // thread's real wait *is* the cost, so resume immediately. Record
        // the thread so the server loop's op gate can dispatch whatever
        // pipelined ops queued behind the one that just completed.
        let _ = self.shared.obs.srv_finish(thread);
        let _ = self.resumes[thread.index()].send(result);
        self.completions.push(thread);
    }

    fn set_timer(&mut self, node: NodeId, delay_us: u64, token: u64) {
        // Count the timer as pending *before* the request is mailed, so the
        // watchdog can never catch the arm in flight (it would otherwise
        // see "all threads blocked, no activity, no pending timer" while
        // the request sits in the timer thread's queue).
        self.shared.timers_pending.fetch_add(1, Ordering::Release);
        let req = TimerReq { due: Instant::now() + Duration::from_micros(delay_us), node, token };
        if self.timer_tx.send(req).is_err() {
            // Teardown: the timer thread is gone, the timer will never
            // fire — don't leave the counter stuck above zero.
            self.shared.timers_pending.fetch_sub(1, Ordering::Release);
        }
    }

    fn register_decl(&mut self, mut decl: ObjectDecl, home: NodeId) -> ObjectId {
        let id = ObjectId(self.shared.next_object.fetch_add(1, Ordering::Relaxed));
        decl.id = id;
        decl.home = home;
        self.shared.registry.write().expect("registry poisoned").insert(id, decl);
        id
    }

    fn decl(&self, obj: ObjectId) -> Option<ObjectDecl> {
        self.shared.registry.read().expect("registry poisoned").get(&obj).cloned()
    }

    fn assoc_objects(&self, lock: munin_types::LockId) -> Vec<ObjectId> {
        let mut v: Vec<ObjectId> = self
            .shared
            .registry
            .read()
            .expect("registry poisoned")
            .values()
            .filter(|d| d.associated_lock == Some(lock))
            .map(|d| d.id)
            .collect();
        v.sort_unstable();
        v
    }

    fn retype(&mut self, obj: ObjectId, sharing: SharingType) {
        let mut reg = self.shared.registry.write().expect("registry poisoned");
        if let Some(d) = reg.get_mut(&obj) {
            d.sharing = sharing;
            self.shared.registry_version.fetch_add(1, Ordering::Release);
        }
    }

    fn registry_version(&self) -> u64 {
        self.shared.registry_version.load(Ordering::Acquire)
    }

    fn error(&mut self, msg: String) {
        self.shared.error(msg);
    }

    fn coverage(&self) -> Option<&munin_obs::CoverageMap> {
        self.shared.coverage.as_deref()
    }
}

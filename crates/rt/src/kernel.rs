//! [`RtKernel`]: the per-node-server implementation of the
//! [`munin_sim::KernelApi`] seam over channels, atomics and wall-clock
//! timers.

use crate::fabric::{NodeEvent, Shared};
use crate::timer::TimerReq;
use munin_net::PayloadInfo;
use munin_sim::{KernelApi, OpResult};
use munin_types::{CostModel, NodeId, ObjectDecl, ObjectId, SharingType, ThreadId, VirtualTime};
use std::sync::atomic::Ordering;
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Kernel services for one node's server thread.
///
/// Each server thread owns its own `RtKernel` — including its own clones of
/// every peer inbox sender — so sends from node A to node B always travel
/// through A's clone of B's channel, preserving the per-(src,dst) FIFO
/// ordering the protocols assume. Send failures are ignored by design: they
/// only happen when the destination already shut down during teardown.
pub struct RtKernel<P> {
    pub(crate) node: NodeId,
    pub(crate) cost: CostModel,
    pub(crate) inboxes: Vec<Sender<NodeEvent<P>>>,
    pub(crate) resumes: Vec<Sender<OpResult>>,
    pub(crate) timer_tx: Sender<TimerReq>,
    pub(crate) shared: Arc<Shared>,
    /// Per-kernel traffic accounting, merged into the shared totals when
    /// the server loop exits — keeps the send path free of cross-node
    /// locking.
    pub(crate) stats: munin_net::NetStats,
}

impl<P> RtKernel<P> {
    /// Fold this node's traffic counters into the run totals (called once,
    /// when the owning server loop exits).
    pub(crate) fn publish_stats(&mut self) {
        self.shared.stats.lock().expect("stats lock poisoned").merge(&self.stats);
    }
}

impl<P: PayloadInfo + Clone> KernelApi<P> for RtKernel<P> {
    fn now(&self) -> VirtualTime {
        VirtualTime::micros(self.shared.now_us())
    }

    fn cost(&self) -> &CostModel {
        &self.cost
    }

    fn send(&mut self, src: NodeId, dst: NodeId, payload: P) {
        debug_assert_eq!(src, self.node, "rt kernels send on behalf of their own node");
        debug_assert_ne!(src, dst, "servers handle local work locally, not by self-send");
        self.stats.record(payload.class(), payload.kind(), payload.wire_bytes());
        let _ = self.inboxes[dst.index()].send(NodeEvent::Msg(src, payload));
    }

    fn multicast(&mut self, src: NodeId, dsts: &[NodeId], payload: P) {
        // Match the simulated transport: an empty destination list is not a
        // multicast (keeps `stats.multicasts` comparable across kernels).
        if dsts.is_empty() {
            return;
        }
        for _ in dsts {
            self.stats.record(payload.class(), payload.kind(), payload.wire_bytes());
        }
        // No hardware multicast on a channel fabric: fanout == sends.
        self.stats.record_multicast(dsts.len(), dsts.len());
        for &dst in dsts {
            debug_assert_ne!(src, dst);
            let _ = self.inboxes[dst.index()].send(NodeEvent::Msg(src, payload.clone()));
        }
    }

    fn complete(&mut self, thread: ThreadId, result: OpResult, _extra_cost_us: u64) {
        // Modelled completion cost is a virtual-time concept; here the
        // thread's real wait *is* the cost, so resume immediately.
        let _ = self.resumes[thread.index()].send(result);
    }

    fn set_timer(&mut self, node: NodeId, delay_us: u64, token: u64) {
        let _ = self.timer_tx.send(TimerReq {
            due: Instant::now() + Duration::from_micros(delay_us),
            node,
            token,
        });
    }

    fn register_decl(&mut self, mut decl: ObjectDecl, home: NodeId) -> ObjectId {
        let id = ObjectId(self.shared.next_object.fetch_add(1, Ordering::Relaxed));
        decl.id = id;
        decl.home = home;
        self.shared.registry.write().expect("registry poisoned").insert(id, decl);
        id
    }

    fn decl(&self, obj: ObjectId) -> Option<ObjectDecl> {
        self.shared.registry.read().expect("registry poisoned").get(&obj).cloned()
    }

    fn assoc_objects(&self, lock: munin_types::LockId) -> Vec<ObjectId> {
        let mut v: Vec<ObjectId> = self
            .shared
            .registry
            .read()
            .expect("registry poisoned")
            .values()
            .filter(|d| d.associated_lock == Some(lock))
            .map(|d| d.id)
            .collect();
        v.sort_unstable();
        v
    }

    fn retype(&mut self, obj: ObjectId, sharing: SharingType) {
        let mut reg = self.shared.registry.write().expect("registry poisoned");
        if let Some(d) = reg.get_mut(&obj) {
            d.sharing = sharing;
            self.shared.registry_version.fetch_add(1, Ordering::Release);
        }
    }

    fn registry_version(&self) -> u64 {
        self.shared.registry_version.load(Ordering::Acquire)
    }

    fn error(&mut self, msg: String) {
        self.shared.error(msg);
    }
}

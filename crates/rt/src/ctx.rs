//! The application-thread side of the real-time kernel.
//!
//! Unlike the simulator's rendezvous ([`munin_sim::ThreadCtx`]), an
//! [`RtCtx`] never hands control to a scheduler: threads run whenever the
//! OS runs them, mail operations to their node's server inbox, and block on
//! a private resume channel until the protocol completes the fault. The
//! recv loop wakes periodically to check the stall watchdog's poison flag,
//! so a wedged protocol tears the thread down (with a panic the harness
//! reports) instead of hanging the process.

use crate::fabric::{NodeEvent, Shared};
use crate::world::{ComputeMode, RtTuning};
use munin_sim::report::WaitTable;
use munin_sim::{DsmOp, OpResult};
use munin_types::{BarrierId, ByteRange, CondId, LockId, NodeId, ObjectDecl, ObjectId, ThreadId};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often a blocked thread wakes to check for poisoning.
const POISON_POLL: Duration = Duration::from_millis(25);

/// Handle through which application code talks to the real-time DSM.
pub struct RtCtx<P> {
    pub(crate) thread: ThreadId,
    pub(crate) node: NodeId,
    pub(crate) n_nodes: usize,
    pub(crate) n_threads: usize,
    pub(crate) to_server: Sender<NodeEvent<P>>,
    pub(crate) resume_rx: Receiver<OpResult>,
    pub(crate) shared: Arc<Shared>,
    pub(crate) tuning: RtTuning,
    /// Real-microsecond wait accounting per op label (feeds the report's
    /// `thread_waits`, same shape as the simulator's virtual-time table).
    pub(crate) waits: WaitTable,
}

impl<P> RtCtx<P> {
    /// Assemble a context for an alternate wall-clock fabric. `munin-tcp`'s
    /// coordinator hosts every application thread and uses this to point
    /// each one at its logical node's server — a local channel for the
    /// coordinator's own node, a socket-forwarding channel for remote ones.
    pub fn new(
        thread: ThreadId,
        node: NodeId,
        n_nodes: usize,
        n_threads: usize,
        to_server: Sender<NodeEvent<P>>,
        resume_rx: Receiver<OpResult>,
        shared: Arc<Shared>,
        tuning: RtTuning,
    ) -> Self {
        RtCtx {
            thread,
            node,
            n_nodes,
            n_threads,
            to_server,
            resume_rx,
            shared,
            tuning,
            waits: WaitTable::new(),
        }
    }

    /// This thread's global id.
    pub fn thread_id(&self) -> ThreadId {
        self.thread
    }

    /// The node this thread runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Total nodes in the world.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Total application threads in the world.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Issue a raw operation and block until the protocol completes it.
    ///
    /// `Compute` never reaches the server: the calling thread performs it
    /// locally according to [`ComputeMode`] — that locality is exactly what
    /// lets workers compute in parallel.
    ///
    /// Panics if the watchdog poisoned the run (the panic is caught by the
    /// harness wrapper and reported as a run error, mirroring the
    /// simulator's deadlock teardown).
    pub fn op(&mut self, op: DsmOp) -> OpResult {
        let label = op.label();
        // Issue-time poison check: on a distributed run a lost peer poisons
        // the world while threads whose ops still succeed locally are
        // unblocked — without this check they would grind on until their
        // bodies finish, stretching teardown from milliseconds to the whole
        // remaining run. (The message prefix marks this as a teardown
        // consequence, not an application bug — see `drive_app_thread`.)
        if self.shared.is_poisoned() {
            panic!("real-time kernel poisoned before '{label}' was issued");
        }
        let issued = Instant::now();
        self.shared.ops.fetch_add(1, Ordering::Relaxed);
        let result = if let DsmOp::Compute(us) = op {
            // Executed locally, but still counted as an op with a wait-table
            // row so rt and simulator reports stay comparable.
            self.compute_inner(us);
            OpResult::Unit
        } else {
            self.shared.blocked.fetch_add(1, Ordering::SeqCst);
            let result = self.send_and_wait(op, label);
            self.shared.blocked.fetch_sub(1, Ordering::SeqCst);
            result
        };
        let waited = u64::try_from(issued.elapsed().as_micros()).unwrap_or(u64::MAX);
        let e = self.waits.entry(label).or_insert((0, 0));
        e.0 += 1;
        e.1 += waited;
        result
    }

    fn send_and_wait(&mut self, op: DsmOp, label: &'static str) -> OpResult {
        if self.to_server.send(NodeEvent::Op(self.thread, op)).is_err() {
            panic!("real-time kernel vanished while issuing '{label}'");
        }
        loop {
            match self.resume_rx.recv_timeout(POISON_POLL) {
                Ok(r) => return r,
                Err(RecvTimeoutError::Timeout) => {
                    if self.shared.is_poisoned() {
                        panic!("real-time kernel stalled while thread was blocked in '{label}'");
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("real-time kernel tore down while thread was blocked in '{label}'");
                }
            }
        }
    }

    // ---- convenience wrappers (same surface as the simulator's
    // ThreadCtx, so the API harness treats both uniformly) ----------------

    /// Allocate a shared object; `id`/`home` are filled in by the runtime.
    pub fn alloc(&mut self, decl: ObjectDecl) -> ObjectId {
        self.op(DsmOp::Alloc(decl)).into_object()
    }

    /// Read a byte range of an object.
    pub fn read(&mut self, obj: ObjectId, range: ByteRange) -> Vec<u8> {
        self.op(DsmOp::Read { obj, range }).into_bytes()
    }

    /// Read a byte range into a caller-owned buffer (`out.len()` must equal
    /// `range.len`).
    pub fn read_into(&mut self, obj: ObjectId, range: ByteRange, out: &mut [u8]) {
        let bytes = self.op(DsmOp::Read { obj, range }).into_bytes();
        assert_eq!(
            out.len(),
            bytes.len(),
            "read_into buffer is {} bytes for a {} byte range",
            out.len(),
            bytes.len()
        );
        out.copy_from_slice(&bytes);
    }

    /// Write bytes at `start` within an object.
    pub fn write(&mut self, obj: ObjectId, start: u32, data: Vec<u8>) {
        let range = ByteRange::new(start, data.len() as u32);
        self.op(DsmOp::Write { obj, range, data }).expect_unit();
    }

    /// Write borrowed bytes at `start` within an object.
    pub fn write_raw(&mut self, obj: ObjectId, start: u32, data: &[u8]) {
        self.write(obj, start, data.to_vec());
    }

    /// Atomic fetch-and-add on the i64 at `offset`; returns the old value.
    pub fn fetch_add(&mut self, obj: ObjectId, offset: u32, delta: i64) -> i64 {
        self.op(DsmOp::AtomicFetchAdd { obj, offset, delta }).into_value()
    }

    pub fn lock(&mut self, lock: LockId) {
        self.op(DsmOp::Lock(lock)).expect_unit();
    }

    pub fn unlock(&mut self, lock: LockId) {
        self.op(DsmOp::Unlock(lock)).expect_unit();
    }

    pub fn barrier(&mut self, barrier: BarrierId) {
        self.op(DsmOp::BarrierWait(barrier)).expect_unit();
    }

    /// Monitor wait: releases `lock`, waits for a signal, re-acquires.
    pub fn cond_wait(&mut self, cond: CondId, lock: LockId) {
        self.op(DsmOp::CondWait { cond, lock }).expect_unit();
    }

    pub fn cond_signal(&mut self, cond: CondId) {
        self.op(DsmOp::CondSignal { cond, broadcast: false }).expect_unit();
    }

    pub fn cond_broadcast(&mut self, cond: CondId) {
        self.op(DsmOp::CondSignal { cond, broadcast: true }).expect_unit();
    }

    /// Flush this thread's delayed update queue.
    pub fn flush(&mut self) {
        self.op(DsmOp::Flush).expect_unit();
    }

    /// Mark the beginning of program phase `n`.
    pub fn phase(&mut self, n: u32) {
        self.op(DsmOp::Phase(n)).expect_unit();
    }

    /// Perform `us` microseconds of modelled computation on *this* thread
    /// (see [`ComputeMode`]); never involves the server. Goes through
    /// [`RtCtx::op`] so the op counter and wait table see it, like the
    /// simulator's compute handling.
    pub fn compute(&mut self, us: u64) {
        self.op(DsmOp::Compute(us)).expect_unit();
    }

    fn compute_inner(&mut self, us: u64) {
        let us = (us as f64 * self.tuning.compute_scale).round() as u64;
        if us == 0 {
            return;
        }
        match self.tuning.compute {
            ComputeMode::Sleep => std::thread::sleep(Duration::from_micros(us)),
            ComputeMode::Spin => {
                let end = Instant::now() + Duration::from_micros(us);
                while Instant::now() < end {
                    std::hint::spin_loop();
                }
            }
            ComputeMode::Skip => {}
        }
    }
}

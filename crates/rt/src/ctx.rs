//! The application-thread side of the real-time kernel.
//!
//! Unlike the simulator's rendezvous ([`munin_sim::ThreadCtx`]), an
//! [`RtCtx`] never hands control to a scheduler: threads run whenever the
//! OS runs them, mail operations to their node's server inbox, and block on
//! a private resume channel until the protocol completes the fault. The
//! recv loop wakes periodically to check the stall watchdog's poison flag,
//! so a wedged protocol tears the thread down (with a panic the harness
//! reports) instead of hanging the process.
//!
//! PR 7 made the issue path pipelined: ops can be issued asynchronously
//! (up to [`RtTuning::max_inflight`] per thread) and completed later by a
//! token wait or, implicitly, by the next blocking op — every blocking op
//! waits for its *own* completion, which on the per-thread FIFO resume
//! channel drains everything issued before it. Adjacent writes to the same
//! object are combined client-side ([`RtTuning::write_combine`]) and a
//! bounded adaptive spin ([`SpinWait`]) runs before each park so short
//! waits skip the futex wake + context-switch pair.

use crate::fabric::{NodeEvent, Shared};
use crate::world::{ComputeMode, RtTuning, SpinWait};
use munin_obs::{wall_us, AccessKind, OpClass};
use munin_sim::report::WaitTable;
use munin_sim::{DsmOp, OpResult};
use munin_types::{
    BarrierId, ByteRange, CondId, LockId, NodeId, ObjectDecl, ObjectId, ThreadId, TokenState,
};
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often a blocked thread wakes to check for poisoning.
const POISON_POLL: Duration = Duration::from_millis(25);

/// Hard ceiling on the client-side write-combining buffer. A single
/// combined write larger than this is emitted immediately rather than
/// accumulating further.
const WC_MAX_BYTES: usize = 64 * 1024;

/// Observations above this never feed the spin EWMA: a barrier or a
/// contended lock can block for milliseconds, and letting that pull the
/// estimate up would make every subsequent fast op spin to its cap.
const EWMA_CLAMP_US: u64 = 1_000;

/// One op this thread has issued but not yet seen complete.
#[derive(Clone, Copy)]
struct InFlight {
    seq: u64,
    label: &'static str,
    issued: Instant,
    /// A token exists that may later claim this op's result. Unclaimed
    /// non-unit results are dropped at receive time — except errors, which
    /// panic immediately (fail-closed: a combined write with no token must
    /// not fail silently).
    claimed: bool,
    /// Latency-accounting class (telemetry).
    class: OpClass,
    /// Issued through the async path (telemetry splits blocking from
    /// pipelined latencies — they measure different things).
    pipelined: bool,
    /// Wall stamp at issue (µs since epoch); 0 unless spans are on.
    issue_wall: u64,
}

/// Classify an op for the latency recorders.
fn op_class(op: &DsmOp) -> OpClass {
    match op {
        DsmOp::Alloc(_) => OpClass::Alloc,
        DsmOp::Read { .. } => OpClass::Read,
        DsmOp::Write { .. } => OpClass::Write,
        DsmOp::AtomicFetchAdd { .. } => OpClass::FetchAdd,
        DsmOp::Lock(_) => OpClass::Lock,
        DsmOp::Unlock(_) => OpClass::Unlock,
        DsmOp::BarrierWait(_) => OpClass::Barrier,
        DsmOp::CondWait { .. } | DsmOp::CondSignal { .. } => OpClass::Cond,
        DsmOp::Flush => OpClass::Flush,
        _ => OpClass::Other,
    }
}

/// The client-side write-combining buffer: one contiguous byte range of one
/// object, absorbed from consecutive `write` calls.
struct WcBuf {
    obj: ObjectId,
    start: u32,
    data: Vec<u8>,
}

/// Handle through which application code talks to the real-time DSM.
pub struct RtCtx<P> {
    pub(crate) thread: ThreadId,
    pub(crate) node: NodeId,
    pub(crate) n_nodes: usize,
    pub(crate) n_threads: usize,
    pub(crate) to_server: Sender<NodeEvent<P>>,
    pub(crate) resume_rx: Receiver<OpResult>,
    pub(crate) shared: Arc<Shared>,
    pub(crate) tuning: RtTuning,
    /// Real-microsecond wait accounting per op label (feeds the report's
    /// `thread_waits`, same shape as the simulator's virtual-time table).
    pub(crate) waits: WaitTable,
    /// Sequence number of the most recently issued op (0 = none yet).
    next_seq: u64,
    /// Highest sequence whose result has been taken off the resume channel.
    received_through: u64,
    /// In-flight ops, oldest first. The per-thread server-side op gate
    /// completes ops in issue order, so the resume channel is a FIFO over
    /// exactly this queue.
    pending: VecDeque<InFlight>,
    /// Completed-but-unredeemed token results (`seq`, label, result).
    claimable: Vec<(u64, &'static str, OpResult)>,
    /// Pending write-combining buffer, flushed by any non-write op.
    wc: Option<WcBuf>,
    /// EWMA of recent op completion times (µs), the adaptive spin's input.
    ewma_us: u64,
    /// Spinning is pointless when waiter and server cannot run in parallel
    /// (1-core CI); decided once at construction.
    can_spin: bool,
}

impl<P> RtCtx<P> {
    /// Assemble a context for an alternate wall-clock fabric. `munin-tcp`'s
    /// coordinator hosts every application thread and uses this to point
    /// each one at its logical node's server — a local channel for the
    /// coordinator's own node, a socket-forwarding channel for remote ones.
    pub fn new(
        thread: ThreadId,
        node: NodeId,
        n_nodes: usize,
        n_threads: usize,
        to_server: Sender<NodeEvent<P>>,
        resume_rx: Receiver<OpResult>,
        shared: Arc<Shared>,
        tuning: RtTuning,
    ) -> Self {
        let can_spin = std::thread::available_parallelism().map(|p| p.get() >= 2).unwrap_or(false);
        RtCtx {
            thread,
            node,
            n_nodes,
            n_threads,
            to_server,
            resume_rx,
            shared,
            tuning,
            waits: WaitTable::new(),
            next_seq: 0,
            received_through: 0,
            pending: VecDeque::new(),
            claimable: Vec::new(),
            wc: None,
            ewma_us: 15,
            can_spin,
        }
    }

    /// This thread's global id.
    pub fn thread_id(&self) -> ThreadId {
        self.thread
    }

    /// The node this thread runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Total nodes in the world.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Total application threads in the world.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Issue a raw operation and block until the protocol completes it.
    ///
    /// `Compute` never reaches the server: the calling thread performs it
    /// locally according to [`ComputeMode`] — that locality is exactly what
    /// lets workers compute in parallel.
    ///
    /// Waiting for this op's own completion drains every async op issued
    /// before it (the resume channel is a per-thread FIFO), which is what
    /// makes every blocking op — and so every sync point — an implicit
    /// `drain`, as release consistency requires.
    ///
    /// Panics if the watchdog poisoned the run (the panic is caught by the
    /// harness wrapper and reported as a run error, mirroring the
    /// simulator's deadlock teardown).
    pub fn op(&mut self, op: DsmOp) -> OpResult {
        let label = op.label();
        self.check_issue_poison(label);
        let issued = Instant::now();
        self.shared.ops.fetch_add(1, Ordering::Relaxed);
        self.note_access(&op);
        let result = if let DsmOp::Compute(us) = op {
            // Executed locally, but still counted as an op with a wait-table
            // row so rt and simulator reports stay comparable.
            self.compute_inner(us);
            OpResult::Unit
        } else {
            self.flush_wc();
            let seq = self.issue(op, label, false, false);
            self.wait_seq(seq, label)
        };
        self.record_wait(label, issued);
        result
    }

    /// Issue an operation without waiting; returns a token state redeemable
    /// with [`RtCtx::token_wait`]. Writes go through the combining buffer
    /// when enabled and come back [`TokenState::Ready`] — the combined op
    /// is emitted (still async) by the next non-write op.
    pub fn op_async(&mut self, op: DsmOp) -> TokenState {
        let label = op.label();
        self.check_issue_poison(label);
        let issued = Instant::now();
        self.shared.ops.fetch_add(1, Ordering::Relaxed);
        self.note_access(&op);
        let state = match op {
            DsmOp::Compute(us) => {
                self.compute_inner(us);
                TokenState::Ready(0)
            }
            DsmOp::Write { obj, range, data } if self.tuning.write_combine => {
                self.wc_absorb(obj, range.start, data);
                TokenState::Ready(0)
            }
            DsmOp::Write { obj, range, data } => {
                let seq = self.issue(DsmOp::Write { obj, range, data }, label, false, true);
                TokenState::Pending(seq)
            }
            other => {
                self.flush_wc();
                let seq = self.issue(other, label, true, true);
                TokenState::Pending(seq)
            }
        };
        self.record_wait(label, issued);
        state
    }

    /// Redeem a token: the raw result of the async op (0 for unit results).
    pub fn token_wait(&mut self, state: TokenState) -> i64 {
        match state {
            TokenState::Ready(v) => v,
            TokenState::Pending(seq) => {
                let issued = Instant::now();
                let result = self.wait_seq(seq, "token_wait");
                self.record_wait("token_wait", issued);
                match result {
                    OpResult::Unit => 0,
                    OpResult::Value(v) => v,
                    OpResult::Err(e) => panic!("asynchronous op failed: {e}"),
                    other => panic!("async token redeemed a non-scalar result: {other:?}"),
                }
            }
        }
    }

    /// Complete every in-flight op (including the write-combining buffer).
    /// Blocking ops do this implicitly; applications only need it to bound
    /// the in-flight window by hand.
    pub fn drain_ops(&mut self) {
        self.flush_wc();
        if !self.pending.is_empty() {
            let issued = Instant::now();
            while !self.pending.is_empty() {
                let (seq, label, claimed, r) = self.receive_one("drain");
                self.park_result(seq, label, claimed, r);
            }
            self.record_wait("drain", issued);
        }
        // Fail closed: an errored op whose token was never redeemed must
        // not survive a drain (= sync point) silently.
        if let Some((_, label, OpResult::Err(e))) =
            self.claimable.iter().find(|(_, _, r)| matches!(r, OpResult::Err(_)))
        {
            panic!("asynchronous '{label}' failed before a sync point: {e}");
        }
    }

    // ---- the pipelined issue/receive machinery --------------------------

    /// Issue-time poison check: on a distributed run a lost peer poisons
    /// the world while threads whose ops still succeed locally are
    /// unblocked — without this check they would grind on until their
    /// bodies finish, stretching teardown from milliseconds to the whole
    /// remaining run. (The message prefix marks this as a teardown
    /// consequence, not an application bug — see `drive_app_thread`.)
    fn check_issue_poison(&self, label: &'static str) {
        if self.shared.is_poisoned() {
            panic!("real-time kernel poisoned before '{label}' was issued");
        }
    }

    /// Count the application-level access against its object (feeds the
    /// per-object telemetry the retyping detectors will read). One branch
    /// when telemetry is off.
    #[inline]
    fn note_access(&self, op: &DsmOp) {
        if !self.tuning.telemetry.enabled() {
            return;
        }
        match op {
            DsmOp::Read { obj, .. } => self.shared.obs.note_access(*obj, AccessKind::Read),
            DsmOp::Write { obj, .. } => self.shared.obs.note_access(*obj, AccessKind::Write),
            DsmOp::AtomicFetchAdd { obj, .. } => {
                self.shared.obs.note_access(*obj, AccessKind::Atomic)
            }
            _ => {}
        }
    }

    fn record_wait(&mut self, label: &'static str, issued: Instant) {
        let waited = u64::try_from(issued.elapsed().as_micros()).unwrap_or(u64::MAX);
        let e = self.waits.entry(label).or_insert((0, 0));
        e.0 += 1;
        e.1 += waited;
    }

    /// Mail one op to the server and enqueue it in the in-flight window,
    /// first making room if the window is full.
    fn issue(&mut self, op: DsmOp, label: &'static str, claimed: bool, pipelined: bool) -> u64 {
        let cap = self.tuning.max_inflight.max(1);
        while self.pending.len() >= cap {
            let (seq, l, c, r) = self.receive_one(label);
            self.park_result(seq, l, c, r);
        }
        let class = op_class(&op);
        let issue_wall = if self.tuning.telemetry.spans() { wall_us() } else { 0 };
        if self.to_server.send(NodeEvent::Op(self.thread, op)).is_err() {
            panic!("real-time kernel vanished while issuing '{label}'");
        }
        self.next_seq += 1;
        let seq = self.next_seq;
        self.pending.push_back(InFlight {
            seq,
            label,
            issued: Instant::now(),
            claimed,
            class,
            pipelined,
            issue_wall,
        });
        seq
    }

    /// Block (spin, then park) until op `seq` completes and return its
    /// result. Earlier in-flight results received along the way are parked
    /// for their tokens (or dropped if unit/unclaimed).
    fn wait_seq(&mut self, seq: u64, wait_label: &'static str) -> OpResult {
        if seq <= self.received_through {
            return self.claim(seq);
        }
        loop {
            let (s, label, claimed, r) = self.receive_one(wait_label);
            if s == seq {
                return r;
            }
            self.park_result(s, label, claimed, r);
        }
    }

    /// Take one already-received result out of the claimable set (unit
    /// results are never stored, so absence means unit).
    fn claim(&mut self, seq: u64) -> OpResult {
        match self.claimable.iter().position(|(s, _, _)| *s == seq) {
            Some(i) => self.claimable.swap_remove(i).2,
            None => OpResult::Unit,
        }
    }

    /// File an out-of-order-received result: tokens redeem it later; unit
    /// results vanish; an error nobody holds a claim on panics now rather
    /// than getting lost.
    fn park_result(&mut self, seq: u64, label: &'static str, claimed: bool, r: OpResult) {
        match r {
            OpResult::Unit => {}
            OpResult::Err(e) if !claimed => panic!("asynchronous '{label}' failed: {e}"),
            other => {
                if claimed {
                    self.claimable.push((seq, label, other));
                }
            }
        }
    }

    /// Receive the oldest in-flight op's completion off the resume channel,
    /// spinning briefly before parking. `wait_label` names the op the
    /// *caller* is blocked in, for poison/teardown panics.
    fn receive_one(&mut self, wait_label: &'static str) -> (u64, &'static str, bool, OpResult) {
        let head = *self.pending.front().expect("receive with nothing in flight");
        self.shared.blocked.fetch_add(1, Ordering::SeqCst);
        let result = self.recv_result(wait_label);
        self.shared.blocked.fetch_sub(1, Ordering::SeqCst);
        self.pending.pop_front();
        self.received_through = head.seq;
        let observed = u64::try_from(head.issued.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.ewma_us = (self.ewma_us * 7 + observed.min(EWMA_CLAMP_US)) / 8;
        // The single client-side completion point: every op's latency is
        // recorded here, and the client half of its span when enabled.
        if self.tuning.telemetry.enabled() {
            self.shared.obs.record_op(self.thread, head.class, head.pipelined, observed);
            if self.tuning.telemetry.spans() {
                self.shared.obs.client_span(
                    self.thread,
                    head.seq,
                    head.class,
                    head.pipelined,
                    head.issue_wall,
                    wall_us(),
                );
            }
        }
        (head.seq, head.label, head.claimed, result)
    }

    /// One completion off the channel: bounded spin, then a parked wait
    /// that wakes every [`POISON_POLL`] to check the watchdog's flag. This
    /// is the *single* wait path — blocking ops and token waits both end
    /// here, so neither can miss poisoning.
    fn recv_result(&mut self, wait_label: &'static str) -> OpResult {
        let spin_us = match self.tuning.spin_wait {
            _ if !self.can_spin => 0,
            SpinWait::Off => 0,
            SpinWait::Fixed { us } => us,
            SpinWait::Adaptive { cap_us } => (self.ewma_us * 2).min(cap_us),
        };
        if spin_us > 0 {
            let deadline = Instant::now() + Duration::from_micros(spin_us);
            loop {
                match self.resume_rx.try_recv() {
                    Ok(r) => return r,
                    Err(TryRecvError::Empty) => {
                        if Instant::now() >= deadline {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                    Err(TryRecvError::Disconnected) => panic!(
                        "real-time kernel tore down while thread was blocked in '{wait_label}'"
                    ),
                }
            }
        }
        loop {
            match self.resume_rx.recv_timeout(POISON_POLL) {
                Ok(r) => return r,
                Err(RecvTimeoutError::Timeout) => {
                    if self.shared.is_poisoned() {
                        panic!(
                            "real-time kernel stalled while thread was blocked in '{wait_label}'"
                        );
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("real-time kernel tore down while thread was blocked in '{wait_label}'")
                }
            }
        }
    }

    // ---- client-side write combining ------------------------------------

    /// Fold a write into the combining buffer, or flush and restart it if
    /// the write is not contiguous with what's buffered.
    fn wc_absorb(&mut self, obj: ObjectId, start: u32, data: Vec<u8>) {
        if let Some(b) = &mut self.wc {
            let bs = b.start as usize;
            let be = bs + b.data.len();
            let ns = start as usize;
            let ne = ns + data.len();
            let touches = b.obj == obj && ns <= be && ne >= bs;
            if touches {
                let merged_len = ne.max(be) - ns.min(bs);
                if merged_len <= WC_MAX_BYTES {
                    if ns == be {
                        // Common case: strictly appending (stripe fills).
                        b.data.extend_from_slice(&data);
                    } else if ns >= bs && ne <= be {
                        // Contained overwrite.
                        b.data[ns - bs..ne - bs].copy_from_slice(&data);
                    } else {
                        // General overlap/extension: rebuild around both.
                        let new_start = ns.min(bs);
                        let mut merged = vec![0u8; merged_len];
                        merged[bs - new_start..be - new_start].copy_from_slice(&b.data);
                        merged[ns - new_start..ne - new_start].copy_from_slice(&data);
                        b.start = new_start as u32;
                        b.data = merged;
                    }
                    return;
                }
            }
        }
        self.flush_wc();
        let oversized = data.len() >= WC_MAX_BYTES;
        self.wc = Some(WcBuf { obj, start, data });
        if oversized {
            self.flush_wc();
        }
    }

    /// Emit the combining buffer as one asynchronous write. Called by every
    /// non-write op *before* it issues, so per-thread program order — and
    /// with it read-your-writes — is preserved on the server's FIFO.
    fn flush_wc(&mut self) {
        let Some(b) = self.wc.take() else { return };
        let range = ByteRange::new(b.start, b.data.len() as u32);
        // Already counted in `shared.ops` once per app-level write when it
        // was absorbed; the combined emission is fabric bookkeeping.
        self.issue(DsmOp::Write { obj: b.obj, range, data: b.data }, "write", false, true);
    }

    // ---- convenience wrappers (same surface as the simulator's
    // ThreadCtx, so the API harness treats both uniformly) ----------------

    /// Allocate a shared object; `id`/`home` are filled in by the runtime.
    pub fn alloc(&mut self, decl: ObjectDecl) -> ObjectId {
        self.op(DsmOp::Alloc(decl)).into_object()
    }

    /// Read a byte range of an object.
    pub fn read(&mut self, obj: ObjectId, range: ByteRange) -> Vec<u8> {
        self.op(DsmOp::Read { obj, range }).into_bytes()
    }

    /// Read a byte range into a caller-owned buffer (`out.len()` must equal
    /// `range.len`).
    pub fn read_into(&mut self, obj: ObjectId, range: ByteRange, out: &mut [u8]) {
        let bytes = self.op(DsmOp::Read { obj, range }).into_bytes();
        assert_eq!(
            out.len(),
            bytes.len(),
            "read_into buffer is {} bytes for a {} byte range",
            out.len(),
            bytes.len()
        );
        out.copy_from_slice(&bytes);
    }

    /// Write bytes at `start` within an object. With write combining on
    /// (the default) consecutive contiguous writes coalesce client-side and
    /// complete asynchronously by the next non-write op; program order per
    /// thread is preserved either way.
    pub fn write(&mut self, obj: ObjectId, start: u32, data: Vec<u8>) {
        let range = ByteRange::new(start, data.len() as u32);
        let state = self.op_async(DsmOp::Write { obj, range, data });
        // Uncombined async writes complete at the next blocking op; nothing
        // to redeem (unit result), and errors fail closed in park_result.
        let _ = state;
    }

    /// Write borrowed bytes at `start` within an object.
    pub fn write_raw(&mut self, obj: ObjectId, start: u32, data: &[u8]) {
        self.write(obj, start, data.to_vec());
    }

    /// Atomic fetch-and-add on the i64 at `offset`; returns the old value.
    pub fn fetch_add(&mut self, obj: ObjectId, offset: u32, delta: i64) -> i64 {
        self.op(DsmOp::AtomicFetchAdd { obj, offset, delta }).into_value()
    }

    pub fn lock(&mut self, lock: LockId) {
        self.op(DsmOp::Lock(lock)).expect_unit();
    }

    pub fn unlock(&mut self, lock: LockId) {
        self.op(DsmOp::Unlock(lock)).expect_unit();
    }

    pub fn barrier(&mut self, barrier: BarrierId) {
        self.op(DsmOp::BarrierWait(barrier)).expect_unit();
    }

    /// Monitor wait: releases `lock`, waits for a signal, re-acquires.
    pub fn cond_wait(&mut self, cond: CondId, lock: LockId) {
        self.op(DsmOp::CondWait { cond, lock }).expect_unit();
    }

    pub fn cond_signal(&mut self, cond: CondId) {
        self.op(DsmOp::CondSignal { cond, broadcast: false }).expect_unit();
    }

    pub fn cond_broadcast(&mut self, cond: CondId) {
        self.op(DsmOp::CondSignal { cond, broadcast: true }).expect_unit();
    }

    /// Flush this thread's delayed update queue.
    pub fn flush(&mut self) {
        self.op(DsmOp::Flush).expect_unit();
    }

    /// Mark the beginning of program phase `n`.
    pub fn phase(&mut self, n: u32) {
        self.op(DsmOp::Phase(n)).expect_unit();
    }

    /// Perform `us` microseconds of modelled computation on *this* thread
    /// (see [`ComputeMode`]); never involves the server. Goes through
    /// [`RtCtx::op`] so the op counter and wait table see it, like the
    /// simulator's compute handling.
    pub fn compute(&mut self, us: u64) {
        self.op(DsmOp::Compute(us)).expect_unit();
    }

    fn compute_inner(&mut self, us: u64) {
        let us = (us as f64 * self.tuning.compute_scale).round() as u64;
        if us == 0 {
            return;
        }
        match self.tuning.compute {
            ComputeMode::Sleep => std::thread::sleep(Duration::from_micros(us)),
            ComputeMode::Spin => {
                let end = Instant::now() + Duration::from_micros(us);
                while Instant::now() < end {
                    std::hint::spin_loop();
                }
            }
            ComputeMode::Skip => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn lone_ctx() -> (RtCtx<()>, Receiver<NodeEvent<()>>, Sender<OpResult>) {
        let (op_tx, op_rx) = channel();
        let (res_tx, res_rx) = channel();
        let shared = Arc::new(Shared::new(Vec::new(), 1, munin_types::Telemetry::default()));
        let ctx =
            RtCtx::new(ThreadId(0), NodeId(0), 1, 1, op_tx, res_rx, shared, RtTuning::default());
        (ctx, op_rx, res_tx)
    }

    /// Regression (PR 7 satellite): a thread blocked redeeming a token must
    /// see watchdog poisoning just like a thread blocked in a sync op —
    /// before the unified wait path, only `send_and_wait` poison-polled and
    /// a token waiter could have hung until the channel disconnected.
    #[test]
    fn blocked_token_waiter_sees_poison() {
        let (mut ctx, _op_rx, _res_tx) = lone_ctx();
        let state = ctx.op_async(DsmOp::AtomicFetchAdd { obj: ObjectId(0), offset: 0, delta: 1 });
        assert!(matches!(state, TokenState::Pending(_)));
        ctx.shared.poisoned.store(true, Ordering::Release);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ctx.token_wait(state);
        }))
        .expect_err("token wait must panic on a poisoned run");
        let msg = crate::serve::panic_message(err);
        assert!(
            msg.contains("real-time kernel stalled while thread was blocked in 'token_wait'"),
            "unexpected panic: {msg}"
        );
    }

    /// The issue path refuses new ops (sync or async) once poisoned.
    #[test]
    fn poisoned_issue_refuses_async_ops() {
        let (mut ctx, _op_rx, _res_tx) = lone_ctx();
        ctx.shared.poisoned.store(true, Ordering::Release);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ctx.op_async(DsmOp::AtomicFetchAdd { obj: ObjectId(0), offset: 0, delta: 1 });
        }))
        .expect_err("async issue must panic on a poisoned run");
        let msg = crate::serve::panic_message(err);
        assert!(msg.contains("poisoned before 'fetch-add' was issued"), "unexpected: {msg}");
    }

    /// Write combining folds contiguous writes into one op and any
    /// non-write op flushes the buffer first (program order on the wire).
    #[test]
    fn write_combining_coalesces_and_flushes_in_order() {
        let (mut ctx, op_rx, res_tx) = lone_ctx();
        assert!(ctx.tuning.write_combine);
        ctx.write(ObjectId(3), 0, vec![1, 2, 3, 4]);
        ctx.write(ObjectId(3), 4, vec![5, 6]); // appends
        ctx.write(ObjectId(3), 2, vec![9, 9]); // contained overwrite
        assert!(op_rx.try_recv().is_err(), "writes must buffer client-side");
        // A read flushes the combined write first, then issues itself.
        res_tx.send(OpResult::Unit).unwrap(); // combined write completes
        res_tx.send(OpResult::Bytes(vec![0u8; 4])).unwrap(); // read completes
        let bytes = ctx.read(ObjectId(3), ByteRange::new(0, 4));
        assert_eq!(bytes.len(), 4);
        let NodeEvent::Op(_, DsmOp::Write { obj, range, data }) =
            op_rx.try_recv().expect("combined write first")
        else {
            panic!("expected the combined write")
        };
        assert_eq!(obj, ObjectId(3));
        assert_eq!((range.start, range.len), (0, 6));
        assert_eq!(data, vec![1, 2, 9, 9, 5, 6]);
        let NodeEvent::Op(_, DsmOp::Read { .. }) = op_rx.try_recv().expect("then the read") else {
            panic!("expected the read")
        };
        // Ops counted per app-level call: 3 writes + 1 read.
        assert_eq!(ctx.shared.ops.load(Ordering::Relaxed), 4);
    }

    /// Disjoint writes to the same object don't merge: the first is emitted
    /// (async) and the second starts a fresh buffer.
    #[test]
    fn write_combining_splits_disjoint_ranges() {
        let (mut ctx, op_rx, _res_tx) = lone_ctx();
        ctx.write(ObjectId(1), 0, vec![1, 2]);
        ctx.write(ObjectId(1), 100, vec![3, 4]);
        let NodeEvent::Op(_, DsmOp::Write { range, .. }) =
            op_rx.try_recv().expect("first range emitted on split")
        else {
            panic!("expected a write")
        };
        assert_eq!((range.start, range.len), (0, 2));
        assert!(op_rx.try_recv().is_err(), "second range still buffering");
    }

    /// A write overlapping the buffer's front edge rebuilds the buffer
    /// around both ranges, with the later write winning on the overlap.
    #[test]
    fn write_combining_merges_a_prepending_overlap() {
        let (mut ctx, op_rx, res_tx) = lone_ctx();
        ctx.write(ObjectId(2), 4, vec![1, 2, 3, 4]); // buffer [4, 8)
        ctx.write(ObjectId(2), 2, vec![9, 9, 9]); // [2, 5): extends front, overwrites 4
        assert!(op_rx.try_recv().is_err(), "overlap must merge, not emit");
        res_tx.send(OpResult::Unit).unwrap();
        ctx.drain_ops();
        let NodeEvent::Op(_, DsmOp::Write { range, data, .. }) =
            op_rx.try_recv().expect("one merged write")
        else {
            panic!("expected a write")
        };
        assert_eq!((range.start, range.len), (2, 6));
        assert_eq!(data, vec![9, 9, 9, 2, 3, 4]);
    }

    /// Writes to distinct objects never merge, however adjacent the byte
    /// ranges look: the first buffer is emitted and the second starts fresh.
    #[test]
    fn write_combining_does_not_merge_across_objects() {
        let (mut ctx, op_rx, _res_tx) = lone_ctx();
        ctx.write(ObjectId(1), 0, vec![1, 2]);
        ctx.write(ObjectId(2), 2, vec![3, 4]); // would append if same object
        let NodeEvent::Op(_, DsmOp::Write { obj, .. }) =
            op_rx.try_recv().expect("first object's buffer emitted")
        else {
            panic!("expected a write")
        };
        assert_eq!(obj, ObjectId(1));
        assert!(op_rx.try_recv().is_err(), "second object still buffering");
    }

    /// The combining buffer respects its byte ceiling: a merge that would
    /// exceed `WC_MAX_BYTES` emits the old buffer instead, and a single
    /// write at or above the ceiling is emitted immediately.
    #[test]
    fn write_combining_respects_the_byte_cap() {
        let (mut ctx, op_rx, res_tx) = lone_ctx();
        let half = WC_MAX_BYTES / 2 + 1; // two halves together exceed the cap
        ctx.write(ObjectId(1), 0, vec![7u8; half]);
        ctx.write(ObjectId(1), half as u32, vec![8u8; half]); // adjacent, too big
        let NodeEvent::Op(_, DsmOp::Write { range, .. }) =
            op_rx.try_recv().expect("over-cap merge emits the old buffer")
        else {
            panic!("expected a write")
        };
        assert_eq!((range.start, range.len as usize), (0, half));
        assert!(op_rx.try_recv().is_err(), "the new write starts a fresh buffer");

        res_tx.send(OpResult::Unit).unwrap(); // the emitted first buffer
        res_tx.send(OpResult::Unit).unwrap(); // the second buffer, flushed now
        ctx.drain_ops();
        let _ = op_rx.try_recv();
        ctx.write(ObjectId(1), 0, vec![9u8; WC_MAX_BYTES]);
        let NodeEvent::Op(_, DsmOp::Write { range, .. }) =
            op_rx.try_recv().expect("an at-cap write is emitted immediately")
        else {
            panic!("expected a write")
        };
        assert_eq!(range.len as usize, WC_MAX_BYTES);
    }

    /// Adjacent stores separated by a sync op must NOT merge: release
    /// consistency pins the first write before the sync point. The wire
    /// order is write / barrier / write even though the byte ranges touch.
    #[test]
    fn sync_op_splits_adjacent_stores() {
        let (mut ctx, op_rx, res_tx) = lone_ctx();
        ctx.write(ObjectId(5), 0, vec![1, 2]);
        res_tx.send(OpResult::Unit).unwrap(); // flushed combined write
        res_tx.send(OpResult::Unit).unwrap(); // the barrier itself
        ctx.barrier(BarrierId(0));
        ctx.write(ObjectId(5), 2, vec![3, 4]); // adjacent to the first
        res_tx.send(OpResult::Unit).unwrap();
        ctx.drain_ops();
        let mut kinds = Vec::new();
        while let Ok(NodeEvent::Op(_, op)) = op_rx.try_recv() {
            kinds.push(match op {
                DsmOp::Write { range, .. } => format!("write[{},{})", range.start, range.len),
                DsmOp::BarrierWait(_) => "barrier".to_string(),
                other => panic!("unexpected op: {other:?}"),
            });
        }
        assert_eq!(kinds, ["write[0,2)", "barrier", "write[2,2)"]);
    }

    /// A drain that parks on in-flight ops sees watchdog poisoning — the
    /// explicit-drain analogue of the blocked-token-waiter regression.
    #[test]
    fn blocked_drain_sees_poison() {
        let (mut ctx, _op_rx, _res_tx) = lone_ctx();
        ctx.op_async(DsmOp::AtomicFetchAdd { obj: ObjectId(0), offset: 0, delta: 1 });
        ctx.shared.poisoned.store(true, Ordering::Release);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ctx.drain_ops();
        }))
        .expect_err("drain must panic on a poisoned run");
        let msg = crate::serve::panic_message(err);
        assert!(
            msg.contains("real-time kernel stalled while thread was blocked in 'drain'"),
            "unexpected panic: {msg}"
        );
    }

    /// Fail closed: an errored op whose token was never redeemed must not
    /// survive a drain (= sync point) silently.
    #[test]
    fn unredeemed_errored_token_fails_the_next_drain() {
        let (mut ctx, _op_rx, res_tx) = lone_ctx();
        let _token = ctx.op_async(DsmOp::AtomicFetchAdd { obj: ObjectId(0), offset: 0, delta: 1 });
        res_tx.send(OpResult::Err(munin_types::DsmError::UnknownObject(ObjectId(0)))).unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ctx.drain_ops();
        }))
        .expect_err("an errored claimed op must fail the drain");
        let msg = crate::serve::panic_message(err);
        assert!(
            msg.contains("asynchronous 'fetch-add' failed before a sync point"),
            "unexpected panic: {msg}"
        );
    }

    /// The in-flight window cap makes the (cap+1)-th async issue wait for
    /// the oldest completion instead of queueing without bound.
    #[test]
    fn inflight_window_caps_at_max_inflight() {
        let (mut ctx, op_rx, res_tx) = lone_ctx();
        ctx.tuning.max_inflight = 2;
        ctx.tuning.write_combine = false;
        let t1 = ctx.op_async(DsmOp::AtomicFetchAdd { obj: ObjectId(0), offset: 0, delta: 1 });
        let _t2 = ctx.op_async(DsmOp::AtomicFetchAdd { obj: ObjectId(0), offset: 0, delta: 1 });
        assert_eq!(ctx.pending.len(), 2);
        res_tx.send(OpResult::Value(10)).unwrap();
        let t3 = ctx.op_async(DsmOp::AtomicFetchAdd { obj: ObjectId(0), offset: 0, delta: 1 });
        assert_eq!(ctx.pending.len(), 2, "issue retired the oldest op to make room");
        // t1 completed out from under the window; its token redeems from
        // the claimable set without touching the channel.
        assert_eq!(ctx.token_wait(t1), 10);
        res_tx.send(OpResult::Value(11)).unwrap();
        res_tx.send(OpResult::Value(12)).unwrap();
        assert_eq!(ctx.token_wait(t3), 12);
        drop(op_rx);
    }
}

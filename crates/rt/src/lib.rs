//! # munin-rt
//!
//! The **real-time parallel kernel** for the Munin and Ivy protocol
//! servers — the counterpart of the deterministic virtual-time simulator in
//! `munin-sim`.
//!
//! ## Why a second kernel
//!
//! The simulator rendezvouses every application thread with one event loop:
//! exactly one thread runs at a time, every latency is modelled, and a run
//! is a deterministic function of (program, configuration, seed). That is
//! the right instrument for reproducing the paper's *claims* (message
//! counts, bytes, stall structure) — and the wrong one for its *promise*:
//! that type-specific coherence lets DSM programs perform almost as well as
//! hand-coded message passing. Performance on real hardware needs real
//! concurrency. This kernel provides it:
//!
//! * **one OS thread per node server** — each node's coherence server
//!   ([`munin_sim::Server`]) runs its own event loop over a per-node inbox
//!   channel; protocol handling stays single-threaded *per node* (exactly
//!   the concurrency model the servers were written for) while different
//!   nodes genuinely run in parallel;
//! * **truly parallel application threads** — app threads run free and
//!   block on fault completion (a channel recv), not on a rendezvous with
//!   a global scheduler;
//! * **per-pair FIFO transport** — each kernel owns its own sender clone
//!   per destination, so the per-(src,dst) FIFO ordering the protocols
//!   assume carries over from the simulated transport;
//! * **a batched message pipeline** — server loops drain their inbox in
//!   bounded batches (one blocking `recv` plus `try_recv`s up to
//!   [`RtTuning::batch_max`], one watchdog activity bump per batch), and
//!   every protocol message a server sends while handling one batch is
//!   coalesced into a single channel message per destination
//!   (`NodeEvent::Batch`, flushed through `KernelApi::flush_outbound`
//!   before the loop blocks again). A K-item flush or eager fan-out costs
//!   the fabric one send and one receiver wake-up per destination instead
//!   of one per item; multicast payloads are shared behind an `Arc` rather
//!   than deep-cloned per destination. Batching never reorders a
//!   (src,dst) pair — batch items are delivered in send order — and
//!   `RtTuning::unbatched()` restores the one-message-per-send fabric for
//!   A/B measurement (`benches/traffic_rt.rs`);
//! * **a wall-clock timer thread** replacing virtual-time timers (Ivy's
//!   spin backoff and barrier sense polling work unmodified);
//! * **a stall watchdog** replacing quiescence-based deadlock detection:
//!   when every live thread is blocked in an operation and no kernel
//!   activity happens for a configurable window (and no timer is pending),
//!   the run is declared stalled, every server's
//!   [`munin_sim::Server::debug_stuck_state`] is captured into the report,
//!   and blocked threads are torn down so the process never hangs.
//!
//! The protocol crates (`munin-core`, `munin-ivy`) are **unchanged**: they
//! talk to whichever kernel hosts them through the [`munin_sim::KernelApi`]
//! seam, and [`RtKernel`] implements it with channels, atomics and a shared
//! declaration registry instead of an event queue.
//!
//! ## Time, cost, and `compute`
//!
//! On this kernel `KernelApi::now` is wall-clock microseconds since run
//! start, completion costs are ignored (real latency is measured, not
//! modelled), and the [`RunReport`](munin_sim::RunReport) gains a
//! [`WallClock`](munin_sim::report::WallClock) section plus real-microsecond
//! wait tables. Application `compute(us)` calls — the apps' model of local
//! computation — are executed by the *calling thread* according to
//! [`ComputeMode`]: the default `Sleep` performs a timed wait of `us`
//! microseconds, which overlaps across workers even on a single host core,
//! so measured speedup tracks the runtime's ability to overlap modelled
//! compute with coherence traffic; `Spin` burns the CPU for cycle-accurate
//! single-machine realism; `Skip` drops compute entirely for pure protocol
//! stress.

mod ctx;
pub mod fabric;
mod kernel;
pub mod serve;
pub mod timer;
mod world;

pub use ctx::RtCtx;
pub use fabric::{MsgBody, NodeEvent, Shared};
pub use kernel::RtKernel;
pub use serve::{drive_app_thread, request_dump, server_loop, NodeKernel};
pub use world::{ComputeMode, RtTuning, RtWorldBuilder, SpinWait};

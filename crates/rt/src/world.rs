//! Building and running a real-time world: one server thread per node,
//! free-running application threads, a timer thread and a stall watchdog.

use crate::ctx::RtCtx;
use crate::fabric::{NodeEvent, Shared};
use crate::kernel::RtKernel;
use crate::serve::{drive_app_thread, server_loop};
use crate::timer::run_timer_thread;
use munin_sim::report::{RunReport, WaitTable, WallClock};
use munin_sim::Server;
use munin_types::{CostModel, NodeId, ObjectDecl, ObjectId, Telemetry, ThreadId, VirtualTime};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;
use std::time::Instant;

/// What an application `compute(us)` call does on the real-time kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComputeMode {
    /// Timed wait of `us` microseconds (default). Waits overlap across
    /// workers even when the host has fewer cores than workers, so measured
    /// speedup isolates the runtime's overlap/overhead behaviour from host
    /// core count.
    Sleep,
    /// Busy-spin for `us` microseconds: occupies a core, for CPU-bound
    /// realism on hosts with enough cores.
    Spin,
    /// Drop modelled compute entirely (pure protocol stress).
    Skip,
}

/// Tuning knobs of the real-time kernel. Everything has a sensible default;
/// the stall timeout can also be overridden with `MUNIN_RT_STALL_MS` (handy
/// for tests that *want* fast stall detection).
#[derive(Debug, Clone)]
pub struct RtTuning {
    pub compute: ComputeMode,
    /// Multiplier applied to every modelled compute duration.
    pub compute_scale: f64,
    /// How long all live threads must sit blocked, with zero kernel
    /// activity and no pending timer, before the run is declared stalled.
    pub stall_timeout: Duration,
    /// Watchdog sampling period.
    pub watchdog_poll: Duration,
    /// Most inbox events one server wake-up drains (and processes under a
    /// single activity-epoch bump) before flushing its outbound batches and
    /// re-checking the channel. `1` reproduces the one-event-per-wake-up
    /// fabric; larger values amortize channel and wake-up overhead under
    /// heavy traffic.
    pub batch_max: usize,
    /// Coalesce the protocol messages a server sends during one step into
    /// one channel message per destination (flush-fan-out batching; see
    /// [`crate::RtKernel`]). Off, every protocol message is its own
    /// channel send.
    pub coalesce: bool,
    /// How a thread waits for an op completion: park immediately, or spin
    /// first in the hope of skipping the futex wake + context switch.
    pub spin_wait: SpinWait,
    /// Most pipelined (async) ops one thread keeps in flight before an
    /// issue blocks on the oldest completion. `1` reproduces the fully
    /// synchronous one-round-trip-per-op fabric.
    pub max_inflight: usize,
    /// Coalesce adjacent/overlapping writes to the same object in the
    /// issuing thread and emit them as one combined (async) write at the
    /// next non-write op. Program order per thread is preserved: any read,
    /// atomic, or sync op flushes the buffer first.
    pub write_combine: bool,
    /// What the run records about itself: `Off` (nothing; hot paths reduce
    /// to one predicted branch), `Counters` (latency histograms + per-object
    /// access counters; the default), or `Spans` (counters plus causal
    /// per-op timestamp spans). See [`munin_obs`].
    pub telemetry: Telemetry,
}

/// How a blocked application thread waits on its resume channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpinWait {
    /// Park on the channel immediately (the pre-PR-7 behaviour).
    Off,
    /// Spin for a fixed budget of microseconds before parking.
    Fixed { us: u64 },
    /// Spin for twice the EWMA-tracked completion time of this thread's
    /// recent ops, bounded by `cap_us`. Tracks the fast path (in-process
    /// round trips are ~14 µs) without burning a core on slow waits such
    /// as barriers or contended locks. Spinning is disabled entirely when
    /// the host cannot run waiter and server in parallel
    /// (`available_parallelism() < 2`, e.g. a 1-core CI runner).
    Adaptive { cap_us: u64 },
}

impl Default for RtTuning {
    fn default() -> Self {
        let stall_ms = std::env::var("MUNIN_RT_STALL_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(5_000);
        RtTuning {
            compute: ComputeMode::Sleep,
            compute_scale: 1.0,
            stall_timeout: Duration::from_millis(stall_ms),
            watchdog_poll: Duration::from_millis(50),
            batch_max: 128,
            coalesce: true,
            spin_wait: SpinWait::Adaptive { cap_us: 40 },
            max_inflight: 16,
            write_combine: true,
            telemetry: Telemetry::default(),
        }
    }
}

impl RtTuning {
    /// The pre-batching fabric: one inbox event per wake-up, one channel
    /// send per protocol message. The baseline the batching pipeline is
    /// benchmarked against (`benches/traffic_rt.rs`), and a useful A/B for
    /// tests asserting batching changes no observable result.
    pub fn unbatched(mut self) -> Self {
        self.batch_max = 1;
        self.coalesce = false;
        self
    }
}

/// Builder for a real-time world: declare objects, spawn threads, then
/// [`RtWorldBuilder::run`] with one server per node. The shape mirrors
/// [`munin_sim::WorldBuilder`] so the API harness can drive either kernel.
pub struct RtWorldBuilder<P> {
    n_nodes: usize,
    cost: CostModel,
    tuning: RtTuning,
    decls: Vec<ObjectDecl>,
    next_object: u64,
    #[allow(clippy::type_complexity)]
    spawns: Vec<(NodeId, Box<dyn FnOnce(&mut RtCtx<P>) + Send + 'static>)>,
    coverage: Option<Arc<munin_obs::CoverageMap>>,
}

impl<P: munin_net::PayloadInfo + Send + Sync + Clone + 'static> RtWorldBuilder<P> {
    pub fn new(n_nodes: usize) -> Self {
        assert!(n_nodes > 0, "a world needs at least one node");
        assert!(n_nodes <= u16::MAX as usize, "node ids are u16");
        RtWorldBuilder {
            n_nodes,
            cost: CostModel::default(),
            tuning: RtTuning::default(),
            decls: Vec::new(),
            next_object: 0,
            spawns: Vec::new(),
            coverage: None,
        }
    }

    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Attach a protocol-state coverage recorder (campaign explore mode);
    /// servers note transitions into it through `KernelApi::coverage`.
    pub fn coverage(mut self, map: Arc<munin_obs::CoverageMap>) -> Self {
        self.coverage = Some(map);
        self
    }

    /// Cost model handed to the servers (their bookkeeping reads it; the
    /// kernel itself never charges modelled latencies).
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    pub fn tuning(mut self, tuning: RtTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Declare a shared object before the run starts. Returns the assigned
    /// id (dense, in declaration order — same contract as the simulator).
    pub fn declare(&mut self, mut decl: ObjectDecl, home: NodeId) -> ObjectId {
        assert!(home.index() < self.n_nodes, "home {home} out of range");
        let id = ObjectId(self.next_object);
        self.next_object += 1;
        decl.id = id;
        decl.home = home;
        self.decls.push(decl);
        id
    }

    /// Spawn an application thread on `node`. Unlike the simulator there is
    /// no start rendezvous: threads begin running as soon as the world does.
    pub fn spawn(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut RtCtx<P>) + Send + 'static,
    ) -> ThreadId {
        assert!(node.index() < self.n_nodes, "node {node} out of range");
        let id = ThreadId(self.spawns.len() as u32);
        self.spawns.push((node, Box::new(f)));
        id
    }

    /// Run to completion with one server per node (`servers[i]` serves
    /// `NodeId(i)`). Returns a [`RunReport`] whose `wall` section and wait
    /// tables are real (host) microseconds.
    pub fn run<S>(self, servers: Vec<S>) -> RunReport
    where
        S: Server<Payload = P> + 'static,
        S::Payload: Send,
    {
        assert_eq!(servers.len(), self.n_nodes, "need exactly one server per node");
        let n_nodes = self.n_nodes;
        let n_threads = self.spawns.len();
        let mut shared0 = Shared::new(self.decls, n_threads, self.tuning.telemetry);
        shared0.coverage = self.coverage;
        let shared = Arc::new(shared0);

        let mut inbox_txs: Vec<Sender<NodeEvent<P>>> = Vec::with_capacity(n_nodes);
        let mut inbox_rxs: Vec<Receiver<NodeEvent<P>>> = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let (tx, rx) = channel();
            inbox_txs.push(tx);
            inbox_rxs.push(rx);
        }
        let mut resume_txs = Vec::with_capacity(n_threads);
        let mut resume_rxs = Vec::with_capacity(n_threads);
        for _ in 0..n_threads {
            let (tx, rx) = channel();
            resume_txs.push(tx);
            resume_rxs.push(rx);
        }
        let (timer_tx, timer_rx) = channel();

        let timer_join = {
            let inboxes = inbox_txs.clone();
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("rt-timer".into())
                .spawn(move || run_timer_thread(timer_rx, inboxes, shared))
                .expect("failed to spawn timer thread")
        };

        let mut server_joins = Vec::with_capacity(n_nodes);
        for (i, (server, inbox)) in servers.into_iter().zip(inbox_rxs).enumerate() {
            let kernel = RtKernel {
                node: NodeId(i as u16),
                cost: self.cost.clone(),
                inboxes: inbox_txs.clone(),
                resumes: resume_txs.clone(),
                timer_tx: timer_tx.clone(),
                shared: shared.clone(),
                stats: munin_net::NetStats::new(),
                coalesce: self.tuning.coalesce,
                outbox: (0..n_nodes).map(|_| Vec::new()).collect(),
                completions: Vec::new(),
            };
            let batch_max = self.tuning.batch_max;
            server_joins.push(
                std::thread::Builder::new()
                    .name(format!("rt-node-{i}"))
                    .spawn(move || server_loop(server, kernel, inbox, batch_max))
                    .expect("failed to spawn server thread"),
            );
        }

        // The watchdog parks on this channel between polls; dropping the
        // sender wakes it instantly at teardown (a plain sleep would add a
        // full poll interval to every run's wall clock).
        let (watchdog_stop_tx, watchdog_stop_rx) = channel::<()>();
        let watchdog_join = {
            let shared = shared.clone();
            let inboxes = inbox_txs.clone();
            let tuning = self.tuning.clone();
            std::thread::Builder::new()
                .name("rt-watchdog".into())
                .spawn(move || watchdog(shared, inboxes, tuning, watchdog_stop_rx))
                .expect("failed to spawn watchdog thread")
        };

        let mut app_joins = Vec::with_capacity(n_threads);
        for ((idx, (node, body)), resume_rx) in self.spawns.into_iter().enumerate().zip(resume_rxs)
        {
            let tid = ThreadId(idx as u32);
            let ctx = RtCtx::new(
                tid,
                node,
                n_nodes,
                n_threads,
                inbox_txs[node.index()].clone(),
                resume_rx,
                shared.clone(),
                self.tuning.clone(),
            );
            app_joins.push(
                std::thread::Builder::new()
                    .name(format!("rt-{tid}"))
                    .spawn(move || drive_app_thread(ctx, body))
                    .expect("failed to spawn application thread"),
            );
        }

        let thread_waits: Vec<WaitTable> =
            app_joins.into_iter().map(|j| j.join().unwrap_or_default()).collect();

        drop(watchdog_stop_tx);
        let _ = watchdog_join.join();

        for tx in &inbox_txs {
            let _ = tx.send(NodeEvent::Shutdown);
        }
        // Each server thread returns its node's traffic shard; summing them
        // here at teardown is the only place the counters ever meet — the
        // send path never touches a cross-node lock.
        let mut stats = munin_net::NetStats::new();
        for j in server_joins {
            if let Ok(node_stats) = j.join() {
                stats.merge(&node_stats);
            }
        }
        drop(inbox_txs);
        drop(timer_tx);
        let _ = timer_join.join();

        let elapsed = shared.start.elapsed();
        let errors = shared.errors.lock().expect("error log poisoned").clone();
        let metrics = self.tuning.telemetry.enabled().then(|| shared.obs.snapshot(stats.clone()));
        RunReport {
            finished_at: VirtualTime::micros(
                u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
            ),
            stats,
            ops: shared.ops.load(Ordering::Relaxed),
            thread_waits,
            errors,
            deadlocked: shared.is_poisoned(),
            wall: Some(WallClock { elapsed, workers: n_threads, nodes: n_nodes }),
            dumps: shared.take_dumps(),
            metrics,
        }
    }
}

/// The real-time replacement for quiescence-based deadlock detection: a
/// run is stalled when every live application thread is blocked inside a
/// DSM operation, no server has processed an event for `stall_timeout`,
/// and no timer is pending. On stall: report, capture every server's
/// `debug_stuck_state`, then poison the run so blocked threads tear down.
fn watchdog<P: Send + Sync + 'static>(
    shared: Arc<Shared>,
    inboxes: Vec<Sender<NodeEvent<P>>>,
    tuning: RtTuning,
    stop: Receiver<()>,
) {
    let mut last_epoch = shared.activity.load(Ordering::Relaxed);
    let mut stable_since = Instant::now();
    loop {
        match stop.recv_timeout(tuning.watchdog_poll) {
            // The run is over (sender dropped or an explicit stop).
            Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
            Err(RecvTimeoutError::Timeout) => {}
        }
        let epoch = shared.activity.load(Ordering::Relaxed);
        if epoch != last_epoch {
            last_epoch = epoch;
            stable_since = Instant::now();
            continue;
        }
        let live = shared.live.load(Ordering::SeqCst);
        let blocked = shared.blocked.load(Ordering::SeqCst);
        if live == 0 || blocked < live || shared.timers_pending.load(Ordering::Acquire) > 0 {
            stable_since = Instant::now();
            continue;
        }
        if stable_since.elapsed() < tuning.stall_timeout {
            continue;
        }
        shared.error(format!(
            "stall: all {live} live thread(s) blocked in DSM operations with no kernel \
             activity and no pending timer for {:?} — real-time deadlock",
            tuning.stall_timeout
        ));
        for tx in &inboxes {
            let _ = tx.send(NodeEvent::DumpStuck);
        }
        // Give the (idle, hence responsive) servers a beat to dump state
        // before the teardown panics start flying.
        std::thread::sleep(Duration::from_millis(300));
        shared.poisoned.store(true, Ordering::Release);
        return;
    }
}

//! Shared run state: the channels and atomics that stitch node servers,
//! application threads, the timer thread and the watchdog together.

use munin_obs::ObsCollector;
use munin_sim::DsmOp;
use munin_types::{NodeId, ObjectDecl, ObjectId, Telemetry, ThreadId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// A protocol payload travelling through the channel fabric. Unicast sends
/// move the payload; multicast fan-outs share one allocation behind an
/// `Arc` so a K-way fan-out never deep-clones the payload at send time —
/// receivers unwrap it, and only receivers that race with a still-live
/// sibling copy pay a clone (the last consumer never does).
pub enum MsgBody<P> {
    Owned(P),
    Shared(Arc<P>),
}

impl<P: Clone> MsgBody<P> {
    /// Take the payload, cloning only when another destination of the same
    /// multicast still holds the allocation.
    pub fn into_payload(self) -> P {
        match self {
            MsgBody::Owned(p) => p,
            MsgBody::Shared(a) => Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone()),
        }
    }
}

impl<P> MsgBody<P> {
    /// Borrow the payload without consuming the body (serializing fabrics
    /// encode from a reference so a multicast's shared allocation survives
    /// until the last destination is written).
    pub fn payload(&self) -> &P {
        match self {
            MsgBody::Owned(p) => p,
            MsgBody::Shared(a) => a,
        }
    }
}

/// One event in a node server's inbox. The server thread drains these in
/// arrival order; everything a server does happens on its own thread, so
/// server state needs no locking (the same single-writer discipline the
/// simulator enforces).
pub enum NodeEvent<P> {
    /// A local application thread issued a DSM operation.
    Op(ThreadId, DsmOp),
    /// A protocol message from another node's server.
    Msg(NodeId, MsgBody<P>),
    /// Every protocol message one peer server sent here during one of its
    /// server steps, coalesced into a single channel operation (items are
    /// `(src, payload)` in send order, so per-(src,dst) FIFO is exactly the
    /// order of this vector). A K-item flush fan-out costs the fabric one
    /// send and one receiver wake-up instead of K.
    Batch(Vec<(NodeId, MsgBody<P>)>),
    /// A timer armed via `KernelApi::set_timer` came due.
    Timer(u64),
    /// The watchdog wants `debug_stuck_state` captured into the error log.
    DumpStuck,
    /// Someone wants `debug_stuck_state` delivered to them instead of the
    /// error log — the on-demand (SIGUSR1 / wire-requested) dump path. The
    /// server loop replies on the channel and the requester decides where
    /// the text goes.
    DumpTo(std::sync::mpsc::Sender<String>),
    /// The run is over; exit the server loop.
    Shutdown,
}

/// State shared (behind an `Arc`) by every thread of one real-time run.
pub struct Shared {
    /// Wall-clock origin of the run.
    pub start: Instant,
    /// Global object-declaration registry — the moral equivalent of the
    /// simulator kernel's registry map, shared because real nodes each run
    /// their own kernel instance. Reads vastly outnumber writes (servers
    /// cache declarations keyed on `registry_version`).
    pub registry: RwLock<HashMap<ObjectId, ObjectDecl>>,
    /// Bumped on every runtime retype; mirrors the simulator's counter.
    pub registry_version: AtomicU64,
    /// Allocator for dynamically registered object ids.
    pub next_object: AtomicU64,
    /// Run errors (panics, stalls, server-reported invariant violations).
    pub errors: Mutex<Vec<String>>,
    /// Bumped every time any server thread processes an inbox event. The
    /// watchdog reads it to distinguish "slow" from "stuck".
    pub activity: AtomicU64,
    /// Application threads currently blocked inside a DSM operation.
    pub blocked: AtomicUsize,
    /// Application threads that have not yet finished their body.
    pub live: AtomicUsize,
    /// Timers armed but not yet *delivered*: incremented by the arming
    /// kernel before the request is even mailed to the timer thread, and
    /// decremented by the timer thread only after the fired `Timer` event
    /// is in the destination inbox. Strictly additive on both sides so the
    /// watchdog can never observe "no pending timer" while a timer request
    /// or a fired event is still in flight (a pending timer means the run
    /// can still make progress on its own).
    pub timers_pending: AtomicUsize,
    /// Set by the watchdog on stall: blocked threads panic out of their
    /// recv loops, server loops exit, the run tears down instead of hanging.
    pub poisoned: AtomicBool,
    /// Total DSM operations issued.
    pub ops: AtomicU64,
    /// `MUNIN_DEBUG_ERRORS` was set: mirror errors and stall dumps to
    /// stderr as they happen.
    pub debug_errors: bool,
    /// The observability collector: per-thread latency histograms, causal
    /// span rings and per-object access counters (all preallocated here;
    /// recording never allocates). Sized by `telemetry` — `Off` keeps no
    /// slots at all.
    pub obs: ObsCollector,
    /// Stuck-state dumps captured by the watchdog (`DumpStuck`) or the
    /// SIGUSR1 path — surfaced as `RunReport::dumps`, mirroring what the
    /// TCP coordinator collects over the wire.
    pub dumps: Mutex<Vec<String>>,
    /// Protocol-state coverage recorder, when the run is instrumented
    /// (campaign explore mode). Servers reach it through
    /// `KernelApi::coverage`; `None` costs one branch per note site.
    pub coverage: Option<Arc<munin_obs::CoverageMap>>,
}

impl Shared {
    pub fn new(decls: Vec<ObjectDecl>, n_threads: usize, telemetry: Telemetry) -> Self {
        let next_object = decls.iter().map(|d| d.id.0 + 1).max().unwrap_or(0);
        Shared {
            start: Instant::now(),
            registry: RwLock::new(decls.into_iter().map(|d| (d.id, d)).collect()),
            registry_version: AtomicU64::new(0),
            next_object: AtomicU64::new(next_object),
            errors: Mutex::new(Vec::new()),
            activity: AtomicU64::new(0),
            blocked: AtomicUsize::new(0),
            live: AtomicUsize::new(n_threads),
            timers_pending: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
            ops: AtomicU64::new(0),
            debug_errors: std::env::var_os("MUNIN_DEBUG_ERRORS").is_some(),
            obs: ObsCollector::new(telemetry, n_threads),
            dumps: Mutex::new(Vec::new()),
            coverage: None,
        }
    }

    /// Record a captured stuck-state dump (watchdog or on-demand).
    pub fn dump(&self, text: String) {
        self.dumps.lock().unwrap_or_else(|p| p.into_inner()).push(text);
    }

    /// Take the dumps collected so far (teardown).
    pub fn take_dumps(&self) -> Vec<String> {
        std::mem::take(&mut *self.dumps.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Microseconds of wall clock since the run started.
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    pub fn error(&self, msg: String) {
        if self.debug_errors {
            eprintln!("[rt kernel error] {msg}");
        }
        self.errors.lock().expect("error log poisoned").push(msg);
    }

    pub fn mark_activity(&self) {
        self.activity.fetch_add(1, Ordering::Relaxed);
    }

    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }
}

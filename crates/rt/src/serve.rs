//! The node-server event loop, shared by every wall-clock fabric.
//!
//! PR 3 wrote this loop for the in-process channel fabric; the TCP fabric
//! (`munin-tcp`) hosts exactly the same loop in a different process, with a
//! kernel whose remote deliveries are socket writes instead of channel
//! sends. [`NodeKernel`] is the small extra contract the loop needs beyond
//! [`KernelApi`]: local thread resumption, access to the run-wide shared
//! state, and the traffic shard the loop returns at exit.

use crate::fabric::{NodeEvent, Shared};
use munin_net::PayloadInfo;
use munin_sim::{KernelApi, OpOutcome, OpResult, Server};
use munin_types::{NodeId, ThreadId};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::Duration;

/// What a wall-clock fabric's kernel provides to the shared server loop, on
/// top of the protocol-facing [`KernelApi`]. Implemented by the in-process
/// [`crate::RtKernel`] and by `munin-tcp`'s socket kernel.
pub trait NodeKernel<P: PayloadInfo + Clone>: KernelApi<P> {
    /// The node this kernel serves.
    fn node_id(&self) -> NodeId;

    /// Run-wide shared state (activity epochs, poisoning, error log).
    fn shared(&self) -> &Arc<Shared>;

    /// Resume a blocked application thread whose op completed locally
    /// without going through [`KernelApi::complete`]'s bookkeeping.
    fn resume(&mut self, thread: ThreadId, result: OpResult);

    /// Threads whose *blocked* op the protocol completed (via
    /// [`KernelApi::complete`]) since the last call. The server loop's op
    /// gate uses this to dispatch those threads' queued pipelined ops; the
    /// synchronous Done path never lands here (the loop sees it inline).
    fn take_completions(&mut self) -> Vec<ThreadId>;

    /// This node's traffic counters, taken when the loop exits (the world
    /// merges every node's shard into the run totals).
    fn take_stats(&mut self) -> munin_net::NetStats;
}

/// The per-thread op gate: the protocol servers were written for at most
/// one outstanding op per thread (their pending structures are keyed by
/// thread), so pipelining is a *fabric* property — clients may have K ops
/// in flight, but the loop feeds the server a thread's ops strictly one at
/// a time, queueing the rest here. Completions are per-thread FIFO by
/// construction, which is what lets the client match results to tokens with
/// a plain sequence counter.
#[derive(Default)]
struct OpGate {
    /// Ops waiting behind the thread's in-flight op, oldest first.
    queued: Vec<std::collections::VecDeque<munin_sim::DsmOp>>,
    /// Thread has an op inside the server that hasn't completed yet.
    busy: Vec<bool>,
}

impl OpGate {
    fn ensure(&mut self, t: ThreadId) {
        let i = t.index();
        if i >= self.busy.len() {
            self.busy.resize(i + 1, false);
            self.queued.resize_with(i + 1, Default::default);
        }
    }

    fn is_busy(&mut self, t: ThreadId) -> bool {
        self.ensure(t);
        self.busy[t.index()]
    }

    fn enqueue(&mut self, t: ThreadId, op: munin_sim::DsmOp) {
        self.ensure(t);
        self.queued[t.index()].push_back(op);
    }

    /// Mark `t`'s blocked op done and hand back its next queued op, if any.
    fn unblock(&mut self, t: ThreadId) -> Option<munin_sim::DsmOp> {
        self.ensure(t);
        self.busy[t.index()] = false;
        self.queued[t.index()].pop_front()
    }
}

/// Run one application thread's body to completion: catch panics, issue the
/// implicit `Exit` synchronization, decrement the live count, and return the
/// thread's wait table. Shared by the in-process rt world and the tcp
/// coordinator (which hosts every application thread of a distributed run).
pub fn drive_app_thread<P: Send + Sync + Clone + 'static>(
    mut ctx: crate::RtCtx<P>,
    body: Box<dyn FnOnce(&mut crate::RtCtx<P>) + Send>,
) -> munin_sim::report::WaitTable {
    use munin_sim::DsmOp;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let shared = ctx.shared.clone();
    let tid = ctx.thread;
    match catch_unwind(AssertUnwindSafe(|| body(&mut ctx))) {
        Ok(()) => {
            // Graceful exit is itself a synchronization point (flushes the
            // delayed update queue). A panic here means the watchdog tore
            // the run down mid-exit; it already reported.
            let _ = catch_unwind(AssertUnwindSafe(|| ctx.op(DsmOp::Exit)));
        }
        Err(p) => {
            let msg = panic_message(p);
            // Teardown panics raised by RtCtx::op after poisoning are a
            // consequence of the stall, not an application bug — the
            // watchdog already reported the cause.
            if !msg.starts_with("real-time kernel") {
                shared.error(format!("{tid} panicked: {msg}"));
            }
        }
    }
    shared.live.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
    ctx.waits
}

pub(crate) fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    p.downcast_ref::<String>()
        .cloned()
        .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Ask a server loop for its `debug_stuck_state` through its inbox,
/// bounded by `timeout` so a wedged (or gone) server cannot hang the
/// requester. Used by the tcp fabric's on-demand/stall dump paths on both
/// ends of the wire.
pub fn request_dump<P>(inbox: &std::sync::mpsc::Sender<NodeEvent<P>>, timeout: Duration) -> String {
    let (tx, rx) = std::sync::mpsc::channel();
    if inbox.send(NodeEvent::DumpTo(tx)).is_err() {
        return "(server loop gone)".into();
    }
    rx.recv_timeout(timeout).unwrap_or_else(|_| "(server loop unresponsive)".into())
}

/// One node's event loop: drain the inbox in bounded batches, hand
/// everything to the server. Single-threaded per node by construction —
/// the concurrency model the protocol servers were written for.
///
/// Each wake-up takes one blocking `recv` then greedily `try_recv`s up to
/// `batch_max` events in total, under a single activity-epoch bump; the
/// step ends by flushing the kernel's coalesced outbound batches (so
/// nothing this step sent can be stranded while the loop blocks again).
/// Returns this node's traffic shard for the world to merge at teardown.
pub fn server_loop<S, K>(
    mut server: S,
    mut kernel: K,
    inbox: Receiver<NodeEvent<S::Payload>>,
    batch_max: usize,
) -> munin_net::NetStats
where
    S: Server,
    K: NodeKernel<S::Payload>,
{
    let shared = kernel.shared().clone();
    let node = kernel.node_id();
    let batch_max = batch_max.max(1);
    let mut gate = OpGate::default();
    let mut done = false;

    // Feed one thread's op to the server, then keep feeding that thread's
    // queue while ops complete synchronously; a Blocked outcome closes the
    // thread's gate until the protocol calls `complete`.
    fn dispatch<S: Server, K: NodeKernel<S::Payload>>(
        server: &mut S,
        kernel: &mut K,
        gate: &mut OpGate,
        thread: ThreadId,
        first: munin_sim::DsmOp,
    ) {
        let mut next = Some(first);
        while let Some(op) = next {
            // Gate dispatch *is* the protocol server's handle instant: the
            // span's dispatch timestamp and its server half open here. The
            // matching `srv_finish` happens inside the kernel's resume /
            // complete paths (whichever ends this op).
            kernel.shared().obs.srv_dispatch(thread);
            match server.on_op(kernel, thread, op) {
                OpOutcome::Done { result, cost_us: _ } => {
                    kernel.resume(thread, result);
                    gate.ensure(thread);
                    next = gate.queued[thread.index()].pop_front();
                }
                OpOutcome::Blocked => {
                    gate.ensure(thread);
                    gate.busy[thread.index()] = true;
                    next = None;
                }
            }
        }
    }
    while !done {
        let first = match inbox.recv_timeout(Duration::from_millis(50)) {
            Ok(ev) => ev,
            Err(RecvTimeoutError::Timeout) => {
                // An idle poll is *not* activity — bumping the epoch here
                // would reset the watchdog's stability window every 50 ms
                // and stop it from ever firing on a genuinely stalled run.
                if shared.is_poisoned() {
                    break;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => break,
        };
        // One epoch bump covers the whole drained batch: the watchdog only
        // needs to know the server made progress, not how much.
        shared.mark_activity();
        let mut next = Some(first);
        let mut handled = 0usize;
        while let Some(ev) = next {
            handled += 1;
            match ev {
                NodeEvent::Op(thread, op) => {
                    if gate.is_busy(thread) {
                        gate.enqueue(thread, op);
                    } else {
                        dispatch(&mut server, &mut kernel, &mut gate, thread, op);
                    }
                }
                NodeEvent::Msg(from, body) => {
                    if shared.obs.spans() {
                        if let Some(t) = body.payload().span_home_thread() {
                            shared.obs.srv_home(t);
                        }
                    }
                    server.on_message(&mut kernel, from, body.into_payload());
                }
                NodeEvent::Batch(items) => {
                    // One channel op from one peer step; per-(src,dst) FIFO
                    // is the vector order.
                    for (from, body) in items {
                        if shared.obs.spans() {
                            if let Some(t) = body.payload().span_home_thread() {
                                shared.obs.srv_home(t);
                            }
                        }
                        server.on_message(&mut kernel, from, body.into_payload());
                    }
                }
                NodeEvent::Timer(token) => server.on_timer(&mut kernel, token),
                NodeEvent::DumpStuck => {
                    let dump = server.debug_stuck_state();
                    if !dump.is_empty() {
                        let msg = format!("[stall dump n{}] {dump}", node.index());
                        if shared.debug_errors {
                            eprintln!("{msg}");
                        }
                        // Captured state is both an error-log diagnostic and
                        // a `RunReport::dumps` entry — the rt fabric used to
                        // fill only the error log, leaving `dumps` a
                        // tcp-only field.
                        shared.dump(msg.clone());
                        shared.errors.lock().expect("error log poisoned").push(msg);
                    }
                }
                NodeEvent::DumpTo(reply) => {
                    // On-demand diagnostics: the caller decides where the
                    // text goes (stderr, the report's dump section, a wire
                    // reply), so nothing lands in the error log here.
                    let _ = reply.send(server.debug_stuck_state());
                }
                NodeEvent::Shutdown => {
                    done = true;
                    break;
                }
            }
            // Settle: any event (a Done op, a protocol message, a timer)
            // can complete other threads' blocked ops; reopen their gates
            // and dispatch what queued behind them — repeatedly, since a
            // dispatched op can itself complete further threads.
            loop {
                let completed = kernel.take_completions();
                if completed.is_empty() {
                    break;
                }
                for t in completed {
                    if let Some(op) = gate.unblock(t) {
                        dispatch(&mut server, &mut kernel, &mut gate, t, op);
                    }
                }
            }
            next = if handled < batch_max { inbox.try_recv().ok() } else { None };
        }
        // Everything the server sent while handling this batch goes out as
        // one channel message per destination, before the loop can block.
        kernel.flush_outbound();
    }
    kernel.take_stats()
}

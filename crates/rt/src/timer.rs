//! The wall-clock timer thread: the real-time replacement for the
//! simulator's virtual-time timer events.
//!
//! Servers arm timers through `KernelApi::set_timer`; the kernel converts
//! the relative delay into a deadline and mails it here. The thread keeps a
//! min-heap of deadlines and delivers `NodeEvent::Timer(token)` to the
//! owning node's inbox when each comes due. It exits when every
//! `TimerReq` sender (one per node kernel plus the builder's) is gone.

use crate::fabric::{NodeEvent, Shared};
use munin_types::NodeId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A timer armed by a server.
pub(crate) struct TimerReq {
    pub due: Instant,
    pub node: NodeId,
    pub token: u64,
}

/// Heap entry ordered by deadline (earliest first via `Reverse`), with an
/// arming sequence number as tie-break so equal deadlines fire in order.
type Entry = Reverse<(Instant, u64, u16, u64)>;

pub(crate) fn run_timer_thread<P: Send + 'static>(
    rx: Receiver<TimerReq>,
    inboxes: Vec<Sender<NodeEvent<P>>>,
    shared: Arc<Shared>,
) {
    let pending = &shared.timers_pending;
    let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
    let mut seq: u64 = 0;
    loop {
        // Fire everything due, then wait for the next deadline or request.
        let now = Instant::now();
        while let Some(&Reverse((due, _, node, token))) = heap.peek() {
            if due > now {
                break;
            }
            heap.pop();
            pending.store(heap.len(), Ordering::Release);
            // Ignore send errors: the node shut down during teardown.
            let _ = inboxes[node as usize].send(NodeEvent::Timer(token));
        }
        let wait = match heap.peek() {
            Some(&Reverse((due, ..))) => due.saturating_duration_since(now),
            // Idle: park until a request arrives (bounded so disconnect is
            // noticed promptly even on quiet runs).
            None => Duration::from_millis(100),
        };
        match rx.recv_timeout(wait) {
            Ok(req) => {
                seq += 1;
                heap.push(Reverse((req.due, seq, req.node.0, req.token)));
                pending.store(heap.len(), Ordering::Release);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // All kernels gone: deliver nothing further and exit.
                pending.store(0, Ordering::Release);
                return;
            }
        }
    }
}

//! The wall-clock timer thread: the real-time replacement for the
//! simulator's virtual-time timer events.
//!
//! Servers arm timers through `KernelApi::set_timer`; the kernel converts
//! the relative delay into a deadline, bumps `timers_pending`, and mails it
//! here. The thread keeps a min-heap of deadlines and delivers
//! `NodeEvent::Timer(token)` to the owning node's inbox when each comes
//! due. It exits when every `TimerReq` sender (one per node kernel plus the
//! builder's) is gone.
//!
//! Two invariants matter for the stall watchdog:
//!
//! * **`timers_pending` is decremented only after delivery.** The watchdog
//!   treats "a timer is pending" as proof the run can still make progress,
//!   so the event must be in the destination inbox before the counter
//!   drops — decrementing first opens a window where a due-but-undelivered
//!   timer looks like a genuine stall.
//! * **Firing counts as activity.** The epoch bump on fire restarts the
//!   watchdog's stability window, giving the destination server a full
//!   stall timeout to drain the event it was just handed.

use crate::fabric::{NodeEvent, Shared};
use munin_types::NodeId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Instant;

/// A timer armed by a server.
pub struct TimerReq {
    pub due: Instant,
    pub node: NodeId,
    pub token: u64,
}

/// Heap entry ordered by deadline (earliest first via `Reverse`), with an
/// arming sequence number as tie-break so equal deadlines fire in order.
type Entry = Reverse<(Instant, u64, u16, u64)>;

pub fn run_timer_thread<P: Send + Sync + 'static>(
    rx: Receiver<TimerReq>,
    inboxes: Vec<Sender<NodeEvent<P>>>,
    shared: Arc<Shared>,
) {
    let pending = &shared.timers_pending;
    let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
    let mut seq: u64 = 0;
    loop {
        // Fire everything due, then wait for the next deadline or request.
        let now = Instant::now();
        while let Some(&Reverse((due, _, node, token))) = heap.peek() {
            if due > now {
                break;
            }
            heap.pop();
            // Deliver, then mark activity, then decrement — in that order.
            // Ignore send errors: the node shut down during teardown.
            let _ = inboxes[node as usize].send(NodeEvent::Timer(token));
            shared.mark_activity();
            pending.fetch_sub(1, Ordering::Release);
        }
        let req = match heap.peek() {
            // A deadline is pending: sleep at most until it is due.
            Some(&Reverse((due, ..))) => {
                match rx.recv_timeout(due.saturating_duration_since(now)) {
                    Ok(req) => Some(req),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            // Idle: block until a request arrives. No periodic wake-up is
            // needed — a blocking `recv` returns `Err(Disconnected)` the
            // moment the last sender is dropped, so teardown is noticed
            // immediately without burning a wake-up every 100 ms for the
            // whole run.
            None => match rx.recv() {
                Ok(req) => Some(req),
                Err(_) => break,
            },
        };
        if let Some(req) = req {
            seq += 1;
            heap.push(Reverse((req.due, seq, req.node.0, req.token)));
        }
    }
    // All kernels gone: the timers still in the heap (and their pending
    // counts, which the arming kernels added) will never be delivered.
    pending.fetch_sub(heap.len(), Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;
    use std::sync::mpsc::channel;
    use std::time::Duration;

    // The payload type is irrelevant to the timer thread; any Send type do.
    type Ev = NodeEvent<u8>;

    fn harness() -> (Sender<TimerReq>, Receiver<Ev>, Arc<Shared>, std::thread::JoinHandle<()>) {
        let (timer_tx, timer_rx) = channel();
        let (inbox_tx, inbox_rx) = channel::<Ev>();
        let shared = Arc::new(Shared::new(Vec::new(), 0, munin_types::Telemetry::Off));
        let s = shared.clone();
        let j = std::thread::spawn(move || run_timer_thread(timer_rx, vec![inbox_tx], s));
        (timer_tx, inbox_rx, shared, j)
    }

    /// Arm a timer the way `RtKernel::set_timer` does: bump the pending
    /// count *before* mailing the request.
    fn arm(tx: &Sender<TimerReq>, shared: &Shared, delay: Duration, token: u64) {
        shared.timers_pending.fetch_add(1, Ordering::Release);
        tx.send(TimerReq { due: Instant::now() + delay, node: NodeId(0), token })
            .expect("timer thread alive");
    }

    fn expect_timer(ev: Ev) -> u64 {
        match ev {
            NodeEvent::Timer(tok) => tok,
            _ => panic!("unexpected non-timer event"),
        }
    }

    /// Regression for the timer-in-flight watchdog race: from the moment
    /// `timers_pending` drops to zero, the fired event must already be in
    /// the destination inbox (the old code decremented before sending,
    /// leaving a window where the watchdog saw "no pending timer" while the
    /// event was still undelivered). Repeats to give a regressed ordering
    /// many chances to expose the gap.
    #[test]
    fn pending_never_drops_before_the_event_is_delivered() {
        let (tx, inbox, shared, join) = harness();
        for round in 0..200u64 {
            arm(&tx, &shared, Duration::from_micros(50), round);
            // Spin until the timer thread claims nothing is pending …
            while shared.timers_pending.load(Ordering::Acquire) != 0 {
                std::hint::spin_loop();
            }
            // … at which point the event must be receivable *now*.
            let ev = inbox.try_recv().unwrap_or_else(|_| {
                panic!("round {round}: pending hit 0 with the Timer event still undelivered")
            });
            assert_eq!(expect_timer(ev), round);
        }
        drop(tx);
        join.join().unwrap();
    }

    /// Firing a timer must bump the activity epoch so the watchdog's
    /// stability window restarts while the event sits in the inbox.
    #[test]
    fn firing_counts_as_kernel_activity() {
        let (tx, inbox, shared, join) = harness();
        let before = shared.activity.load(Ordering::Relaxed);
        arm(&tx, &shared, Duration::from_micros(10), 7);
        assert_eq!(expect_timer(inbox.recv_timeout(Duration::from_secs(5)).unwrap()), 7);
        // The fire sequence is send → mark_activity → decrement, so the
        // epoch bump is guaranteed visible once the pending count drops.
        while shared.timers_pending.load(Ordering::Acquire) != 0 {
            std::hint::spin_loop();
        }
        assert!(
            shared.activity.load(Ordering::Relaxed) > before,
            "timer fire did not bump the activity epoch"
        );
        drop(tx);
        join.join().unwrap();
    }

    /// Equal-deadline timers fire in arming order; later deadlines fire
    /// after earlier ones even when armed first.
    #[test]
    fn timers_fire_in_deadline_then_arming_order() {
        let (tx, inbox, shared, join) = harness();
        let due = Instant::now() + Duration::from_millis(20);
        shared.timers_pending.fetch_add(3, Ordering::Release);
        tx.send(TimerReq { due: due + Duration::from_millis(10), node: NodeId(0), token: 3 })
            .unwrap();
        tx.send(TimerReq { due, node: NodeId(0), token: 1 }).unwrap();
        tx.send(TimerReq { due, node: NodeId(0), token: 2 }).unwrap();
        let mut got = Vec::new();
        for _ in 0..3 {
            got.push(expect_timer(inbox.recv_timeout(Duration::from_secs(5)).unwrap()));
        }
        assert_eq!(got, vec![1, 2, 3]);
        drop(tx);
        join.join().unwrap();
    }

    /// With an empty heap the thread blocks in `recv` (no 100 ms polling)
    /// and still exits promptly when the last sender drops; armed-but-
    /// undeliverable timers left in the heap are drained from the pending
    /// count on exit.
    #[test]
    fn idle_thread_exits_on_disconnect_and_drains_pending() {
        let (tx, inbox, shared, join) = harness();
        // Never fires: deadline far in the future.
        arm(&tx, &shared, Duration::from_secs(3600), 9);
        assert_eq!(shared.timers_pending.load(Ordering::Acquire), 1);
        drop(tx);
        join.join().unwrap();
        assert_eq!(
            shared.timers_pending.load(Ordering::Acquire),
            0,
            "undelivered heap entries must not leave the pending count stuck"
        );
        assert!(inbox.try_recv().is_err(), "nothing should have fired");
    }
}

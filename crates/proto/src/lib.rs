//! # munin-proto
//!
//! The protocol seam. Two things live here, and together they make a
//! coherence protocol a *plug-in* rather than a hand-enumerated special
//! case in every fabric:
//!
//! * [`wire`] — the first-party binary codec ([`Wire`]) plus
//!   implementations for every shared vocabulary type that crosses a
//!   process boundary (ids, declarations, configs, operations, statistics).
//!   Protocol crates implement [`Wire`] for their own message and config
//!   types with the exported [`wire_struct!`]/[`wire_enum!`] macros.
//! * [`protocol`] — the [`Protocol`] trait bundling a protocol's message
//!   type, config, server constructor and wire tag, so the harness, the
//!   real-time fabric, the TCP fabric, the campaign harness and the bench
//!   drivers are all generic over protocols. Adding a protocol means
//!   implementing this trait in one crate and registering it once in
//!   `munin-api`; no fabric changes.
//!
//! This crate sits *below* the protocol crates (`munin-core`, `munin-ivy`,
//! `munin-tardis`) and the fabrics (`munin-rt`, `munin-tcp`): it depends
//! only on the shared vocabulary (`munin-types`, `munin-net`, `munin-mem`,
//! `munin-obs`) and the kernel seam (`munin-sim`). Rust's orphan rules then
//! put each protocol's `Wire` impls in the protocol's own crate, which is
//! exactly where they belong.

pub mod protocol;
pub mod wire;

pub use protocol::Protocol;
pub use wire::{Wire, WireError, WireResult};

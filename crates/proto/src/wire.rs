//! The first-party wire codec.
//!
//! The workspace's `serde` is an offline stub whose derives expand to
//! nothing (`vendor/README.md`), so the socket fabric brings its own
//! serializer: a little-endian, length-delimited binary format with manual
//! `Wire` implementations for every type that crosses a process boundary —
//! application operations (`DsmOp`/`OpResult`), the registry's
//! `ObjectDecl`s, run configuration, and traffic statistics. Protocol
//! payloads (`MuninMsg`, `IvyMsg`, `TardisMsg`) implement [`Wire`] in their
//! own crates via the exported [`wire_struct!`]/[`wire_enum!`] macros.
//!
//! ## Format
//!
//! * integers: fixed-width little-endian; `usize` travels as `u64`
//! * `bool`: one byte, `0`/`1` (anything else is a decode error)
//! * `String` / `Vec<u8>`: `u32` byte length + raw bytes
//! * `Vec<T>` / `BTreeMap<K, V>`: `u32` element count + elements
//! * `Option<T>`: presence byte + payload
//! * enums: one tag byte + the variant's fields in declaration order
//!
//! Every decode validates lengths against the remaining input before
//! allocating, so a truncated or corrupt frame produces a [`WireError`]
//! naming what failed — never a panic or an attacker-sized allocation.
//! Round-trip identity (`decode(encode(x)) == x`) for every message variant
//! is property-tested in `munin-tcp`'s `tests/wire.rs`.

use munin_mem::{Diff, PageId};
use munin_net::{KindStat, MsgClass, NetStats};
use munin_obs::{CovRow, SrvSpan};
use munin_sim::{DsmOp, OpResult};
use munin_types::{
    AllocPolicy, BarrierDecl, BarrierId, ByteRange, CondDecl, CondId, CostModel, DsmError,
    IvyConfig, LockDecl, LockId, MuninConfig, NodeId, ObjectDecl, ObjectId, ReadMostlyMode,
    SharingType, SyncDecls, SyncStrategy, TardisConfig, Telemetry, ThreadId, UpdatePolicy,
};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// A decode failure: truncated input, a bad tag, or a structural invariant
/// violation (e.g. out-of-order diff runs). Encoding never fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

pub type WireResult<T> = Result<T, WireError>;

/// Binary serialization for one type. `put` appends the encoding to `out`;
/// `take` consumes the encoding from the front of `inp`.
pub trait Wire: Sized {
    fn put(&self, out: &mut Vec<u8>);
    fn take(inp: &mut &[u8]) -> WireResult<Self>;

    /// Encode into a fresh buffer (convenience for tests and one-shot
    /// frames; the transport reuses scratch buffers instead).
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.put(&mut out);
        out
    }

    /// Decode a complete buffer, requiring it to be fully consumed.
    fn decode(mut inp: &[u8]) -> WireResult<Self> {
        let v = Self::take(&mut inp)?;
        if !inp.is_empty() {
            return Err(WireError(format!("{} trailing bytes after value", inp.len())));
        }
        Ok(v)
    }
}

/// Consume and return the next `n` bytes, or fail without allocating.
pub fn need<'a>(inp: &mut &'a [u8], n: usize) -> WireResult<&'a [u8]> {
    if inp.len() < n {
        return Err(WireError(format!("truncated: needed {n} bytes, had {}", inp.len())));
    }
    let (head, tail) = inp.split_at(n);
    *inp = tail;
    Ok(head)
}

pub fn put_u8(v: u8, out: &mut Vec<u8>) {
    out.push(v);
}

pub fn take_u8(inp: &mut &[u8]) -> WireResult<u8> {
    Ok(need(inp, 1)?[0])
}

/// Decode a `u32` element count, sanity-checked against the remaining input
/// (every element encodes to at least one byte, so a count larger than the
/// remaining byte count is corrupt — reject it before allocating).
pub fn take_count(inp: &mut &[u8]) -> WireResult<usize> {
    let n = u32::take(inp)? as usize;
    if n > inp.len() {
        return Err(WireError(format!("count {n} exceeds remaining {} bytes", inp.len())));
    }
    Ok(n)
}

macro_rules! wire_int {
    ($($ty:ty),+) => {$(
        impl Wire for $ty {
            fn put(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn take(inp: &mut &[u8]) -> WireResult<Self> {
                let b = need(inp, std::mem::size_of::<$ty>())?;
                Ok(<$ty>::from_le_bytes(b.try_into().expect("sized slice")))
            }
        }
    )+};
}

wire_int!(u16, u32, u64, i64);

/// A one-byte protocol tag (see [`crate::Protocol::TAG`]). A newtype
/// rather than a `Wire` impl for bare `u8`: that blanket impl would
/// collide with the specialized bulk `Vec<u8>` codec that keeps data
/// payloads fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtoTag(pub u8);

impl Wire for ProtoTag {
    fn put(&self, out: &mut Vec<u8>) {
        put_u8(self.0, out);
    }
    fn take(inp: &mut &[u8]) -> WireResult<Self> {
        Ok(ProtoTag(take_u8(inp)?))
    }
}

impl Wire for usize {
    fn put(&self, out: &mut Vec<u8>) {
        (*self as u64).put(out);
    }
    fn take(inp: &mut &[u8]) -> WireResult<Self> {
        usize::try_from(u64::take(inp)?).map_err(|_| WireError("usize overflow".into()))
    }
}

impl Wire for f64 {
    fn put(&self, out: &mut Vec<u8>) {
        self.to_bits().put(out);
    }
    fn take(inp: &mut &[u8]) -> WireResult<Self> {
        Ok(f64::from_bits(u64::take(inp)?))
    }
}

impl Wire for bool {
    fn put(&self, out: &mut Vec<u8>) {
        put_u8(u8::from(*self), out);
    }
    fn take(inp: &mut &[u8]) -> WireResult<Self> {
        match take_u8(inp)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError(format!("bad bool byte {b}"))),
        }
    }
}

impl Wire for Vec<u8> {
    fn put(&self, out: &mut Vec<u8>) {
        u32::try_from(self.len()).expect("byte payloads fit u32").put(out);
        out.extend_from_slice(self);
    }
    fn take(inp: &mut &[u8]) -> WireResult<Self> {
        let n = u32::take(inp)? as usize;
        Ok(need(inp, n)?.to_vec())
    }
}

impl Wire for String {
    fn put(&self, out: &mut Vec<u8>) {
        u32::try_from(self.len()).expect("strings fit u32").put(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn take(inp: &mut &[u8]) -> WireResult<Self> {
        let n = u32::take(inp)? as usize;
        String::from_utf8(need(inp, n)?.to_vec())
            .map_err(|e| WireError(format!("invalid utf-8 string: {e}")))
    }
}

/// `&'static str` fields (diagnostic details inside [`DsmError`]) decode
/// through a global intern table: the distinct detail strings are a small
/// fixed set compiled into the binaries, so the leak per *new* string is
/// bounded by that set's size, not by traffic volume.
impl Wire for &'static str {
    fn put(&self, out: &mut Vec<u8>) {
        u32::try_from(self.len()).expect("strings fit u32").put(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn take(inp: &mut &[u8]) -> WireResult<Self> {
        Ok(intern(String::take(inp)?))
    }
}

fn intern(s: String) -> &'static str {
    use std::collections::HashSet;
    use std::sync::Mutex;
    static TABLE: Mutex<Option<HashSet<&'static str>>> = Mutex::new(None);
    let mut guard = TABLE.lock().expect("intern table poisoned");
    let table = guard.get_or_insert_with(HashSet::new);
    if let Some(hit) = table.get(s.as_str()) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.into_boxed_str());
    table.insert(leaked);
    leaked
}

impl<T: Wire> Wire for Vec<T> {
    fn put(&self, out: &mut Vec<u8>) {
        u32::try_from(self.len()).expect("vec lengths fit u32").put(out);
        for item in self {
            item.put(out);
        }
    }
    fn take(inp: &mut &[u8]) -> WireResult<Self> {
        let n = take_count(inp)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(T::take(inp)?);
        }
        Ok(v)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            None => put_u8(0, out),
            Some(v) => {
                put_u8(1, out);
                v.put(out);
            }
        }
    }
    fn take(inp: &mut &[u8]) -> WireResult<Self> {
        match take_u8(inp)? {
            0 => Ok(None),
            1 => Ok(Some(T::take(inp)?)),
            b => Err(WireError(format!("bad option byte {b}"))),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn put(&self, out: &mut Vec<u8>) {
        self.0.put(out);
        self.1.put(out);
    }
    fn take(inp: &mut &[u8]) -> WireResult<Self> {
        let a = A::take(inp)?;
        let b = B::take(inp)?;
        Ok((a, b))
    }
}

impl<K: Wire + Ord, V: Wire> Wire for BTreeMap<K, V> {
    fn put(&self, out: &mut Vec<u8>) {
        u32::try_from(self.len()).expect("map lengths fit u32").put(out);
        for (k, v) in self {
            k.put(out);
            v.put(out);
        }
    }
    fn take(inp: &mut &[u8]) -> WireResult<Self> {
        let n = take_count(inp)?;
        let mut m = BTreeMap::new();
        for _ in 0..n {
            let k = K::take(inp)?;
            let v = V::take(inp)?;
            m.insert(k, v);
        }
        Ok(m)
    }
}

impl<T: Wire> Wire for Arc<T> {
    fn put(&self, out: &mut Vec<u8>) {
        (**self).put(out);
    }
    fn take(inp: &mut &[u8]) -> WireResult<Self> {
        Ok(Arc::new(T::take(inp)?))
    }
}

impl Wire for Duration {
    fn put(&self, out: &mut Vec<u8>) {
        self.as_secs().put(out);
        self.subsec_nanos().put(out);
    }
    fn take(inp: &mut &[u8]) -> WireResult<Self> {
        let secs = u64::take(inp)?;
        let nanos = u32::take(inp)?;
        if nanos >= 1_000_000_000 {
            return Err(WireError(format!("bad duration nanos {nanos}")));
        }
        Ok(Duration::new(secs, nanos))
    }
}

macro_rules! wire_newtype {
    ($($ty:ident),+) => {$(
        impl Wire for $ty {
            fn put(&self, out: &mut Vec<u8>) {
                self.0.put(out);
            }
            fn take(inp: &mut &[u8]) -> WireResult<Self> {
                Ok($ty(Wire::take(inp)?))
            }
        }
    )+};
}

wire_newtype!(NodeId, ThreadId, ObjectId, LockId, BarrierId, CondId, PageId);

/// Implement [`Wire`] for a struct by encoding its fields in declaration
/// order. Exported so protocol crates and the TCP fabric can use it for
/// their own frame and message types.
#[macro_export]
macro_rules! wire_struct {
    ($ty:ident { $($f:ident),+ $(,)? }) => {
        impl $crate::wire::Wire for $ty {
            fn put(&self, out: &mut Vec<u8>) {
                $( $crate::wire::Wire::put(&self.$f, out); )+
            }
            fn take(inp: &mut &[u8]) -> $crate::wire::WireResult<Self> {
                $( let $f = $crate::wire::Wire::take(inp)?; )+
                Ok($ty { $($f),+ })
            }
        }
    };
}

/// Implement [`Wire`] for an enum: one tag byte, then the variant's fields
/// in declaration order. Supports struct variants (`{ fields }`) and tuple
/// variants (`( bindings )`). An unknown tag is a decode error, never a
/// panic.
#[macro_export]
macro_rules! wire_enum {
    ($ty:ident { $( $tag:literal => $V:ident $( { $($f:ident),+ } )? $( ( $($b:ident),+ ) )? ),+ $(,)? }) => {
        impl $crate::wire::Wire for $ty {
            fn put(&self, out: &mut Vec<u8>) {
                match self {
                    $( $ty::$V $( { $($f),+ } )? $( ( $($b),+ ) )? => {
                        $crate::wire::put_u8($tag, out);
                        $( $( $crate::wire::Wire::put($f, out); )+ )?
                        $( $( $crate::wire::Wire::put($b, out); )+ )?
                    } )+
                }
            }
            fn take(inp: &mut &[u8]) -> $crate::wire::WireResult<Self> {
                match $crate::wire::take_u8(inp)? {
                    $( $tag => Ok($ty::$V
                        $( { $($f: $crate::wire::Wire::take(inp)?),+ } )?
                        $( ( $( { stringify!($b); $crate::wire::Wire::take(inp)? } ),+ ) )?
                    ), )+
                    t => Err($crate::wire::WireError(format!(
                        "bad {} tag {t}", stringify!($ty)
                    ))),
                }
            }
        }
    };
}

// ---- shared value types --------------------------------------------------

wire_struct!(ByteRange { start, len });

wire_enum!(SharingType {
    0 => WriteOnce,
    1 => WriteMany,
    2 => Result,
    3 => Migratory,
    4 => ProducerConsumer,
    5 => Private,
    6 => ReadMostly,
    7 => GeneralReadWrite,
    8 => Synchronization,
});

wire_struct!(ObjectDecl { id, name, size, sharing, home, associated_lock, eager });

wire_enum!(DsmError {
    0 => UnknownObject(obj),
    1 => OutOfBounds { obj, range, size },
    2 => SharingViolation { obj, sharing, detail },
    3 => NotLockHolder { lock, thread },
    4 => BarrierMisuse { expected, got },
    5 => Livelock(what),
    6 => Internal(msg),
});

impl Wire for Diff {
    fn put(&self, out: &mut Vec<u8>) {
        u32::try_from(self.run_count()).expect("run counts fit u32").put(out);
        for (range, bytes) in self.runs() {
            range.start.put(out);
            u32::try_from(bytes.len()).expect("run lengths fit u32").put(out);
            out.extend_from_slice(bytes);
        }
    }
    fn take(inp: &mut &[u8]) -> WireResult<Self> {
        let n = take_count(inp)?;
        let mut d = Diff::default();
        for _ in 0..n {
            let start = u32::take(inp)?;
            let len = u32::take(inp)? as usize;
            let bytes = need(inp, len)?;
            if !d.append_run(start, bytes) {
                return Err(WireError(format!(
                    "diff run at {start} (+{len}) violates run-table order"
                )));
            }
        }
        Ok(d)
    }
}

// ---- application operations ----------------------------------------------

wire_enum!(DsmOp {
    0 => Alloc(decl),
    1 => Read { obj, range },
    2 => Write { obj, range, data },
    3 => AtomicFetchAdd { obj, offset, delta },
    4 => Lock(lock),
    5 => Unlock(lock),
    6 => BarrierWait(barrier),
    7 => CondWait { cond, lock },
    8 => CondSignal { cond, broadcast },
    9 => Flush,
    10 => Phase(n),
    11 => Compute(us),
    12 => Exit,
});

wire_enum!(OpResult {
    0 => Unit,
    1 => Bytes(data),
    2 => Value(v),
    3 => Object(obj),
    4 => Err(err),
});

// ---- statistics -----------------------------------------------------------

wire_enum!(MsgClass {
    0 => Data,
    1 => Control,
    2 => Update,
    3 => Sync,
    4 => Ack,
});

wire_struct!(KindStat { count, bytes });

wire_struct!(NetStats {
    messages,
    bytes,
    by_class,
    by_kind,
    multicasts,
    multicast_saved,
    dropped,
    retransmissions,
    gave_up,
});

// ---- telemetry -------------------------------------------------------------

wire_enum!(Telemetry {
    0 => Off,
    1 => Counters,
    2 => Spans,
});

wire_struct!(SrvSpan { seq, fwd_us, dispatch_us, reply_us });

// Coverage rows ship home from child node processes in `Done` frames.
wire_struct!(CovRow { proto, object, state, event, count });

// ---- run configuration ----------------------------------------------------

wire_struct!(CostModel {
    msg_fixed_us,
    msg_per_kib_us,
    local_access_us,
    fault_overhead_us,
    local_lock_us,
    flush_per_object_us,
    hardware_multicast,
});

wire_enum!(ReadMostlyMode {
    0 => RemoteAccess,
    1 => ReplicatedRefresh,
    2 => ReplicatedInvalidate,
    3 => Adaptive,
});

wire_enum!(UpdatePolicy {
    0 => Refresh,
    1 => Invalidate,
    2 => Adaptive,
});

wire_enum!(SyncStrategy {
    0 => ProxyLocks,
    1 => CentralServer,
    2 => DsmSpin,
});

wire_enum!(AllocPolicy {
    0 => Packed,
    1 => PageAligned,
});

wire_struct!(MuninConfig {
    cost,
    duq_max_objects,
    delayed_updates,
    read_mostly,
    write_many_policy,
    pc_policy,
    write_once_page,
    sync,
    adaptive_typing,
    adapt_min_samples,
    adapt_read_fraction,
    chaos_skip_updates,
});

wire_struct!(IvyConfig {
    cost,
    page_size,
    alloc,
    sync,
    spin_backoff_us,
    spin_attempt_limit,
    barrier_poll_limit,
});

wire_struct!(TardisConfig { cost, lease, decay_us, chaos_skip_wts });

wire_struct!(LockDecl { id, home });
wire_struct!(BarrierDecl { id, home, count });
wire_struct!(CondDecl { id, home });
wire_struct!(SyncDecls { locks, barriers, conds });

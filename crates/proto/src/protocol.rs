//! The [`Protocol`] trait: everything a fabric needs to host a coherence
//! protocol, bundled behind one generic parameter.
//!
//! A backend is the product of a *protocol* (Munin's type-specific
//! coherence, the Ivy page baseline, Tardis timestamp leases) and a
//! *fabric* (the virtual-time simulator, the real-time kernel, the
//! multi-process TCP mesh). Before this seam existed each fabric hardcoded
//! every protocol: server construction in `match` arms, the wire codec
//! enumerating message enums, the harness enumerating `Backend` variants.
//! Now a fabric is written once against `Pr: Protocol` and a new protocol
//! is one crate implementing this trait plus one registration line in
//! `munin-api`.

use crate::wire::Wire;
use munin_net::PayloadInfo;
use munin_sim::Server;
use munin_types::{CostModel, NodeId, ObjectDecl, SyncDecls};

/// One coherence protocol, as seen by the fabrics.
///
/// The associated types carry every bound a fabric needs: the message type
/// is a [`PayloadInfo`] (so the obs layer can classify and account traffic
/// without protocol knowledge) and [`Wire`] (so the TCP fabric can frame
/// it); the config is [`Wire`] too, so child node processes receive it
/// opaquely — the fabric ships `(Protocol::TAG, config bytes)` and never
/// looks inside.
pub trait Protocol: 'static {
    /// Wire tag identifying this protocol in `StartConfig` frames. Must be
    /// unique across the registered protocols (asserted at registry build).
    const TAG: u8;

    /// Canonical lower-case protocol name (`"munin"`, `"ivy"`, `"tardis"`).
    const NAME: &'static str;

    /// Backend names per fabric, in `[sim, rt, tcp]` order — e.g.
    /// `["tardis", "tardis-rt", "tardis-tcp"]`. Kept on the trait so the
    /// harness's name/parse tables cannot drift from the protocol crate.
    const BACKEND_NAMES: [&'static str; 3];

    /// Run configuration (knobs + cost model).
    type Config: Clone + Send + Sync + Wire + std::fmt::Debug + 'static;

    /// Inter-server protocol message.
    type Msg: PayloadInfo + Wire + Clone + Send + Sync + std::fmt::Debug + 'static;

    /// The per-node protocol server.
    type Server: Server<Payload = Self::Msg> + 'static;

    /// Build the server for one node. Every node must receive identical
    /// `decls` (sorted by id) and `sync` declarations so protocols that
    /// precompute layout (Ivy's address space) agree without communication;
    /// protocols that resolve declarations through the kernel registry at
    /// run time are free to ignore them.
    fn server(
        cfg: &Self::Config,
        node: NodeId,
        n_nodes: usize,
        decls: &[ObjectDecl],
        sync: &SyncDecls,
    ) -> Self::Server;

    /// The cost model inside this protocol's config (fabrics need it to
    /// charge virtual time / account message costs uniformly).
    fn cost(cfg: &Self::Config) -> &CostModel;
}

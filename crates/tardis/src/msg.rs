//! The Tardis inter-server protocol messages.
//!
//! Note what is *absent*: there is no invalidation, no copyset refresh, no
//! ownership transfer. Every message is a point-to-point request to an
//! object's home (or a lock/barrier home) or its reply; the only multicast
//! in the protocol is the barrier release. Coherence travels as
//! timestamps, not as fan-out.

use munin_net::{MsgClass, PayloadInfo};
use munin_proto::wire_enum;
use munin_types::{BarrierId, ByteRange, LockId, ObjectId, ThreadId};

/// Protocol messages exchanged between Tardis servers.
#[derive(Debug, Clone, PartialEq)]
pub enum TardisMsg {
    // ---- data protocol ---------------------------------------------------
    /// Requester → home: fetch a leased copy. `pts` is the reader's program
    /// timestamp; the home extends the object's lease past it.
    ReadReq { obj: ObjectId, thread: ThreadId, pts: u64 },
    /// Home → requester: the bytes plus the copy's validity interval
    /// `[wts, rts]`.
    ReadReply { thread: ThreadId, obj: ObjectId, data: Vec<u8>, wts: u64, rts: u64 },
    /// Requester → home: the reader still holds a copy at `have_wts` but its
    /// lease expired; extend it. The home answers [`TardisMsg::RenewAck`]
    /// (no payload) when the copy is still current, or a full
    /// [`TardisMsg::ReadReply`] when it was overwritten — this is the
    /// lease-renewal traffic the benches weigh against invalidation
    /// fan-out.
    RenewReq { obj: ObjectId, thread: ThreadId, pts: u64, have_wts: u64 },
    /// Home → requester: lease extended, your copy is still version `wts`.
    RenewAck { thread: ThreadId, obj: ObjectId, wts: u64, rts: u64 },
    /// Requester → home: write-through of `data` at `range`. The home jumps
    /// the object's write timestamp past every granted lease — no
    /// invalidation is sent to anyone.
    WriteReq { obj: ObjectId, range: ByteRange, data: Vec<u8>, thread: ThreadId, pts: u64 },
    /// Home → writer: applied at timestamp `wts`.
    WriteAck { thread: ThreadId, wts: u64 },
    /// Requester → home: atomic fetch-and-add at the authoritative copy.
    AtomicReq { obj: ObjectId, offset: u32, delta: i64, thread: ThreadId, pts: u64 },
    /// Home → requester: previous value, stamped like a write.
    AtomicReply { thread: ThreadId, old: i64, wts: u64 },

    // ---- timestamped synchronization --------------------------------------
    /// Node → lock home: `thread` wants the lock; `pts` is its timestamp.
    LockReq { lock: LockId, thread: ThreadId, pts: u64 },
    /// Lock home → acquirer's node: granted; `ts` is the lock's release
    /// timestamp — folding it into the acquirer's clock is what makes
    /// post-acquire reads outrun every lease granted before the critical
    /// section's writes.
    LockGrant { thread: ThreadId, ts: u64 },
    /// Holder's node → lock home: released at timestamp `pts`.
    Unlock { lock: LockId, pts: u64 },
    /// Node → barrier home: `threads` local arrivals, clock at `pts`.
    BarrierArrive { barrier: BarrierId, threads: u32, pts: u64 },
    /// Barrier home → participants: released; every waiter lifts its clock
    /// to `pts` (the max arrival timestamp).
    BarrierRelease { barrier: BarrierId, pts: u64 },
}

impl PayloadInfo for TardisMsg {
    fn class(&self) -> MsgClass {
        use TardisMsg::*;
        match self {
            ReadReply { .. } => MsgClass::Data,
            WriteReq { .. } => MsgClass::Update,
            RenewAck { .. } | WriteAck { .. } => MsgClass::Ack,
            ReadReq { .. } | RenewReq { .. } => MsgClass::Control,
            AtomicReq { .. }
            | AtomicReply { .. }
            | LockReq { .. }
            | LockGrant { .. }
            | Unlock { .. }
            | BarrierArrive { .. }
            | BarrierRelease { .. } => MsgClass::Sync,
        }
    }

    fn kind(&self) -> &'static str {
        use TardisMsg::*;
        match self {
            ReadReq { .. } => "ReadReq",
            ReadReply { .. } => "ReadReply",
            RenewReq { .. } => "RenewReq",
            RenewAck { .. } => "RenewAck",
            WriteReq { .. } => "WriteReq",
            WriteAck { .. } => "WriteAck",
            AtomicReq { .. } => "AtomicReq",
            AtomicReply { .. } => "AtomicReply",
            LockReq { .. } => "LockReq",
            LockGrant { .. } => "LockGrant",
            Unlock { .. } => "Unlock",
            BarrierArrive { .. } => "BarrierArrive",
            BarrierRelease { .. } => "BarrierRelease",
        }
    }

    fn span_home_thread(&self) -> Option<ThreadId> {
        // Every Tardis request is a home-side RPC on behalf of exactly one
        // blocked thread, so all of them anchor that thread's home span.
        use TardisMsg::*;
        match self {
            ReadReq { thread, .. }
            | RenewReq { thread, .. }
            | WriteReq { thread, .. }
            | AtomicReq { thread, .. }
            | LockReq { thread, .. } => Some(*thread),
            _ => None,
        }
    }

    fn wire_bytes(&self) -> usize {
        use TardisMsg::*;
        match self {
            ReadReply { data, .. } | WriteReq { data, .. } => data.len(),
            ReadReq { .. }
            | RenewReq { .. }
            | RenewAck { .. }
            | WriteAck { .. }
            | AtomicReq { .. }
            | AtomicReply { .. }
            | LockReq { .. }
            | LockGrant { .. }
            | Unlock { .. }
            | BarrierArrive { .. }
            | BarrierRelease { .. } => 0,
        }
    }
}

wire_enum!(TardisMsg {
    0 => ReadReq { obj, thread, pts },
    1 => ReadReply { thread, obj, data, wts, rts },
    2 => RenewReq { obj, thread, pts, have_wts },
    3 => RenewAck { thread, obj, wts, rts },
    4 => WriteReq { obj, range, data, thread, pts },
    5 => WriteAck { thread, wts },
    6 => AtomicReq { obj, offset, delta, thread, pts },
    7 => AtomicReply { thread, old, wts },
    8 => LockReq { lock, thread, pts },
    9 => LockGrant { thread, ts },
    10 => Unlock { lock, pts },
    11 => BarrierArrive { barrier, threads, pts },
    12 => BarrierRelease { barrier, pts },
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_messages_charge_for_payload() {
        let m = TardisMsg::ReadReply {
            thread: ThreadId(1),
            obj: ObjectId(2),
            data: vec![0; 512],
            wts: 3,
            rts: 67,
        };
        assert_eq!(m.wire_bytes(), 512);
        assert_eq!(m.class(), MsgClass::Data);
        assert_eq!(m.kind(), "ReadReply");
    }

    #[test]
    fn no_variant_is_an_invalidation() {
        // The zero-invalidation property starts here: the vocabulary has no
        // Inval kind at all, so `NetStats::by_kind` can never grow one.
        let kinds = [
            "ReadReq",
            "ReadReply",
            "RenewReq",
            "RenewAck",
            "WriteReq",
            "WriteAck",
            "AtomicReq",
            "AtomicReply",
            "LockReq",
            "LockGrant",
            "Unlock",
            "BarrierArrive",
            "BarrierRelease",
        ];
        assert!(kinds.iter().all(|k| !k.contains("Inval")));
    }

    #[test]
    fn requests_anchor_their_threads_home_span() {
        let t = ThreadId(9);
        let m = TardisMsg::ReadReq { obj: ObjectId(0), thread: t, pts: 5 };
        assert_eq!(m.span_home_thread(), Some(t));
        let r = TardisMsg::BarrierRelease { barrier: BarrierId(0), pts: 5 };
        assert_eq!(r.span_home_thread(), None);
    }

    #[test]
    fn roundtrip_via_proto_wire() {
        use munin_proto::Wire;
        let m = TardisMsg::WriteReq {
            obj: ObjectId(7),
            range: ByteRange::new(8, 4),
            data: vec![1, 2, 3, 4],
            thread: ThreadId(3),
            pts: 41,
        };
        assert_eq!(TardisMsg::decode(&m.encode()).unwrap(), m);
    }
}

//! # munin-tardis
//!
//! Timestamp-based coherence (Tardis, Yu & Devadas; see PAPERS.md) as the
//! third plug-in protocol behind the [`munin_sim::Server`] /
//! [`munin_sim::KernelApi`] seams.
//!
//! Where Munin picks a mechanism per sharing annotation and Ivy invalidates
//! every copy before a write proceeds, Tardis orders accesses in *logical*
//! time and never sends an invalidation at all:
//!
//! * every node keeps a program timestamp `pts`; every object's home keeps
//!   a write timestamp `wts` and a read-lease timestamp `rts` — O(1)
//!   directory state, no copyset;
//! * a **read** is valid locally while `pts <= rts` of the cached copy; a
//!   miss (or an expired lease) fetches/renews from the home, which extends
//!   `rts = max(rts, reader_pts + lease)`;
//! * a **write** goes to the home and jumps the object past every granted
//!   lease: `wts' = max(wts, rts, writer_pts) + 1`. Readers elsewhere keep
//!   using their leased copies — *reading in the past* is the paper's
//!   trick — and refetch only once their own `pts` outruns the lease;
//! * synchronization carries timestamps: a lock grant lifts the acquirer's
//!   `pts` to the lock's release timestamp and a barrier release lifts
//!   every participant to the max arrival timestamp, which is exactly
//!   release consistency — post-acquire reads see everything written
//!   before the release because their `pts` now exceeds every stale lease;
//! * a timer-driven **decay sweep** (riding the fabrics' existing timer
//!   plumbing) evicts cached copies whose lease the local clock has
//!   outrun, bounding memory without any protocol traffic.
//!
//! The payoff measured in the benches: read-heavy workloads send *zero*
//! invalidation multicasts (`NetStats::by_kind` has no `Inval` rows) at
//! the price of lease renewals, and reads stay serviceable under a network
//! partition for as long as their leases run.

pub mod msg;
pub mod server;

pub use msg::TardisMsg;
pub use server::TardisServer;

use munin_proto::Protocol;
use munin_types::{CostModel, NodeId, ObjectDecl, SyncDecls, TardisConfig};

/// The Tardis protocol plug-in.
pub struct TardisProto;

impl Protocol for TardisProto {
    const TAG: u8 = 2;
    const NAME: &'static str = "tardis";
    const BACKEND_NAMES: [&'static str; 3] = ["Tardis", "TardisRt", "TardisTcp"];
    type Config = TardisConfig;
    type Msg = TardisMsg;
    type Server = TardisServer;

    fn server(
        cfg: &Self::Config,
        node: NodeId,
        _n_nodes: usize,
        _decls: &[ObjectDecl],
        sync: &SyncDecls,
    ) -> Self::Server {
        TardisServer::new(node, cfg.clone(), sync)
    }

    fn cost(cfg: &Self::Config) -> &CostModel {
        &cfg.cost
    }
}

//! The Tardis per-node server: timestamp-lease coherence behind the same
//! [`munin_sim::Server`] seam as the Munin runtime and the Ivy baseline.
//!
//! Per-node state is one logical clock (`pts`) plus two maps:
//!
//! * **home side** — for every object homed here, the authoritative bytes
//!   and two timestamps, `wts` (version) and `rts` (lease horizon). That is
//!   the entire directory: no copyset, no owner chain, no transactions.
//! * **requester side** — leased copies of remote objects, each valid while
//!   the node's `pts` stays within the copy's `[wts, rts]` window, and one
//!   parked op per blocked thread (the fabrics keep threads
//!   single-outstanding).
//!
//! Writes never notify readers. The home stamps each write at
//! `max(wts, rts, writer_pts) + 1` — strictly past every lease it ever
//! granted — so a reader that synchronizes with the writer (lock grant,
//! barrier release, atomic reply: all carry timestamps) finds its own
//! clock beyond its copy's lease and refetches. A reader that has *not*
//! synchronized keeps reading its leased copy: it is reading in the
//! logical past, which is exactly what release consistency permits.

use crate::msg::TardisMsg;
use munin_sim::{DsmOp, KernelApi, OpOutcome, OpResult, Server};
use munin_types::{
    BarrierId, ByteRange, DsmError, LockId, NodeId, ObjectId, SyncDecls, TardisConfig, ThreadId,
};
use std::collections::{HashMap, VecDeque};

/// Timer token for the lease-decay sweep (Tardis arms no other timers).
const SWEEP_TOKEN: u64 = u64::MAX;

/// Note a protocol-state transition into the run's coverage map, if one is
/// attached (campaign explore mode). One predicted branch when off.
#[inline]
fn cover(
    k: &dyn KernelApi<TardisMsg>,
    object: &'static str,
    state: &'static str,
    event: &'static str,
) {
    if let Some(c) = k.coverage() {
        c.note(munin_sim::Transition::new("tardis", object, state, event));
    }
}

/// Authoritative per-object state at its home node.
#[derive(Debug)]
struct HomeObj {
    data: Vec<u8>,
    /// Timestamp of the latest write.
    wts: u64,
    /// Horizon of the furthest read lease ever granted.
    rts: u64,
}

/// A leased copy of a remote-homed object.
#[derive(Debug)]
struct CachedCopy {
    data: Vec<u8>,
    wts: u64,
    rts: u64,
}

/// What a blocked thread is waiting for (requester side). The op payloads
/// exist for `debug_stuck_state`, which prints the map via `Debug`.
#[derive(Debug)]
#[allow(dead_code)]
enum PendingTardisOp {
    /// A read awaiting `ReadReply`/`RenewAck`; the fetched copy is
    /// installed whole and `range` is served from it.
    Read { obj: ObjectId, range: ByteRange },
    /// A write-through awaiting `WriteAck`.
    Write { obj: ObjectId },
    /// An atomic awaiting `AtomicReply`.
    Atomic { obj: ObjectId },
    /// A lock acquisition awaiting `LockGrant`.
    Lock { lock: LockId },
}

/// Home-side state of one lock.
#[derive(Debug, Default)]
struct LockState {
    held: bool,
    /// Release timestamp: the max clock of every releaser (and granted
    /// acquirer) so far.
    ts: u64,
    queue: VecDeque<(NodeId, ThreadId, u64)>,
}

/// Home-side state of one barrier.
#[derive(Debug, Default)]
struct BarrierState {
    arrived: u32,
    /// Max arrival timestamp of the current episode.
    ts: u64,
    nodes: Vec<NodeId>,
}

/// The Tardis server for one node.
pub struct TardisServer {
    node: NodeId,
    cfg: TardisConfig,
    /// This node's logical program timestamp.
    pts: u64,
    home: HashMap<ObjectId, HomeObj>,
    cache: HashMap<ObjectId, CachedCopy>,
    pending: HashMap<ThreadId, PendingTardisOp>,
    /// Declaration cache (home node + size), invalidated by registry
    /// version like the other protocols' caches.
    meta: HashMap<ObjectId, (NodeId, u32)>,
    meta_version: u64,
    lock_home: HashMap<LockId, NodeId>,
    barrier_home: HashMap<BarrierId, NodeId>,
    barrier_count: HashMap<BarrierId, u32>,
    locks: HashMap<LockId, LockState>,
    barriers: HashMap<BarrierId, BarrierState>,
    /// Requester-side threads parked at a barrier.
    barrier_parked: HashMap<BarrierId, Vec<ThreadId>>,
    sweep_armed: bool,
    sweep_activity: bool,
    /// Home-side write applications seen so far; drives `chaos_skip_wts`.
    chaos_writes: u64,
}

impl TardisServer {
    pub fn new(node: NodeId, cfg: TardisConfig, sync: &SyncDecls) -> Self {
        let mut lock_home = HashMap::new();
        for l in &sync.locks {
            lock_home.insert(l.id, l.home);
        }
        let mut barrier_home = HashMap::new();
        let mut barrier_count = HashMap::new();
        for b in &sync.barriers {
            barrier_home.insert(b.id, b.home);
            barrier_count.insert(b.id, b.count);
        }
        TardisServer {
            node,
            cfg,
            pts: 0,
            home: HashMap::new(),
            cache: HashMap::new(),
            pending: HashMap::new(),
            meta: HashMap::new(),
            meta_version: 0,
            lock_home,
            barrier_home,
            barrier_count,
            locks: HashMap::new(),
            barriers: HashMap::new(),
            barrier_parked: HashMap::new(),
            sweep_armed: false,
            sweep_activity: false,
            chaos_writes: 0,
        }
    }

    fn route(&mut self, k: &mut dyn KernelApi<TardisMsg>, dst: NodeId, msg: TardisMsg) {
        if dst == self.node {
            self.handle_msg(k, self.node, msg);
        } else {
            k.send(self.node, dst, msg);
        }
    }

    /// Home node and size of `obj`, through the version-checked decl cache.
    fn meta(&mut self, k: &dyn KernelApi<TardisMsg>, obj: ObjectId) -> Option<(NodeId, u32)> {
        let v = k.registry_version();
        if v != self.meta_version {
            self.meta.clear();
            self.meta_version = v;
        }
        if let Some(m) = self.meta.get(&obj) {
            return Some(*m);
        }
        let d = k.decl(obj)?;
        self.meta.insert(obj, (d.home, d.size));
        Some((d.home, d.size))
    }

    /// Materialize the home state of an object homed here (zero-filled on
    /// first touch, like every other protocol's lazy home copy).
    fn ensure_home(&mut self, k: &dyn KernelApi<TardisMsg>, obj: ObjectId) -> Option<&mut HomeObj> {
        if let std::collections::hash_map::Entry::Vacant(e) = self.home.entry(obj) {
            let size = k.decl(obj)?.size as usize;
            e.insert(HomeObj { data: vec![0; size.max(1)], wts: 0, rts: 0 });
        }
        self.home.get_mut(&obj)
    }

    fn bounds_err(obj: ObjectId, range: ByteRange, size: u32) -> OpOutcome {
        OpOutcome::fail(DsmError::OutOfBounds { obj, range, size })
    }

    fn in_bounds(range: ByteRange, size: u32) -> bool {
        range.start as u64 + range.len as u64 <= size as u64
    }

    /// Mark cache activity and make sure the decay sweep is armed.
    fn touch_cache(&mut self, k: &mut dyn KernelApi<TardisMsg>) {
        if self.cfg.decay_us == 0 {
            return;
        }
        if self.sweep_armed {
            self.sweep_activity = true;
        } else {
            self.sweep_armed = true;
            self.sweep_activity = false;
            k.set_timer(self.node, self.cfg.decay_us, SWEEP_TOKEN);
        }
    }

    // ==================================================================
    // Home side: data protocol
    // ==================================================================

    /// Grant/extend a read lease and return `(data, wts, rts)`.
    fn home_grant_lease(
        &mut self,
        k: &mut dyn KernelApi<TardisMsg>,
        obj: ObjectId,
        reader_pts: u64,
    ) -> Option<(u64, u64)> {
        let lease = self.cfg.lease;
        let h = self.ensure_home(k, obj)?;
        h.rts = h.rts.max(reader_pts + lease).max(h.wts);
        let granted = (h.wts, h.rts);
        cover(k, "object", "home", "lease-grant");
        Some(granted)
    }

    fn handle_read_req(
        &mut self,
        k: &mut dyn KernelApi<TardisMsg>,
        from: NodeId,
        obj: ObjectId,
        thread: ThreadId,
        pts: u64,
    ) {
        let Some((wts, rts)) = self.home_grant_lease(k, obj, pts) else {
            k.error(format!("ReadReq for unknown object {obj}"));
            return;
        };
        let data = self.home[&obj].data.clone();
        self.route(k, from, TardisMsg::ReadReply { thread, obj, data, wts, rts });
    }

    fn handle_renew_req(
        &mut self,
        k: &mut dyn KernelApi<TardisMsg>,
        from: NodeId,
        obj: ObjectId,
        thread: ThreadId,
        pts: u64,
        have_wts: u64,
    ) {
        let Some((wts, rts)) = self.home_grant_lease(k, obj, pts) else {
            k.error(format!("RenewReq for unknown object {obj}"));
            return;
        };
        if wts == have_wts {
            // Copy still current: extend the lease without resending bytes.
            cover(k, "object", "lease", "renew-extend");
            self.route(k, from, TardisMsg::RenewAck { thread, obj, wts, rts });
        } else {
            cover(k, "object", "lease", "renew-refetch");
            let data = self.home[&obj].data.clone();
            self.route(k, from, TardisMsg::ReadReply { thread, obj, data, wts, rts });
        }
    }

    /// Apply a write at the home: stamp it strictly past every granted
    /// lease and return the new `wts`.
    fn home_apply_write(
        &mut self,
        k: &mut dyn KernelApi<TardisMsg>,
        obj: ObjectId,
        range: ByteRange,
        data: &[u8],
        writer_pts: u64,
    ) -> Option<u64> {
        let skip_bump = self.cfg.chaos_skip_wts != 0 && {
            self.chaos_writes += 1;
            self.chaos_writes == self.cfg.chaos_skip_wts
        };
        let h = self.ensure_home(k, obj)?;
        let s = range.start as usize;
        h.data[s..s + data.len()].copy_from_slice(data);
        if skip_bump {
            // Chaos mutation: the bytes land but the version does not move,
            // so every outstanding lease keeps validating pre-write copies
            // and renewals extend them. The checker must catch this.
            return Some(h.wts);
        }
        let wts = h.wts.max(h.rts).max(writer_pts) + 1;
        // A lease granted past the last write forces the stamp to jump over
        // it — the mechanism that replaces invalidation fan-out.
        let jumped = h.rts > h.wts;
        h.wts = wts;
        h.rts = wts;
        cover(k, "object", "home", if jumped { "write-jump" } else { "write" });
        Some(wts)
    }

    fn home_apply_atomic(
        &mut self,
        k: &mut dyn KernelApi<TardisMsg>,
        obj: ObjectId,
        offset: u32,
        delta: i64,
        writer_pts: u64,
    ) -> Option<(i64, u64)> {
        let h = self.ensure_home(k, obj)?;
        let wts = h.wts.max(h.rts).max(writer_pts) + 1;
        let s = offset as usize;
        let old = i64::from_le_bytes(h.data[s..s + 8].try_into().expect("bounds checked"));
        h.data[s..s + 8].copy_from_slice(&old.wrapping_add(delta).to_le_bytes());
        h.wts = wts;
        h.rts = wts;
        cover(k, "object", "home", "atomic");
        Some((old, wts))
    }

    // ==================================================================
    // Requester side: replies
    // ==================================================================

    /// Serve a pending read from a just-installed/renewed copy.
    fn finish_read(&mut self, k: &mut dyn KernelApi<TardisMsg>, thread: ThreadId, obj: ObjectId) {
        let cost = k.cost().fault_overhead_us + k.cost().local_access_us;
        match self.pending.remove(&thread) {
            Some(PendingTardisOp::Read { obj: pobj, range }) if pobj == obj => {
                let copy = self.cache.get(&obj).expect("just installed");
                let s = range.start as usize;
                let bytes = copy.data[s..s + range.len as usize].to_vec();
                k.complete(thread, OpResult::Bytes(bytes), cost);
            }
            other => {
                k.error(format!("read reply for {obj} but {thread} was pending {other:?}"));
            }
        }
    }

    fn handle_read_reply(
        &mut self,
        k: &mut dyn KernelApi<TardisMsg>,
        thread: ThreadId,
        obj: ObjectId,
        data: Vec<u8>,
        wts: u64,
        rts: u64,
    ) {
        cover(k, "object", "copy", "install");
        self.cache.insert(obj, CachedCopy { data, wts, rts });
        self.touch_cache(k);
        self.pts = self.pts.max(wts);
        self.finish_read(k, thread, obj);
    }

    fn handle_renew_ack(
        &mut self,
        k: &mut dyn KernelApi<TardisMsg>,
        thread: ThreadId,
        obj: ObjectId,
        wts: u64,
        rts: u64,
    ) {
        match self.cache.get_mut(&obj) {
            Some(copy) if copy.wts == wts => copy.rts = rts,
            _ => {
                // The copy was dropped (a local write raced the renewal) or
                // superseded; fail the op back through a fresh fetch.
                cover(k, "object", "copy", "renew-race-refetch");
                let pts = self.pts;
                let home = self.meta(k, obj).map(|(h, _)| h).unwrap_or(self.node);
                self.route(k, home, TardisMsg::ReadReq { obj, thread, pts });
                return;
            }
        }
        cover(k, "object", "copy", "renew-ok");
        self.touch_cache(k);
        self.pts = self.pts.max(wts);
        self.finish_read(k, thread, obj);
    }

    // ==================================================================
    // Home side: timestamped synchronization
    // ==================================================================

    fn lock_req(
        &mut self,
        k: &mut dyn KernelApi<TardisMsg>,
        from: NodeId,
        lock: LockId,
        thread: ThreadId,
        pts: u64,
    ) {
        let grant = {
            let st = self.locks.entry(lock).or_default();
            if st.held {
                cover(k, "lock", "held", "queue");
                st.queue.push_back((from, thread, pts));
                None
            } else {
                cover(k, "lock", "free", "grant");
                st.held = true;
                st.ts = st.ts.max(pts);
                Some((from, thread, st.ts))
            }
        };
        if let Some((node, thread, ts)) = grant {
            self.grant_lock(k, node, thread, ts);
        }
    }

    fn grant_lock(
        &mut self,
        k: &mut dyn KernelApi<TardisMsg>,
        node: NodeId,
        thread: ThreadId,
        ts: u64,
    ) {
        if node == self.node {
            self.pts = self.pts.max(ts);
            self.pending.remove(&thread);
            k.complete(thread, OpResult::Unit, k.cost().local_lock_us);
        } else {
            self.route(k, node, TardisMsg::LockGrant { thread, ts });
        }
    }

    fn unlock(&mut self, k: &mut dyn KernelApi<TardisMsg>, lock: LockId, pts: u64) {
        let next = {
            let st = self.locks.entry(lock).or_default();
            st.ts = st.ts.max(pts);
            match st.queue.pop_front() {
                Some((node, thread, req_pts)) => {
                    cover(k, "lock", "held", "handoff");
                    st.ts = st.ts.max(req_pts);
                    Some((node, thread, st.ts))
                }
                None => {
                    cover(k, "lock", "held", "release");
                    st.held = false;
                    None
                }
            }
        };
        if let Some((node, thread, ts)) = next {
            self.grant_lock(k, node, thread, ts);
        }
    }

    fn barrier_arrive(
        &mut self,
        k: &mut dyn KernelApi<TardisMsg>,
        from: NodeId,
        barrier: BarrierId,
        threads: u32,
        pts: u64,
    ) {
        let count = match self.barrier_count.get(&barrier) {
            Some(c) => *c,
            None => {
                k.error(format!("BarrierArrive for undeclared {barrier}"));
                return;
            }
        };
        cover(k, "barrier", "gather", "arrive");
        let release = {
            let st = self.barriers.entry(barrier).or_default();
            st.arrived += threads;
            st.ts = st.ts.max(pts);
            if from != self.node && !st.nodes.contains(&from) {
                st.nodes.push(from);
            }
            st.arrived >= count
        };
        if release {
            cover(k, "barrier", "gather", "release");
            let (mut nodes, ts) = {
                let st = self.barriers.get_mut(&barrier).expect("exists");
                st.arrived = 0;
                (std::mem::take(&mut st.nodes), st.ts)
            };
            nodes.sort_unstable();
            k.multicast(self.node, &nodes, TardisMsg::BarrierRelease { barrier, pts: ts });
            self.barrier_release(k, barrier, ts);
        }
    }

    fn barrier_release(&mut self, k: &mut dyn KernelApi<TardisMsg>, barrier: BarrierId, ts: u64) {
        self.pts = self.pts.max(ts);
        for t in self.barrier_parked.remove(&barrier).unwrap_or_default() {
            self.pending.remove(&t);
            k.complete(t, OpResult::Unit, k.cost().local_lock_us);
        }
    }

    // ==================================================================
    // Dispatch
    // ==================================================================

    fn handle_msg(&mut self, k: &mut dyn KernelApi<TardisMsg>, from: NodeId, msg: TardisMsg) {
        use TardisMsg::*;
        match msg {
            ReadReq { obj, thread, pts } => self.handle_read_req(k, from, obj, thread, pts),
            ReadReply { thread, obj, data, wts, rts } => {
                self.handle_read_reply(k, thread, obj, data, wts, rts)
            }
            RenewReq { obj, thread, pts, have_wts } => {
                self.handle_renew_req(k, from, obj, thread, pts, have_wts)
            }
            RenewAck { thread, obj, wts, rts } => self.handle_renew_ack(k, thread, obj, wts, rts),
            WriteReq { obj, range, data, thread, pts } => {
                match self.home_apply_write(k, obj, range, &data, pts) {
                    Some(wts) => self.route(k, from, WriteAck { thread, wts }),
                    None => k.error(format!("WriteReq for unknown object {obj}")),
                }
            }
            WriteAck { thread, wts } => {
                self.pts = self.pts.max(wts);
                self.pending.remove(&thread);
                k.complete(thread, OpResult::Unit, k.cost().fault_overhead_us);
            }
            AtomicReq { obj, offset, delta, thread, pts } => {
                match self.home_apply_atomic(k, obj, offset, delta, pts) {
                    Some((old, wts)) => self.route(k, from, AtomicReply { thread, old, wts }),
                    None => k.error(format!("AtomicReq for unknown object {obj}")),
                }
            }
            AtomicReply { thread, old, wts } => {
                self.pts = self.pts.max(wts);
                self.pending.remove(&thread);
                k.complete(thread, OpResult::Value(old), k.cost().fault_overhead_us);
            }
            LockReq { lock, thread, pts } => self.lock_req(k, from, lock, thread, pts),
            LockGrant { thread, ts } => {
                self.pts = self.pts.max(ts);
                self.pending.remove(&thread);
                k.complete(thread, OpResult::Unit, k.cost().local_lock_us);
            }
            Unlock { lock, pts } => self.unlock(k, lock, pts),
            BarrierArrive { barrier, threads, pts } => {
                self.barrier_arrive(k, from, barrier, threads, pts)
            }
            BarrierRelease { barrier, pts } => self.barrier_release(k, barrier, pts),
        }
    }
}

impl Server for TardisServer {
    type Payload = TardisMsg;

    fn on_op(
        &mut self,
        k: &mut dyn KernelApi<TardisMsg>,
        thread: ThreadId,
        op: DsmOp,
    ) -> OpOutcome {
        match op {
            DsmOp::Alloc(decl) => {
                let id = k.register_decl(decl, self.node);
                OpOutcome::done(OpResult::Object(id), k.cost().local_access_us)
            }
            DsmOp::Read { obj, range } => {
                let Some((home, size)) = self.meta(k, obj) else {
                    return OpOutcome::fail(DsmError::UnknownObject(obj));
                };
                if !Self::in_bounds(range, size) {
                    return Self::bounds_err(obj, range, size);
                }
                if home == self.node {
                    cover(k, "object", "home", "local-read");
                    self.ensure_home(k, obj).expect("decl checked");
                    let h = &self.home[&obj];
                    self.pts = self.pts.max(h.wts);
                    let s = range.start as usize;
                    let bytes = h.data[s..s + range.len as usize].to_vec();
                    return OpOutcome::done(OpResult::Bytes(bytes), k.cost().local_access_us);
                }
                if let Some(copy) = self.cache.get(&obj) {
                    if self.pts <= copy.rts {
                        // Lease hit: serve locally, no traffic at all.
                        cover(k, "object", "lease", "read-hit");
                        let wts = copy.wts;
                        let s = range.start as usize;
                        let bytes = copy.data[s..s + range.len as usize].to_vec();
                        self.pts = self.pts.max(wts);
                        self.touch_cache(k);
                        return OpOutcome::done(OpResult::Bytes(bytes), k.cost().local_access_us);
                    }
                    // Copy present but the lease expired: renew.
                    cover(k, "object", "lease", "expired-renew");
                    let have_wts = copy.wts;
                    let pts = self.pts;
                    self.pending.insert(thread, PendingTardisOp::Read { obj, range });
                    self.route(k, home, TardisMsg::RenewReq { obj, thread, pts, have_wts });
                    return OpOutcome::Blocked;
                }
                cover(k, "object", "copy", "fetch");
                let pts = self.pts;
                self.pending.insert(thread, PendingTardisOp::Read { obj, range });
                self.route(k, home, TardisMsg::ReadReq { obj, thread, pts });
                OpOutcome::Blocked
            }
            DsmOp::Write { obj, range, data } => {
                let Some((home, size)) = self.meta(k, obj) else {
                    return OpOutcome::fail(DsmError::UnknownObject(obj));
                };
                if !Self::in_bounds(range, size) || data.len() != range.len as usize {
                    return Self::bounds_err(obj, range, size);
                }
                if home == self.node {
                    let pts = self.pts;
                    let wts = self.home_apply_write(k, obj, range, &data, pts).expect("checked");
                    self.pts = wts;
                    return OpOutcome::unit(k.cost().local_access_us);
                }
                // Write-through to the home. Our own stale copy dies now so
                // this node's later reads refetch the post-write bytes.
                if self.cache.remove(&obj).is_some() {
                    cover(k, "object", "copy", "self-invalidate");
                }
                cover(k, "object", "copy", "write-through");
                let pts = self.pts;
                self.pending.insert(thread, PendingTardisOp::Write { obj });
                self.route(k, home, TardisMsg::WriteReq { obj, range, data, thread, pts });
                OpOutcome::Blocked
            }
            DsmOp::AtomicFetchAdd { obj, offset, delta } => {
                let Some((home, size)) = self.meta(k, obj) else {
                    return OpOutcome::fail(DsmError::UnknownObject(obj));
                };
                let range = ByteRange::new(offset, 8);
                if !Self::in_bounds(range, size) {
                    return Self::bounds_err(obj, range, size);
                }
                if home == self.node {
                    let pts = self.pts;
                    let (old, wts) =
                        self.home_apply_atomic(k, obj, offset, delta, pts).expect("checked");
                    self.pts = wts;
                    return OpOutcome::done(OpResult::Value(old), k.cost().local_access_us);
                }
                self.cache.remove(&obj);
                let pts = self.pts;
                self.pending.insert(thread, PendingTardisOp::Atomic { obj });
                self.route(k, home, TardisMsg::AtomicReq { obj, offset, delta, thread, pts });
                OpOutcome::Blocked
            }
            DsmOp::Lock(lock) => {
                let Some(&home) = self.lock_home.get(&lock) else {
                    return OpOutcome::fail(DsmError::Internal("undeclared lock".into()));
                };
                let pts = self.pts;
                self.pending.insert(thread, PendingTardisOp::Lock { lock });
                if home == self.node {
                    self.lock_req(k, self.node, lock, thread, pts);
                } else {
                    self.route(k, home, TardisMsg::LockReq { lock, thread, pts });
                }
                OpOutcome::Blocked
            }
            DsmOp::Unlock(lock) => {
                let Some(&home) = self.lock_home.get(&lock) else {
                    return OpOutcome::fail(DsmError::Internal("undeclared lock".into()));
                };
                let pts = self.pts;
                if home == self.node {
                    self.unlock(k, lock, pts);
                } else {
                    self.route(k, home, TardisMsg::Unlock { lock, pts });
                }
                OpOutcome::unit(k.cost().local_lock_us)
            }
            DsmOp::BarrierWait(barrier) => {
                let Some(&home) = self.barrier_home.get(&barrier) else {
                    return OpOutcome::fail(DsmError::Internal("undeclared barrier".into()));
                };
                self.barrier_parked.entry(barrier).or_default().push(thread);
                let pts = self.pts;
                if home == self.node {
                    self.barrier_arrive(k, self.node, barrier, 1, pts);
                } else {
                    self.route(k, home, TardisMsg::BarrierArrive { barrier, threads: 1, pts });
                }
                OpOutcome::Blocked
            }
            DsmOp::CondWait { .. } | DsmOp::CondSignal { .. } => {
                OpOutcome::fail(DsmError::Internal(
                    "Tardis has no monitors; synchronize with locks/barriers".into(),
                ))
            }
            DsmOp::Flush | DsmOp::Phase(_) => OpOutcome::unit(k.cost().local_access_us),
            DsmOp::Exit => OpOutcome::unit(0),
            DsmOp::Compute(us) => OpOutcome::unit(us),
        }
    }

    fn on_message(&mut self, k: &mut dyn KernelApi<TardisMsg>, from: NodeId, payload: TardisMsg) {
        self.handle_msg(k, from, payload);
    }

    fn on_timer(&mut self, k: &mut dyn KernelApi<TardisMsg>, token: u64) {
        if token != SWEEP_TOKEN {
            return;
        }
        self.sweep_armed = false;
        let pts = self.pts;
        // Evict copies whose lease this node's own clock has outrun: they
        // could never satisfy another read here.
        let before = self.cache.len();
        self.cache.retain(|_, c| c.rts >= pts);
        cover(
            k,
            "object",
            "lease",
            if self.cache.len() < before { "decay-evict" } else { "sweep-idle" },
        );
        // Re-arm only if the cache was touched since the sweep was armed —
        // an idle node must quiesce (the virtual-time kernel treats a
        // perpetually re-arming timer as liveness).
        if self.sweep_activity && !self.cache.is_empty() {
            self.sweep_armed = true;
            self.sweep_activity = false;
            k.set_timer(self.node, self.cfg.decay_us, SWEEP_TOKEN);
        }
    }

    fn debug_stuck_state(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = write!(out, "pts={}; ", self.pts);
        let _ = write!(out, "pending={:?}; ", self.pending);
        for (l, st) in &self.locks {
            let _ = write!(out, "{l}: held={} ts={} queue={:?}; ", st.held, st.ts, st.queue);
        }
        for (b, st) in &self.barriers {
            let _ = write!(
                out,
                "{b}: arrived={} ts={} nodes={:?} parked={:?}; ",
                st.arrived,
                st.ts,
                st.nodes,
                self.barrier_parked.get(b)
            );
        }
        for (o, c) in &self.cache {
            let _ = write!(out, "copy {o}: wts={} rts={}; ", c.wts, c.rts);
        }
        for (o, h) in &self.home {
            let _ = write!(out, "home {o}: wts={} rts={}; ", h.wts, h.rts);
        }
        out
    }
}

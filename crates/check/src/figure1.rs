//! Figure 1 of the paper, reconstructed and machine-checked.
//!
//! The figure shows three threads accessing one object between two
//! synchronization points:
//!
//! ```text
//!   A:  SYNCH ── W1 ───────── W4 ──────────── SYNCH
//!   B:  SYNCH ──── W2 ── W3 ───── W5 ──────── SYNCH
//!   C:  SYNCH ────── R1 ──────────── R2 ───── SYNCH ── R3
//!                 (time flows left to right)
//! ```
//!
//! The prose fixes the semantics exactly:
//!
//! * strict coherence: R1 reads W2; R2 and R3 read W5 (the most recent
//!   writes in real time);
//! * loose coherence: R1 and R2 may read "the value written at any of W1
//!   through W5 such that the value read at R2 does not logically precede
//!   the value read at R1", and R3 must read W4 or W5 (the last writes of
//!   A and B, now ordered before R3 by the second synchronization, with
//!   neither ordered after the other).
//!
//! This module materializes that schedule as a [`History`] and computes the
//! legal sets with the checkers — the E3 "figure regeneration".

use crate::history::{legal_loose_writes, Event, History};
use munin_types::{LockId, ObjectId, ThreadId};
use std::collections::BTreeSet;

pub const A: ThreadId = ThreadId(0);
pub const B: ThreadId = ThreadId(1);
pub const C: ThreadId = ThreadId(2);
pub const X: ObjectId = ObjectId(0);

/// The figure's schedule, with reads observing `obs = [r1, r2, r3]`.
/// Synchronization points are modelled as barrier episodes over all three
/// threads (the paper draws them as global SYNCH lines).
pub fn schedule(obs: [u32; 3]) -> History {
    History {
        n_threads: 3,
        events: vec![
            Event::Barrier { threads: vec![A, B, C] }, // SYNCH (left)
            Event::Write { thread: A, obj: X, label: 1 }, // W1
            Event::Write { thread: B, obj: X, label: 2 }, // W2
            Event::Read { thread: C, obj: X, observed: obs[0] }, // R1
            Event::Write { thread: B, obj: X, label: 3 }, // W3
            Event::Write { thread: A, obj: X, label: 4 }, // W4
            Event::Write { thread: B, obj: X, label: 5 }, // W5
            Event::Read { thread: C, obj: X, observed: obs[1] }, // R2
            Event::Barrier { threads: vec![A, B, C] }, // SYNCH (right)
            Event::Read { thread: C, obj: X, observed: obs[2] }, // R3
        ],
    }
}

/// Index of R1/R2/R3 in the schedule's event list.
pub const READ_INDICES: [usize; 3] = [3, 7, 9];

/// The unique strict-coherence outcome: what each read must return.
pub fn strict_outcome() -> [u32; 3] {
    [2, 5, 5] // R1 → W2, R2 → W5, R3 → W5 (prose of the paper)
}

/// Legal loose-coherence sets for each read (independent of monotonicity,
/// which couples R1/R2; see [`loose_pair_legal`]).
pub fn loose_sets() -> [BTreeSet<u32>; 3] {
    let h = schedule(strict_outcome());
    [
        legal_loose_writes(&h, READ_INDICES[0]),
        legal_loose_writes(&h, READ_INDICES[1]),
        legal_loose_writes(&h, READ_INDICES[2]),
    ]
}

/// Is a full assignment (r1, r2, r3) legal under loose coherence (including
/// the monotonicity constraint between R1 and R2)?
pub fn loose_assignment_legal(obs: [u32; 3]) -> bool {
    crate::history::check_loose(&schedule(obs)).is_empty()
}

/// A lock-based variant of the same schedule, demonstrating that the
/// checkers treat lock release→acquire edges like barrier edges: the writer
/// releases after W5 and R3's thread acquires before reading.
pub fn lock_variant(obs_r3: u32) -> History {
    const L: LockId = LockId(0);
    History {
        n_threads: 3,
        events: vec![
            Event::Write { thread: A, obj: X, label: 4 },
            Event::Write { thread: B, obj: X, label: 5 },
            Event::Release { thread: A, lock: L },
            Event::Release { thread: B, lock: L },
            Event::Acquire { thread: C, lock: L },
            Event::Read { thread: C, obj: X, observed: obs_r3 },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{check_loose, check_strict};

    #[test]
    fn strict_outcome_is_the_unique_strict_answer() {
        let h = schedule(strict_outcome());
        assert!(check_strict(&h).is_empty());
        // Perturbing any read breaks strictness.
        for i in 0..3 {
            for wrong in 1..=5u32 {
                let mut obs = strict_outcome();
                if obs[i] == wrong {
                    continue;
                }
                obs[i] = wrong;
                assert!(
                    !check_strict(&schedule(obs)).is_empty(),
                    "strict must reject R{} = W{}",
                    i + 1,
                    wrong
                );
            }
        }
    }

    #[test]
    fn loose_sets_match_the_paper() {
        let [r1, r2, r3] = loose_sets();
        // "read the value written at any of W1 through W5": all five writes
        // are legal for R1 and R2 (the pre-SYNCH initial value is formally
        // legal too; the paper's prose does not enumerate it).
        for w in 1..=5u32 {
            assert!(r1.contains(&w), "W{w} legal at R1: {r1:?}");
            assert!(r2.contains(&w), "W{w} legal at R2: {r2:?}");
        }
        // "thread C at R3 read either the value written by thread A at W4
        // or the value written by thread B at W5".
        assert_eq!(r3, BTreeSet::from([4, 5]), "R3 legal set");
    }

    #[test]
    fn monotonicity_couples_r1_r2() {
        // R1 = W3 then R2 = W2 goes backwards in B's program order:
        // illegal. The reverse direction is fine.
        assert!(!loose_assignment_legal([3, 2, 5]));
        assert!(loose_assignment_legal([2, 3, 5]));
        // Unordered writes (W4 by A, W3 by B) may be read in either order.
        assert!(loose_assignment_legal([4, 3, 5]));
        assert!(loose_assignment_legal([3, 4, 5]));
    }

    #[test]
    fn strict_outcome_is_loose_legal() {
        assert!(loose_assignment_legal(strict_outcome()));
    }

    #[test]
    fn every_loose_legal_r3_is_exactly_w4_or_w5() {
        for r3 in 0..=5u32 {
            let legal = loose_assignment_legal([2, 5, r3]);
            assert_eq!(legal, r3 == 4 || r3 == 5, "R3 = {r3}");
        }
    }

    #[test]
    fn lock_edges_order_reads_too() {
        assert!(check_loose(&lock_variant(5)).is_empty());
        assert!(check_loose(&lock_variant(4)).is_empty());
        // W4/W5 are unordered with each other even through the lock, but
        // the *initial* value is overwritten for C.
        assert!(!check_loose(&lock_variant(0)).is_empty());
    }

    #[test]
    fn count_loose_legal_assignments_exceeds_strict() {
        // Strict admits exactly one assignment; loose admits many — the
        // quantitative content of Figure 1.
        let mut loose_count = 0;
        for r1 in 0..=5u32 {
            for r2 in 0..=5u32 {
                for r3 in 0..=5u32 {
                    if loose_assignment_legal([r1, r2, r3]) {
                        loose_count += 1;
                    }
                }
            }
        }
        assert!(loose_count > 20, "loose admits {loose_count} assignments");
    }
}

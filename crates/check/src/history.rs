//! Recorded histories and the two coherence checkers.
//!
//! A [`History`] lists events in the order they *actually executed* (the
//! simulator's virtual-time order). Reads record which write's value they
//! observed (by write label; label 0 is the initial value). The checkers
//! rebuild the synchronization partial order with vector clocks and decide:
//!
//! * **strict**: every read observed the most recent preceding write in the
//!   executed order;
//! * **loose**: every read observed a write that could have immediately
//!   preceded it in *some* legal schedule — i.e. the write does not
//!   happen-after the read, is not overwritten by another write ordered
//!   between it and the read, and successive reads by one thread never go
//!   backwards ("so that remote threads do not decide erroneously that an
//!   object has changed, and use the old value believing it to be the new
//!   value").

use crate::vclock::VectorClock;
use munin_types::{LockId, ObjectId, ThreadId};
use std::collections::{BTreeMap, BTreeSet};

/// A history event, in executed order.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A write with a unique nonzero label.
    Write {
        thread: ThreadId,
        obj: ObjectId,
        label: u32,
    },
    /// A read that observed the value of write `observed` (0 = initial).
    Read {
        thread: ThreadId,
        obj: ObjectId,
        observed: u32,
    },
    Acquire {
        thread: ThreadId,
        lock: LockId,
    },
    Release {
        thread: ThreadId,
        lock: LockId,
    },
    /// A barrier episode joining all listed threads.
    Barrier {
        threads: Vec<ThreadId>,
    },
}

#[derive(Debug, Clone, Default)]
pub struct History {
    pub n_threads: usize,
    pub events: Vec<Event>,
}

/// A coherence violation, with a human-readable explanation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    pub event_index: usize,
    pub reason: String,
}

/// Per-event vector clocks plus bookkeeping computed in one pass.
struct Annotated {
    /// Clock of each event (same indexing as `events`).
    clocks: Vec<VectorClock>,
    /// For each write label: (event index, thread, obj).
    writes: BTreeMap<u32, (usize, ThreadId, ObjectId)>,
}

fn annotate(h: &History) -> Annotated {
    let mut thread_vc: Vec<VectorClock> =
        (0..h.n_threads).map(|_| VectorClock::new(h.n_threads)).collect();
    let mut lock_vc: BTreeMap<LockId, VectorClock> = BTreeMap::new();
    let mut clocks = Vec::with_capacity(h.events.len());
    let mut writes = BTreeMap::new();

    for (i, ev) in h.events.iter().enumerate() {
        match ev {
            Event::Write { thread, obj, label } => {
                thread_vc[thread.index()].tick(*thread);
                clocks.push(thread_vc[thread.index()].clone());
                assert!(
                    writes.insert(*label, (i, *thread, *obj)).is_none(),
                    "write labels must be unique"
                );
            }
            Event::Read { thread, .. } => {
                thread_vc[thread.index()].tick(*thread);
                clocks.push(thread_vc[thread.index()].clone());
            }
            Event::Acquire { thread, lock } => {
                thread_vc[thread.index()].tick(*thread);
                if let Some(lv) = lock_vc.get(lock) {
                    thread_vc[thread.index()].join(&lv.clone());
                }
                clocks.push(thread_vc[thread.index()].clone());
            }
            Event::Release { thread, lock } => {
                thread_vc[thread.index()].tick(*thread);
                let entry = lock_vc.entry(*lock).or_insert_with(|| VectorClock::new(h.n_threads));
                entry.join(&thread_vc[thread.index()]);
                clocks.push(thread_vc[thread.index()].clone());
            }
            Event::Barrier { threads } => {
                let mut joint = VectorClock::new(h.n_threads);
                for t in threads {
                    thread_vc[t.index()].tick(*t);
                    joint.join(&thread_vc[t.index()]);
                }
                for t in threads {
                    thread_vc[t.index()] = joint.clone();
                }
                clocks.push(joint);
            }
        }
    }
    Annotated { clocks, writes }
}

/// Check strict coherence: every read sees the most recent write in the
/// executed order.
pub fn check_strict(h: &History) -> Vec<Violation> {
    let mut last_write: BTreeMap<ObjectId, u32> = BTreeMap::new();
    let mut violations = Vec::new();
    for (i, ev) in h.events.iter().enumerate() {
        match ev {
            Event::Write { obj, label, .. } => {
                last_write.insert(*obj, *label);
            }
            Event::Read { obj, observed, .. } => {
                let want = last_write.get(obj).copied().unwrap_or(0);
                if *observed != want {
                    violations.push(Violation {
                        event_index: i,
                        reason: format!(
                            "strict: read of {obj} observed w{observed}, most recent is w{want}"
                        ),
                    });
                }
            }
            _ => {}
        }
    }
    violations
}

/// The set of write labels a read at `read_index` may legally observe under
/// loose coherence (0 = initial value, included when legal).
pub fn legal_loose_writes(h: &History, read_index: usize) -> BTreeSet<u32> {
    let ann = annotate(h);
    let Event::Read { thread: _, obj, .. } = &h.events[read_index] else {
        panic!("event {read_index} is not a read");
    };
    let r_vc = &ann.clocks[read_index];
    let mut legal = BTreeSet::new();

    // The initial value is legal unless some write to the object
    // happens-before the read.
    let overwritten_init =
        ann.writes.values().any(|(wi, _, wobj)| wobj == obj && ann.clocks[*wi].lt(r_vc));
    if !overwritten_init {
        legal.insert(0);
    }

    'cand: for (label, (wi, _, wobj)) in &ann.writes {
        if wobj != obj {
            continue;
        }
        let w_vc = &ann.clocks[*wi];
        // The write must not happen-after the read.
        if r_vc.lt(w_vc) {
            continue;
        }
        // No other write to the object ordered between w and r.
        for (wi2, _, wobj2) in ann.writes.values() {
            if wobj2 == obj && *wi2 != *wi {
                let w2 = &ann.clocks[*wi2];
                if w_vc.lt(w2) && w2.lt(r_vc) {
                    continue 'cand;
                }
            }
        }
        legal.insert(*label);
    }
    legal
}

/// Check loose coherence for the whole history: each read's observation is
/// in its legal set, and successive reads of an object by one thread never
/// observe values that go backwards in the happens-before order.
pub fn check_loose(h: &History) -> Vec<Violation> {
    let ann = annotate(h);
    let mut violations = Vec::new();
    // (thread, obj) -> last observed label (for monotonicity).
    let mut last_obs: BTreeMap<(ThreadId, ObjectId), u32> = BTreeMap::new();

    for (i, ev) in h.events.iter().enumerate() {
        let Event::Read { thread, obj, observed } = ev else {
            continue;
        };
        let legal = legal_loose_writes(h, i);
        if !legal.contains(observed) {
            violations.push(Violation {
                event_index: i,
                reason: format!("loose: read of {obj} observed w{observed}, legal set {legal:?}"),
            });
        }
        if let Some(prev) = last_obs.get(&(*thread, *obj)) {
            // The newly observed write must not happen-before the
            // previously observed one.
            if *prev != 0 && *observed != *prev {
                if let (Some((wi_new, ..)), Some((wi_prev, ..))) =
                    (ann.writes.get(observed), ann.writes.get(prev))
                {
                    if ann.clocks[*wi_new].lt(&ann.clocks[*wi_prev]) {
                        violations.push(Violation {
                            event_index: i,
                            reason: format!(
                                "loose: read of {obj} went backwards (w{observed} precedes w{prev})"
                            ),
                        });
                    }
                }
            }
            if *observed == 0 && *prev != 0 {
                violations.push(Violation {
                    event_index: i,
                    reason: format!("loose: read of {obj} regressed to the initial value"),
                });
            }
        }
        last_obs.insert((*thread, *obj), *observed);
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const X: ObjectId = ObjectId(0);
    const L: LockId = LockId(0);

    #[test]
    fn strict_accepts_latest_and_rejects_stale() {
        let h = History {
            n_threads: 2,
            events: vec![
                Event::Write { thread: T0, obj: X, label: 1 },
                Event::Read { thread: T1, obj: X, observed: 1 },
                Event::Write { thread: T0, obj: X, label: 2 },
                Event::Read { thread: T1, obj: X, observed: 1 }, // stale!
            ],
        };
        let v = check_strict(&h);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].event_index, 3);
    }

    #[test]
    fn loose_allows_stale_unsynchronized_reads() {
        // The same history is fine under loose coherence: no sync orders
        // w2 before the read.
        let h = History {
            n_threads: 2,
            events: vec![
                Event::Write { thread: T0, obj: X, label: 1 },
                Event::Read { thread: T1, obj: X, observed: 1 },
                Event::Write { thread: T0, obj: X, label: 2 },
                Event::Read { thread: T1, obj: X, observed: 1 },
            ],
        };
        assert!(check_loose(&h).is_empty(), "{:?}", check_loose(&h));
    }

    #[test]
    fn loose_rejects_stale_reads_after_synchronization() {
        // Writer releases a lock after w2; reader acquires it; the reader
        // must then see w2.
        let h = History {
            n_threads: 2,
            events: vec![
                Event::Write { thread: T0, obj: X, label: 1 },
                Event::Write { thread: T0, obj: X, label: 2 },
                Event::Release { thread: T0, lock: L },
                Event::Acquire { thread: T1, lock: L },
                Event::Read { thread: T1, obj: X, observed: 1 }, // stale across sync!
            ],
        };
        let v = check_loose(&h);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].reason.contains("legal set"));
    }

    #[test]
    fn loose_rejects_backward_reads() {
        let h = History {
            n_threads: 2,
            events: vec![
                Event::Write { thread: T0, obj: X, label: 1 },
                Event::Write { thread: T0, obj: X, label: 2 },
                Event::Read { thread: T1, obj: X, observed: 2 },
                Event::Read { thread: T1, obj: X, observed: 1 }, // backwards!
            ],
        };
        let v = check_loose(&h);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].reason.contains("backwards"));
    }

    #[test]
    fn barrier_orders_like_locks() {
        let h = History {
            n_threads: 2,
            events: vec![
                Event::Write { thread: T0, obj: X, label: 1 },
                Event::Barrier { threads: vec![T0, T1] },
                Event::Read { thread: T1, obj: X, observed: 0 }, // must see w1
            ],
        };
        let v = check_loose(&h);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn initial_value_legal_before_any_ordered_write() {
        let h = History {
            n_threads: 2,
            events: vec![
                Event::Write { thread: T0, obj: X, label: 1 },
                Event::Read { thread: T1, obj: X, observed: 0 },
            ],
        };
        assert!(check_loose(&h).is_empty());
    }

    #[test]
    fn future_unordered_write_is_legal_loose() {
        // Read observes a write that happens later in real time but is
        // unordered — "could have immediately preceded the read in some
        // legal schedule".
        let h = History {
            n_threads: 2,
            events: vec![
                Event::Read { thread: T1, obj: X, observed: 1 },
                Event::Write { thread: T0, obj: X, label: 1 },
            ],
        };
        assert!(check_loose(&h).is_empty());
        assert!(!check_strict(&h).is_empty(), "strict forbids reading the future");
    }

    proptest! {
        /// Strict coherence implies loose coherence: any history whose
        /// reads all observe the true most-recent write passes both
        /// checkers.
        #[test]
        fn strict_histories_are_loose(
            ops in proptest::collection::vec((0usize..3, 0u8..4), 1..60)
        ) {
            // Build a 3-thread history with random writes/reads/locks where
            // reads observe the strictly-latest value.
            let mut events = Vec::new();
            let mut label = 0u32;
            let mut latest = 0u32;
            let mut held: Option<ThreadId> = None;
            for (t, kind) in ops {
                let thread = ThreadId(t as u32);
                match kind {
                    0 => {
                        label += 1;
                        latest = label;
                        events.push(Event::Write { thread, obj: X, label });
                    }
                    1 => events.push(Event::Read { thread, obj: X, observed: latest }),
                    2 => {
                        if held.is_none() {
                            events.push(Event::Acquire { thread, lock: L });
                            held = Some(thread);
                        }
                    }
                    _ => {
                        if held == Some(thread) {
                            events.push(Event::Release { thread, lock: L });
                            held = None;
                        }
                    }
                }
            }
            let h = History { n_threads: 3, events };
            prop_assert!(check_strict(&h).is_empty());
            prop_assert!(check_loose(&h).is_empty(), "{:?}", check_loose(&h));
        }

        /// The loose-legal set always contains the strict answer.
        #[test]
        fn strict_answer_is_always_loose_legal(
            ops in proptest::collection::vec((0usize..2, 0u8..2), 1..40)
        ) {
            let mut events = Vec::new();
            let mut label = 0u32;
            let mut latest = 0u32;
            for (t, kind) in ops {
                let thread = ThreadId(t as u32);
                if kind == 0 {
                    label += 1;
                    latest = label;
                    events.push(Event::Write { thread, obj: X, label });
                } else {
                    events.push(Event::Read { thread, obj: X, observed: latest });
                }
            }
            let h = History { n_threads: 2, events };
            for (i, ev) in h.events.iter().enumerate() {
                if let Event::Read { observed, .. } = ev {
                    let legal = legal_loose_writes(&h, i);
                    prop_assert!(legal.contains(observed), "read {i}: {legal:?} missing {observed}");
                }
            }
        }
    }
}

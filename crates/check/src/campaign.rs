//! Invariant checking over fault-campaign observation logs.
//!
//! A campaign run records an [`ObsEvent`] stream while the plan executes:
//! writes at intent, reads at completion (with the observed write label),
//! lock acquire after `lock()` returns / release before `unlock()` is
//! called, barrier *arrivals* before the barrier call, and atomic
//! fetch-adds with the previous value they observed. [`check_campaign`]
//! validates the stream against the coherence contract:
//!
//! * **lock discipline / exclusion** — acquires and releases nest per lock,
//!   and no two threads hold one lock at once (sound even on real-time
//!   backends: the acquire record postdates the grant and the release
//!   record predates the release, so recorded critical sections can only
//!   shrink, never overlap spuriously);
//! * **locked-cell chains** — a cell only ever accessed under its lock
//!   behaves strictly: each locked read observes exactly the previous
//!   locked write (no lost updates across lock handoffs);
//! * **counter integrity** — atomic fetch-adds with positive deltas observe
//!   strictly increasing previous values per thread, and no two fetch-adds
//!   on one counter observe the same previous value (a duplicate means two
//!   read-modify-writes interleaved: a lost update);
//! * **loose coherence** — the stream converts to a [`History`]
//!   (barrier-arrival episodes collapse into [`Event::Barrier`] at the last
//!   arrival) and must pass [`check_loose`].

use crate::history::{check_loose, Event, History, Violation};
use munin_types::{LockId, ObjectId, ThreadId};
use std::collections::BTreeMap;

/// One recorded observation during a campaign run.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsEvent {
    /// Write intent (recorded before the store is issued): unique label.
    Write { thread: ThreadId, obj: ObjectId, label: u32 },
    /// Completed read and the write label it observed (0 = initial value).
    Read { thread: ThreadId, obj: ObjectId, observed: u32 },
    /// `lock()` returned.
    Acquire { thread: ThreadId, lock: LockId },
    /// `unlock()` is about to be called.
    Release { thread: ThreadId, lock: LockId },
    /// The thread is about to enter barrier `barrier`.
    BarrierArrive { thread: ThreadId, barrier: u64 },
    /// Completed atomic fetch-add: the previous value it returned.
    FetchAdd { thread: ThreadId, obj: ObjectId, observed_prev: i64 },
}

/// The full observation log of one campaign run.
#[derive(Debug, Clone, Default)]
pub struct CampaignHistory {
    pub n_threads: usize,
    /// Participant count per barrier id (arrival episodes collapse when
    /// this many threads have arrived).
    pub barrier_counts: BTreeMap<u64, usize>,
    pub events: Vec<ObsEvent>,
}

impl CampaignHistory {
    /// Convert to a checker [`History`]: fetch-adds are dropped (validated
    /// separately), and each complete set of barrier arrivals collapses to
    /// one [`Event::Barrier`] at the position of its *last* arrival — by
    /// then every participant has recorded all pre-barrier work, so the
    /// collapsed event is both sound and as precise as the log allows.
    /// Arrivals of an episode that never completed (a faulted run died
    /// mid-barrier) are dropped: the synchronization never took effect.
    pub fn to_history(&self) -> History {
        let mut events = Vec::with_capacity(self.events.len());
        let mut arrivals: BTreeMap<u64, Vec<ThreadId>> = BTreeMap::new();
        for ev in &self.events {
            match ev {
                ObsEvent::Write { thread, obj, label } => {
                    events.push(Event::Write { thread: *thread, obj: *obj, label: *label });
                }
                ObsEvent::Read { thread, obj, observed } => {
                    events.push(Event::Read { thread: *thread, obj: *obj, observed: *observed });
                }
                ObsEvent::Acquire { thread, lock } => {
                    events.push(Event::Acquire { thread: *thread, lock: *lock });
                }
                ObsEvent::Release { thread, lock } => {
                    events.push(Event::Release { thread: *thread, lock: *lock });
                }
                ObsEvent::BarrierArrive { thread, barrier } => {
                    let ep = arrivals.entry(*barrier).or_default();
                    ep.push(*thread);
                    let count = self.barrier_counts.get(barrier).copied().unwrap_or(usize::MAX);
                    if ep.len() >= count {
                        events.push(Event::Barrier { threads: std::mem::take(ep) });
                    }
                }
                ObsEvent::FetchAdd { .. } => {}
            }
        }
        History { n_threads: self.n_threads, events }
    }
}

/// Check every campaign invariant. `locked_cells` names the cells the plan
/// only ever accesses under the given lock (enabling the strict chain
/// check); all other objects are checked under loose coherence only.
pub fn check_campaign(h: &CampaignHistory, locked_cells: &[(ObjectId, LockId)]) -> Vec<Violation> {
    let mut violations = check_lock_discipline(h);
    violations.extend(check_locked_chains(h, locked_cells));
    violations.extend(check_counters(h));
    violations.extend(check_loose(&h.to_history()));
    violations.sort_by_key(|v| v.event_index);
    violations
}

/// Locks are exclusive and properly nested in the recorded order.
fn check_lock_discipline(h: &CampaignHistory) -> Vec<Violation> {
    let mut holder: BTreeMap<LockId, ThreadId> = BTreeMap::new();
    let mut violations = Vec::new();
    for (i, ev) in h.events.iter().enumerate() {
        match ev {
            ObsEvent::Acquire { thread, lock } => {
                if let Some(prev) = holder.insert(*lock, *thread) {
                    violations.push(Violation {
                        event_index: i,
                        reason: format!(
                            "lock exclusion: {thread} acquired {lock} while {prev} held it"
                        ),
                    });
                }
            }
            ObsEvent::Release { thread, lock } => match holder.remove(lock) {
                Some(t) if t == *thread => {}
                Some(t) => violations.push(Violation {
                    event_index: i,
                    reason: format!("lock discipline: {thread} released {lock} held by {t}"),
                }),
                None => violations.push(Violation {
                    event_index: i,
                    reason: format!("lock discipline: {thread} released unheld {lock}"),
                }),
            },
            _ => {}
        }
    }
    violations
}

/// Cells accessed only under their lock form a strict chain: each locked
/// read observes the previous locked write (lock handoff flushes the
/// writer's update and invalidates stale copies, so anything else is a lost
/// or stale update the release-consistency contract forbids).
fn check_locked_chains(h: &CampaignHistory, locked_cells: &[(ObjectId, LockId)]) -> Vec<Violation> {
    let locked: BTreeMap<ObjectId, LockId> = locked_cells.iter().copied().collect();
    let mut held: BTreeMap<ThreadId, Vec<LockId>> = BTreeMap::new();
    let mut chain_last: BTreeMap<ObjectId, u32> = BTreeMap::new();
    let mut violations = Vec::new();
    for (i, ev) in h.events.iter().enumerate() {
        match ev {
            ObsEvent::Acquire { thread, lock } => held.entry(*thread).or_default().push(*lock),
            ObsEvent::Release { thread, lock } => {
                if let Some(v) = held.get_mut(thread) {
                    v.retain(|l| l != lock);
                }
            }
            ObsEvent::Write { thread, obj, label } => {
                if let Some(lock) = locked.get(obj) {
                    if !held.get(thread).is_some_and(|v| v.contains(lock)) {
                        violations.push(Violation {
                            event_index: i,
                            reason: format!(
                                "locked cell: {thread} wrote {obj} without holding {lock}"
                            ),
                        });
                    }
                    chain_last.insert(*obj, *label);
                }
            }
            ObsEvent::Read { thread, obj, observed } => {
                if let Some(lock) = locked.get(obj) {
                    if !held.get(thread).is_some_and(|v| v.contains(lock)) {
                        violations.push(Violation {
                            event_index: i,
                            reason: format!(
                                "locked cell: {thread} read {obj} without holding {lock}"
                            ),
                        });
                    }
                    let want = chain_last.get(obj).copied().unwrap_or(0);
                    if *observed != want {
                        violations.push(Violation {
                            event_index: i,
                            reason: format!(
                                "locked chain: read of {obj} observed w{observed}, \
                                 chain expects w{want} (lost or stale update across handoff)"
                            ),
                        });
                    }
                }
            }
            _ => {}
        }
    }
    violations
}

/// Atomic counters with positive deltas: per-thread previous values rise
/// strictly, and no previous value repeats across the whole run.
fn check_counters(h: &CampaignHistory) -> Vec<Violation> {
    let mut per_thread: BTreeMap<(ThreadId, ObjectId), i64> = BTreeMap::new();
    let mut seen_prev: BTreeMap<ObjectId, BTreeMap<i64, usize>> = BTreeMap::new();
    let mut violations = Vec::new();
    for (i, ev) in h.events.iter().enumerate() {
        let ObsEvent::FetchAdd { thread, obj, observed_prev } = ev else {
            continue;
        };
        if let Some(prev) = per_thread.get(&(*thread, *obj)) {
            if observed_prev <= prev {
                violations.push(Violation {
                    event_index: i,
                    reason: format!(
                        "counter: {thread} fetch-add on {obj} observed {observed_prev} \
                         after observing {prev} (not strictly increasing)"
                    ),
                });
            }
        }
        per_thread.insert((*thread, *obj), *observed_prev);
        if let Some(first) = seen_prev.entry(*obj).or_default().insert(*observed_prev, i) {
            violations.push(Violation {
                event_index: i,
                reason: format!(
                    "counter: two fetch-adds on {obj} observed previous value \
                     {observed_prev} (events {first} and {i}): lost update"
                ),
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);
    const X: ObjectId = ObjectId(0);
    const C: ObjectId = ObjectId(1);
    const L: LockId = LockId(0);

    fn hist(events: Vec<ObsEvent>) -> CampaignHistory {
        let mut barrier_counts = BTreeMap::new();
        barrier_counts.insert(0, 3);
        CampaignHistory { n_threads: 3, barrier_counts, events }
    }

    #[test]
    fn clean_locked_chain_passes() {
        let h = hist(vec![
            ObsEvent::Acquire { thread: T0, lock: L },
            ObsEvent::Read { thread: T0, obj: X, observed: 0 },
            ObsEvent::Write { thread: T0, obj: X, label: 1 },
            ObsEvent::Release { thread: T0, lock: L },
            ObsEvent::Acquire { thread: T1, lock: L },
            ObsEvent::Read { thread: T1, obj: X, observed: 1 },
            ObsEvent::Write { thread: T1, obj: X, label: 2 },
            ObsEvent::Release { thread: T1, lock: L },
        ]);
        assert!(check_campaign(&h, &[(X, L)]).is_empty());
    }

    #[test]
    fn stale_read_across_lock_handoff_is_flagged() {
        let h = hist(vec![
            ObsEvent::Acquire { thread: T0, lock: L },
            ObsEvent::Write { thread: T0, obj: X, label: 1 },
            ObsEvent::Release { thread: T0, lock: L },
            ObsEvent::Acquire { thread: T1, lock: L },
            ObsEvent::Read { thread: T1, obj: X, observed: 0 }, // lost update!
            ObsEvent::Release { thread: T1, lock: L },
        ]);
        let v = check_campaign(&h, &[(X, L)]);
        assert!(v.iter().any(|v| v.reason.contains("locked chain")), "{v:?}");
    }

    #[test]
    fn overlapping_critical_sections_are_flagged() {
        let h = hist(vec![
            ObsEvent::Acquire { thread: T0, lock: L },
            ObsEvent::Acquire { thread: T1, lock: L },
            ObsEvent::Release { thread: T1, lock: L },
            ObsEvent::Release { thread: T0, lock: L },
        ]);
        let v = check_campaign(&h, &[]);
        assert!(v.iter().any(|v| v.reason.contains("lock exclusion")), "{v:?}");
    }

    #[test]
    fn unlocked_access_to_a_locked_cell_is_flagged() {
        let h = hist(vec![ObsEvent::Write { thread: T0, obj: X, label: 1 }]);
        let v = check_campaign(&h, &[(X, L)]);
        assert!(v.iter().any(|v| v.reason.contains("without holding")), "{v:?}");
    }

    #[test]
    fn duplicate_counter_prev_is_a_lost_update() {
        let h = hist(vec![
            ObsEvent::FetchAdd { thread: T0, obj: C, observed_prev: 0 },
            ObsEvent::FetchAdd { thread: T1, obj: C, observed_prev: 0 }, // lost!
        ]);
        let v = check_campaign(&h, &[]);
        assert!(v.iter().any(|v| v.reason.contains("lost update")), "{v:?}");
    }

    #[test]
    fn per_thread_counter_regression_is_flagged() {
        let h = hist(vec![
            ObsEvent::FetchAdd { thread: T0, obj: C, observed_prev: 5 },
            ObsEvent::FetchAdd { thread: T0, obj: C, observed_prev: 3 },
        ]);
        let v = check_campaign(&h, &[]);
        assert!(v.iter().any(|v| v.reason.contains("strictly increasing")), "{v:?}");
    }

    #[test]
    fn barrier_episodes_collapse_at_the_last_arrival() {
        let h = hist(vec![
            ObsEvent::Write { thread: T0, obj: X, label: 1 },
            ObsEvent::BarrierArrive { thread: T0, barrier: 0 },
            ObsEvent::BarrierArrive { thread: T1, barrier: 0 },
            ObsEvent::BarrierArrive { thread: T2, barrier: 0 },
            ObsEvent::Read { thread: T1, obj: X, observed: 0 }, // must see w1
        ]);
        let conv = h.to_history();
        assert!(conv
            .events
            .iter()
            .any(|e| matches!(e, Event::Barrier { threads } if threads.len() == 3)));
        let v = check_campaign(&h, &[]);
        assert!(!v.is_empty(), "stale read across a barrier must be flagged");
    }

    #[test]
    fn incomplete_barrier_episode_orders_nothing() {
        // Only 2 of 3 arrivals: a faulted run died mid-barrier. The stale
        // read would be a violation if the barrier had taken effect, but the
        // episode never completed, so no synchronization is assumed.
        let h = hist(vec![
            ObsEvent::Write { thread: T0, obj: X, label: 1 },
            ObsEvent::BarrierArrive { thread: T0, barrier: 0 },
            ObsEvent::BarrierArrive { thread: T1, barrier: 0 },
            ObsEvent::Read { thread: T1, obj: X, observed: 0 },
        ]);
        assert!(!h.to_history().events.iter().any(|e| matches!(e, Event::Barrier { .. })));
        assert!(check_campaign(&h, &[]).is_empty());
    }

    #[test]
    fn repeated_barrier_use_forms_episodes() {
        let mut events = Vec::new();
        for round in 0..3u32 {
            events.push(ObsEvent::Write { thread: T0, obj: X, label: round + 1 });
            for t in [T0, T1, T2] {
                events.push(ObsEvent::BarrierArrive { thread: t, barrier: 0 });
            }
            events.push(ObsEvent::Read { thread: T1, obj: X, observed: round + 1 });
        }
        let h = hist(events);
        let n_barriers =
            h.to_history().events.iter().filter(|e| matches!(e, Event::Barrier { .. })).count();
        assert_eq!(n_barriers, 3, "one episode per round");
        assert!(check_campaign(&h, &[]).is_empty());
    }
}

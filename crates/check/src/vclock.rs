//! Vector clocks over thread ids.

use munin_types::ThreadId;

/// A vector clock with one component per thread.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VectorClock {
    counts: Vec<u64>,
}

impl VectorClock {
    pub fn new(n_threads: usize) -> Self {
        VectorClock { counts: vec![0; n_threads] }
    }

    pub fn tick(&mut self, thread: ThreadId) {
        self.counts[thread.index()] += 1;
    }

    pub fn get(&self, thread: ThreadId) -> u64 {
        self.counts[thread.index()]
    }

    /// Component-wise maximum.
    pub fn join(&mut self, other: &VectorClock) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = (*a).max(*b);
        }
    }

    /// Does `self` happen-before-or-equal `other` (component-wise ≤)?
    pub fn leq(&self, other: &VectorClock) -> bool {
        self.counts.iter().zip(&other.counts).all(|(a, b)| a <= b)
    }

    /// Strict happens-before: ≤ and ≠.
    pub fn lt(&self, other: &VectorClock) -> bool {
        self.leq(other) && self != other
    }

    /// Neither ≤ in either direction: concurrent.
    pub fn concurrent(&self, other: &VectorClock) -> bool {
        !self.leq(other) && !other.leq(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ordering_basics() {
        let mut a = VectorClock::new(2);
        let mut b = VectorClock::new(2);
        a.tick(ThreadId(0));
        b.tick(ThreadId(1));
        assert!(a.concurrent(&b));
        b.join(&a);
        assert!(a.lt(&b));
        assert!(!b.lt(&a));
        assert!(a.leq(&a));
        assert!(!a.lt(&a), "irreflexive");
    }

    #[test]
    fn join_is_lub() {
        let mut a = VectorClock::new(3);
        a.tick(ThreadId(0));
        a.tick(ThreadId(0));
        let mut b = VectorClock::new(3);
        b.tick(ThreadId(2));
        let mut j = a.clone();
        j.join(&b);
        assert!(a.leq(&j));
        assert!(b.leq(&j));
        assert_eq!(j.get(ThreadId(0)), 2);
        assert_eq!(j.get(ThreadId(2)), 1);
    }

    proptest! {
        /// hb (lt) is a strict partial order: irreflexive, antisymmetric,
        /// transitive — verified over random clocks.
        #[test]
        fn lt_is_strict_partial_order(
            raw in proptest::collection::vec(proptest::collection::vec(0u64..5, 3), 3)
        ) {
            let clocks: Vec<VectorClock> =
                raw.into_iter().map(|counts| VectorClock { counts }).collect();
            for a in &clocks {
                prop_assert!(!a.lt(a));
            }
            for a in &clocks {
                for b in &clocks {
                    if a.lt(b) {
                        prop_assert!(!b.lt(a));
                    }
                    for c in &clocks {
                        if a.lt(b) && b.lt(c) {
                            prop_assert!(a.lt(c));
                        }
                    }
                }
            }
        }
    }
}

//! # munin-check
//!
//! Memory-coherence checkers for the Munin reproduction.
//!
//! The paper defines two coherence contracts:
//!
//! > "Memory is **strictly coherent** if the value returned by a read
//! > operation is the value written by the most recent write operation to
//! > the same object."
//!
//! > "Memory is **loosely coherent** if the value returned by a read
//! > operation is the value written by an update operation to the same
//! > object that *could* have immediately preceded the read operation in
//! > some legal schedule of the threads in execution."
//!
//! This crate turns both into executable checkers over recorded histories
//! (program-ordered reads/writes plus lock and barrier events), using
//! vector clocks to build the synchronization partial order. The
//! [`figure1`] module reconstructs the paper's Figure 1 schedule and
//! enumerates the legal read results under each contract.

pub mod campaign;
pub mod figure1;
pub mod history;
pub mod vclock;

pub use campaign::{check_campaign, CampaignHistory, ObsEvent};
pub use history::{check_loose, check_strict, legal_loose_writes, Event, History, Violation};
pub use vclock::VectorClock;

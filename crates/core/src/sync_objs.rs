//! State for the distributed synchronization objects.
//!
//! "Our distributed locks employ proxy objects to reduce network overhead.
//! When a thread wants to acquire or test a global lock, it performs the
//! lock operation on a local proxy for the distributed lock. Proxy objects
//! are maintained by a collection of distributed lock servers, one per
//! processor."
//!
//! Each lock has a single *token*; the node holding the token may grant the
//! lock to local threads with no communication at all. The lock's home node
//! runs the global FIFO queue of requesting nodes and directs the token
//! holder to pass the token on ("Munin passes lock ownership amongst the
//! distributed lock servers. Each lock has a queue associated with it...").

use munin_types::{NodeId, ThreadId};
use std::collections::VecDeque;

/// Per-node proxy for one distributed lock.
#[derive(Debug)]
pub struct ProxyLock {
    /// This node holds the token (the global lock ownership).
    pub has_token: bool,
    /// Thread currently inside the critical section (token must be held).
    pub locked_by: Option<ThreadId>,
    /// Local threads waiting for the lock.
    pub local_queue: VecDeque<ThreadId>,
    /// Nodes the home has directed us to pass the token to, in order.
    pub pending_pass: VecDeque<NodeId>,
    /// A `LockReq` is outstanding (suppress duplicates).
    pub requested: bool,
}

impl ProxyLock {
    pub fn new(starts_with_token: bool) -> Self {
        ProxyLock {
            has_token: starts_with_token,
            locked_by: None,
            local_queue: VecDeque::new(),
            pending_pass: VecDeque::new(),
            requested: false,
        }
    }

    /// Can a local thread take the lock right now without messages?
    pub fn can_grant_locally(&self) -> bool {
        self.has_token && self.locked_by.is_none()
    }
}

/// Home-side state for one lock: the global queue.
#[derive(Debug)]
pub struct LockHomeState {
    /// Last node confirmed (via `LockNotify`) to hold the token.
    pub token_at: NodeId,
    /// Nodes waiting for the token, FIFO.
    pub queue: VecDeque<NodeId>,
    /// A `LockFetch` is outstanding; wait for `LockNotify` before issuing
    /// the next one (keeps the token's travel serialized and fair).
    pub fetch_outstanding: bool,
}

impl LockHomeState {
    pub fn new(home: NodeId) -> Self {
        LockHomeState { token_at: home, queue: VecDeque::new(), fetch_outstanding: false }
    }
}

/// Coordinator-side state for one barrier episode.
#[derive(Debug, Default)]
pub struct BarrierHomeState {
    /// Threads arrived so far this episode.
    pub arrived: u32,
    /// Remote nodes that sent arrivals (to be released by multicast).
    pub nodes: Vec<NodeId>,
}

/// Home-side state for one condition variable.
#[derive(Debug, Default)]
pub struct CondHomeState {
    /// Waiting (node, thread) pairs, FIFO.
    pub waiters: VecDeque<(NodeId, ThreadId)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proxy_grant_conditions() {
        let mut p = ProxyLock::new(true);
        assert!(p.can_grant_locally());
        p.locked_by = Some(ThreadId(1));
        assert!(!p.can_grant_locally());
        p.locked_by = None;
        p.has_token = false;
        assert!(!p.can_grant_locally());
    }

    #[test]
    fn home_state_starts_at_home() {
        let h = LockHomeState::new(NodeId(3));
        assert_eq!(h.token_at, NodeId(3));
        assert!(h.queue.is_empty());
        assert!(!h.fetch_outstanding);
    }
}

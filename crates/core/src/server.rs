//! The per-node Munin server.
//!
//! "Munin servers on each machine interact with the applications program and
//! the underlying distributed operating system to ensure that segments are
//! correctly mapped into local memory when they are accessed. ... The server
//! checks what type of object the thread faulted on and invokes the
//! appropriate fault handler."
//!
//! This file holds the server state and the top-level dispatch; the fault
//! handlers themselves live in sibling modules (`faults`, `flush`,
//! `ownership`, `migrate`, `locks`, `barrier`, `condvar`, `atomic`,
//! `adapt`), each adding an `impl MuninServer` block.

use crate::adapt::DetectStat;
use crate::duq::Duq;
use crate::msg::MuninMsg;
use crate::state::{DirEntry, InflightKind, LocalState, PendingFault, SyncDecls};
use crate::sync_objs::{BarrierHomeState, CondHomeState, LockHomeState, ProxyLock};
use munin_mem::{ObjectStore, TwinStore};
use munin_sim::{DsmOp, KernelApi, OpOutcome, OpResult, Server};
use munin_types::{
    BarrierId, ByteRange, CondId, DsmError, LockId, MuninConfig, NodeId, ObjectId, SharingType,
    ThreadId,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Cached slice of an [`munin_types::ObjectDecl`] — everything the hot paths
/// need without cloning the name string.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct DeclLite {
    pub sharing: SharingType,
    pub home: NodeId,
    pub size: u32,
    pub eager: bool,
    pub associated_lock: Option<LockId>,
}

/// Why a flush session exists; decides what happens when it completes.
#[derive(Debug)]
pub(crate) enum SessionKind {
    /// Part of a synchronization flush; completion may release sync waiters.
    SyncFlush,
    /// A write-through data operation (read-mostly writes); completion
    /// resumes the writing thread.
    WriteThrough { thread: ThreadId },
}

/// Flusher-side session: counts `FlushDone` acks still expected (one per
/// home the flush batch was split across).
#[derive(Debug)]
pub(crate) struct Session {
    pub pending_homes: usize,
    pub kind: SessionKind,
}

/// Home-side distribution session: counts `FlushOutAck`s still expected.
#[derive(Debug)]
pub(crate) struct OutSession {
    pub origin: NodeId,
    pub pending_acks: usize,
}

/// A synchronization operation waiting for the delayed update queue to
/// finish flushing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum SyncCont {
    Lock(LockId),
    Unlock(LockId),
    Barrier(BarrierId),
    CondWait { cond: CondId, lock: LockId },
    CondSignal { cond: CondId, broadcast: bool },
    FlushOnly,
    Exit,
}

/// The Munin server for one node.
pub struct MuninServer {
    pub(crate) node: NodeId,
    pub(crate) cfg: MuninConfig,
    pub(crate) sync: SyncDecls,

    // ---- memory -----------------------------------------------------------
    pub(crate) store: ObjectStore,
    pub(crate) twins: TwinStore,
    pub(crate) local: HashMap<ObjectId, LocalState>,
    pub(crate) decl_cache: HashMap<ObjectId, DeclLite>,
    pub(crate) decl_cache_version: u64,

    // ---- directory (for objects homed here) --------------------------------
    pub(crate) dir: HashMap<ObjectId, DirEntry>,

    // ---- delayed updates ----------------------------------------------------
    pub(crate) duq: Duq,
    /// Producer-consumer objects with eager pushes since the last flush
    /// (they need an acknowledged fence at the next synchronization).
    pub(crate) eager_dirty: BTreeSet<ObjectId>,
    pub(crate) sessions: BTreeMap<u64, Session>,
    pub(crate) out_sessions: BTreeMap<u64, OutSession>,
    pub(crate) next_session: u64,
    pub(crate) sync_waiters: Vec<(ThreadId, SyncCont)>,

    // ---- fault service --------------------------------------------------------
    pub(crate) faults: HashMap<ObjectId, Vec<PendingFault>>,
    pub(crate) inflight: HashMap<ObjectId, BTreeSet<InflightKind>>,

    // ---- migratory chains --------------------------------------------------------
    pub(crate) probable_holder: HashMap<ObjectId, NodeId>,

    // ---- synchronization objects ---------------------------------------------------
    pub(crate) proxies: HashMap<LockId, ProxyLock>,
    pub(crate) lock_homes: HashMap<LockId, LockHomeState>,
    pub(crate) barrier_homes: HashMap<BarrierId, BarrierHomeState>,
    pub(crate) barrier_parked: HashMap<BarrierId, Vec<ThreadId>>,
    pub(crate) cond_homes: HashMap<CondId, CondHomeState>,
    pub(crate) cv_parked: HashMap<ThreadId, LockId>,

    // ---- result-object write logs (ranges this node wrote) --------------------------
    pub(crate) result_written: HashMap<ObjectId, Vec<munin_types::ByteRange>>,

    // ---- dynamic decisions ------------------------------------------------------------
    pub(crate) detect: HashMap<ObjectId, DetectStat>,

    // ---- fault-campaign chaos (checker mutation tests) -------------------------------
    /// Copyset distribution sends performed so far, counted only when
    /// `cfg.chaos_skip_updates` is armed (the Nth send is skipped).
    pub(crate) chaos_dist_sends: u64,
}

impl MuninServer {
    pub fn new(node: NodeId, cfg: MuninConfig, sync: SyncDecls) -> Self {
        let mut proxies = HashMap::new();
        let mut lock_homes = HashMap::new();
        for l in &sync.locks {
            // The token starts at the lock's home.
            proxies.insert(l.id, ProxyLock::new(l.home == node));
            if l.home == node {
                lock_homes.insert(l.id, LockHomeState::new(node));
            }
        }
        let mut barrier_homes = HashMap::new();
        for b in &sync.barriers {
            if b.home == node {
                barrier_homes.insert(b.id, BarrierHomeState::default());
            }
        }
        let mut cond_homes = HashMap::new();
        for c in &sync.conds {
            if c.home == node {
                cond_homes.insert(c.id, CondHomeState::default());
            }
        }
        // Session ids must be globally unique (they cross the wire and come
        // back): partition the u64 space by node.
        let next_session = (node.0 as u64) << 48;
        MuninServer {
            node,
            cfg,
            sync,
            store: ObjectStore::new(),
            twins: TwinStore::new(),
            local: HashMap::new(),
            decl_cache: HashMap::new(),
            decl_cache_version: 0,
            dir: HashMap::new(),
            duq: Duq::new(),
            eager_dirty: BTreeSet::new(),
            sessions: BTreeMap::new(),
            out_sessions: BTreeMap::new(),
            next_session,
            sync_waiters: Vec::new(),
            faults: HashMap::new(),
            inflight: HashMap::new(),
            probable_holder: HashMap::new(),
            proxies,
            lock_homes,
            barrier_homes,
            barrier_parked: HashMap::new(),
            cond_homes,
            cv_parked: HashMap::new(),
            result_written: HashMap::new(),
            detect: HashMap::new(),
            chaos_dist_sends: 0,
        }
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    // ---- common helpers -----------------------------------------------------

    /// Fetch (and cache) the lite declaration of an object. The cache is
    /// dropped wholesale whenever the kernel's registry version moves (a
    /// runtime retype happened somewhere).
    pub(crate) fn decl(&mut self, k: &dyn KernelApi<MuninMsg>, obj: ObjectId) -> Option<DeclLite> {
        if self.decl_cache_version != k.registry_version() {
            self.decl_cache.clear();
            self.decl_cache_version = k.registry_version();
        }
        if let Some(d) = self.decl_cache.get(&obj) {
            return Some(*d);
        }
        let d = k.decl(obj)?;
        let lite = DeclLite {
            sharing: d.sharing,
            home: d.home,
            size: d.size,
            eager: d.eager,
            associated_lock: d.associated_lock,
        };
        self.decl_cache.insert(obj, lite);
        Some(lite)
    }

    /// Drop the cached declaration (after a runtime retype).
    pub(crate) fn uncache_decl(&mut self, obj: ObjectId) {
        self.decl_cache.remove(&obj);
    }

    pub(crate) fn local_mut(&mut self, obj: ObjectId) -> &mut LocalState {
        self.local.entry(obj).or_default()
    }

    /// Materialize the home copy + directory entry for an object homed here.
    ///
    /// Materialization happens exactly once, on first touch: after that, an
    /// absent store entry means the object legitimately lives elsewhere
    /// (migrated away, carried off by a lock pass) and must NOT be
    /// resurrected as a stale zero-filled copy.
    pub(crate) fn ensure_home(&mut self, decl: DeclLite, obj: ObjectId) {
        debug_assert_eq!(decl.home, self.node);
        if !self.dir.contains_key(&obj) {
            self.dir.insert(obj, DirEntry::new(decl.sharing, self.node));
            self.store.ensure_zeroed(obj, decl.size);
            let st = self.local.entry(obj).or_default();
            st.valid = true;
            st.writable = true;
        }
        self.probable_holder.entry(obj).or_insert(self.node);
    }

    /// Route a protocol message: remote destinations go over the wire, the
    /// local node is handled by a direct (zero-cost, zero-latency) call —
    /// the moral equivalent of the server invoking its own handler.
    pub(crate) fn route(&mut self, k: &mut dyn KernelApi<MuninMsg>, dst: NodeId, msg: MuninMsg) {
        if dst == self.node {
            self.handle_msg(k, self.node, msg);
        } else {
            k.send(self.node, dst, msg);
        }
    }

    /// Park a faulting thread on an object.
    pub(crate) fn pend_fault(&mut self, obj: ObjectId, fault: PendingFault) {
        self.faults.entry(obj).or_default().push(fault);
    }

    /// Is a request of `kind` already outstanding for `obj`?
    pub(crate) fn inflight_contains(&self, obj: ObjectId, kind: InflightKind) -> bool {
        self.inflight.get(&obj).is_some_and(|s| s.contains(&kind))
    }

    pub(crate) fn inflight_insert(&mut self, obj: ObjectId, kind: InflightKind) {
        self.inflight.entry(obj).or_default().insert(kind);
    }

    pub(crate) fn inflight_remove(&mut self, obj: ObjectId, kind: InflightKind) {
        if let Some(s) = self.inflight.get_mut(&obj) {
            s.remove(&kind);
            if s.is_empty() {
                self.inflight.remove(&obj);
            }
        }
    }

    /// Cost charged when a fault completes: trap overhead + the access.
    pub(crate) fn fault_cost(&self, k: &dyn KernelApi<MuninMsg>) -> u64 {
        k.cost().fault_overhead_us + k.cost().local_access_us
    }

    /// Publish every unpublished write-once object homed on this node and
    /// serve readers that were waiting for publication. Called at every
    /// local synchronization operation and phase transition.
    pub(crate) fn publish_write_once(&mut self, k: &mut dyn KernelApi<MuninMsg>) {
        let candidates: Vec<ObjectId> = self
            .dir
            .iter()
            .filter(|(_, e)| e.sharing == SharingType::WriteOnce && !e.published)
            .map(|(o, _)| *o)
            .collect();
        for obj in candidates {
            let waiting = {
                let e = self.dir.get_mut(&obj).expect("candidate has dir entry");
                e.published = true;
                std::mem::take(&mut e.waiting_publication)
            };
            for (requester, page) in waiting {
                self.serve_read_copy(k, obj, requester, page);
            }
        }
    }

    /// The synchronization entry point shared by all sync ops: publish
    /// write-once objects, start the DUQ flush, run (or queue) the
    /// continuation.
    pub(crate) fn op_sync(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        thread: ThreadId,
        cont: SyncCont,
    ) -> OpOutcome {
        self.publish_write_once(k);
        self.start_sync_flush(k, thread);
        if self.sessions.is_empty() {
            self.run_cont(k, thread, cont);
        } else {
            self.sync_waiters.push((thread, cont));
        }
        OpOutcome::Blocked
    }

    /// Execute a sync continuation after its flush completed.
    pub(crate) fn run_cont(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        thread: ThreadId,
        cont: SyncCont,
    ) {
        match cont {
            SyncCont::FlushOnly | SyncCont::Exit => {
                k.complete(thread, OpResult::Unit, k.cost().local_access_us);
            }
            SyncCont::Lock(l) => self.lock_acquire(k, thread, l),
            SyncCont::Unlock(l) => self.lock_release(k, thread, l),
            SyncCont::Barrier(b) => self.barrier_arrive(k, thread, b),
            SyncCont::CondWait { cond, lock } => self.cond_wait(k, thread, cond, lock),
            SyncCont::CondSignal { cond, broadcast } => {
                self.cond_signal(k, thread, cond, broadcast)
            }
        }
    }

    /// Called when the set of open sessions drains to empty: run every
    /// queued sync continuation (FIFO).
    pub(crate) fn maybe_release_sync_waiters(&mut self, k: &mut dyn KernelApi<MuninMsg>) {
        if !self.sessions.is_empty() {
            return;
        }
        let waiters = std::mem::take(&mut self.sync_waiters);
        for (thread, cont) in waiters {
            self.run_cont(k, thread, cont);
        }
    }

    pub(crate) fn fresh_session(&mut self, kind: SessionKind, pending_homes: usize) -> u64 {
        let id = self.next_session;
        self.next_session += 1;
        self.sessions.insert(id, Session { pending_homes, kind });
        id
    }

    /// Record an access for the runtime type detector (home side).
    pub(crate) fn note_dir_access(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        obj: ObjectId,
        from: NodeId,
        is_write: bool,
    ) {
        if let Some(e) = self.dir.get_mut(&obj) {
            if is_write {
                e.remote_writes += 1;
            } else {
                e.remote_reads += 1;
            }
        }
        if self.cfg.adaptive_typing {
            self.detect.entry(obj).or_default().note(from, is_write);
            self.maybe_retype(k, obj);
        }
    }
}

impl Server for MuninServer {
    type Payload = MuninMsg;

    fn on_op(&mut self, k: &mut dyn KernelApi<MuninMsg>, thread: ThreadId, op: DsmOp) -> OpOutcome {
        match op {
            DsmOp::Alloc(decl) => {
                let sharing = decl.sharing;
                if sharing == SharingType::Synchronization {
                    return OpOutcome::fail(DsmError::SharingViolation {
                        obj: decl.id,
                        sharing,
                        detail: "synchronization objects are declared via SyncDecls, not Alloc",
                    });
                }
                let id = k.register_decl(decl, self.node);
                let lite = self.decl(k, id).expect("just registered");
                self.ensure_home(lite, id);
                OpOutcome::done(OpResult::Object(id), k.cost().local_access_us)
            }
            DsmOp::Read { obj, range } => self.op_read(k, thread, obj, range),
            DsmOp::Write { obj, range, data } => self.op_write(k, thread, obj, range, data),
            DsmOp::AtomicFetchAdd { obj, offset, delta } => {
                self.op_atomic(k, thread, obj, offset, delta)
            }
            DsmOp::Lock(l) => self.op_sync(k, thread, SyncCont::Lock(l)),
            DsmOp::Unlock(l) => self.op_sync(k, thread, SyncCont::Unlock(l)),
            DsmOp::BarrierWait(b) => self.op_sync(k, thread, SyncCont::Barrier(b)),
            DsmOp::CondWait { cond, lock } => {
                self.op_sync(k, thread, SyncCont::CondWait { cond, lock })
            }
            DsmOp::CondSignal { cond, broadcast } => {
                self.op_sync(k, thread, SyncCont::CondSignal { cond, broadcast })
            }
            DsmOp::Flush => self.op_sync(k, thread, SyncCont::FlushOnly),
            DsmOp::Exit => self.op_sync(k, thread, SyncCont::Exit),
            DsmOp::Phase(n) => {
                if n > 0 {
                    self.publish_write_once(k);
                }
                OpOutcome::unit(k.cost().local_access_us)
            }
            DsmOp::Compute(us) => OpOutcome::unit(us), // normally kernel-handled
        }
    }

    fn on_message(&mut self, k: &mut dyn KernelApi<MuninMsg>, from: NodeId, payload: MuninMsg) {
        self.handle_msg(k, from, payload);
    }

    fn debug_stuck_state(&self) -> String {
        use std::fmt::Write;
        // Compact snapshot of everything that can hold a thread: pending
        // faults, in-flight coherence transactions, flush sessions, and the
        // synchronization subsystem. Empty sections are omitted so a mostly
        // idle node dumps a short line, not a page.
        let mut out = String::new();
        if !self.sync_waiters.is_empty() {
            let _ = write!(out, "sync_waiters={:?}; ", self.sync_waiters);
        }
        if !self.faults.is_empty() {
            let faults: Vec<_> = self.faults.iter().map(|(obj, pend)| (*obj, pend.len())).collect();
            let _ = write!(out, "faults={faults:?}; ");
        }
        if !self.inflight.is_empty() {
            let _ = write!(out, "inflight={:?}; ", self.inflight);
        }
        if !self.sessions.is_empty() {
            let _ = write!(out, "flush_sessions={:?}; ", self.sessions);
        }
        if !self.out_sessions.is_empty() {
            let _ = write!(out, "out_sessions={:?}; ", self.out_sessions);
        }
        for (l, p) in &self.proxies {
            if p.locked_by.is_some() || !p.local_queue.is_empty() || p.requested {
                let _ = write!(
                    out,
                    "proxy {l}: token={} locked_by={:?} queue={:?} requested={}; ",
                    p.has_token, p.locked_by, p.local_queue, p.requested
                );
            }
        }
        for (l, h) in &self.lock_homes {
            if !h.queue.is_empty() || h.fetch_outstanding {
                let _ = write!(
                    out,
                    "lock_home {l}: token_at={} queue={:?} fetch_outstanding={}; ",
                    h.token_at, h.queue, h.fetch_outstanding
                );
            }
        }
        if !self.barrier_parked.is_empty() {
            let _ = write!(out, "barrier_parked={:?}; ", self.barrier_parked);
        }
        if !self.cv_parked.is_empty() {
            let _ = write!(out, "cv_parked={:?}; ", self.cv_parked);
        }
        out
    }
}

impl MuninServer {
    /// Unified message dispatch (also reachable via `route` for local
    /// destinations).
    pub(crate) fn handle_msg(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        from: NodeId,
        msg: MuninMsg,
    ) {
        use MuninMsg::*;
        match msg {
            ReadReq { obj, page } => self.handle_read_req(k, from, obj, page),
            ReadReply { obj, page, data, install, confirm } => {
                self.handle_read_reply(k, from, obj, page, data, install, confirm)
            }
            ReadConfirm { obj } => self.handle_read_confirm(k, from, obj),
            FwdRead { obj, requester } => self.handle_fwd_read(k, obj, requester),
            WriteReq { obj } => self.handle_write_req(k, from, obj),
            OwnerYield { obj } => self.handle_owner_yield(k, from, obj),
            OwnerData { obj, data } => self.handle_owner_data(k, from, obj, data),
            OwnerGrant { obj, data } => self.handle_owner_grant(k, from, obj, data),
            Inval { obj, session } => self.handle_inval(k, from, obj, session),
            InvalAck { obj, session } => self.handle_inval_ack(k, from, obj, session),
            MigrateReq { obj } => self.handle_migrate_req(k, from, obj),
            MigrateYield { obj, requester } => self.handle_migrate_yield(k, from, obj, requester),
            MigrateData { obj, data } => self.handle_migrate_data(k, from, obj, data),
            MigrateNotify { obj } => self.handle_migrate_notify(k, from, obj),
            FlushIn { session, items } => self.handle_flush_in(k, from, session, items),
            FlushOut { session, items } => self.handle_flush_out(k, from, session, items),
            FlushInval { session, objs } => self.handle_flush_inval(k, from, session, objs),
            FlushOutAck { session, used } => self.handle_flush_out_ack(k, from, session, used),
            FlushDone { session } => self.handle_flush_done(k, from, session),
            Eager { items } => self.handle_eager(k, from, items),
            EagerOut { items } => self.handle_eager_out(k, from, items),
            AtomicReq { obj, offset, delta, thread } => {
                self.handle_atomic_req(k, from, obj, offset, delta, thread)
            }
            AtomicReply { thread, old } => {
                k.complete(thread, OpResult::Value(old), self.fault_cost(k));
            }
            LockReq { lock } => self.handle_lock_req(k, from, lock),
            LockFetch { lock, to } => self.handle_lock_fetch(k, from, lock, to),
            LockPass { lock, piggyback } => self.handle_lock_pass(k, from, lock, piggyback),
            LockNotify { lock } => self.handle_lock_notify(k, from, lock),
            BarrierArrive { barrier, threads } => {
                self.handle_barrier_arrive(k, from, barrier, threads)
            }
            BarrierRelease { barrier } => self.handle_barrier_release(k, from, barrier),
            CvWait { cond, thread } => self.handle_cv_wait(k, from, cond, thread),
            CvSignal { cond, broadcast } => self.handle_cv_signal(k, from, cond, broadcast),
            CvWake { cond, thread } => self.handle_cv_wake(k, from, cond, thread),
        }
    }

    /// Bounds-check an access against the declared size.
    pub(crate) fn check_bounds(
        &self,
        decl: DeclLite,
        obj: ObjectId,
        range: ByteRange,
    ) -> Result<(), DsmError> {
        if range.fits_in(decl.size) {
            Ok(())
        } else {
            Err(DsmError::OutOfBounds { obj, range, size: decl.size })
        }
    }
}

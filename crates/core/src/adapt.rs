//! Dynamic system decisions (paper §3.4 and §4).
//!
//! Two mechanisms live here:
//!
//! * the **runtime type detector** — "Profiling information may enable Munin
//!   to learn about objects in the system. For example, the system might be
//!   able to detect that an object is being continuously updated by one
//!   thread and read by another. Upon noticing this, Munin could define the
//!   object as a producer-consumer shared object and treat it accordingly."
//!   The detector watches the access stream each home observes for its
//!   general read-write objects and promotes them to `ProducerConsumer` or
//!   `Migratory` when the pattern is unambiguous.
//!
//! * the per-copy **invalidate-vs-refresh** choice used by the flush
//!   distribution when a policy is `Adaptive` (see `flush.rs` /
//!   `UsageStat::reuse_rate`): copies that re-read between updates get
//!   refreshed, cold copies get invalidated — following Eggers & Katz's
//!   observation that invalidation wins under per-processor locality and
//!   refresh wins under fine-grained sharing.

use crate::cover;
use crate::msg::MuninMsg;
use crate::server::MuninServer;
use munin_sim::KernelApi;
use munin_types::{NodeId, ObjectId, SharingType};
use std::collections::BTreeMap;

/// Access pattern observed at the home for one object.
#[derive(Debug, Default)]
pub struct DetectStat {
    pub reads_by: BTreeMap<NodeId, u64>,
    pub writes_by: BTreeMap<NodeId, u64>,
    pub total: u64,
    /// Already promoted once — never flip twice (avoid oscillation).
    pub retyped: bool,
}

impl DetectStat {
    pub fn note(&mut self, from: NodeId, is_write: bool) {
        self.total += 1;
        let map = if is_write { &mut self.writes_by } else { &mut self.reads_by };
        *map.entry(from).or_insert(0) += 1;
    }

    /// Single node does every write?
    pub fn sole_writer(&self) -> Option<NodeId> {
        if self.writes_by.len() == 1 {
            self.writes_by.keys().next().copied()
        } else {
            None
        }
    }

    /// Single node does every access?
    pub fn sole_accessor(&self) -> Option<NodeId> {
        let mut nodes: Vec<NodeId> =
            self.reads_by.keys().chain(self.writes_by.keys()).copied().collect();
        nodes.sort_unstable();
        nodes.dedup();
        if nodes.len() == 1 {
            Some(nodes[0])
        } else {
            None
        }
    }

    pub fn reads(&self) -> u64 {
        self.reads_by.values().sum()
    }

    pub fn writes(&self) -> u64 {
        self.writes_by.values().sum()
    }
}

impl MuninServer {
    /// Consider promoting `obj` to a more specific type based on the access
    /// pattern seen so far. Called from the home's directory paths when
    /// `adaptive_typing` is on.
    ///
    /// The promotion is not applied in place: the home first runs a *recall
    /// transaction* through the ordinary write-transaction machinery
    /// (`OwnerYield` from the current owner, `Inval` to every reader), so
    /// that when the retype lands the home holds the authoritative bytes
    /// and no stale copy survives. Requests arriving meanwhile queue behind
    /// the transaction and are re-dispatched under the new protocol.
    pub(crate) fn maybe_retype(&mut self, k: &mut dyn KernelApi<MuninMsg>, obj: ObjectId) {
        let Some(decl) = self.decl(k, obj) else {
            return;
        };
        // Only promote the *default* type; annotated objects are trusted.
        if decl.sharing != SharingType::GeneralReadWrite {
            return;
        }
        {
            let Some(d) = self.detect.get(&obj) else {
                return;
            };
            if d.retyped || d.total < self.cfg.adapt_min_samples {
                return;
            }
            let Some(w) = d.sole_writer() else { return };
            let has_readers = d.reads_by.keys().any(|r| *r != w);
            if !has_readers || d.reads() < d.writes() {
                return;
            }
        }
        {
            let entry = self.dir.get_mut(&obj).expect("home has dir entry");
            if entry.active_write.is_some() {
                return; // Busy; the detector will fire on a later access.
            }
        }
        self.detect.get_mut(&obj).expect("checked").retyped = true;
        cover(k, "general-rw", "home", "retype-producer-consumer");
        self.start_recall_txn(k, obj, SharingType::ProducerConsumer);
    }

    /// Recall every copy and ownership to the home, then apply the retype
    /// (completed by `check_write_txn` via `pending_retype`).
    fn start_recall_txn(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        obj: ObjectId,
        to: SharingType,
    ) {
        let home = self.node;
        let (owner, to_inval) = {
            let entry = self.dir.get_mut(&obj).expect("home has dir entry");
            let owner = entry.owner;
            let to_inval: Vec<NodeId> =
                entry.copyset.iter().copied().filter(|n| *n != owner).collect();
            entry.copyset.clear();
            entry.consumers.clear();
            entry.pending_retype = Some(to);
            entry.active_write = Some(crate::state::ActiveWrite {
                requester: home,
                pending_invals: to_inval.len(),
                awaiting_owner_data: owner != home,
                requester_had_copy: true,
            });
            (owner, to_inval)
        };
        if owner != home {
            self.route(k, owner, MuninMsg::OwnerYield { obj });
        }
        for n in to_inval {
            debug_assert_ne!(n, home);
            k.send(home, n, MuninMsg::Inval { obj, session: Some(0) });
        }
        self.check_write_txn(k, obj);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sole_writer_detection() {
        let mut d = DetectStat::default();
        d.note(NodeId(1), true);
        d.note(NodeId(2), false);
        d.note(NodeId(3), false);
        d.note(NodeId(1), true);
        assert_eq!(d.sole_writer(), Some(NodeId(1)));
        assert_eq!(d.sole_accessor(), None);
        assert_eq!(d.reads(), 2);
        assert_eq!(d.writes(), 2);
        d.note(NodeId(2), true);
        assert_eq!(d.sole_writer(), None);
    }

    #[test]
    fn sole_accessor_detection() {
        let mut d = DetectStat::default();
        d.note(NodeId(5), true);
        d.note(NodeId(5), false);
        assert_eq!(d.sole_accessor(), Some(NodeId(5)));
        d.note(NodeId(6), false);
        assert_eq!(d.sole_accessor(), None);
    }
}

//! # munin-core
//!
//! The Munin runtime: type-specific memory coherence on a distributed
//! memory machine, as described in Bennett, Carter & Zwaenepoel,
//! *"Munin: Distributed Shared Memory Based on Type-Specific Memory
//! Coherence"*, PPoPP 1990.
//!
//! One [`MuninServer`] runs per node (implementing the simulation kernel's
//! [`munin_sim::Server`] trait). Each shared object carries a
//! [`munin_types::SharingType`] annotation; the server routes every access
//! fault to the protocol matching the annotation:
//!
//! | type | mechanism | module |
//! |---|---|---|
//! | write-once | replication, page-wise fetch, publication at first sync | `faults` |
//! | write-many | twins + per-node delayed update queue, diff merge | `faults`, `flush`, `duq` |
//! | result | write-without-fetch logs merged at the collector | `faults`, `flush` |
//! | producer-consumer | consumer-set tracking, eager push + sync fence | `faults`, `flush` |
//! | migratory | single copy, lock-carried or fault-driven migration | `migrate`, `locks` |
//! | read-mostly | replication with refresh/invalidate, or remote load/store | `faults`, `flush` |
//! | general read-write | Berkeley-ownership directory protocol (strict) | `ownership` |
//! | private | local only | `faults` |
//! | synchronization | proxy locks, barriers, monitors, atomic integers | `locks`, `barrier`, `condvar`, `atomic` |
//!
//! Loose coherence: writes to write-many / result / producer-consumer
//! objects are buffered in the delayed update queue and propagated — merged
//! and batched — when the writing node synchronizes; synchronization
//! operations do not complete until every update they flushed is applied at
//! every copy (acknowledged through the object's home). Program order of
//! updates from one node is preserved by per-pair FIFO channels plus
//! in-order batch application.
//!
//! Dynamic decisions (§3.4/§4 of the paper): per-copy invalidate-vs-refresh
//! from usage feedback, and runtime promotion of general read-write objects
//! to producer-consumer/migratory (`adapt`).

/// Note a protocol-state transition into the run's coverage map, if one is
/// attached (campaign explore mode). The `object` axis is the sharing
/// annotation's label (or a structural name like "lock"/"barrier"), so
/// coverage distinguishes e.g. a write-many write-fault from a migratory
/// one. One predicted branch per site when no map is attached.
#[inline]
pub(crate) fn cover(
    k: &dyn munin_sim::KernelApi<MuninMsg>,
    object: &'static str,
    state: &'static str,
    event: &'static str,
) {
    if let Some(c) = k.coverage() {
        c.note(munin_sim::Transition::new("munin", object, state, event));
    }
}

pub mod adapt;
pub mod atomic;
pub mod barrier;
pub mod condvar;
pub mod duq;
pub mod faults;
pub mod flush;
pub mod locks;
pub mod migrate;
pub mod msg;
pub mod ownership;
pub mod proto;
pub mod server;
pub mod state;
pub mod sync_objs;

pub use msg::{MuninMsg, UpdateItem};
pub use proto::MuninProto;
pub use server::MuninServer;
pub use state::{BarrierDecl, CondDecl, LockDecl, SyncDecls};

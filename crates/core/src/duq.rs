//! The delayed update queue (DUQ).
//!
//! "We use a delayed update queue ... to maintain a list of the updates that
//! have not yet been propagated. Whenever a thread modifies a shared object,
//! we can delay sending out the update to remote copies of the object ...
//! the delayed update queue must be flushed whenever a thread synchronizes."
//!
//! The queue records, in program order, which objects have pending local
//! modifications. Two entry kinds:
//!
//! * **Twinned** — the object's writes are range-tracked by
//!   [`munin_mem::TwinStore`], which snapshots the pristine bytes of each
//!   written range; the diff is computed lazily at flush time by scanning
//!   only those dirty ranges, so any number of writes between
//!   synchronizations cost exactly one update ("delaying updates allows the
//!   system to combine updates to the same object") and the flush costs
//!   O(bytes written), not O(object size).
//! * **Logged** — write-without-fetch: the writes themselves are accumulated
//!   as a growing [`Diff`] (result objects, and replicas invalidated while
//!   holding unflushed writes).
//!
//! The queue is per *node*; entries carry the writing thread for traces.
//! Flushing on any local thread's synchronization propagates all local
//! pending updates, which is always legal under loose coherence (delaying is
//! the optimization, propagating early is never wrong).
//!
//! Program order lives in a slot vector; a side index maps `ObjectId` →
//! slot, so the per-write operations (`note_twinned`, `note_logged`,
//! `contains`) and `remove` are O(1) even with thousands of pending objects.
//! `remove` leaves a tombstone to keep slot numbers stable; tombstones are
//! reclaimed by the next `drain` (i.e. the next flush) — and, so that a
//! long-running node whose objects keep migrating away between flushes
//! cannot grow the slot vector unboundedly, `remove` also compacts the
//! vector in place (amortized O(1)) whenever tombstones outnumber live
//! entries.

use munin_mem::Diff;
use munin_types::{ByteRange, ObjectId, ThreadId};
use std::collections::HashMap;

/// How a pending entry's update is materialized at flush time.
#[derive(Debug)]
pub enum DuqKind {
    /// Diff against the dirty-range twin snapshots at flush time.
    Twinned,
    /// Accumulated write log (write-without-fetch).
    Logged(Diff),
}

/// One pending object in the queue.
#[derive(Debug)]
pub struct DuqEntry {
    pub obj: ObjectId,
    pub kind: DuqKind,
    /// Thread whose write created the entry (traces / diagnostics).
    pub first_writer: ThreadId,
}

/// The per-node delayed update queue.
#[derive(Debug, Default)]
pub struct Duq {
    /// Program-order slots; `None` is a tombstone left by `remove`.
    entries: Vec<Option<DuqEntry>>,
    /// Live objects → slot in `entries`.
    index: HashMap<ObjectId, usize>,
    /// Tombstoned slots in `entries` (== `entries.len() - index.len()`,
    /// tracked so the compaction trigger is O(1)).
    tombstones: usize,
}

impl Duq {
    pub fn new() -> Self {
        Self::default()
    }

    /// Note a write to a twinned object. The first write enqueues; repeats
    /// keep the original program-order position (updates are propagated in
    /// the order the objects were first dirtied, and the diff covers all
    /// writes up to the flush).
    pub fn note_twinned(&mut self, obj: ObjectId, thread: ThreadId) {
        if self.index.contains_key(&obj) {
            return;
        }
        self.index.insert(obj, self.entries.len());
        self.entries.push(Some(DuqEntry { obj, kind: DuqKind::Twinned, first_writer: thread }));
    }

    /// Append a write to a logged (write-without-fetch) object.
    pub fn note_logged(
        &mut self,
        obj: ObjectId,
        thread: ThreadId,
        range: ByteRange,
        data: Vec<u8>,
    ) {
        let new = Diff::overwrite(range, data);
        if let Some(&slot) = self.index.get(&obj) {
            match &mut self.entries[slot].as_mut().expect("indexed slot is live").kind {
                DuqKind::Logged(log) => log.merge(&new),
                DuqKind::Twinned => {
                    // A twinned entry already tracks this object; the write
                    // went through the local copy, so the twin diff will
                    // cover it.
                }
            }
            return;
        }
        self.index.insert(obj, self.entries.len());
        self.entries.push(Some(DuqEntry { obj, kind: DuqKind::Logged(new), first_writer: thread }));
    }

    /// Convert a twinned entry to a logged one carrying `salvaged` — used
    /// when an invalidation takes the local copy away while writes are still
    /// pending (the writes must survive the invalidation).
    pub fn convert_to_logged(&mut self, obj: ObjectId, salvaged: Diff) {
        if let Some(&slot) = self.index.get(&obj) {
            let e = self.entries[slot].as_mut().expect("indexed slot is live");
            debug_assert!(matches!(e.kind, DuqKind::Twinned));
            e.kind = DuqKind::Logged(salvaged);
        }
    }

    /// Is this object pending?
    pub fn contains(&self, obj: ObjectId) -> bool {
        self.index.contains_key(&obj)
    }

    /// Number of pending objects.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Drain all entries in program order for flushing (reclaims
    /// tombstones).
    pub fn drain(&mut self) -> Vec<DuqEntry> {
        self.index.clear();
        self.tombstones = 0;
        std::mem::take(&mut self.entries).into_iter().flatten().collect()
    }

    /// Remove (and return) the entry for one object, if present — used when
    /// an object migrates away with unflushed writes. Compacts the slot
    /// vector once tombstones outnumber live entries, so removal-heavy
    /// workloads (many migrations between flushes) stay O(live), not
    /// O(all-time writes).
    pub fn remove(&mut self, obj: ObjectId) -> Option<DuqEntry> {
        let slot = self.index.remove(&obj)?;
        let entry = self.entries[slot].take();
        debug_assert!(entry.is_some(), "index pointed at a tombstone");
        self.tombstones += 1;
        if self.tombstones > self.index.len() {
            self.compact();
        }
        entry
    }

    /// Drop tombstones in place, preserving program order, and point the
    /// index at the new slots.
    fn compact(&mut self) {
        self.entries.retain(Option::is_some);
        self.tombstones = 0;
        for (slot, e) in self.entries.iter().enumerate() {
            let obj = e.as_ref().expect("retained entries are live").obj;
            self.index.insert(obj, slot);
        }
        debug_assert_eq!(self.index.len(), self.entries.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: ThreadId = ThreadId(0);

    #[test]
    fn first_write_position_is_kept() {
        let mut q = Duq::new();
        q.note_twinned(ObjectId(1), T);
        q.note_twinned(ObjectId(2), T);
        q.note_twinned(ObjectId(1), T); // repeat write
        let order: Vec<u64> = q.drain().iter().map(|e| e.obj.0).collect();
        assert_eq!(order, vec![1, 2], "X dirtied before Y flushes before Y");
    }

    #[test]
    fn logged_writes_accumulate() {
        let mut q = Duq::new();
        q.note_logged(ObjectId(3), T, ByteRange::new(0, 2), vec![1, 1]);
        q.note_logged(ObjectId(3), T, ByteRange::new(4, 2), vec![2, 2]);
        assert_eq!(q.len(), 1);
        let entries = q.drain();
        match &entries[0].kind {
            DuqKind::Logged(d) => {
                assert_eq!(d.data_bytes(), 4);
                assert_eq!(d.run_count(), 2);
            }
            _ => panic!("expected logged entry"),
        }
    }

    #[test]
    fn logged_after_twinned_is_subsumed() {
        let mut q = Duq::new();
        q.note_twinned(ObjectId(1), T);
        q.note_logged(ObjectId(1), T, ByteRange::new(0, 1), vec![7]);
        assert_eq!(q.len(), 1);
        assert!(matches!(q.drain()[0].kind, DuqKind::Twinned));
    }

    #[test]
    fn convert_to_logged_preserves_position() {
        let mut q = Duq::new();
        q.note_twinned(ObjectId(1), T);
        q.note_twinned(ObjectId(2), T);
        q.convert_to_logged(ObjectId(1), Diff::overwrite(ByteRange::new(0, 1), vec![9]));
        let entries = q.drain();
        assert_eq!(entries[0].obj, ObjectId(1));
        assert!(matches!(&entries[0].kind, DuqKind::Logged(d) if d.data_bytes() == 1));
        assert_eq!(entries[1].obj, ObjectId(2));
    }

    #[test]
    fn drain_empties_the_queue() {
        let mut q = Duq::new();
        q.note_twinned(ObjectId(1), T);
        assert!(!q.is_empty());
        let _ = q.drain();
        assert!(q.is_empty());
        assert!(q.drain().is_empty());
    }

    #[test]
    fn remove_extracts_single_entry() {
        let mut q = Duq::new();
        q.note_twinned(ObjectId(1), T);
        q.note_twinned(ObjectId(2), T);
        let e = q.remove(ObjectId(1)).unwrap();
        assert_eq!(e.obj, ObjectId(1));
        assert_eq!(q.len(), 1);
        assert!(q.remove(ObjectId(9)).is_none());
    }

    #[test]
    fn reenqueue_after_remove_and_drain_order() {
        let mut q = Duq::new();
        q.note_twinned(ObjectId(1), T);
        q.note_twinned(ObjectId(2), T);
        q.remove(ObjectId(1)).unwrap();
        assert!(!q.contains(ObjectId(1)));
        // Re-dirtying after removal takes a fresh (later) position.
        q.note_twinned(ObjectId(1), T);
        let order: Vec<u64> = q.drain().iter().map(|e| e.obj.0).collect();
        assert_eq!(order, vec![2, 1]);
        // Tombstones were reclaimed.
        assert!(q.is_empty());
    }

    #[test]
    fn removal_heavy_workload_keeps_slot_vec_bounded() {
        // A long-running node whose pending objects keep migrating away
        // between flushes: without compaction the tombstoned slot vector
        // grows forever even though almost nothing is pending.
        let mut q = Duq::new();
        q.note_twinned(ObjectId(u64::MAX), T); // one long-lived resident
        for i in 0..100_000u64 {
            q.note_twinned(ObjectId(i), T);
            q.remove(ObjectId(i)).unwrap();
            // Invariant: tombstones never exceed live entries (plus the
            // one just created), so slots stay O(live).
            assert!(q.entries.len() <= 2 * q.index.len() + 1, "slots grew: {}", q.entries.len());
        }
        assert_eq!(q.len(), 1);
        assert!(q.entries.len() <= 3);
        let order: Vec<u64> = q.drain().iter().map(|e| e.obj.0).collect();
        assert_eq!(order, vec![u64::MAX]);
    }

    #[test]
    fn compaction_preserves_program_order_and_index() {
        let mut q = Duq::new();
        for i in 0..8u64 {
            q.note_twinned(ObjectId(i), T);
        }
        // Remove enough to trigger compaction (tombstones > live).
        for i in 0..5u64 {
            q.remove(ObjectId(i)).unwrap();
        }
        assert_eq!(q.len(), 3);
        // Index still points at the right (now-moved) slots.
        for i in 5..8u64 {
            assert!(q.contains(ObjectId(i)));
        }
        // Repeat-write after compaction keeps the original position.
        q.note_twinned(ObjectId(6), T);
        q.note_logged(ObjectId(7), T, ByteRange::new(0, 1), vec![1]);
        let order: Vec<u64> = q.drain().iter().map(|e| e.obj.0).collect();
        assert_eq!(order, vec![5, 6, 7]);
    }

    #[test]
    fn ops_stay_cheap_with_many_pending_objects() {
        // Smoke test for the O(1) index: 10k pending objects, repeat writes
        // and membership checks do not rescan the queue.
        let mut q = Duq::new();
        for i in 0..10_000u64 {
            q.note_twinned(ObjectId(i), T);
        }
        for i in 0..10_000u64 {
            q.note_twinned(ObjectId(i), T); // repeats are O(1)
            assert!(q.contains(ObjectId(i)));
        }
        assert_eq!(q.len(), 10_000);
        assert_eq!(q.drain().len(), 10_000);
    }
}

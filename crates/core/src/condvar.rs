//! Condition variables (Mesa-style monitors, built on the distributed
//! locks — "more elaborate synchronization objects, such as monitors and
//! atomic integers, are built on top of this").
//!
//! `cond_wait` releases the monitor lock, registers the thread with the
//! condition variable's home, and — when a signal arrives — re-acquires the
//! lock through the normal proxy path before the thread resumes. Signals
//! with no waiters are lost (Mesa semantics); `broadcast` wakes everyone.

use crate::msg::MuninMsg;
use crate::server::MuninServer;
use munin_sim::{KernelApi, OpResult};
use munin_types::{CondId, LockId, NodeId, ThreadId};

impl MuninServer {
    fn cond_home(&self, c: CondId) -> NodeId {
        self.sync.cond(c).map(|d| d.home).unwrap_or(NodeId(0))
    }

    /// Thread-side wait (after the sync flush). The thread must hold `lock`.
    pub(crate) fn cond_wait(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        thread: ThreadId,
        cond: CondId,
        lock: LockId,
    ) {
        let holds = self.proxies.get(&lock).is_some_and(|p| p.locked_by == Some(thread));
        if !holds {
            k.complete(
                thread,
                OpResult::Err(munin_types::DsmError::NotLockHolder { lock, thread }),
                0,
            );
            return;
        }
        // Remember how to resume, then release the monitor lock. The release
        // path may grant to a local waiter or pass the token; we must not
        // complete `thread` — so we inline the release logic rather than
        // calling lock_release (which completes the caller).
        self.cv_parked.insert(thread, lock);
        let p = self.proxies.get_mut(&lock).expect("checked above");
        p.locked_by = None;
        if let Some(next) = p.local_queue.pop_front() {
            p.locked_by = Some(next);
            k.complete(next, OpResult::Unit, k.cost().local_lock_us);
        } else if let Some(dst) = p.pending_pass.pop_front() {
            self.pass_token(k, lock, dst);
        }
        let home = self.cond_home(cond);
        if home == self.node {
            self.handle_cv_wait(k, self.node, cond, thread);
        } else {
            self.route(k, home, MuninMsg::CvWait { cond, thread });
        }
    }

    /// Thread-side signal (after the sync flush).
    pub(crate) fn cond_signal(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        thread: ThreadId,
        cond: CondId,
        broadcast: bool,
    ) {
        let home = self.cond_home(cond);
        if home == self.node {
            self.handle_cv_signal(k, self.node, cond, broadcast);
        } else {
            self.route(k, home, MuninMsg::CvSignal { cond, broadcast });
        }
        k.complete(thread, OpResult::Unit, k.cost().local_lock_us);
    }

    // ---- home side -------------------------------------------------------

    pub(crate) fn handle_cv_wait(
        &mut self,
        _k: &mut dyn KernelApi<MuninMsg>,
        from: NodeId,
        cond: CondId,
        thread: ThreadId,
    ) {
        self.cond_homes.entry(cond).or_default().waiters.push_back((from, thread));
    }

    pub(crate) fn handle_cv_signal(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        _from: NodeId,
        cond: CondId,
        broadcast: bool,
    ) {
        let woken: Vec<(NodeId, ThreadId)> = {
            let st = self.cond_homes.entry(cond).or_default();
            if broadcast {
                st.waiters.drain(..).collect()
            } else {
                st.waiters.pop_front().into_iter().collect()
            }
        };
        for (node, thread) in woken {
            if node == self.node {
                self.handle_cv_wake(k, self.node, cond, thread);
            } else {
                self.route(k, node, MuninMsg::CvWake { cond, thread });
            }
        }
    }

    // ---- waiter's node -----------------------------------------------------

    /// The signal reached us: re-acquire the monitor lock on the thread's
    /// behalf; the pending CondWait op completes when the lock is granted.
    pub(crate) fn handle_cv_wake(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        _from: NodeId,
        _cond: CondId,
        thread: ThreadId,
    ) {
        let Some(lock) = self.cv_parked.remove(&thread) else {
            k.error(format!("CvWake for {thread} which is not cv-parked"));
            return;
        };
        self.lock_acquire(k, thread, lock);
    }
}

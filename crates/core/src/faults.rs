//! Access fault handling: the per-type read/write paths.
//!
//! Every `Read`/`Write` operation consults the local copy state; hits
//! complete locally at memory cost, misses *fault* — the thread parks and
//! the server runs the protocol appropriate to the object's declared type
//! ("the server checks what type of object the thread faulted on and
//! invokes the appropriate fault handler").

use crate::cover;
use crate::msg::MuninMsg;
use crate::server::{DeclLite, MuninServer};
use crate::state::{InflightKind, PendingFault};
use munin_sim::{KernelApi, OpOutcome, OpResult};
use munin_types::{ByteRange, DsmError, NodeId, ObjectId, ReadMostlyMode, SharingType, ThreadId};

impl MuninServer {
    /// Pages (of `cfg.write_once_page` bytes) covering `range`.
    fn pages_covering(&self, range: ByteRange) -> std::ops::RangeInclusive<u32> {
        let ps = self.cfg.write_once_page.max(1);
        let first = range.start / ps;
        let last = if range.len == 0 { first } else { (range.end() - 1) / ps };
        first..=last
    }

    /// Complete a read locally from the store.
    fn read_hit(
        &mut self,
        k: &dyn KernelApi<MuninMsg>,
        obj: ObjectId,
        range: ByteRange,
    ) -> OpOutcome {
        let st = self.local_mut(obj);
        st.reads += 1;
        st.used_since_update = true;
        match self.store.read(obj, range) {
            Ok(bytes) => OpOutcome::done(OpResult::Bytes(bytes), k.cost().local_access_us),
            Err(e) => OpOutcome::fail(e),
        }
    }

    /// Complete a write locally into the store (no coherence action).
    fn write_hit(
        &mut self,
        k: &dyn KernelApi<MuninMsg>,
        obj: ObjectId,
        range: ByteRange,
        data: &[u8],
    ) -> OpOutcome {
        self.local_mut(obj).writes += 1;
        match self.store.write(obj, range, data) {
            Ok(()) => OpOutcome::unit(k.cost().local_access_us),
            Err(e) => OpOutcome::fail(e),
        }
    }

    // ====================================================================
    // Read path
    // ====================================================================

    pub(crate) fn op_read(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        thread: ThreadId,
        obj: ObjectId,
        range: ByteRange,
    ) -> OpOutcome {
        let Some(decl) = self.decl(k, obj) else {
            return OpOutcome::fail(DsmError::UnknownObject(obj));
        };
        if let Err(e) = self.check_bounds(decl, obj, range) {
            return OpOutcome::fail(e);
        }
        if decl.home == self.node {
            self.ensure_home(decl, obj);
        }
        match decl.sharing {
            SharingType::Private => {
                if decl.home == self.node {
                    self.read_hit(k, obj, range)
                } else {
                    OpOutcome::fail(DsmError::SharingViolation {
                        obj,
                        sharing: decl.sharing,
                        detail: "private object accessed from a remote node",
                    })
                }
            }
            SharingType::WriteOnce => self.read_write_once(k, thread, decl, obj, range),
            SharingType::Migratory => {
                if self.local.get(&obj).is_some_and(|s| s.valid) {
                    self.read_hit(k, obj, range)
                } else {
                    cover(k, decl.sharing.label(), "invalid", "read-migrate-fault");
                    self.pend_fault(obj, PendingFault::Read { thread, range });
                    self.request_migration(k, decl, obj);
                    OpOutcome::Blocked
                }
            }
            SharingType::ReadMostly if self.cfg.read_mostly == ReadMostlyMode::RemoteAccess => {
                if decl.home == self.node {
                    self.read_hit(k, obj, range)
                } else {
                    // Remote load: no copy is installed; every read pays the
                    // round trip (the paper's prototype behaviour).
                    cover(k, decl.sharing.label(), "remote", "remote-load");
                    self.pend_fault(obj, PendingFault::Read { thread, range });
                    if !self.inflight_contains(obj, InflightKind::ReadCopy) {
                        self.inflight_insert(obj, InflightKind::ReadCopy);
                        self.route(k, decl.home, MuninMsg::ReadReq { obj, page: None });
                    }
                    OpOutcome::Blocked
                }
            }
            SharingType::Result => {
                if decl.home == self.node {
                    self.read_hit(k, obj, range)
                } else if self.result_covers_locally(obj, range) {
                    // A writer re-reading bytes it wrote itself: serve from
                    // the local scratch copy (program order requires a
                    // thread to see its own writes).
                    self.local_mut(obj).reads += 1;
                    match self.store.read(obj, range) {
                        Ok(bytes) => {
                            OpOutcome::done(OpResult::Bytes(bytes), k.cost().local_access_us)
                        }
                        Err(e) => OpOutcome::fail(e),
                    }
                } else {
                    cover(k, decl.sharing.label(), "remote", "result-collect-read");
                    self.pend_fault(obj, PendingFault::Read { thread, range });
                    if !self.inflight_contains(obj, InflightKind::ReadCopy) {
                        self.inflight_insert(obj, InflightKind::ReadCopy);
                        self.route(k, decl.home, MuninMsg::ReadReq { obj, page: None });
                    }
                    OpOutcome::Blocked
                }
            }
            // Replicate-on-read types.
            SharingType::WriteMany
            | SharingType::ProducerConsumer
            | SharingType::GeneralReadWrite
            | SharingType::ReadMostly => {
                if self.local.get(&obj).is_some_and(|s| s.valid) {
                    self.read_hit(k, obj, range)
                } else {
                    cover(k, decl.sharing.label(), "invalid", "read-fault");
                    self.pend_fault(obj, PendingFault::Read { thread, range });
                    if !self.inflight_contains(obj, InflightKind::ReadCopy) {
                        self.inflight_insert(obj, InflightKind::ReadCopy);
                        if decl.home == self.node {
                            // Home without a valid copy (general read-write
                            // whose owner is elsewhere): run the directory
                            // logic as our own requester.
                            self.handle_read_req(k, self.node, obj, None);
                        } else {
                            self.route(k, decl.home, MuninMsg::ReadReq { obj, page: None });
                        }
                    }
                    OpOutcome::Blocked
                }
            }
            SharingType::Synchronization => OpOutcome::fail(DsmError::SharingViolation {
                obj,
                sharing: decl.sharing,
                detail: "synchronization objects have no data access path",
            }),
        }
    }

    /// Write-once read: local pages are free; missing pages fault in one at
    /// a time ("allowing portions of large read-only objects to page out").
    fn read_write_once(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        thread: ThreadId,
        decl: DeclLite,
        obj: ObjectId,
        range: ByteRange,
    ) -> OpOutcome {
        if decl.home == self.node {
            return self.read_hit(k, obj, range);
        }
        let st = self.local.entry(obj).or_default();
        if st.valid {
            return self.read_hit(k, obj, range);
        }
        let pages = self.pages_covering(range);
        let have_all = {
            let st = self.local.entry(obj).or_default();
            pages.clone().all(|p| st.valid_pages.contains(&p))
        };
        if have_all {
            self.local_mut(obj).reads += 1;
            return match self.store.read(obj, range) {
                Ok(bytes) => OpOutcome::done(OpResult::Bytes(bytes), k.cost().local_access_us),
                Err(e) => OpOutcome::fail(e),
            };
        }
        self.pend_fault(obj, PendingFault::Read { thread, range });
        if decl.size <= self.cfg.write_once_page {
            // Small object: fetch whole.
            cover(k, decl.sharing.label(), "invalid", "fetch-whole");
            if !self.inflight_contains(obj, InflightKind::ReadCopy) {
                self.inflight_insert(obj, InflightKind::ReadCopy);
                self.route(k, decl.home, MuninMsg::ReadReq { obj, page: None });
            }
        } else {
            cover(k, decl.sharing.label(), "invalid", "page-fault");
            let missing: Vec<u32> = {
                let st = self.local.entry(obj).or_default();
                pages.filter(|p| !st.valid_pages.contains(p)).collect()
            };
            for p in missing {
                if !self.inflight_contains(obj, InflightKind::Page(p)) {
                    self.inflight_insert(obj, InflightKind::Page(p));
                    self.route(k, decl.home, MuninMsg::ReadReq { obj, page: Some(p) });
                }
            }
        }
        OpOutcome::Blocked
    }

    /// Does the local result-object write log cover `range` entirely?
    /// (The scratch copy is only readable where this node itself wrote;
    /// `result_written` holds coalesced ranges, so containment in a single
    /// coalesced range is the correct test.)
    fn result_covers_locally(&self, obj: ObjectId, range: ByteRange) -> bool {
        self.store.contains(obj)
            && self
                .result_written
                .get(&obj)
                .is_some_and(|ranges| ranges.iter().any(|r| r.contains(range)))
    }

    // ====================================================================
    // Write path
    // ====================================================================

    pub(crate) fn op_write(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        thread: ThreadId,
        obj: ObjectId,
        range: ByteRange,
        data: Vec<u8>,
    ) -> OpOutcome {
        let Some(decl) = self.decl(k, obj) else {
            return OpOutcome::fail(DsmError::UnknownObject(obj));
        };
        if let Err(e) = self.check_bounds(decl, obj, range) {
            return OpOutcome::fail(e);
        }
        if decl.home == self.node {
            self.ensure_home(decl, obj);
        }
        match decl.sharing {
            SharingType::Private => {
                if decl.home == self.node {
                    self.write_hit(k, obj, range, &data)
                } else {
                    OpOutcome::fail(DsmError::SharingViolation {
                        obj,
                        sharing: decl.sharing,
                        detail: "private object written from a remote node",
                    })
                }
            }
            SharingType::WriteOnce => {
                let published = self.dir.get(&obj).is_some_and(|d| d.published);
                if decl.home == self.node && !published {
                    self.write_hit(k, obj, range, &data)
                } else {
                    OpOutcome::fail(DsmError::SharingViolation {
                        obj,
                        sharing: decl.sharing,
                        detail: "write-once object written after publication",
                    })
                }
            }
            SharingType::Migratory => {
                if self.local.get(&obj).is_some_and(|s| s.valid) {
                    self.write_hit(k, obj, range, &data)
                } else {
                    cover(k, decl.sharing.label(), "invalid", "write-migrate-fault");
                    self.pend_fault(obj, PendingFault::Write { thread, range, data });
                    self.request_migration(k, decl, obj);
                    OpOutcome::Blocked
                }
            }
            SharingType::GeneralReadWrite => {
                let st = self.local.entry(obj).or_default();
                if st.valid && st.writable {
                    self.write_hit(k, obj, range, &data)
                } else {
                    cover(
                        k,
                        decl.sharing.label(),
                        if self.local.get(&obj).is_some_and(|s| s.valid) {
                            "read-only"
                        } else {
                            "invalid"
                        },
                        "ownership-fault",
                    );
                    self.pend_fault(obj, PendingFault::Write { thread, range, data });
                    if !self.inflight_contains(obj, InflightKind::Ownership) {
                        self.inflight_insert(obj, InflightKind::Ownership);
                        if decl.home == self.node {
                            self.handle_write_req(k, self.node, obj);
                        } else {
                            self.route(k, decl.home, MuninMsg::WriteReq { obj });
                        }
                    }
                    OpOutcome::Blocked
                }
            }
            SharingType::ReadMostly => self.write_read_mostly(k, thread, decl, obj, range, data),
            SharingType::Result => {
                if !self.cfg.delayed_updates {
                    // Strict-propagation ablation: ship every write home
                    // immediately.
                    return self.write_read_mostly(k, thread, decl, obj, range, data);
                }
                // Write-without-fetch: log locally, flush merges at the home.
                cover(k, decl.sharing.label(), "scratch", "write-log");
                self.store.ensure_zeroed(obj, decl.size);
                if let Err(e) = self.store.write(obj, range, &data) {
                    return OpOutcome::fail(e);
                }
                let st = self.local_mut(obj);
                st.writes += 1;
                if decl.home == self.node {
                    // Home writes are immediately authoritative.
                    return OpOutcome::unit(k.cost().local_access_us);
                }
                self.result_written.entry(obj).or_default().push(range);
                let merged = munin_types::range::coalesce(std::mem::take(
                    self.result_written.get_mut(&obj).expect("just inserted"),
                ));
                *self.result_written.get_mut(&obj).expect("exists") = merged;
                self.duq.note_logged(obj, thread, range, data);
                self.after_duq_write(k);
                OpOutcome::unit(k.cost().local_access_us)
            }
            SharingType::WriteMany | SharingType::ProducerConsumer => {
                self.write_loose(k, thread, decl, obj, range, data)
            }
            SharingType::Synchronization => OpOutcome::fail(DsmError::SharingViolation {
                obj,
                sharing: decl.sharing,
                detail: "synchronization objects have no data access path",
            }),
        }
    }

    /// Loose-coherence write (write-many / producer-consumer): twin + DUQ,
    /// or eager push for producer-consumer objects declared `eager`.
    fn write_loose(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        thread: ThreadId,
        decl: DeclLite,
        obj: ObjectId,
        range: ByteRange,
        data: Vec<u8>,
    ) -> OpOutcome {
        if !self.cfg.delayed_updates {
            // Strict-propagation ablation: every write is a write-through
            // coherence round.
            return self.write_read_mostly(k, thread, decl, obj, range, data);
        }
        let valid = self.local.get(&obj).is_some_and(|s| s.valid);
        if !valid {
            // Write-allocate: fetch a copy first, replay the write after.
            cover(k, decl.sharing.label(), "invalid", "write-allocate");
            self.pend_fault(obj, PendingFault::Write { thread, range, data });
            if !self.inflight_contains(obj, InflightKind::ReadCopy) {
                self.inflight_insert(obj, InflightKind::ReadCopy);
                if decl.home == self.node {
                    self.handle_read_req(k, self.node, obj, None);
                } else {
                    self.route(k, decl.home, MuninMsg::ReadReq { obj, page: None });
                }
            }
            return OpOutcome::Blocked;
        }
        let eager = decl.sharing == SharingType::ProducerConsumer && decl.eager;
        // Dirty-range twinning: snapshot only the pristine bytes this write
        // touches (before the write lands), so flush-time diffing scans
        // O(bytes written) instead of the whole object.
        cover(k, decl.sharing.label(), "valid", "twin-write");
        self.twins.note_write(obj, range, self.store.get(obj).expect("valid copy has bytes"));
        if let Err(e) = self.store.write(obj, range, &data) {
            return OpOutcome::fail(e);
        }
        self.local_mut(obj).writes += 1;
        self.duq.note_twinned(obj, thread);
        if eager {
            cover(k, decl.sharing.label(), "valid", "eager-push");
            // Push the new bytes right now ("propagating the boundary
            // element updates as soon as they occur") and mirror them into
            // the twin so the synchronization fence doesn't re-send them.
            self.twins.patch(obj, range, &data);
            self.eager_dirty.insert(obj);
            let items =
                vec![crate::msg::UpdateItem::new(obj, munin_mem::Diff::overwrite(range, data))];
            if decl.home == self.node {
                self.handle_eager(k, self.node, items);
            } else {
                self.route(k, decl.home, MuninMsg::Eager { items });
            }
        }
        self.after_duq_write(k);
        OpOutcome::unit(k.cost().local_access_us)
    }

    /// Read-mostly writes (and the delayed-updates-off ablation): a
    /// write-through coherence round via the home; the thread resumes when
    /// the home confirms full propagation.
    fn write_read_mostly(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        thread: ThreadId,
        decl: DeclLite,
        obj: ObjectId,
        range: ByteRange,
        data: Vec<u8>,
    ) -> OpOutcome {
        // Keep any local replica in sync immediately (our own later reads
        // must see the write).
        if self.local.get(&obj).is_some_and(|s| s.valid) {
            if let Err(e) = self.store.write(obj, range, &data) {
                return OpOutcome::fail(e);
            }
        }
        self.local_mut(obj).writes += 1;
        cover(k, decl.sharing.label(), "valid", "write-through");
        let diff = munin_mem::Diff::overwrite(range, data);
        self.write_through(k, thread, obj, decl.home, diff);
        OpOutcome::Blocked
    }

    /// Kick a migration request (fault path for migratory objects).
    fn request_migration(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        decl: DeclLite,
        obj: ObjectId,
    ) {
        if self.inflight_contains(obj, InflightKind::Migration) {
            return;
        }
        self.inflight_insert(obj, InflightKind::Migration);
        if decl.home == self.node {
            self.handle_migrate_req(k, self.node, obj);
        } else {
            self.route(k, decl.home, MuninMsg::MigrateReq { obj });
        }
    }

    // ====================================================================
    // Fault service: home side (ReadReq) and requester side (ReadReply)
    // ====================================================================

    /// Serve a copy / page / one-shot read of an object homed here.
    pub(crate) fn serve_read_copy(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        obj: ObjectId,
        requester: NodeId,
        page: Option<u32>,
    ) {
        let Some(decl) = self.decl(k, obj) else {
            return;
        };
        self.ensure_home(decl, obj);
        let install = !matches!(
            (decl.sharing, self.cfg.read_mostly),
            (SharingType::Result, _) | (SharingType::ReadMostly, ReadMostlyMode::RemoteAccess)
        );
        if requester == self.node && page.is_none() && install && self.store.contains(obj) {
            // Home serving itself (write-allocate at the home, directory
            // re-validation): the store already holds the bytes — install
            // the copy state directly instead of cloning the whole object
            // into a self-addressed ReadReply.
            self.finish_install(k, decl, obj);
            return;
        }
        let data = match page {
            Some(p) => {
                let ps = self.cfg.write_once_page;
                let start = p * ps;
                let len = ps.min(decl.size.saturating_sub(start));
                self.store.read(obj, ByteRange::new(start, len)).unwrap_or_default()
            }
            None => self.store.get(obj).map(|d| d.to_vec()).unwrap_or_default(),
        };
        self.route(k, requester, MuninMsg::ReadReply { obj, page, data, install, confirm: false });
    }

    /// Mark a freshly-installed whole-object copy valid and replay parked
    /// faults. Shared by the remote install path (`handle_read_reply`) and
    /// the home's clone-free self-serve path (`serve_read_copy`).
    pub(crate) fn finish_install(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        decl: DeclLite,
        obj: ObjectId,
    ) {
        let writable =
            matches!(decl.sharing, SharingType::WriteMany | SharingType::ProducerConsumer);
        let ps = self.cfg.write_once_page.max(1);
        let st = self.local_mut(obj);
        st.valid = true;
        st.writable = writable;
        st.used_since_update = false;
        if decl.sharing == SharingType::WriteOnce {
            // Whole small write-once object: mark all pages.
            let pages = decl.size.div_ceil(ps).max(1);
            for pg in 0..pages {
                st.valid_pages.insert(pg);
            }
        }
        self.inflight_remove(obj, InflightKind::ReadCopy);
        self.replay_faults(k, obj);
    }

    /// Home side of a read fault.
    pub(crate) fn handle_read_req(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        from: NodeId,
        obj: ObjectId,
        page: Option<u32>,
    ) {
        let Some(decl) = self.decl(k, obj) else {
            k.error(format!("ReadReq for unknown {obj}"));
            return;
        };
        self.ensure_home(decl, obj);
        self.note_dir_access(k, obj, from, false);
        match decl.sharing {
            SharingType::WriteOnce => {
                let published = self.dir.get(&obj).is_some_and(|d| d.published);
                if published {
                    cover(k, decl.sharing.label(), "published", "serve-read");
                    if from != self.node {
                        self.dir.get_mut(&obj).expect("ensured").copyset.insert(from);
                    }
                    self.serve_read_copy(k, obj, from, page);
                } else {
                    cover(k, decl.sharing.label(), "unpublished", "wait-publication");
                    self.dir.get_mut(&obj).expect("ensured").waiting_publication.push((from, page));
                }
            }
            SharingType::GeneralReadWrite => self.general_read_req(k, from, obj),
            SharingType::Migratory => {
                // Tolerate mistyped requests: treat as migration.
                self.handle_migrate_req(k, from, obj);
            }
            SharingType::ReadMostly if self.cfg.read_mostly == ReadMostlyMode::RemoteAccess => {
                self.serve_read_copy(k, obj, from, None);
            }
            SharingType::Result => {
                self.serve_read_copy(k, obj, from, None);
            }
            SharingType::WriteMany | SharingType::ProducerConsumer | SharingType::ReadMostly => {
                if from != self.node {
                    let e = self.dir.get_mut(&obj).expect("ensured");
                    e.copyset.insert(from);
                    if decl.sharing == SharingType::ProducerConsumer {
                        e.consumers.insert(from);
                    }
                }
                self.serve_read_copy(k, obj, from, None);
            }
            SharingType::Private | SharingType::Synchronization => {
                k.error(format!("ReadReq for {} object {obj}", decl.sharing));
            }
        }
    }

    /// Requester side: a copy / page / one-shot read arrived.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handle_read_reply(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        _from: NodeId,
        obj: ObjectId,
        page: Option<u32>,
        data: Vec<u8>,
        install: bool,
        confirm: bool,
    ) {
        let Some(decl) = self.decl(k, obj) else {
            return;
        };
        if confirm {
            if decl.home == self.node {
                self.handle_read_confirm(k, self.node, obj);
            } else {
                self.route(k, decl.home, MuninMsg::ReadConfirm { obj });
            }
        }
        match page {
            Some(p) => {
                // One page of a large write-once object.
                self.store.ensure_zeroed(obj, decl.size);
                let ps = self.cfg.write_once_page;
                let start = p * ps;
                let range = ByteRange::new(start, data.len() as u32);
                let _ = self.store.write(obj, range, &data);
                self.local_mut(obj).valid_pages.insert(p);
                self.inflight_remove(obj, InflightKind::Page(p));
                self.replay_faults(k, obj);
            }
            None if install => {
                cover(k, decl.sharing.label(), "invalid", "install-copy");
                self.store.install(obj, data);
                self.finish_install(k, decl, obj);
            }
            None => {
                // One-shot remote load (remote-access read-mostly, result
                // collection): serve pending reads from the reply without
                // installing a copy.
                self.inflight_remove(obj, InflightKind::ReadCopy);
                let pending = self.faults.remove(&obj).unwrap_or_default();
                let cost = self.fault_cost(k);
                for f in pending {
                    match f {
                        PendingFault::Read { thread, range } => {
                            let s = range.start as usize;
                            let e = (range.end() as usize).min(data.len());
                            let bytes = if s <= e { data[s..e].to_vec() } else { Vec::new() };
                            k.complete(thread, OpResult::Bytes(bytes), cost);
                        }
                        other => {
                            // Writes never pend on one-shot reads; requeue.
                            self.pend_fault(obj, other);
                        }
                    }
                }
            }
        }
    }

    /// Replay one parked fault through the normal access path.
    pub(crate) fn replay_one_fault(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        obj: ObjectId,
        fault: PendingFault,
    ) {
        let extra = k.cost().fault_overhead_us;
        match fault {
            PendingFault::Read { thread, range } => match self.op_read(k, thread, obj, range) {
                OpOutcome::Done { result, cost_us } => k.complete(thread, result, cost_us + extra),
                OpOutcome::Blocked => {}
            },
            PendingFault::Write { thread, range, data } => match self
                .op_write(k, thread, obj, range, data)
            {
                OpOutcome::Done { result, cost_us } => k.complete(thread, result, cost_us + extra),
                OpOutcome::Blocked => {}
            },
        }
    }

    /// Replay every parked fault for `obj`.
    pub(crate) fn replay_faults(&mut self, k: &mut dyn KernelApi<MuninMsg>, obj: ObjectId) {
        let pending = match self.faults.remove(&obj) {
            Some(p) => p,
            None => return,
        };
        for f in pending {
            self.replay_one_fault(k, obj, f);
        }
    }
}

//! Per-node protocol state: local copy state, directory entries (held at
//! each object's home), pending fault tables, and the static synchronization
//! object declarations.

use munin_types::{ByteRange, NodeId, SharingType, ThreadId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// State of the local copy of one object on one node.
#[derive(Debug, Default)]
pub struct LocalState {
    /// A valid local copy exists (for write-once with paging, validity is
    /// per-page — see `valid_pages`).
    pub valid: bool,
    /// This node may write locally without a fault (general read-write
    /// ownership, migratory holdership, or a loose-coherence replica).
    pub writable: bool,
    /// Per-page validity for large write-once objects (empty = whole-object
    /// granularity).
    pub valid_pages: BTreeSet<u32>,
    /// Local read count (classification + adaptation).
    pub reads: u64,
    /// Local write count.
    pub writes: u64,
    /// Was the local copy read since the last incoming update? Reported to
    /// the home in `FlushOutAck` — the invalidate-vs-refresh signal.
    pub used_since_update: bool,
}

/// A fault that parked a thread until the protocol installs what it needs.
#[derive(Debug)]
pub enum PendingFault {
    Read { thread: ThreadId, range: ByteRange },
    Write { thread: ThreadId, range: ByteRange, data: Vec<u8> },
}

impl PendingFault {
    pub fn thread(&self) -> ThreadId {
        match self {
            PendingFault::Read { thread, .. } | PendingFault::Write { thread, .. } => *thread,
        }
    }
}

/// Outstanding request kinds, to avoid duplicate fault messages when several
/// local threads miss on the same object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum InflightKind {
    /// Whole-object read copy requested.
    ReadCopy,
    /// A specific page of a write-once object.
    Page(u32),
    /// General read-write ownership.
    Ownership,
    /// Migratory fetch.
    Migration,
}

/// A queued directory transaction (general read-write, migratory): the home
/// serializes conflicting coherence transactions per object.
#[derive(Debug)]
pub enum DirOp {
    Read { requester: NodeId },
    Write { requester: NodeId },
    Migrate { requester: NodeId },
}

/// The in-progress exclusive transaction at the home.
#[derive(Debug)]
pub struct ActiveWrite {
    pub requester: NodeId,
    /// Invalidation acks still outstanding.
    pub pending_invals: usize,
    /// Ownership/data fetch from the previous owner still outstanding.
    pub awaiting_owner_data: bool,
    /// Did the requester already hold a valid copy (no data transfer needed)?
    pub requester_had_copy: bool,
}

/// Directory entry for one object, held at its home node.
#[derive(Debug)]
pub struct DirEntry {
    pub sharing: SharingType,
    /// Nodes with valid copies (never includes the home itself).
    pub copyset: BTreeSet<NodeId>,
    /// Current owner (general read-write) — the home until someone takes
    /// ownership.
    pub owner: NodeId,
    /// Producer-consumer: nodes that have read the object.
    pub consumers: BTreeSet<NodeId>,
    /// Write-once: initialization finished; copies may be handed out.
    pub published: bool,
    /// Write-once: read requests parked until publication.
    pub waiting_publication: Vec<(NodeId, Option<u32>)>,
    /// Requesters whose forwarded read copies are in flight; write
    /// transactions wait for their confirmations.
    pub pending_reads: BTreeSet<NodeId>,
    /// Serialized exclusive transactions (general read-write).
    pub active_write: Option<ActiveWrite>,
    pub queued: VecDeque<DirOp>,
    /// A runtime retype waiting for the recall transaction to complete.
    pub pending_retype: Option<SharingType>,
    /// Per-copy usage feedback: false once an update was pushed, true again
    /// when the holder reports it read the refreshed copy. Drives the
    /// adaptive invalidate-vs-refresh decision.
    pub copy_usage: BTreeMap<NodeId, UsageStat>,
    /// Remote reads/writes observed at the home (classification).
    pub remote_reads: u64,
    pub remote_writes: u64,
}

/// Exponentially-weighted usage history for one copy holder.
#[derive(Debug, Default, Clone, Copy)]
pub struct UsageStat {
    /// Updates pushed to this holder.
    pub updates: u32,
    /// Of those, how many were followed by at least one read before the next
    /// update.
    pub used: u32,
}

impl UsageStat {
    /// Estimated probability the holder re-reads between updates.
    pub fn reuse_rate(&self) -> f64 {
        if self.updates == 0 {
            // No evidence yet: assume reuse (refresh-friendly prior — most
            // programs read far more than they write).
            1.0
        } else {
            self.used as f64 / self.updates as f64
        }
    }
}

impl DirEntry {
    pub fn new(sharing: SharingType, home: NodeId) -> Self {
        DirEntry {
            sharing,
            copyset: BTreeSet::new(),
            owner: home,
            consumers: BTreeSet::new(),
            published: false,
            waiting_publication: Vec::new(),
            pending_reads: BTreeSet::new(),
            active_write: None,
            queued: VecDeque::new(),
            pending_retype: None,
            copy_usage: BTreeMap::new(),
            remote_reads: 0,
            remote_writes: 0,
        }
    }
}

pub use munin_types::syncdecl::{BarrierDecl, CondDecl, LockDecl, SyncDecls};

#[cfg(test)]
mod tests {
    use super::*;
    use munin_types::{BarrierId, CondId, LockId};

    #[test]
    fn usage_stat_prior_favors_refresh() {
        let u = UsageStat::default();
        assert_eq!(u.reuse_rate(), 1.0);
        let u = UsageStat { updates: 4, used: 1 };
        assert_eq!(u.reuse_rate(), 0.25);
    }

    #[test]
    fn round_robin_sync_decls() {
        let s = SyncDecls::round_robin(5, 2, 8, 3);
        assert_eq!(s.locks.len(), 5);
        assert_eq!(s.lock(LockId(3)).unwrap().home, NodeId(0));
        assert_eq!(s.lock(LockId(4)).unwrap().home, NodeId(1));
        assert_eq!(s.barrier(BarrierId(1)).unwrap().count, 8);
        assert!(s.cond(CondId(0)).is_none());
    }

    #[test]
    fn dir_entry_defaults() {
        let d = DirEntry::new(SharingType::GeneralReadWrite, NodeId(2));
        assert_eq!(d.owner, NodeId(2));
        assert!(d.copyset.is_empty());
        assert!(!d.published);
        assert!(d.active_write.is_none());
    }

    #[test]
    fn pending_fault_thread_accessor() {
        let f = PendingFault::Read { thread: ThreadId(4), range: ByteRange::new(0, 4) };
        assert_eq!(f.thread(), ThreadId(4));
        let f =
            PendingFault::Write { thread: ThreadId(5), range: ByteRange::new(0, 1), data: vec![0] };
        assert_eq!(f.thread(), ThreadId(5));
    }
}

//! Distributed atomic integers.
//!
//! "More elaborate synchronization objects, such as monitors and atomic
//! integers, are built on top of [the distributed locks]." We implement
//! atomic fetch-and-add directly at the object's home: the home's copy is
//! authoritative and the home serializes all atomics on it, so the
//! operation is linearizable in one round trip (zero messages if the caller
//! is on the home node).
//!
//! Replicated copies of the object are *not* refreshed by atomics; under
//! loose coherence they catch up at the next synchronization. The intended
//! use is dedicated counter/index objects that are only accessed through
//! `fetch_add` (work-queue heads, result slot allocators, termination
//! counters).

use crate::msg::MuninMsg;
use crate::server::MuninServer;
use munin_sim::{KernelApi, OpOutcome, OpResult};
use munin_types::{DsmError, NodeId, ObjectId, ThreadId};

impl MuninServer {
    pub(crate) fn op_atomic(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        thread: ThreadId,
        obj: ObjectId,
        offset: u32,
        delta: i64,
    ) -> OpOutcome {
        let Some(decl) = self.decl(k, obj) else {
            return OpOutcome::fail(DsmError::UnknownObject(obj));
        };
        if decl.home == self.node {
            self.ensure_home(decl, obj);
            match self.store.fetch_add_i64(obj, offset, delta) {
                Ok(old) => OpOutcome::done(OpResult::Value(old), k.cost().local_access_us),
                Err(e) => OpOutcome::fail(e),
            }
        } else {
            self.route(k, decl.home, MuninMsg::AtomicReq { obj, offset, delta, thread });
            OpOutcome::Blocked
        }
    }

    /// Home side: apply and reply with the previous value.
    pub(crate) fn handle_atomic_req(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        from: NodeId,
        obj: ObjectId,
        offset: u32,
        delta: i64,
        thread: ThreadId,
    ) {
        let Some(decl) = self.decl(k, obj) else {
            k.error(format!("AtomicReq for unknown {obj}"));
            return;
        };
        self.ensure_home(decl, obj);
        match self.store.fetch_add_i64(obj, offset, delta) {
            Ok(old) => self.route(k, from, MuninMsg::AtomicReply { thread, old }),
            Err(e) => {
                k.error(format!("atomic on {obj} failed: {e}"));
                self.route(k, from, MuninMsg::AtomicReply { thread, old: 0 });
            }
        }
    }
}

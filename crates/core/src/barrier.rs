//! Barriers: centralized coordinator with multicast release.
//!
//! Each arrival from a remote node is one `BarrierArrive`; the coordinator
//! releases every participating node with one `BarrierRelease` (a single
//! wire transmission under hardware multicast). Local arrivals and releases
//! cost no messages. Episodes chain safely because a thread cannot arrive at
//! episode *k+1* before its node received the release of episode *k*, and
//! node-pair channels are FIFO.

use crate::msg::MuninMsg;
use crate::server::MuninServer;
use munin_sim::{KernelApi, OpResult};
use munin_types::{BarrierId, NodeId, ThreadId};

impl MuninServer {
    /// Thread-side arrival (after the sync flush completed).
    pub(crate) fn barrier_arrive(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        thread: ThreadId,
        b: BarrierId,
    ) {
        let Some(decl) = self.sync.barrier(b).copied() else {
            k.error(format!("barrier {b} not declared"));
            k.complete(thread, OpResult::Unit, 0);
            return;
        };
        self.barrier_parked.entry(b).or_default().push(thread);
        if decl.home == self.node {
            self.handle_barrier_arrive(k, self.node, b, 1);
        } else {
            self.route(k, decl.home, MuninMsg::BarrierArrive { barrier: b, threads: 1 });
        }
    }

    /// Coordinator side: count arrivals; release everyone when complete.
    pub(crate) fn handle_barrier_arrive(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        from: NodeId,
        b: BarrierId,
        threads: u32,
    ) {
        let decl = self.sync.barrier(b).copied().expect("arrive routed to coordinator");
        debug_assert_eq!(decl.home, self.node);
        let release = {
            let st = self.barrier_homes.entry(b).or_default();
            st.arrived += threads;
            if from != self.node && !st.nodes.contains(&from) {
                st.nodes.push(from);
            }
            if st.arrived > decl.count {
                k.error(format!(
                    "barrier {b}: {} arrivals for an episode of {}",
                    st.arrived, decl.count
                ));
            }
            st.arrived >= decl.count
        };
        if release {
            let mut nodes = {
                let st = self.barrier_homes.get_mut(&b).expect("state exists");
                st.arrived = 0;
                std::mem::take(&mut st.nodes)
            };
            nodes.sort_unstable();
            k.multicast(self.node, &nodes, MuninMsg::BarrierRelease { barrier: b });
            // Release the coordinator's own parked threads.
            self.handle_barrier_release(k, self.node, b);
        }
    }

    /// A node receiving the release wakes every parked local thread.
    pub(crate) fn handle_barrier_release(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        _from: NodeId,
        b: BarrierId,
    ) {
        let parked = self.barrier_parked.remove(&b).unwrap_or_default();
        for t in parked {
            k.complete(t, OpResult::Unit, k.cost().local_lock_us);
        }
    }
}

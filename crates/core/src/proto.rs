//! The Munin protocol's plug-in face: wire codec for [`MuninMsg`] and the
//! [`Protocol`] impl that lets fabrics construct Munin servers without
//! naming this crate's types.
//!
//! The codec lives here (not in `munin-proto`) because of the orphan rule:
//! `Wire` and `MuninMsg` must meet in a crate that owns one of them.

use crate::{MuninMsg, MuninServer, UpdateItem};
use munin_proto::{wire_enum, wire_struct, Protocol};
use munin_types::{CostModel, MuninConfig, NodeId, ObjectDecl, SyncDecls};

wire_struct!(UpdateItem { obj, diff });

wire_enum!(MuninMsg {
    0 => ReadReq { obj, page },
    1 => ReadReply { obj, page, data, install, confirm },
    2 => ReadConfirm { obj },
    3 => FwdRead { obj, requester },
    4 => WriteReq { obj },
    5 => OwnerYield { obj },
    6 => OwnerData { obj, data },
    7 => OwnerGrant { obj, data },
    8 => Inval { obj, session },
    9 => InvalAck { obj, session },
    10 => MigrateReq { obj },
    11 => MigrateYield { obj, requester },
    12 => MigrateData { obj, data },
    13 => MigrateNotify { obj },
    14 => FlushIn { session, items },
    15 => FlushOut { session, items },
    16 => FlushInval { session, objs },
    17 => FlushOutAck { session, used },
    18 => FlushDone { session },
    19 => Eager { items },
    20 => EagerOut { items },
    21 => AtomicReq { obj, offset, delta, thread },
    22 => AtomicReply { thread, old },
    23 => LockReq { lock },
    24 => LockFetch { lock, to },
    25 => LockPass { lock, piggyback },
    26 => LockNotify { lock },
    27 => BarrierArrive { barrier, threads },
    28 => BarrierRelease { barrier },
    29 => CvWait { cond, thread },
    30 => CvSignal { cond, broadcast },
    31 => CvWake { cond, thread },
});

/// The Munin protocol plug-in: type-specific coherence (the paper's
/// protocol) over whichever fabric instantiates it.
pub struct MuninProto;

impl Protocol for MuninProto {
    const TAG: u8 = 0;
    const NAME: &'static str = "munin";
    const BACKEND_NAMES: [&'static str; 3] = ["Munin", "MuninRt", "MuninTcp"];
    type Config = MuninConfig;
    type Msg = MuninMsg;
    type Server = MuninServer;

    fn server(
        cfg: &Self::Config,
        node: NodeId,
        _n_nodes: usize,
        _decls: &[ObjectDecl],
        sync: &SyncDecls,
    ) -> Self::Server {
        MuninServer::new(node, cfg.clone(), sync.clone())
    }

    fn cost(cfg: &Self::Config) -> &CostModel {
        &cfg.cost
    }
}

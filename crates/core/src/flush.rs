//! Flushing the delayed update queue, and update distribution.
//!
//! A flush turns every pending DUQ entry into a run-length diff, groups the
//! diffs by home node (one `FlushIn` message per home — "delaying updates
//! allows the system to combine updates"), and waits for each home to
//! confirm full propagation. A home applies the diffs to its authoritative
//! copy and re-distributes to the copyset per the configured policy:
//! refresh (`FlushOut`), invalidate (`FlushInval`), or per-copy adaptive
//! using the usage feedback carried by `FlushOutAck`s — the paper's
//! "invalidation vs refresh" dynamic decision.
//!
//! The whole pipeline is zero-clone in the object size: diffing scans only
//! the dirty ranges recorded by [`munin_mem::TwinStore`] (the working copy
//! is borrowed from the store, never copied), and the resulting diff travels
//! inside an `Arc` ([`UpdateItem`]) so fanning one update out to K copyset
//! members shares a single payload. A flush therefore costs O(bytes
//! written + copyset size), independent of how big the flushed objects are.
//!
//! Eager producer-consumer pushes (`Eager`/`EagerOut`) use the same
//! distribution path but fire-and-forget; the acknowledged (possibly empty)
//! flush at the next synchronization acts as the fence that guarantees, via
//! per-pair FIFO channels, that every earlier eager push has been applied
//! before the synchronization is allowed to complete.

use crate::cover;
use crate::msg::{MuninMsg, UpdateItem};
use crate::server::{MuninServer, OutSession, SessionKind};
use munin_mem::Diff;
use munin_sim::{KernelApi, OpResult};
use munin_types::{NodeId, ObjectId, SharingType, ThreadId, UpdatePolicy};
use std::collections::BTreeMap;

impl MuninServer {
    /// Turn the DUQ into per-home update batches, preserving program order
    /// within each batch.
    fn collect_flush_items(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
    ) -> Vec<(NodeId, Vec<UpdateItem>)> {
        let entries = self.duq.drain();
        let mut groups: Vec<(NodeId, Vec<UpdateItem>)> = Vec::new();
        for e in entries {
            let Some(decl) = self.decl(k, e.obj) else {
                continue;
            };
            let fence = self.eager_dirty.remove(&e.obj);
            let diff = match e.kind {
                crate::duq::DuqKind::Twinned => self.take_twin_diff(e.obj).unwrap_or_default(),
                crate::duq::DuqKind::Logged(d) => d,
            };
            if diff.is_empty() && !fence {
                continue;
            }
            match groups.iter_mut().find(|(h, _)| *h == decl.home) {
                Some((_, items)) => items.push(UpdateItem::new(e.obj, diff)),
                None => groups.push((decl.home, vec![UpdateItem::new(e.obj, diff)])),
            }
        }
        // Any eager-dirty objects whose DUQ entry vanished (e.g. evicted)
        // still need their fence.
        let leftovers: Vec<ObjectId> = std::mem::take(&mut self.eager_dirty).into_iter().collect();
        for obj in leftovers {
            let Some(decl) = self.decl(k, obj) else {
                continue;
            };
            match groups.iter_mut().find(|(h, _)| *h == decl.home) {
                Some((_, items)) => items.push(UpdateItem::new(obj, Diff::default())),
                None => groups.push((decl.home, vec![UpdateItem::new(obj, Diff::default())])),
            }
        }
        groups
    }

    /// Flush triggered by a synchronization operation. Creates one session
    /// covering every home involved; `op_sync` queues the continuation until
    /// all sessions drain.
    pub(crate) fn start_sync_flush(&mut self, k: &mut dyn KernelApi<MuninMsg>, _thread: ThreadId) {
        let groups = self.collect_flush_items(k);
        if groups.is_empty() {
            return;
        }
        cover(k, "duq", "queued", "sync-flush");
        let session = self.fresh_session(SessionKind::SyncFlush, groups.len());
        self.dispatch_flush_groups(k, session, groups);
    }

    /// Flush triggered by DUQ pressure ("until it is convenient to perform
    /// them"): nothing waits on it, but sync operations that arrive before
    /// it completes will (conservatively) wait for the session to drain.
    pub(crate) fn after_duq_write(&mut self, k: &mut dyn KernelApi<MuninMsg>) {
        if self.duq.len() < self.cfg.duq_max_objects {
            return;
        }
        let groups = self.collect_flush_items(k);
        if groups.is_empty() {
            return;
        }
        cover(k, "duq", "full", "pressure-flush");
        let session = self.fresh_session(SessionKind::SyncFlush, groups.len());
        self.dispatch_flush_groups(k, session, groups);
    }

    /// A single-object write-through round (read-mostly writes and the
    /// delayed-updates-off ablation): the thread resumes on `FlushDone`.
    pub(crate) fn write_through(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        thread: ThreadId,
        obj: ObjectId,
        home: NodeId,
        diff: Diff,
    ) {
        let session = self.fresh_session(SessionKind::WriteThrough { thread }, 1);
        let items = vec![UpdateItem::new(obj, diff)];
        if home == self.node {
            self.handle_flush_in(k, self.node, session, items);
        } else {
            k.send(self.node, home, MuninMsg::FlushIn { session, items });
        }
    }

    fn dispatch_flush_groups(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        session: u64,
        groups: Vec<(NodeId, Vec<UpdateItem>)>,
    ) {
        for (home, items) in groups {
            if home == self.node {
                self.handle_flush_in(k, self.node, session, items);
            } else {
                k.send(self.node, home, MuninMsg::FlushIn { session, items });
            }
        }
    }

    // ====================================================================
    // Home side: apply + distribute
    // ====================================================================

    /// Distribution policy for one object type under this configuration.
    fn policy_for(&self, sharing: SharingType) -> UpdatePolicy {
        match sharing {
            SharingType::WriteMany => self.cfg.write_many_policy,
            SharingType::ProducerConsumer => self.cfg.pc_policy,
            SharingType::ReadMostly => match self.cfg.read_mostly {
                munin_types::ReadMostlyMode::ReplicatedInvalidate => UpdatePolicy::Invalidate,
                munin_types::ReadMostlyMode::Adaptive => UpdatePolicy::Adaptive,
                _ => UpdatePolicy::Refresh,
            },
            _ => UpdatePolicy::Refresh,
        }
    }

    pub(crate) fn handle_flush_in(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        origin: NodeId,
        session: u64,
        items: Vec<UpdateItem>,
    ) {
        // Per destination: (refresh items, invalidate list).
        let mut dests: BTreeMap<NodeId, (Vec<UpdateItem>, Vec<ObjectId>)> = BTreeMap::new();
        for item in &items {
            let Some(decl) = self.decl(k, item.obj) else {
                continue;
            };
            debug_assert_eq!(decl.home, self.node, "FlushIn routed to the wrong home");
            self.ensure_home(decl, item.obj);
            // Apply to the authoritative copy (and to the home's own twin,
            // if the home also has unflushed writes to the object).
            if let Some(data) = self.store.get_mut(item.obj) {
                item.diff.apply(data);
            }
            self.twins.apply_remote(item.obj, &item.diff);
            self.note_dir_access(k, item.obj, origin, true);
            let policy = self.policy_for(decl.sharing);
            let entry = self.dir.get_mut(&item.obj).expect("ensured home");
            let mut dropped: Vec<NodeId> = Vec::new();
            for &dst in entry.copyset.iter() {
                if dst == origin {
                    continue;
                }
                let refresh = match policy {
                    UpdatePolicy::Refresh => true,
                    UpdatePolicy::Invalidate => false,
                    UpdatePolicy::Adaptive => {
                        entry.copy_usage.entry(dst).or_default().reuse_rate() >= 0.5
                    }
                };
                let slot = dests.entry(dst).or_default();
                if refresh {
                    cover(k, decl.sharing.label(), "copyset", "refresh");
                    entry.copy_usage.entry(dst).or_default().updates += 1;
                    slot.0.push(item.clone());
                } else {
                    cover(k, decl.sharing.label(), "copyset", "invalidate");
                    slot.1.push(item.obj);
                    dropped.push(dst);
                }
            }
            for d in dropped {
                entry.copyset.remove(&d);
                entry.consumers.remove(&d);
            }
        }

        let mut pending = 0usize;
        let mut sends: Vec<(NodeId, MuninMsg)> = Vec::new();
        for (dst, (refresh, inval)) in dests {
            if !refresh.is_empty() {
                pending += 1;
                sends.push((dst, MuninMsg::FlushOut { session, items: refresh }));
            }
            if !inval.is_empty() {
                pending += 1;
                sends.push((dst, MuninMsg::FlushInval { session, objs: inval }));
            }
        }
        if self.cfg.chaos_skip_updates > 0 {
            // Mutation-test knob: silently drop the Nth distribution send.
            // `pending` shrinks with it so the session still completes — the
            // victim keeps a stale valid copy, which is exactly the silent
            // coherence bug the campaign checker must catch.
            let n = self.cfg.chaos_skip_updates;
            sends.retain(|_| {
                self.chaos_dist_sends += 1;
                self.chaos_dist_sends != n
            });
            pending = sends.len();
        }
        if pending == 0 {
            self.finish_out_session(k, origin, session);
            return;
        }
        self.out_sessions.insert(session, OutSession { origin, pending_acks: pending });
        for (dst, msg) in sends {
            debug_assert_ne!(dst, self.node, "home never distributes to itself");
            k.send(self.node, dst, msg);
        }
    }

    /// Copy-holder side of a refresh.
    pub(crate) fn handle_flush_out(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        from: NodeId,
        session: u64,
        items: Vec<UpdateItem>,
    ) {
        let mut used = Vec::with_capacity(items.len());
        for item in items {
            let valid = self.local.get(&item.obj).is_some_and(|s| s.valid);
            if valid {
                if let Some(data) = self.store.get_mut(item.obj) {
                    item.diff.apply(data);
                }
                self.twins.apply_remote(item.obj, &item.diff);
                let st = self.local_mut(item.obj);
                used.push((item.obj, st.used_since_update));
                st.used_since_update = false;
            } else {
                used.push((item.obj, false));
            }
        }
        self.route(k, from, MuninMsg::FlushOutAck { session, used });
    }

    /// Copy-holder side of an invalidation. Pending local writes are
    /// salvaged into the DUQ as a write log before the copy is dropped.
    pub(crate) fn handle_flush_inval(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        from: NodeId,
        session: u64,
        objs: Vec<ObjectId>,
    ) {
        let mut used = Vec::with_capacity(objs.len());
        for obj in objs {
            used.push((obj, self.local.get(&obj).is_some_and(|s| s.used_since_update)));
            self.drop_copy_salvaging_writes(obj);
        }
        self.route(k, from, MuninMsg::FlushOutAck { session, used });
    }

    /// Consume `obj`'s twin, diffing the store's working copy in place (a
    /// split borrow of `store` and `twins` — the copy is read, never
    /// cloned). If the copy vanished with a twin pending there is nothing
    /// to diff against: the twin is dropped and `None` returned.
    fn take_twin_diff(&mut self, obj: ObjectId) -> Option<Diff> {
        match self.store.get(obj) {
            Some(cur) => self.twins.take_diff(obj, cur),
            None => {
                self.twins.drop_twin(obj);
                None
            }
        }
    }

    /// Invalidate the local copy of `obj`, preserving unflushed local writes
    /// as a logged DUQ entry.
    pub(crate) fn drop_copy_salvaging_writes(&mut self, obj: ObjectId) {
        if self.twins.has(obj) && self.duq.contains(obj) {
            if let Some(diff) = self.take_twin_diff(obj) {
                self.duq.convert_to_logged(obj, diff);
            }
        } else {
            self.twins.drop_twin(obj);
        }
        self.store.evict(obj);
        let st = self.local_mut(obj);
        st.valid = false;
        st.writable = false;
        st.valid_pages.clear();
        st.used_since_update = false;
    }

    /// Home side: one distribution ack came back.
    pub(crate) fn handle_flush_out_ack(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        from: NodeId,
        session: u64,
        used: Vec<(ObjectId, bool)>,
    ) {
        for (obj, was_used) in used {
            if let Some(e) = self.dir.get_mut(&obj) {
                if was_used {
                    e.copy_usage.entry(from).or_default().used += 1;
                }
            }
        }
        let done = {
            let Some(s) = self.out_sessions.get_mut(&session) else {
                k.error(format!("FlushOutAck for unknown session {session}"));
                return;
            };
            s.pending_acks -= 1;
            s.pending_acks == 0
        };
        if done {
            let origin = self.out_sessions.remove(&session).expect("checked").origin;
            self.finish_out_session(k, origin, session);
        }
    }

    fn finish_out_session(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        origin: NodeId,
        session: u64,
    ) {
        if origin == self.node {
            self.handle_flush_done(k, self.node, session);
        } else {
            k.send(self.node, origin, MuninMsg::FlushDone { session });
        }
    }

    /// Flusher side: one home finished propagating.
    pub(crate) fn handle_flush_done(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        _from: NodeId,
        session: u64,
    ) {
        let finished = {
            let Some(s) = self.sessions.get_mut(&session) else {
                k.error(format!("FlushDone for unknown session {session}"));
                return;
            };
            s.pending_homes -= 1;
            s.pending_homes == 0
        };
        if !finished {
            return;
        }
        let s = self.sessions.remove(&session).expect("checked");
        if let SessionKind::WriteThrough { thread } = s.kind {
            k.complete(thread, OpResult::Unit, self.fault_cost(k));
        }
        self.maybe_release_sync_waiters(k);
    }

    // ====================================================================
    // Eager producer-consumer pushes (fire-and-forget)
    // ====================================================================

    /// Home side of an eager push: apply, then forward to consumers.
    pub(crate) fn handle_eager(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        origin: NodeId,
        items: Vec<UpdateItem>,
    ) {
        let mut dests: BTreeMap<NodeId, Vec<UpdateItem>> = BTreeMap::new();
        for item in &items {
            let Some(decl) = self.decl(k, item.obj) else {
                continue;
            };
            self.ensure_home(decl, item.obj);
            if let Some(data) = self.store.get_mut(item.obj) {
                item.diff.apply(data);
            }
            self.twins.apply_remote(item.obj, &item.diff);
            let entry = self.dir.get_mut(&item.obj).expect("ensured home");
            for &dst in entry.copyset.iter() {
                if dst != origin {
                    dests.entry(dst).or_default().push(item.clone());
                }
            }
        }
        for (dst, items) in dests {
            debug_assert_ne!(dst, self.node);
            k.send(self.node, dst, MuninMsg::EagerOut { items });
        }
    }

    /// Consumer side of an eager push.
    pub(crate) fn handle_eager_out(
        &mut self,
        _k: &mut dyn KernelApi<MuninMsg>,
        _from: NodeId,
        items: Vec<UpdateItem>,
    ) {
        for item in items {
            if self.local.get(&item.obj).is_some_and(|s| s.valid) {
                if let Some(data) = self.store.get_mut(item.obj) {
                    item.diff.apply(data);
                }
                self.twins.apply_remote(item.obj, &item.diff);
            }
        }
    }
}

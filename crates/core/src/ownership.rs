//! The general read-write protocol: a directory-based adaptation of the
//! Berkeley Ownership cache-consistency protocol, strictly coherent.
//!
//! "Munin handles general read/write objects using a mechanism based on the
//! Berkeley Ownership cache consistency protocol. By default, objects that
//! are not recognized as some other specific type will be treated as
//! general read/write."
//!
//! States per copy: invalid / shared (readable) / owned (readable +
//! writable). Read faults are served by the owner (which downgrades to
//! shared-owner, i.e. must re-acquire exclusivity before its next write);
//! write faults invalidate every other copy and transfer ownership. The
//! home serializes exclusive transactions per object.

use crate::msg::MuninMsg;
use crate::server::MuninServer;
use crate::state::{ActiveWrite, DirOp, InflightKind};
use munin_sim::KernelApi;
use munin_types::{NodeId, ObjectId};

impl MuninServer {
    /// Home side of a general read-write read fault.
    pub(crate) fn general_read_req(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        from: NodeId,
        obj: ObjectId,
    ) {
        {
            let entry = self.dir.get_mut(&obj).expect("home ensured");
            if entry.active_write.is_some() {
                entry.queued.push_back(DirOp::Read { requester: from });
                return;
            }
        }
        self.general_serve_read(k, from, obj);
    }

    fn general_serve_read(&mut self, k: &mut dyn KernelApi<MuninMsg>, from: NodeId, obj: ObjectId) {
        let owner = {
            let entry = self.dir.get_mut(&obj).expect("home ensured");
            if from != self.node {
                entry.copyset.insert(from);
            }
            entry.owner
        };
        let home_valid = self.local.get(&obj).is_some_and(|s| s.valid);
        if home_valid {
            // Berkeley downgrade: once the home shares the object it may no
            // longer write without re-acquiring exclusivity — otherwise its
            // subsequent writes would bypass the invalidation transaction
            // and the new sharer would keep a stale copy forever.
            if owner == self.node {
                self.local_mut(obj).writable = false;
            }
            self.serve_read_copy(k, obj, from, None);
        } else if owner == self.node {
            k.error(format!("general-rw {obj}: home is owner but has no valid copy"));
        } else if owner == from {
            k.error(format!("general-rw {obj}: owner {from} read-faulted"));
        } else {
            // Forwarded: the reply travels owner→requester, off the home's
            // FIFO channels. Hold write transactions until the requester
            // confirms installation, or an invalidation could overtake the
            // in-flight copy.
            self.dir.get_mut(&obj).expect("home ensured").pending_reads.insert(from);
            self.route(k, owner, MuninMsg::FwdRead { obj, requester: from });
        }
    }

    /// Home: a forwarded read copy was installed at `from`.
    pub(crate) fn handle_read_confirm(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        from: NodeId,
        obj: ObjectId,
    ) {
        let drained = {
            let Some(entry) = self.dir.get_mut(&obj) else {
                return;
            };
            entry.pending_reads.remove(&from);
            entry.pending_reads.is_empty() && entry.active_write.is_none()
        };
        if drained {
            self.process_dir_queue(k, obj);
        }
    }

    /// Owner side: supply a requester with a read copy; downgrade to
    /// shared-owner (next local write must re-acquire exclusivity).
    pub(crate) fn handle_fwd_read(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        obj: ObjectId,
        requester: NodeId,
    ) {
        let Some(data) = self.store.get(obj).map(|d| d.to_vec()) else {
            k.error(format!("FwdRead at non-holder for {obj}"));
            return;
        };
        self.local_mut(obj).writable = false;
        self.route(
            k,
            requester,
            MuninMsg::ReadReply { obj, page: None, data, install: true, confirm: true },
        );
    }

    /// Home side of an ownership (write) request.
    pub(crate) fn handle_write_req(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        from: NodeId,
        obj: ObjectId,
    ) {
        let Some(decl) = self.decl(k, obj) else {
            return;
        };
        self.ensure_home(decl, obj);
        self.note_dir_access(k, obj, from, true);
        {
            let entry = self.dir.get_mut(&obj).expect("home ensured");
            if entry.active_write.is_some() || !entry.pending_reads.is_empty() {
                entry.queued.push_back(DirOp::Write { requester: from });
                return;
            }
        }
        self.start_write_txn(k, obj, from);
    }

    fn start_write_txn(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        obj: ObjectId,
        requester: NodeId,
    ) {
        let (owner, to_inval, had_copy) = {
            let entry = self.dir.get_mut(&obj).expect("home ensured");
            let owner = entry.owner;
            let had_copy = if requester == self.node {
                // The home's own copy state.
                false // handled below via local state
            } else {
                entry.copyset.contains(&requester)
            };
            let to_inval: Vec<NodeId> =
                entry.copyset.iter().copied().filter(|n| *n != requester && *n != owner).collect();
            (owner, to_inval, had_copy)
        };
        let had_copy =
            had_copy || (requester == self.node && self.local.get(&obj).is_some_and(|s| s.valid));
        let awaiting_owner_data = owner != requester && owner != self.node;
        // The home's own (possibly stale shared) copy dies with the
        // transaction unless the home is the requester.
        if requester != self.node
            && owner != self.node
            && self.local.get(&obj).is_some_and(|s| s.valid)
        {
            let st = self.local_mut(obj);
            st.valid = false;
            st.writable = false;
        }
        self.dir.get_mut(&obj).expect("exists").active_write = Some(ActiveWrite {
            requester,
            pending_invals: to_inval.len(),
            awaiting_owner_data,
            requester_had_copy: had_copy,
        });
        if awaiting_owner_data {
            self.route(k, owner, MuninMsg::OwnerYield { obj });
        }
        for n in to_inval {
            debug_assert_ne!(n, self.node, "home is never in its own copyset");
            k.send(self.node, n, MuninMsg::Inval { obj, session: Some(0) });
        }
        self.check_write_txn(k, obj);
    }

    /// Previous owner: ship the (possibly dirty) bytes home and invalidate.
    pub(crate) fn handle_owner_yield(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        from: NodeId,
        obj: ObjectId,
    ) {
        let Some(data) = self.store.evict(obj) else {
            k.error(format!("OwnerYield at non-holder for {obj}"));
            return;
        };
        let st = self.local_mut(obj);
        st.valid = false;
        st.writable = false;
        self.twins.drop_twin(obj);
        self.route(k, from, MuninMsg::OwnerData { obj, data });
    }

    /// Home: the owner's bytes arrived.
    pub(crate) fn handle_owner_data(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        _from: NodeId,
        obj: ObjectId,
        data: Vec<u8>,
    ) {
        self.store.install(obj, data);
        // The bytes are a transfer buffer, not a readable copy (they are
        // about to belong to the new owner).
        let st = self.local_mut(obj);
        st.valid = false;
        st.writable = false;
        if let Some(aw) = self.dir.get_mut(&obj).and_then(|e| e.active_write.as_mut()) {
            aw.awaiting_owner_data = false;
        }
        self.check_write_txn(k, obj);
    }

    /// A copy-holder received an invalidation (write transaction, or a
    /// protocol-reset after a runtime retype).
    pub(crate) fn handle_inval(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        from: NodeId,
        obj: ObjectId,
        session: Option<u64>,
    ) {
        self.drop_copy_salvaging_writes(obj);
        if let Some(s) = session {
            self.route(k, from, MuninMsg::InvalAck { obj, session: s });
        }
    }

    /// Home: an invalidation ack for the active write transaction.
    pub(crate) fn handle_inval_ack(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        _from: NodeId,
        obj: ObjectId,
        _session: u64,
    ) {
        if let Some(aw) = self.dir.get_mut(&obj).and_then(|e| e.active_write.as_mut()) {
            aw.pending_invals -= 1;
        }
        self.check_write_txn(k, obj);
    }

    /// Complete the active write transaction once every invalidation is
    /// acked and the previous owner's data (if needed) has arrived.
    pub(crate) fn check_write_txn(&mut self, k: &mut dyn KernelApi<MuninMsg>, obj: ObjectId) {
        let ready = {
            match self.dir.get(&obj).and_then(|e| e.active_write.as_ref()) {
                Some(aw) => aw.pending_invals == 0 && !aw.awaiting_owner_data,
                None => false,
            }
        };
        if !ready {
            return;
        }
        let aw =
            self.dir.get_mut(&obj).expect("exists").active_write.take().expect("checked ready");
        let requester = aw.requester;
        {
            let entry = self.dir.get_mut(&obj).expect("exists");
            entry.owner = requester;
            entry.copyset.clear();
            if requester != self.node {
                entry.copyset.insert(requester);
            }
        }
        if requester == self.node {
            // The home itself takes ownership; its store already holds the
            // latest bytes (its own, or the yielded owner data).
            let st = self.local_mut(obj);
            st.valid = true;
            st.writable = true;
            // A pending runtime retype lands now: the home holds the only
            // copy and the authoritative bytes, so switching protocols is
            // safe. Queued requests re-dispatch under the new type.
            let retype_to = self.dir.get_mut(&obj).expect("exists").pending_retype.take();
            if let Some(nt) = retype_to {
                k.retype(obj, nt);
                self.uncache_decl(obj);
                self.dir.get_mut(&obj).expect("exists").sharing = nt;
            }
            self.inflight_remove(obj, InflightKind::Ownership);
            self.replay_faults(k, obj);
        } else {
            let data = if aw.requester_had_copy {
                None
            } else {
                Some(self.store.get(obj).map(|d| d.to_vec()).unwrap_or_default())
            };
            let st = self.local_mut(obj);
            st.valid = false;
            st.writable = false;
            self.route(k, requester, MuninMsg::OwnerGrant { obj, data });
        }
        self.process_dir_queue(k, obj);
    }

    /// New owner: ownership (and possibly data) arrived.
    pub(crate) fn handle_owner_grant(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        _from: NodeId,
        obj: ObjectId,
        data: Option<Vec<u8>>,
    ) {
        if let Some(d) = data {
            self.store.install(obj, d);
        }
        let st = self.local_mut(obj);
        st.valid = true;
        st.writable = true;
        self.inflight_remove(obj, InflightKind::Ownership);
        self.replay_faults(k, obj);
    }

    /// Run queued directory operations: reads drain freely; the first write
    /// starts a new exclusive transaction and stops the drain.
    ///
    /// Requests queued across a runtime retype are re-dispatched under the
    /// object's *current* protocol: reads go through the regular fault
    /// service; writes from nodes still expecting an `OwnerGrant` receive a
    /// writable replica grant (which the loose protocols treat as a normal
    /// copy installation).
    pub(crate) fn process_dir_queue(&mut self, k: &mut dyn KernelApi<MuninMsg>, obj: ObjectId) {
        loop {
            let op = {
                let entry = self.dir.get_mut(&obj).expect("exists");
                if entry.active_write.is_some() {
                    return;
                }
                entry.queued.pop_front()
            };
            let sharing = self.decl(k, obj).map(|d| d.sharing);
            match op {
                None => return,
                Some(DirOp::Read { requester }) => {
                    if sharing == Some(munin_types::SharingType::GeneralReadWrite) {
                        self.general_serve_read(k, requester, obj);
                    } else {
                        self.handle_read_req(k, requester, obj, None);
                    }
                }
                Some(DirOp::Write { requester }) => {
                    if sharing == Some(munin_types::SharingType::GeneralReadWrite) {
                        let reads_pending = {
                            let entry = self.dir.get_mut(&obj).expect("exists");
                            if !entry.pending_reads.is_empty() {
                                entry.queued.push_front(DirOp::Write { requester });
                                true
                            } else {
                                false
                            }
                        };
                        if reads_pending {
                            return;
                        }
                        self.start_write_txn(k, obj, requester);
                        return;
                    }
                    // Post-retype: grant a writable replica instead.
                    let data = self.store.get(obj).map(|d| d.to_vec());
                    {
                        let entry = self.dir.get_mut(&obj).expect("exists");
                        if requester != self.node {
                            entry.copyset.insert(requester);
                            entry.consumers.insert(requester);
                        }
                    }
                    self.route(k, requester, MuninMsg::OwnerGrant { obj, data });
                }
                Some(DirOp::Migrate { requester }) => {
                    self.start_migration(k, obj, requester);
                    return;
                }
            }
        }
    }
}

//! Migratory objects: a single copy follows the access pattern.
//!
//! "Migratory objects are accessed by a single processor at a time, as would
//! be the case with an object accessed within a critical section. ...
//! migrated, together with the lock itself, to the next thread in the lock
//! queue."
//!
//! Two movement paths:
//!
//! * **lock-carried** (`locks.rs`): objects associated with a lock ride the
//!   `LockPass` message for free — the paper's headline mechanism;
//! * **fault-driven** (this module): an access fault sends `MigrateReq` to
//!   the home, which serializes migrations and forwards a `MigrateYield`
//!   along the *probable-holder chain* (each node remembers where it last
//!   sent the object — lock passes included — so the yield always reaches
//!   the real holder, as in Li's dynamic distributed manager).

use crate::msg::MuninMsg;
use crate::server::MuninServer;
use crate::state::{ActiveWrite, DirOp, InflightKind};
use munin_sim::KernelApi;
use munin_types::{NodeId, ObjectId};

impl MuninServer {
    /// Home side of a migration fault.
    pub(crate) fn handle_migrate_req(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        from: NodeId,
        obj: ObjectId,
    ) {
        let Some(decl) = self.decl(k, obj) else {
            return;
        };
        self.ensure_home(decl, obj);
        self.note_dir_access(k, obj, from, true);
        {
            let entry = self.dir.get_mut(&obj).expect("home ensured");
            if entry.active_write.is_some() {
                entry.queued.push_back(DirOp::Migrate { requester: from });
                return;
            }
        }
        self.start_migration(k, obj, from);
    }

    /// Begin one serialized migration transaction. The `active_write` slot
    /// doubles as the "migration in progress" marker.
    pub(crate) fn start_migration(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        obj: ObjectId,
        requester: NodeId,
    ) {
        self.dir.get_mut(&obj).expect("home ensured").active_write = Some(ActiveWrite {
            requester,
            pending_invals: 0,
            awaiting_owner_data: true,
            requester_had_copy: false,
        });
        let target = self.probable_holder.get(&obj).copied().unwrap_or(self.node);
        if target == self.node {
            // The home believes it holds the object.
            self.handle_migrate_yield(k, self.node, obj, requester);
        } else {
            self.probable_holder.insert(obj, requester);
            self.route(k, target, MuninMsg::MigrateYield { obj, requester });
        }
    }

    /// A yield reached us: hand the object over if we hold it, otherwise
    /// forward along our probable-holder pointer.
    pub(crate) fn handle_migrate_yield(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        _from: NodeId,
        obj: ObjectId,
        requester: NodeId,
    ) {
        let holds = self.local.get(&obj).is_some_and(|s| s.valid);
        if holds {
            // Unflushed loose writes can't exist on migratory objects (they
            // write in place), but a runtime retype may have left residue.
            self.twins.drop_twin(obj);
            self.duq.remove(obj);
            let data = self.store.evict(obj).unwrap_or_default();
            let st = self.local_mut(obj);
            st.valid = false;
            st.writable = false;
            self.probable_holder.insert(obj, requester);
            if requester == self.node {
                // Degenerate self-migration (home requested while holding).
                self.store.install(obj, data);
                let st = self.local_mut(obj);
                st.valid = true;
                st.writable = true;
                self.migration_done(k, obj, self.node);
            } else {
                self.route(k, requester, MuninMsg::MigrateData { obj, data });
            }
        } else {
            let next = self.probable_holder.get(&obj).copied().unwrap_or(self.node);
            if next == self.node {
                k.error(format!("migratory chain broken at n{} for {obj}", self.node.0));
                return;
            }
            self.probable_holder.insert(obj, requester);
            self.route(k, next, MuninMsg::MigrateYield { obj, requester });
        }
    }

    /// The object arrived: we are the holder now.
    pub(crate) fn handle_migrate_data(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        _from: NodeId,
        obj: ObjectId,
        data: Vec<u8>,
    ) {
        self.store.install(obj, data);
        let st = self.local_mut(obj);
        st.valid = true;
        st.writable = true;
        self.probable_holder.insert(obj, self.node);
        self.inflight_remove(obj, InflightKind::Migration);
        let Some(decl) = self.decl(k, obj) else {
            return;
        };
        if decl.home == self.node {
            self.migration_done(k, obj, self.node);
        } else {
            self.route(k, decl.home, MuninMsg::MigrateNotify { obj });
        }
        self.replay_faults(k, obj);
    }

    /// Home bookkeeping: migration transaction finished.
    pub(crate) fn handle_migrate_notify(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        from: NodeId,
        obj: ObjectId,
    ) {
        self.migration_done(k, obj, from);
    }

    fn migration_done(&mut self, k: &mut dyn KernelApi<MuninMsg>, obj: ObjectId, holder: NodeId) {
        {
            let entry = self.dir.get_mut(&obj).expect("home has dir entry");
            entry.owner = holder;
            entry.active_write = None;
        }
        if holder != self.node {
            self.probable_holder.insert(obj, holder);
        }
        self.inflight_remove(obj, InflightKind::Migration);
        self.replay_faults(k, obj);
        self.process_dir_queue(k, obj);
    }
}

//! The distributed proxy-lock protocol.
//!
//! Protocol summary (one token per lock; home runs the global FIFO queue):
//!
//! * **acquire** — token here and free: grant locally, zero messages.
//!   Otherwise queue locally and (once) send `LockReq` to the home.
//! * **home** — appends the requesting node to the global queue; whenever no
//!   fetch is outstanding, sends `LockFetch{to}` to the current token holder
//!   for the queue head.
//! * **holder** — passes the token immediately if free, or remembers the
//!   destination and passes on release. The `LockPass` carries the bytes of
//!   every *migratory object associated with the lock* that currently lives
//!   here — "the object is migrated, together with the lock itself, to the
//!   next thread in the lock queue" — so the next critical section faults on
//!   nothing.
//! * **release** — local waiters first (zero messages), then pending passes,
//!   otherwise the token stays (re-acquisition by this node remains free).

use crate::cover;
use crate::msg::MuninMsg;
use crate::server::MuninServer;
use crate::sync_objs::ProxyLock;
use munin_sim::{KernelApi, OpResult};
use munin_types::{DsmError, LockId, NodeId, ObjectId, ThreadId};

impl MuninServer {
    fn lock_home(&self, l: LockId) -> NodeId {
        self.sync.lock(l).map(|d| d.home).unwrap_or(NodeId(0))
    }

    /// Thread-side acquire (after the sync flush completed).
    pub(crate) fn lock_acquire(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        thread: ThreadId,
        l: LockId,
    ) {
        let home = self.lock_home(l);
        let p = self.proxies.entry(l).or_insert_with(|| ProxyLock::new(false));
        if p.can_grant_locally() {
            cover(k, "lock", "token-here", "local-grant");
            p.locked_by = Some(thread);
            k.complete(thread, OpResult::Unit, k.cost().local_lock_us);
            return;
        }
        p.local_queue.push_back(thread);
        if !p.has_token && !p.requested {
            cover(k, "lock", "token-remote", "request");
            p.requested = true;
            self.route(k, home, MuninMsg::LockReq { lock: l });
        }
        // If we hold the token but it is locked, the release path grants.
    }

    /// Thread-side release.
    pub(crate) fn lock_release(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        thread: ThreadId,
        l: LockId,
    ) {
        let holds = self.proxies.get(&l).is_some_and(|p| p.locked_by == Some(thread));
        if !holds {
            k.complete(thread, OpResult::Err(DsmError::NotLockHolder { lock: l, thread }), 0);
            return;
        }
        let p = self.proxies.get_mut(&l).expect("checked above");
        p.locked_by = None;
        // Local handoff first: the proxy win.
        if let Some(next) = p.local_queue.pop_front() {
            cover(k, "lock", "token-here", "proxy-handoff");
            p.locked_by = Some(next);
            k.complete(next, OpResult::Unit, k.cost().local_lock_us);
            k.complete(thread, OpResult::Unit, k.cost().local_lock_us);
            return;
        }
        // Then honour a pending pass from the home.
        if let Some(dst) = p.pending_pass.pop_front() {
            self.pass_token(k, l, dst);
        }
        k.complete(thread, OpResult::Unit, k.cost().local_lock_us);
    }

    /// Send the token (and associated migratory objects) to `dst`.
    pub(crate) fn pass_token(&mut self, k: &mut dyn KernelApi<MuninMsg>, l: LockId, dst: NodeId) {
        debug_assert_ne!(dst, self.node, "home never directs a pass to the current holder");
        {
            let p = self.proxies.get_mut(&l).expect("pass_token on known proxy");
            debug_assert!(p.has_token);
            debug_assert!(p.locked_by.is_none());
            p.has_token = false;
        }
        let piggyback = self.collect_lock_associates(k, l, dst);
        cover(
            k,
            "lock",
            "token-here",
            if piggyback.is_empty() { "token-pass" } else { "token-pass-migrate" },
        );
        self.route(k, dst, MuninMsg::LockPass { lock: l, piggyback });
    }

    /// Gather the migratory objects associated with `l` that live here; they
    /// ride the token. Their local copies are evicted and the probable-holder
    /// chain is pointed at the destination.
    fn collect_lock_associates(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        l: LockId,
        dst: NodeId,
    ) -> Vec<(ObjectId, Vec<u8>)> {
        let assoc = k.assoc_objects(l);
        let mut out = Vec::new();
        for obj in assoc {
            let holds = self.local.get(&obj).is_some_and(|s| s.valid);
            if !holds {
                continue;
            }
            if let Some(data) = self.store.evict(obj) {
                let st = self.local_mut(obj);
                st.valid = false;
                st.writable = false;
                self.twins.drop_twin(obj);
                self.duq.remove(obj);
                self.probable_holder.insert(obj, dst);
                out.push((obj, data));
            }
        }
        out
    }

    // ---- home side -----------------------------------------------------------

    pub(crate) fn handle_lock_req(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        from: NodeId,
        l: LockId,
    ) {
        let h = self.lock_homes.get_mut(&l).expect("LockReq routed to lock home");
        h.queue.push_back(from);
        self.dispatch_lock_fetch(k, l);
    }

    /// If the token is idle (no fetch in flight) and someone is waiting,
    /// direct the holder to pass it.
    pub(crate) fn dispatch_lock_fetch(&mut self, k: &mut dyn KernelApi<MuninMsg>, l: LockId) {
        let (to, holder) = {
            let h = self.lock_homes.get_mut(&l).expect("dispatch on lock home");
            if h.fetch_outstanding {
                return;
            }
            let Some(&next) = h.queue.front() else { return };
            h.fetch_outstanding = true;
            h.queue.pop_front();
            (next, h.token_at)
        };
        if holder == self.node {
            self.handle_lock_fetch(k, self.node, l, to);
        } else {
            self.route(k, holder, MuninMsg::LockFetch { lock: l, to });
        }
    }

    // ---- holder side -----------------------------------------------------------

    pub(crate) fn handle_lock_fetch(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        _from: NodeId,
        l: LockId,
        to: NodeId,
    ) {
        let can_pass = {
            let p = self.proxies.get_mut(&l).expect("fetch routed to token holder");
            if !p.has_token {
                // Should be impossible: the home serializes fetches and
                // learns of every pass via LockNotify before issuing the
                // next one.
                k.error(format!("n{}: LockFetch for {l} but token not here", self.node.0));
                return;
            }
            p.locked_by.is_none() && p.local_queue.is_empty()
        };
        if can_pass {
            self.pass_token(k, l, to);
        } else {
            cover(k, "lock", "token-here", "pass-deferred");
            self.proxies.get_mut(&l).expect("proxy exists").pending_pass.push_back(to);
        }
    }

    pub(crate) fn handle_lock_pass(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        _from: NodeId,
        l: LockId,
        piggyback: Vec<(ObjectId, Vec<u8>)>,
    ) {
        // Install the migratory objects that rode along.
        for (obj, data) in piggyback {
            self.store.install(obj, data);
            let st = self.local_mut(obj);
            st.valid = true;
            st.writable = true;
            self.probable_holder.insert(obj, self.node);
            self.replay_faults(k, obj);
        }
        let home = self.lock_home(l);
        {
            let p = self.proxies.get_mut(&l).expect("proxy exists for passed lock");
            p.has_token = true;
            p.requested = false;
        }
        // Tell the home where the token lives now.
        if home == self.node {
            self.note_token_arrival(k, l, self.node);
        } else {
            self.route(k, home, MuninMsg::LockNotify { lock: l });
        }
        // Grant to the first local waiter.
        let grant = {
            let p = self.proxies.get_mut(&l).expect("proxy exists");
            if p.locked_by.is_none() {
                p.local_queue.pop_front()
            } else {
                None
            }
        };
        if let Some(t) = grant {
            self.proxies.get_mut(&l).expect("proxy exists").locked_by = Some(t);
            k.complete(t, OpResult::Unit, k.cost().local_lock_us);
        }
    }

    pub(crate) fn handle_lock_notify(
        &mut self,
        k: &mut dyn KernelApi<MuninMsg>,
        from: NodeId,
        l: LockId,
    ) {
        self.note_token_arrival(k, l, from);
    }

    fn note_token_arrival(&mut self, k: &mut dyn KernelApi<MuninMsg>, l: LockId, at: NodeId) {
        {
            let h = self.lock_homes.get_mut(&l).expect("notify routed to lock home");
            h.token_at = at;
            h.fetch_outstanding = false;
        }
        self.dispatch_lock_fetch(k, l);
    }
}

//! The Munin inter-server protocol messages.
//!
//! One enum covers all eight data protocols plus the distributed
//! synchronization subsystem. Every variant carries its wire-size and
//! classification so the substrate can account for it without protocol
//! knowledge.

use munin_mem::Diff;
use munin_net::{MsgClass, PayloadInfo};
use munin_types::{BarrierId, CondId, LockId, NodeId, ObjectId, ThreadId};
use std::sync::Arc;

/// One object's worth of delayed updates inside a flush batch.
///
/// The diff payload is reference-counted: when a home fans an update out to
/// K copyset members, all K `FlushOut`/`EagerOut` items share one payload
/// instead of deep-cloning it K times.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateItem {
    pub obj: ObjectId,
    pub diff: Arc<Diff>,
}

impl UpdateItem {
    pub fn new(obj: ObjectId, diff: Diff) -> Self {
        UpdateItem { obj, diff: Arc::new(diff) }
    }
}

/// Per-item wire overhead inside batches (object id + item framing).
pub const ITEM_HEADER_BYTES: usize = 12;

/// Protocol messages exchanged between Munin servers.
#[derive(Debug, Clone, PartialEq)]
pub enum MuninMsg {
    // ---- fault service -------------------------------------------------
    /// Requester → home: fetch a copy. `page` selects one page of a large
    /// write-once object; `None` fetches the whole object.
    ReadReq { obj: ObjectId, page: Option<u32> },
    /// Home/owner → requester: the bytes. For `page = Some(p)` only that
    /// page; otherwise the whole object. `install` tells the requester
    /// whether this is a replica grant (join the copyset) or a one-shot
    /// remote load (read-mostly remote-access mode, result collection).
    /// `confirm` is set when the copy was forwarded by the owner (general
    /// read-write): the requester must send `ReadConfirm` to the home, which
    /// holds write transactions until the copy is known installed.
    ReadReply { obj: ObjectId, page: Option<u32>, data: Vec<u8>, install: bool, confirm: bool },
    /// Requester → home: forwarded read copy installed.
    ReadConfirm { obj: ObjectId },
    /// Home → current owner (general read-write): supply `requester` with a
    /// read copy directly.
    FwdRead { obj: ObjectId, requester: NodeId },
    /// Requester → home (general read-write): request write ownership.
    WriteReq { obj: ObjectId },
    /// Home → current owner: yield ownership; send your (possibly dirty)
    /// bytes back to the home and invalidate.
    OwnerYield { obj: ObjectId },
    /// Owner → home: the yielded bytes.
    OwnerData { obj: ObjectId, data: Vec<u8> },
    /// Home → new owner: ownership granted; `data` present unless the new
    /// owner already held a valid copy.
    OwnerGrant { obj: ObjectId, data: Option<Vec<u8>> },
    /// Home → copy holder: drop your copy. If `session` is set, ack to the
    /// home with that session id (coherence-transaction invalidation);
    /// `origin` is the node whose action triggered it.
    Inval { obj: ObjectId, session: Option<u64> },
    /// Copy holder → home: invalidation done.
    InvalAck { obj: ObjectId, session: u64 },

    // ---- migratory objects ----------------------------------------------
    /// Requester → home: I need the (single) copy.
    MigrateReq { obj: ObjectId },
    /// Forwarded along the probable-holder chain until it reaches the node
    /// actually holding the object.
    MigrateYield { obj: ObjectId, requester: NodeId },
    /// Holder → requester: the object migrates (holder drops it).
    MigrateData { obj: ObjectId, data: Vec<u8> },
    /// New holder → home: migration complete; the directory records the new
    /// holder and dispatches any queued migration.
    MigrateNotify { obj: ObjectId },

    // ---- delayed updates -------------------------------------------------
    /// Flusher → home(s): apply these updates and distribute to the copyset
    /// per policy; ack with `FlushDone{session}` once fully propagated.
    FlushIn { session: u64, items: Vec<UpdateItem> },
    /// Home → copy holders: refresh your copies (update policy).
    FlushOut { session: u64, items: Vec<UpdateItem> },
    /// Home → copy holders: drop these copies (invalidate policy).
    FlushInval { session: u64, objs: Vec<ObjectId> },
    /// Copy holder → home: out-propagation applied/dropped. `used` reports,
    /// per object, whether the previous version was read since the last
    /// update — the feedback the invalidate-vs-refresh adaptation needs.
    FlushOutAck { session: u64, used: Vec<(ObjectId, bool)> },
    /// Home → flusher: everything for `session` is propagated.
    FlushDone { session: u64 },
    /// Producer → home: eager producer-consumer push (fire-and-forget).
    Eager { items: Vec<UpdateItem> },
    /// Home → consumers: eager push distribution (fire-and-forget).
    EagerOut { items: Vec<UpdateItem> },

    // ---- atomics ----------------------------------------------------------
    /// Requester → home: fetch-and-add at the authoritative copy.
    AtomicReq { obj: ObjectId, offset: u32, delta: i64, thread: ThreadId },
    /// Home → requester: previous value.
    AtomicReply { thread: ThreadId, old: i64 },

    // ---- distributed locks (proxy protocol) -------------------------------
    /// Proxy server → lock home: a local thread wants the lock.
    LockReq { lock: LockId },
    /// Lock home → token holder: pass the token to `to` when convenient
    /// (immediately if free, on release otherwise).
    LockFetch { lock: LockId, to: NodeId },
    /// Token holder → next holder: the token itself. Carries the bytes of
    /// migratory objects associated with this lock — the paper's
    /// "the object is migrated together with the lock itself".
    LockPass { lock: LockId, piggyback: Vec<(ObjectId, Vec<u8>)> },
    /// New token holder → lock home: bookkeeping (so the home knows where to
    /// send the next `LockFetch`).
    LockNotify { lock: LockId },

    // ---- barriers ----------------------------------------------------------
    /// Node → coordinator: `threads` of my local threads reached the barrier.
    BarrierArrive { barrier: BarrierId, threads: u32 },
    /// Coordinator → participating nodes: everyone arrived; release.
    BarrierRelease { barrier: BarrierId },

    // ---- condition variables ------------------------------------------------
    /// Node → cv home: `thread` is waiting (it has already released the
    /// monitor lock).
    CvWait { cond: CondId, thread: ThreadId },
    /// Node → cv home: wake one/all waiters.
    CvSignal { cond: CondId, broadcast: bool },
    /// Cv home → waiter's node: wake `thread` (it will re-acquire the lock).
    CvWake { cond: CondId, thread: ThreadId },
}

impl MuninMsg {
    fn items_bytes(items: &[UpdateItem]) -> usize {
        items.iter().map(|i| i.diff.wire_bytes() + ITEM_HEADER_BYTES).sum()
    }
}

impl PayloadInfo for MuninMsg {
    fn class(&self) -> MsgClass {
        use MuninMsg::*;
        match self {
            ReadReply { .. } | OwnerData { .. } | OwnerGrant { .. } | MigrateData { .. } => {
                MsgClass::Data
            }
            FlushIn { .. } | FlushOut { .. } | Eager { .. } | EagerOut { .. } => MsgClass::Update,
            FlushOutAck { .. } | FlushDone { .. } | InvalAck { .. } => MsgClass::Ack,
            AtomicReply { .. } | AtomicReq { .. } => MsgClass::Sync,
            LockReq { .. }
            | LockFetch { .. }
            | LockPass { .. }
            | LockNotify { .. }
            | BarrierArrive { .. }
            | BarrierRelease { .. }
            | CvWait { .. }
            | CvSignal { .. }
            | CvWake { .. } => MsgClass::Sync,
            ReadReq { .. }
            | ReadConfirm { .. }
            | FwdRead { .. }
            | WriteReq { .. }
            | OwnerYield { .. }
            | Inval { .. }
            | MigrateReq { .. }
            | MigrateYield { .. }
            | MigrateNotify { .. }
            | FlushInval { .. } => MsgClass::Control,
        }
    }

    fn kind(&self) -> &'static str {
        use MuninMsg::*;
        match self {
            ReadReq { .. } => "ReadReq",
            ReadConfirm { .. } => "ReadConfirm",
            ReadReply { .. } => "ReadReply",
            FwdRead { .. } => "FwdRead",
            WriteReq { .. } => "WriteReq",
            OwnerYield { .. } => "OwnerYield",
            OwnerData { .. } => "OwnerData",
            OwnerGrant { .. } => "OwnerGrant",
            Inval { .. } => "Inval",
            InvalAck { .. } => "InvalAck",
            MigrateReq { .. } => "MigrateReq",
            MigrateNotify { .. } => "MigrateNotify",
            MigrateYield { .. } => "MigrateYield",
            MigrateData { .. } => "MigrateData",
            FlushIn { .. } => "FlushIn",
            FlushOut { .. } => "FlushOut",
            FlushInval { .. } => "FlushInval",
            FlushOutAck { .. } => "FlushOutAck",
            FlushDone { .. } => "FlushDone",
            Eager { .. } => "Eager",
            EagerOut { .. } => "EagerOut",
            AtomicReq { .. } => "AtomicReq",
            AtomicReply { .. } => "AtomicReply",
            LockReq { .. } => "LockReq",
            LockFetch { .. } => "LockFetch",
            LockPass { .. } => "LockPass",
            LockNotify { .. } => "LockNotify",
            BarrierArrive { .. } => "BarrierArrive",
            BarrierRelease { .. } => "BarrierRelease",
            CvWait { .. } => "CvWait",
            CvSignal { .. } => "CvSignal",
            CvWake { .. } => "CvWake",
        }
    }

    fn span_home_thread(&self) -> Option<ThreadId> {
        // AtomicReq is the one Munin message whose handling *is* the home
        // leg of a specific thread's op (the fetch-add at the
        // authoritative copy). Everything else either serves no single
        // waiting thread or is a reply, not the home-side handling.
        match self {
            MuninMsg::AtomicReq { thread, .. } => Some(*thread),
            _ => None,
        }
    }

    fn wire_bytes(&self) -> usize {
        use MuninMsg::*;
        match self {
            ReadReply { data, .. } | OwnerData { data, .. } | MigrateData { data, .. } => {
                data.len()
            }
            OwnerGrant { data, .. } => data.as_ref().map_or(0, |d| d.len()),
            FlushIn { items, .. }
            | FlushOut { items, .. }
            | Eager { items }
            | EagerOut { items } => Self::items_bytes(items),
            FlushInval { objs, .. } => objs.len() * 8,
            FlushOutAck { used, .. } => used.len(),
            LockPass { piggyback, .. } => piggyback.iter().map(|(_, d)| d.len() + 8).sum(),
            Inval { .. }
            | InvalAck { .. }
            | ReadReq { .. }
            | ReadConfirm { .. }
            | FwdRead { .. }
            | WriteReq { .. }
            | OwnerYield { .. }
            | MigrateReq { .. }
            | MigrateYield { .. }
            | MigrateNotify { .. }
            | FlushDone { .. }
            | AtomicReq { .. }
            | AtomicReply { .. }
            | LockReq { .. }
            | LockFetch { .. }
            | LockNotify { .. }
            | BarrierArrive { .. }
            | BarrierRelease { .. }
            | CvWait { .. }
            | CvSignal { .. }
            | CvWake { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use munin_types::ByteRange;

    #[test]
    fn data_messages_charge_for_payload() {
        let m = MuninMsg::ReadReply {
            obj: ObjectId(1),
            page: None,
            data: vec![0; 4096],
            install: true,
            confirm: false,
        };
        assert_eq!(m.wire_bytes(), 4096);
        assert_eq!(m.class(), MsgClass::Data);
        assert_eq!(m.kind(), "ReadReply");
    }

    #[test]
    fn control_messages_are_header_only() {
        assert_eq!(MuninMsg::ReadReq { obj: ObjectId(1), page: None }.wire_bytes(), 0);
        assert_eq!(MuninMsg::LockReq { lock: LockId(0) }.wire_bytes(), 0);
        assert_eq!(
            MuninMsg::BarrierArrive { barrier: BarrierId(0), threads: 3 }.class(),
            MsgClass::Sync
        );
    }

    #[test]
    fn update_batches_charge_diff_plus_item_headers() {
        let diff = Diff::overwrite(ByteRange::new(0, 100), vec![1; 100]);
        let items =
            vec![UpdateItem::new(ObjectId(1), diff.clone()), UpdateItem::new(ObjectId(2), diff)];
        let m = MuninMsg::FlushIn { session: 1, items };
        // Each item: 100 data + 8 run header + 12 item header.
        assert_eq!(m.wire_bytes(), 2 * (100 + 8 + ITEM_HEADER_BYTES));
        assert_eq!(m.class(), MsgClass::Update);
    }

    #[test]
    fn lock_pass_charges_for_piggyback() {
        let empty = MuninMsg::LockPass { lock: LockId(1), piggyback: vec![] };
        assert_eq!(empty.wire_bytes(), 0);
        let loaded =
            MuninMsg::LockPass { lock: LockId(1), piggyback: vec![(ObjectId(3), vec![0; 256])] };
        assert_eq!(loaded.wire_bytes(), 264);
        assert_eq!(loaded.class(), MsgClass::Sync);
    }

    #[test]
    fn acks_are_ack_class() {
        assert_eq!(MuninMsg::FlushDone { session: 9 }.class(), MsgClass::Ack);
        assert_eq!(MuninMsg::InvalAck { obj: ObjectId(0), session: 1 }.class(), MsgClass::Ack);
        assert_eq!(
            MuninMsg::FlushOutAck { session: 1, used: vec![(ObjectId(0), true)] }.class(),
            MsgClass::Ack
        );
    }
}

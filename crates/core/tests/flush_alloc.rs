//! Allocation regression tests for the zero-clone flush pipeline.
//!
//! The Munin performance claim is that a flush costs O(bytes written):
//! dirty-range twins snapshot only written ranges, flush-time diffing scans
//! only those ranges, and the working copy / diff payloads are never cloned
//! whole. These tests pin that down with a counting global allocator: a
//! flush of a 1 MiB object with one dirty byte must not perform a single
//! full-object-sized allocation.

use munin_core::{MuninServer, SyncDecls};
use munin_sim::{RunReport, ThreadCtx, WorldBuilder};
use munin_types::{ByteRange, MuninConfig, NodeId, ObjectDecl, ObjectId, SharingType};

#[path = "../../mem/testsupport/counting_alloc.rs"]
mod counting_alloc;
use counting_alloc::{big_allocs, CountingAlloc};

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const MIB: u32 = 1 << 20;

fn run_world(
    n_nodes: usize,
    cfg: MuninConfig,
    sync: SyncDecls,
    setup: impl FnOnce(&mut WorldBuilder),
) -> RunReport {
    let mut b = WorldBuilder::new(n_nodes);
    setup(&mut b);
    let servers: Vec<MuninServer> = (0..n_nodes)
        .map(|i| MuninServer::new(NodeId(i as u16), cfg.clone(), sync.clone()))
        .collect();
    b.build(servers).run()
}

/// One dirty byte in a 1 MiB write-many object: installing the replica is
/// allowed to move the object once (that *is* the data transfer), but the
/// write + flush afterwards must not allocate anything object-sized — no
/// full twin, no working-copy clone, no payload deep-clone.
#[test]
fn sparse_flush_of_1mib_object_is_clone_free() {
    let sync = SyncDecls::round_robin(0, 1, 1, 2);
    let report = run_world(2, MuninConfig::default(), sync, |b| {
        let obj = b.declare(
            ObjectDecl::new(ObjectId(0), "big", MIB, SharingType::WriteMany, NodeId(0)),
            NodeId(0),
        );
        b.spawn(NodeId(1), move |ctx: &mut ThreadCtx| {
            // Fault the replica in (a legitimate full-object transfer).
            let v = ctx.read(obj, ByteRange::new(0, 64));
            assert_eq!(v, vec![0; 64]);

            let before = big_allocs();
            ctx.write(obj, 123_456, vec![7]);
            ctx.flush();
            let during = big_allocs() - before;
            assert_eq!(
                during, 0,
                "write+flush of 1 dirty byte in a 1 MiB object performed \
                 {during} full-object-sized allocation(s)"
            );

            // The replica stays valid across the flush (this reads our own
            // copy — the home-side application is verified by the
            // scattered test below, which reads from node 0) and
            // re-reading it allocates nothing big.
            let after_flush = big_allocs();
            let v = ctx.read(obj, ByteRange::new(123_456, 1));
            assert_eq!(v, vec![7]);
            assert_eq!(big_allocs() - after_flush, 0);
        });
    });
    report.assert_clean();
}

/// Same property for a scatter of writes: the flush cost tracks bytes
/// written (here 256 bytes across 32 runs), not object size.
#[test]
fn scattered_flush_of_1mib_object_is_clone_free() {
    let sync = SyncDecls::round_robin(0, 1, 2, 2);
    let report = run_world(2, MuninConfig::default(), sync, |b| {
        let obj = b.declare(
            ObjectDecl::new(ObjectId(0), "big", MIB, SharingType::WriteMany, NodeId(0)),
            NodeId(0),
        );
        b.spawn(NodeId(1), move |ctx: &mut ThreadCtx| {
            let _ = ctx.read(obj, ByteRange::new(0, 8));
            let before = big_allocs();
            for i in 0..32u32 {
                // 32 runs of 8 bytes, 32 KiB apart.
                ctx.write(obj, i * 32 * 1024, vec![i as u8 + 1; 8]);
            }
            ctx.flush();
            let during = big_allocs() - before;
            assert_eq!(
                during, 0,
                "scattered 256-byte flush performed {during} full-object-sized allocation(s)"
            );
            ctx.barrier(munin_types::BarrierId(0));
        });
        b.spawn(NodeId(0), move |ctx: &mut ThreadCtx| {
            // Node 0 only verifies the result afterwards; the barrier
            // sequences it behind node 1's flush.
            ctx.barrier(munin_types::BarrierId(0));
            let v = ctx.read(obj, ByteRange::new(31 * 32 * 1024, 8));
            assert_eq!(v, vec![32; 8]);
        });
    });
    report.assert_clean();
}

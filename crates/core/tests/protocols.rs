//! End-to-end protocol tests: Munin servers running under the deterministic
//! simulation kernel, exercised by scripted application threads.

use munin_core::{MuninServer, SyncDecls};
use munin_sim::{RunReport, ThreadCtx, WorldBuilder};
use munin_types::{
    BarrierId, ByteRange, LockId, MuninConfig, NodeId, ObjectDecl, ObjectId, SharingType,
};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex};

/// Build and run an n-node Munin world.
fn run_world(
    n_nodes: usize,
    cfg: MuninConfig,
    sync: SyncDecls,
    setup: impl FnOnce(&mut WorldBuilder),
) -> RunReport {
    let mut b = WorldBuilder::new(n_nodes);
    setup(&mut b);
    let servers: Vec<MuninServer> = (0..n_nodes)
        .map(|i| MuninServer::new(NodeId(i as u16), cfg.clone(), sync.clone()))
        .collect();
    b.build(servers).run()
}

fn decl(name: &str, size: u32, sharing: SharingType) -> ObjectDecl {
    ObjectDecl::new(ObjectId(0), name, size, sharing, NodeId(0))
}

// ====================================================================
// Write-once
// ====================================================================

#[test]
fn write_once_replicates_after_publication() {
    let sync = SyncDecls::round_robin(0, 1, 2, 2);
    let report = run_world(2, MuninConfig::default(), sync, |b| {
        let obj = b.declare(decl("table", 64, SharingType::WriteOnce), NodeId(0));
        b.spawn(NodeId(0), move |ctx: &mut ThreadCtx| {
            ctx.write(obj, 0, vec![7; 64]);
            ctx.phase(1); // publish
            ctx.barrier(BarrierId(0));
        });
        b.spawn(NodeId(1), move |ctx: &mut ThreadCtx| {
            ctx.barrier(BarrierId(0));
            let v = ctx.read(obj, ByteRange::new(0, 64));
            assert_eq!(v, vec![7; 64]);
            // Second read must be free (local copy, never invalidated).
            let v2 = ctx.read(obj, ByteRange::new(10, 4));
            assert_eq!(v2, vec![7; 4]);
        });
    });
    report.assert_clean();
    assert_eq!(report.stats.kind("ReadReq").count, 1, "{:?}", report.stats.by_kind);
    assert_eq!(report.stats.kind("ReadReply").count, 1);
}

#[test]
fn write_once_read_blocks_until_publication() {
    // Reader faults before the creator publishes; it must get the final
    // initialized bytes, not zeros.
    let sync = SyncDecls::round_robin(0, 1, 2, 2);
    let seen = Arc::new(Mutex::new(Vec::new()));
    let seen2 = seen.clone();
    let report = run_world(2, MuninConfig::default(), sync, |b| {
        let obj = b.declare(decl("table", 16, SharingType::WriteOnce), NodeId(0));
        b.spawn(NodeId(1), move |ctx: &mut ThreadCtx| {
            // Fault immediately at t=0, before initialization finishes.
            let v = ctx.read(obj, ByteRange::new(0, 16));
            seen2.lock().unwrap().extend(v);
            ctx.barrier(BarrierId(0));
        });
        b.spawn(NodeId(0), move |ctx: &mut ThreadCtx| {
            ctx.compute(50_000); // slow initialization
            ctx.write(obj, 0, vec![9; 16]);
            ctx.phase(1);
            ctx.barrier(BarrierId(0));
        });
    });
    report.assert_clean();
    assert_eq!(*seen.lock().unwrap(), vec![9; 16]);
}

#[test]
fn write_once_write_after_publication_is_violation() {
    let sync = SyncDecls::round_robin(0, 0, 0, 1);
    let report = run_world(1, MuninConfig::default(), sync, |b| {
        let obj = b.declare(decl("table", 8, SharingType::WriteOnce), NodeId(0));
        b.spawn(NodeId(0), move |ctx: &mut ThreadCtx| {
            ctx.write(obj, 0, vec![1; 8]);
            ctx.phase(1);
            ctx.write(obj, 0, vec![2; 8]); // must panic (violation)
        });
    });
    assert!(!report.is_clean());
    assert!(report.errors[0].contains("write-once"), "{:?}", report.errors);
}

#[test]
fn large_write_once_pages_in_lazily() {
    let mut cfg = MuninConfig::default();
    cfg.write_once_page = 1024;
    let sync = SyncDecls::round_robin(0, 1, 2, 2);
    let report = run_world(2, cfg, sync, |b| {
        let obj = b.declare(decl("big", 8192, SharingType::WriteOnce), NodeId(0));
        b.spawn(NodeId(0), move |ctx: &mut ThreadCtx| {
            ctx.write(obj, 0, vec![5; 8192]);
            ctx.phase(1);
            ctx.barrier(BarrierId(0));
        });
        b.spawn(NodeId(1), move |ctx: &mut ThreadCtx| {
            ctx.barrier(BarrierId(0));
            // Touch only the first and last pages.
            assert_eq!(ctx.read(obj, ByteRange::new(0, 4)), vec![5; 4]);
            assert_eq!(ctx.read(obj, ByteRange::new(8000, 8)), vec![5; 8]);
        });
    });
    report.assert_clean();
    // Two page requests, not eight.
    assert_eq!(report.stats.kind("ReadReq").count, 2, "{:?}", report.stats.by_kind);
    let bytes = report.stats.kind("ReadReply").bytes;
    assert!(bytes <= 2 * 1024, "fetched {} bytes, expected <= 2 pages", bytes);
}

// ====================================================================
// Write-many + DUQ
// ====================================================================

#[test]
fn write_many_disjoint_writers_merge() {
    let sync = SyncDecls::round_robin(0, 1, 3, 3);
    let result = Arc::new(Mutex::new(Vec::new()));
    let r2 = result.clone();
    let report = run_world(3, MuninConfig::default(), sync, |b| {
        let obj = b.declare(decl("grid", 32, SharingType::WriteMany), NodeId(0));
        b.spawn(NodeId(1), move |ctx: &mut ThreadCtx| {
            ctx.write(obj, 0, vec![1; 16]);
            ctx.barrier(BarrierId(0));
            ctx.barrier(BarrierId(0));
        });
        b.spawn(NodeId(2), move |ctx: &mut ThreadCtx| {
            ctx.write(obj, 16, vec![2; 16]);
            ctx.barrier(BarrierId(0));
            ctx.barrier(BarrierId(0));
        });
        b.spawn(NodeId(0), move |ctx: &mut ThreadCtx| {
            ctx.barrier(BarrierId(0));
            let v = ctx.read(obj, ByteRange::new(0, 32));
            r2.lock().unwrap().extend(v);
            ctx.barrier(BarrierId(0));
        });
    });
    report.assert_clean();
    let mut want = vec![1u8; 16];
    want.extend(vec![2u8; 16]);
    assert_eq!(*result.lock().unwrap(), want, "disjoint writes both visible after barrier");
}

#[test]
fn duq_combines_many_writes_into_one_update() {
    let sync = SyncDecls::round_robin(0, 1, 2, 2);
    let report = run_world(2, MuninConfig::default(), sync, |b| {
        let obj = b.declare(decl("obj", 1024, SharingType::WriteMany), NodeId(0));
        b.spawn(NodeId(1), move |ctx: &mut ThreadCtx| {
            // Fetch a copy first (write-allocate on first write).
            for i in 0..100u32 {
                ctx.write(obj, (i * 8) % 1024, vec![i as u8; 8]);
            }
            ctx.barrier(BarrierId(0));
        });
        b.spawn(NodeId(0), move |ctx: &mut ThreadCtx| {
            ctx.barrier(BarrierId(0));
        });
    });
    report.assert_clean();
    // 100 writes → exactly one FlushIn at the barrier.
    assert_eq!(report.stats.kind("FlushIn").count, 1, "{:?}", report.stats.by_kind);
}

#[test]
fn strict_ablation_sends_update_per_write() {
    let sync = SyncDecls::round_robin(0, 1, 2, 2);
    let report = run_world(2, MuninConfig::default().strict(), sync, |b| {
        let obj = b.declare(decl("obj", 256, SharingType::WriteMany), NodeId(0));
        b.spawn(NodeId(1), move |ctx: &mut ThreadCtx| {
            for i in 0..10u32 {
                ctx.write(obj, i * 8, vec![1; 8]);
            }
            ctx.barrier(BarrierId(0));
        });
        b.spawn(NodeId(0), move |ctx: &mut ThreadCtx| {
            ctx.barrier(BarrierId(0));
        });
    });
    report.assert_clean();
    assert_eq!(
        report.stats.kind("FlushIn").count,
        10,
        "write-through: one coherence round per write"
    );
}

#[test]
fn unflushed_writes_survive_invalidation() {
    // Node 1 writes half the object; node 2's flush invalidates node 1's
    // copy (invalidate policy) while node 1 still has pending writes; node
    // 1's writes must still reach the home at its own sync.
    let mut cfg = MuninConfig::default();
    cfg.write_many_policy = munin_types::UpdatePolicy::Invalidate;
    let sync = SyncDecls::round_robin(1, 1, 3, 3);
    let result = Arc::new(Mutex::new(Vec::new()));
    let r2 = result.clone();
    let report = run_world(3, cfg, sync, |b| {
        let obj = b.declare(decl("grid", 8, SharingType::WriteMany), NodeId(0));
        b.spawn(NodeId(1), move |ctx: &mut ThreadCtx| {
            ctx.write(obj, 0, vec![1; 4]); // pending, not yet flushed
            ctx.compute(500_000); // hold the writes across node 2's flush
            ctx.barrier(BarrierId(0));
            ctx.barrier(BarrierId(0));
        });
        b.spawn(NodeId(2), move |ctx: &mut ThreadCtx| {
            ctx.write(obj, 4, vec![2; 4]);
            ctx.flush(); // propagates early; invalidates node 1's copy
            ctx.barrier(BarrierId(0));
            ctx.barrier(BarrierId(0));
        });
        b.spawn(NodeId(0), move |ctx: &mut ThreadCtx| {
            ctx.barrier(BarrierId(0));
            let v = ctx.read(obj, ByteRange::new(0, 8));
            r2.lock().unwrap().extend(v);
            ctx.barrier(BarrierId(0));
        });
    });
    report.assert_clean();
    assert_eq!(*result.lock().unwrap(), vec![1, 1, 1, 1, 2, 2, 2, 2]);
}

// ====================================================================
// Result objects
// ====================================================================

#[test]
fn result_objects_collect_without_replication() {
    let sync = SyncDecls::round_robin(0, 1, 3, 3);
    let collected = Arc::new(Mutex::new(Vec::new()));
    let c2 = collected.clone();
    let report = run_world(3, MuninConfig::default(), sync, |b| {
        let obj = b.declare(decl("result", 16, SharingType::Result), NodeId(0));
        b.spawn(NodeId(1), move |ctx: &mut ThreadCtx| {
            ctx.write(obj, 0, vec![1; 8]);
            // Re-reading our own bytes is local.
            assert_eq!(ctx.read(obj, ByteRange::new(0, 8)), vec![1; 8]);
            ctx.barrier(BarrierId(0));
        });
        b.spawn(NodeId(2), move |ctx: &mut ThreadCtx| {
            ctx.write(obj, 8, vec![2; 8]);
            ctx.barrier(BarrierId(0));
        });
        b.spawn(NodeId(0), move |ctx: &mut ThreadCtx| {
            ctx.barrier(BarrierId(0));
            let v = ctx.read(obj, ByteRange::new(0, 16));
            c2.lock().unwrap().extend(v);
        });
    });
    report.assert_clean();
    let mut want = vec![1u8; 8];
    want.extend(vec![2u8; 8]);
    assert_eq!(*collected.lock().unwrap(), want);
    // Writers never fetched copies: no ReadReply data traffic to them.
    assert_eq!(report.stats.kind("ReadReply").count, 0, "{:?}", report.stats.by_kind);
    // And the home never distributed updates (no copyset).
    assert_eq!(report.stats.kind("FlushOut").count, 0);
}

// ====================================================================
// Migratory + lock piggybacking
// ====================================================================

#[test]
fn migratory_rides_the_lock() {
    let n = 4usize;
    let sync = SyncDecls::round_robin(1, 1, n as u32, n);
    let total = Arc::new(AtomicI64::new(0));
    let report = {
        let mut b = WorldBuilder::new(n);
        let obj =
            b.declare(decl("counter", 8, SharingType::Migratory).with_lock(LockId(0)), NodeId(0));
        for i in 0..n {
            let total = total.clone();
            b.spawn(NodeId(i as u16), move |ctx: &mut ThreadCtx| {
                for _ in 0..5 {
                    ctx.lock(LockId(0));
                    let v = ctx.read(obj, ByteRange::new(0, 8));
                    let cur = i64::from_le_bytes(v.try_into().unwrap());
                    ctx.write(obj, 0, (cur + 1).to_le_bytes().to_vec());
                    ctx.unlock(LockId(0));
                }
                ctx.barrier(BarrierId(0));
                if ctx.node() == NodeId(0) && total.load(Ordering::SeqCst) == 0 {
                    ctx.lock(LockId(0));
                    let v = ctx.read(obj, ByteRange::new(0, 8));
                    total.store(i64::from_le_bytes(v.try_into().unwrap()), Ordering::SeqCst);
                    ctx.unlock(LockId(0));
                }
            });
        }
        let cfg = MuninConfig::default();
        let servers: Vec<MuninServer> =
            (0..n).map(|i| MuninServer::new(NodeId(i as u16), cfg.clone(), sync.clone())).collect();
        b.build(servers).run()
    };
    report.assert_clean();
    assert_eq!(total.load(Ordering::SeqCst), (n * 5) as i64, "mutual exclusion held");
    // The object moved with the lock: no separate migration traffic.
    assert_eq!(report.stats.kind("MigrateReq").count, 0, "{:?}", report.stats.by_kind);
    assert_eq!(report.stats.kind("MigrateYield").count, 0);
}

#[test]
fn unassociated_migratory_faults_and_migrates() {
    let sync = SyncDecls::round_robin(0, 1, 2, 2);
    let report = run_world(2, MuninConfig::default(), sync, |b| {
        let obj = b.declare(decl("mig", 16, SharingType::Migratory), NodeId(0));
        b.spawn(NodeId(0), move |ctx: &mut ThreadCtx| {
            ctx.write(obj, 0, vec![3; 16]);
            ctx.barrier(BarrierId(0));
        });
        b.spawn(NodeId(1), move |ctx: &mut ThreadCtx| {
            ctx.barrier(BarrierId(0));
            assert_eq!(ctx.read(obj, ByteRange::new(0, 16)), vec![3; 16]);
            ctx.write(obj, 0, vec![4; 16]);
            // Second access after migration: local, no traffic.
            assert_eq!(ctx.read(obj, ByteRange::new(0, 4)), vec![4; 4]);
        });
    });
    report.assert_clean();
    assert_eq!(report.stats.kind("MigrateReq").count, 1, "{:?}", report.stats.by_kind);
    assert_eq!(report.stats.kind("MigrateData").count, 1);
}

// ====================================================================
// Producer-consumer
// ====================================================================

#[test]
fn producer_consumer_eager_push_prefeeds_consumers() {
    let sync = SyncDecls::round_robin(0, 1, 2, 2);
    let report = run_world(2, MuninConfig::default(), sync, |b| {
        let obj = b.declare(
            decl("boundary", 64, SharingType::ProducerConsumer).with_eager(true),
            NodeId(0),
        );
        b.spawn(NodeId(0), move |ctx: &mut ThreadCtx| {
            // Generation 0: produce initial values; consumer joins.
            ctx.write(obj, 0, vec![1; 64]);
            ctx.barrier(BarrierId(0));
            ctx.barrier(BarrierId(0));
            // Generation 1.
            ctx.write(obj, 0, vec![2; 64]);
            ctx.barrier(BarrierId(0));
            ctx.barrier(BarrierId(0));
        });
        b.spawn(NodeId(1), move |ctx: &mut ThreadCtx| {
            ctx.barrier(BarrierId(0));
            assert_eq!(ctx.read(obj, ByteRange::new(0, 64)), vec![1; 64]);
            ctx.barrier(BarrierId(0));
            ctx.barrier(BarrierId(0));
            // New generation's values must be present with NO read fault.
            assert_eq!(ctx.read(obj, ByteRange::new(0, 64)), vec![2; 64]);
            ctx.barrier(BarrierId(0));
        });
    });
    report.assert_clean();
    assert_eq!(
        report.stats.kind("ReadReq").count,
        1,
        "only the first generation faults: {:?}",
        report.stats.by_kind
    );
    assert!(report.stats.kind("EagerOut").count >= 1, "updates were pushed eagerly");
}

#[test]
fn producer_consumer_demand_ablation_refaults() {
    let mut cfg = MuninConfig::default();
    cfg.pc_policy = munin_types::UpdatePolicy::Invalidate;
    let sync = SyncDecls::round_robin(0, 1, 2, 2);
    let report = run_world(2, cfg, sync, |b| {
        let obj = b.declare(decl("boundary", 64, SharingType::ProducerConsumer), NodeId(0));
        b.spawn(NodeId(0), move |ctx: &mut ThreadCtx| {
            ctx.write(obj, 0, vec![1; 64]);
            ctx.barrier(BarrierId(0));
            ctx.barrier(BarrierId(0));
            ctx.write(obj, 0, vec![2; 64]);
            ctx.barrier(BarrierId(0));
            ctx.barrier(BarrierId(0));
        });
        b.spawn(NodeId(1), move |ctx: &mut ThreadCtx| {
            ctx.barrier(BarrierId(0));
            assert_eq!(ctx.read(obj, ByteRange::new(0, 64)), vec![1; 64]);
            ctx.barrier(BarrierId(0));
            ctx.barrier(BarrierId(0));
            assert_eq!(ctx.read(obj, ByteRange::new(0, 64)), vec![2; 64]);
            ctx.barrier(BarrierId(0));
        });
    });
    report.assert_clean();
    assert_eq!(
        report.stats.kind("ReadReq").count,
        2,
        "demand fetch: each generation re-faults: {:?}",
        report.stats.by_kind
    );
}

// ====================================================================
// General read-write (Berkeley ownership, strict)
// ====================================================================

#[test]
fn general_rw_ownership_transfers_and_invalidates() {
    let sync = SyncDecls::round_robin(1, 1, 2, 2);
    let seen = Arc::new(Mutex::new(vec![]));
    let s2 = seen.clone();
    let report = run_world(2, MuninConfig::default(), sync, |b| {
        let obj = b.declare(decl("grw", 8, SharingType::GeneralReadWrite), NodeId(0));
        b.spawn(NodeId(0), move |ctx: &mut ThreadCtx| {
            ctx.write(obj, 0, vec![1; 8]);
            ctx.barrier(BarrierId(0));
            // Node 1 then writes; our next read must see it (strict).
            ctx.barrier(BarrierId(0));
            let v = ctx.read(obj, ByteRange::new(0, 8));
            s2.lock().unwrap().extend(v);
        });
        b.spawn(NodeId(1), move |ctx: &mut ThreadCtx| {
            ctx.barrier(BarrierId(0));
            assert_eq!(ctx.read(obj, ByteRange::new(0, 8)), vec![1; 8]);
            ctx.write(obj, 0, vec![2; 8]);
            ctx.barrier(BarrierId(0));
        });
    });
    report.assert_clean();
    assert_eq!(*seen.lock().unwrap(), vec![2; 8], "strict coherence: latest write visible");
    assert!(report.stats.kind("WriteReq").count >= 1, "{:?}", report.stats.by_kind);
}

// ====================================================================
// Read-mostly
// ====================================================================

#[test]
fn read_mostly_remote_access_pays_per_read() {
    let mut cfg = MuninConfig::default();
    cfg.read_mostly = munin_types::ReadMostlyMode::RemoteAccess;
    let sync = SyncDecls::round_robin(0, 0, 0, 2);
    let report = run_world(2, cfg, sync, |b| {
        let obj = b.declare(decl("bound", 8, SharingType::ReadMostly), NodeId(0));
        b.spawn(NodeId(1), move |ctx: &mut ThreadCtx| {
            for _ in 0..5 {
                ctx.read(obj, ByteRange::new(0, 8));
            }
        });
    });
    report.assert_clean();
    assert_eq!(report.stats.kind("ReadReq").count, 5, "every read is a remote load");
}

#[test]
fn read_mostly_replicated_refresh_updates_copies() {
    let sync = SyncDecls::round_robin(0, 1, 2, 2);
    let report = run_world(2, MuninConfig::default(), sync, |b| {
        let obj = b.declare(decl("bound", 8, SharingType::ReadMostly), NodeId(0));
        b.spawn(NodeId(1), move |ctx: &mut ThreadCtx| {
            for _ in 0..5 {
                ctx.read(obj, ByteRange::new(0, 8));
            }
            ctx.barrier(BarrierId(0));
            // After node 0's write, the refresh arrives; reads stay local.
            ctx.barrier(BarrierId(0));
            assert_eq!(ctx.read(obj, ByteRange::new(0, 8)), vec![9; 8]);
        });
        b.spawn(NodeId(0), move |ctx: &mut ThreadCtx| {
            ctx.barrier(BarrierId(0));
            ctx.write(obj, 0, vec![9; 8]); // write-through + refresh
            ctx.barrier(BarrierId(0));
        });
    });
    report.assert_clean();
    assert_eq!(report.stats.kind("ReadReq").count, 1, "one fault, then local reads");
    assert_eq!(report.stats.kind("FlushOut").count, 1, "one refresh to the one copy");
}

// ====================================================================
// Synchronization
// ====================================================================

#[test]
fn local_lock_reacquisition_is_free() {
    let sync = SyncDecls::round_robin(1, 0, 0, 2);
    let report = run_world(2, MuninConfig::default(), sync, |b| {
        b.spawn(NodeId(0), move |ctx: &mut ThreadCtx| {
            // Lock 0 is homed on node 0: the token never leaves.
            for _ in 0..100 {
                ctx.lock(LockId(0));
                ctx.unlock(LockId(0));
            }
        });
    });
    report.assert_clean();
    assert_eq!(report.stats.messages, 0, "local proxy: zero messages for 100 acquisitions");
}

#[test]
fn contended_lock_is_fair_and_exclusive() {
    let n = 4usize;
    let sync = SyncDecls::round_robin(1, 1, n as u32, n);
    let log = Arc::new(Mutex::new(Vec::new()));
    let report = {
        let mut b = WorldBuilder::new(n);
        let obj =
            b.declare(decl("shared", 8, SharingType::Migratory).with_lock(LockId(0)), NodeId(0));
        for i in 0..n {
            let log = log.clone();
            b.spawn(NodeId(i as u16), move |ctx: &mut ThreadCtx| {
                for _ in 0..3 {
                    ctx.lock(LockId(0));
                    let v = ctx.read(obj, ByteRange::new(0, 8));
                    let cur = i64::from_le_bytes(v.try_into().unwrap());
                    ctx.compute(100);
                    ctx.write(obj, 0, (cur + 1).to_le_bytes().to_vec());
                    log.lock().unwrap().push((ctx.thread_id().0, cur));
                    ctx.unlock(LockId(0));
                }
                ctx.barrier(BarrierId(0));
            });
        }
        let cfg = MuninConfig::default();
        let servers: Vec<MuninServer> =
            (0..n).map(|i| MuninServer::new(NodeId(i as u16), cfg.clone(), sync.clone())).collect();
        b.build(servers).run()
    };
    report.assert_clean();
    let log = log.lock().unwrap();
    // The counter values observed under the lock must be 0..12 in order:
    // perfect mutual exclusion.
    let values: Vec<i64> = log.iter().map(|(_, v)| *v).collect();
    assert_eq!(values, (0..12).collect::<Vec<i64>>());
}

#[test]
fn barrier_releases_all_threads_together() {
    let n = 3usize;
    let sync = SyncDecls::round_robin(0, 1, (n * 2) as u32, n);
    let order = Arc::new(Mutex::new(Vec::new()));
    let report = {
        let mut b = WorldBuilder::new(n);
        for i in 0..n {
            for j in 0..2 {
                let order = order.clone();
                b.spawn(NodeId(i as u16), move |ctx: &mut ThreadCtx| {
                    ctx.compute((i * 100 + j * 17) as u64);
                    order.lock().unwrap().push(('b', ctx.thread_id().0));
                    ctx.barrier(BarrierId(0));
                    order.lock().unwrap().push(('a', ctx.thread_id().0));
                });
            }
        }
        let cfg = MuninConfig::default();
        let servers: Vec<MuninServer> =
            (0..n).map(|i| MuninServer::new(NodeId(i as u16), cfg.clone(), sync.clone())).collect();
        b.build(servers).run()
    };
    report.assert_clean();
    let order = order.lock().unwrap();
    let first_after = order.iter().position(|(p, _)| *p == 'a').unwrap();
    assert!(
        order[..first_after].iter().all(|(p, _)| *p == 'b'),
        "no thread passed the barrier before all arrived: {order:?}"
    );
}

#[test]
fn condition_variable_handoff() {
    let sync = SyncDecls {
        locks: vec![munin_core::LockDecl { id: LockId(0), home: NodeId(0) }],
        barriers: vec![],
        conds: vec![munin_core::CondDecl { id: munin_types::CondId(0), home: NodeId(0) }],
    };
    let got = Arc::new(AtomicI64::new(0));
    let g2 = got.clone();
    let report = run_world(2, MuninConfig::default(), sync, |b| {
        let obj =
            b.declare(decl("slot", 8, SharingType::Migratory).with_lock(LockId(0)), NodeId(0));
        b.spawn(NodeId(0), move |ctx: &mut ThreadCtx| {
            ctx.lock(LockId(0));
            // Wait until the producer fills the slot.
            loop {
                let v = ctx.read(obj, ByteRange::new(0, 8));
                let cur = i64::from_le_bytes(v.try_into().unwrap());
                if cur != 0 {
                    g2.store(cur, Ordering::SeqCst);
                    break;
                }
                ctx.cond_wait(munin_types::CondId(0), LockId(0));
            }
            ctx.unlock(LockId(0));
        });
        b.spawn(NodeId(1), move |ctx: &mut ThreadCtx| {
            ctx.compute(10_000);
            ctx.lock(LockId(0));
            ctx.write(obj, 0, 42i64.to_le_bytes().to_vec());
            ctx.cond_signal(munin_types::CondId(0));
            ctx.unlock(LockId(0));
        });
    });
    report.assert_clean();
    assert_eq!(got.load(Ordering::SeqCst), 42);
}

#[test]
fn distributed_atomic_counter() {
    let n = 4usize;
    let sync = SyncDecls::round_robin(0, 1, n as u32, n);
    let finals = Arc::new(Mutex::new(Vec::new()));
    let report = {
        let mut b = WorldBuilder::new(n);
        let obj = b.declare(decl("ctr", 8, SharingType::GeneralReadWrite), NodeId(0));
        for i in 0..n {
            let finals = finals.clone();
            b.spawn(NodeId(i as u16), move |ctx: &mut ThreadCtx| {
                let mut mine = Vec::new();
                for _ in 0..10 {
                    mine.push(ctx.fetch_add(obj, 0, 1));
                }
                ctx.barrier(BarrierId(0));
                finals.lock().unwrap().extend(mine);
            });
        }
        let cfg = MuninConfig::default();
        let servers: Vec<MuninServer> =
            (0..n).map(|i| MuninServer::new(NodeId(i as u16), cfg.clone(), sync.clone())).collect();
        b.build(servers).run()
    };
    report.assert_clean();
    let mut vals = finals.lock().unwrap().clone();
    vals.sort_unstable();
    assert_eq!(vals, (0..40).collect::<Vec<i64>>(), "fetch-add is linearizable");
}

// ====================================================================
// Runtime type detection (§4 future work)
// ====================================================================

#[test]
fn detector_promotes_general_to_producer_consumer() {
    let mut cfg = MuninConfig::default();
    cfg.adaptive_typing = true;
    cfg.adapt_min_samples = 16;
    let sync = SyncDecls::round_robin(0, 1, 2, 2);
    let report = run_world(3, cfg, sync, |b| {
        // Homed on node 0; producer on node 1, consumer on node 2: the home
        // observes a pure producer-consumer pattern.
        let obj = b.declare(decl("pc?", 32, SharingType::GeneralReadWrite), NodeId(0));
        b.spawn(NodeId(1), move |ctx: &mut ThreadCtx| {
            for g in 0..30u8 {
                ctx.write(obj, 0, vec![g; 32]);
                ctx.barrier(BarrierId(0));
                ctx.barrier(BarrierId(0));
            }
        });
        b.spawn(NodeId(2), move |ctx: &mut ThreadCtx| {
            for g in 0..30u8 {
                ctx.barrier(BarrierId(0));
                assert_eq!(ctx.read(obj, ByteRange::new(0, 32)), vec![g; 32]);
                ctx.barrier(BarrierId(0));
            }
        });
    });
    report.assert_clean();
    // After promotion the consumer stops re-faulting: far fewer ReadReqs
    // than the 30 a pure write-invalidate pattern would need.
    let rr = report.stats.kind("ReadReq").count;
    assert!(rr < 25, "detector cut read faults: {rr} ReadReqs {:?}", report.stats.by_kind);
    assert!(report.stats.kind("FlushOut").count > 0, "updates flow as refreshes after promotion");
}

// ====================================================================
// Determinism of the full stack
// ====================================================================

#[test]
fn full_stack_runs_are_bit_identical() {
    let run = || {
        let sync = SyncDecls::round_robin(2, 1, 4, 4);
        let report = {
            let mut b = WorldBuilder::new(4);
            let grid = b.declare(decl("grid", 256, SharingType::WriteMany), NodeId(0));
            let ctr =
                b.declare(decl("ctr", 8, SharingType::Migratory).with_lock(LockId(0)), NodeId(1));
            for i in 0..4 {
                b.spawn(NodeId(i as u16), move |ctx: &mut ThreadCtx| {
                    for round in 0..3u32 {
                        ctx.write(grid, (i as u32) * 64, vec![round as u8; 64]);
                        ctx.lock(LockId(0));
                        let v = ctx.read(ctr, ByteRange::new(0, 8));
                        let cur = i64::from_le_bytes(v.try_into().unwrap());
                        ctx.write(ctr, 0, (cur + 1).to_le_bytes().to_vec());
                        ctx.unlock(LockId(0));
                        ctx.barrier(BarrierId(0));
                    }
                });
            }
            let cfg = MuninConfig::default();
            let servers: Vec<MuninServer> = (0..4)
                .map(|i| MuninServer::new(NodeId(i as u16), cfg.clone(), sync.clone()))
                .collect();
            b.build(servers).run()
        };
        report.assert_clean();
        (report.finished_at, report.stats.messages, report.stats.bytes, report.ops)
    };
    assert_eq!(run(), run());
}

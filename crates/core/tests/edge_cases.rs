//! Edge-case and failure-path tests for the Munin runtime.

use munin_core::{MuninServer, SyncDecls};
use munin_sim::{RunReport, ThreadCtx, WorldBuilder};
use munin_types::{
    BarrierId, ByteRange, CondId, LockId, MuninConfig, NodeId, ObjectDecl, ObjectId, SharingType,
};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex};

fn run_world(
    n_nodes: usize,
    cfg: MuninConfig,
    sync: SyncDecls,
    setup: impl FnOnce(&mut WorldBuilder),
) -> RunReport {
    let mut b = WorldBuilder::new(n_nodes);
    setup(&mut b);
    let servers: Vec<MuninServer> = (0..n_nodes)
        .map(|i| MuninServer::new(NodeId(i as u16), cfg.clone(), sync.clone()))
        .collect();
    b.build(servers).run()
}

fn decl(name: &str, size: u32, sharing: SharingType) -> ObjectDecl {
    ObjectDecl::new(ObjectId(0), name, size, sharing, NodeId(0))
}

#[test]
fn out_of_bounds_read_is_reported_not_hung() {
    let report = run_world(1, MuninConfig::default(), SyncDecls::default(), |b| {
        let obj = b.declare(decl("small", 8, SharingType::WriteMany), NodeId(0));
        b.spawn(NodeId(0), move |ctx: &mut ThreadCtx| {
            let _ = ctx.read(obj, ByteRange::new(4, 8)); // 4..12 of size 8
        });
    });
    assert!(!report.is_clean());
    assert!(report.errors[0].contains("out of bounds"), "{:?}", report.errors);
}

#[test]
fn unknown_object_is_reported() {
    let report = run_world(1, MuninConfig::default(), SyncDecls::default(), |b| {
        b.spawn(NodeId(0), |ctx: &mut ThreadCtx| {
            let _ = ctx.read(ObjectId(999), ByteRange::new(0, 4));
        });
    });
    assert!(!report.is_clean());
    assert!(report.errors[0].contains("unknown object"), "{:?}", report.errors);
}

#[test]
fn remote_private_access_is_a_sharing_violation() {
    let report = run_world(2, MuninConfig::default(), SyncDecls::default(), |b| {
        let obj = b.declare(decl("mine", 8, SharingType::Private), NodeId(0));
        b.spawn(NodeId(1), move |ctx: &mut ThreadCtx| {
            let _ = ctx.read(obj, ByteRange::new(0, 8));
        });
    });
    assert!(!report.is_clean());
    assert!(report.errors[0].contains("private"), "{:?}", report.errors);
}

#[test]
fn unlock_without_hold_is_reported() {
    let sync = SyncDecls::round_robin(1, 0, 0, 1);
    let report = run_world(1, MuninConfig::default(), sync, |b| {
        b.spawn(NodeId(0), |ctx: &mut ThreadCtx| {
            ctx.unlock(LockId(0));
        });
    });
    assert!(!report.is_clean());
    assert!(report.errors[0].contains("without holding"), "{:?}", report.errors);
}

#[test]
fn duq_pressure_triggers_background_flush() {
    let mut cfg = MuninConfig::default();
    cfg.duq_max_objects = 4;
    let sync = SyncDecls::round_robin(0, 1, 2, 2);
    let report = run_world(2, cfg, sync, |b| {
        // Eight distinct objects dirtied without any synchronization: the
        // queue limit must force flushes before the barrier.
        let objs: Vec<ObjectId> = (0..8)
            .map(|i| b.declare(decl(&format!("o{i}"), 16, SharingType::WriteMany), NodeId(0)))
            .collect();
        b.spawn(NodeId(1), move |ctx: &mut ThreadCtx| {
            for (i, o) in objs.iter().enumerate() {
                ctx.write(*o, 0, vec![i as u8 + 1; 16]);
            }
            ctx.barrier(BarrierId(0));
        });
        b.spawn(NodeId(0), move |ctx: &mut ThreadCtx| {
            ctx.barrier(BarrierId(0));
        });
    });
    report.assert_clean();
    assert!(
        report.stats.kind("FlushIn").count >= 2,
        "queue pressure split the flush: {:?}",
        report.stats.by_kind
    );
}

#[test]
fn write_allocate_fetches_before_writing() {
    // First access to a write-many object from a remote node is a write:
    // the runtime must fetch a copy (write-allocate), apply, then flush.
    let sync = SyncDecls::round_robin(0, 1, 2, 2);
    let seen = Arc::new(Mutex::new(Vec::new()));
    let s2 = seen.clone();
    let report = run_world(2, MuninConfig::default(), sync, |b| {
        let obj = b.declare(decl("x", 16, SharingType::WriteMany), NodeId(0));
        b.spawn(NodeId(0), move |ctx: &mut ThreadCtx| {
            ctx.write(obj, 0, vec![1; 16]); // home initializes
            ctx.barrier(BarrierId(0));
            ctx.barrier(BarrierId(0));
            s2.lock().unwrap().extend(ctx.read(obj, ByteRange::new(0, 16)));
        });
        b.spawn(NodeId(1), move |ctx: &mut ThreadCtx| {
            ctx.barrier(BarrierId(0));
            ctx.write(obj, 4, vec![2; 4]); // write-allocate fault
            ctx.barrier(BarrierId(0));
        });
    });
    report.assert_clean();
    let want = vec![1, 1, 1, 1, 2, 2, 2, 2, 1, 1, 1, 1, 1, 1, 1, 1];
    assert_eq!(*seen.lock().unwrap(), want);
    assert_eq!(report.stats.kind("ReadReply").count, 1, "write-allocate fetched a copy");
}

#[test]
fn multiple_threads_per_node_share_the_duq() {
    let sync = SyncDecls::round_robin(0, 1, 3, 2);
    let report = run_world(2, MuninConfig::default(), sync, |b| {
        let obj = b.declare(decl("x", 32, SharingType::WriteMany), NodeId(0));
        // Two threads on node 1 write disjoint halves; their updates flush
        // together (per-node DUQ).
        b.spawn(NodeId(1), move |ctx: &mut ThreadCtx| {
            ctx.write(obj, 0, vec![1; 16]);
            ctx.barrier(BarrierId(0));
        });
        b.spawn(NodeId(1), move |ctx: &mut ThreadCtx| {
            ctx.write(obj, 16, vec![2; 16]);
            ctx.barrier(BarrierId(0));
        });
        b.spawn(NodeId(0), move |ctx: &mut ThreadCtx| {
            ctx.barrier(BarrierId(0));
            let v = ctx.read(obj, ByteRange::new(0, 32));
            assert_eq!(&v[..16], &[1; 16]);
            assert_eq!(&v[16..], &[2; 16]);
        });
    });
    report.assert_clean();
    // Both threads' writes travelled in (at most) two FlushIn batches.
    assert!(report.stats.kind("FlushIn").count <= 2, "{:?}", report.stats.by_kind);
}

#[test]
fn cond_broadcast_wakes_all_waiters() {
    let sync = SyncDecls {
        locks: vec![munin_types::LockDecl { id: LockId(0), home: NodeId(0) }],
        barriers: vec![],
        conds: vec![munin_types::CondDecl { id: CondId(0), home: NodeId(0) }],
    };
    let woken = Arc::new(AtomicI64::new(0));
    let report = run_world(3, MuninConfig::default(), sync, |b| {
        let flag =
            b.declare(decl("flag", 8, SharingType::Migratory).with_lock(LockId(0)), NodeId(0));
        for i in 0..2 {
            let woken = woken.clone();
            b.spawn(NodeId(i as u16), move |ctx: &mut ThreadCtx| {
                ctx.lock(LockId(0));
                loop {
                    let v = ctx.read(flag, ByteRange::new(0, 8));
                    if i64::from_le_bytes(v.try_into().unwrap()) != 0 {
                        break;
                    }
                    ctx.cond_wait(CondId(0), LockId(0));
                }
                ctx.unlock(LockId(0));
                woken.fetch_add(1, Ordering::SeqCst);
            });
        }
        b.spawn(NodeId(2), move |ctx: &mut ThreadCtx| {
            ctx.compute(20_000);
            ctx.lock(LockId(0));
            ctx.write(flag, 0, 1i64.to_le_bytes().to_vec());
            ctx.cond_broadcast(CondId(0));
            ctx.unlock(LockId(0));
        });
    });
    report.assert_clean();
    assert_eq!(woken.load(Ordering::SeqCst), 2);
}

#[test]
fn atomics_from_all_nodes_serialize_at_home() {
    let sync = SyncDecls::round_robin(0, 1, 3, 3);
    let report = run_world(3, MuninConfig::default(), sync, |b| {
        let ctr = b.declare(decl("ctr", 16, SharingType::GeneralReadWrite), NodeId(2));
        for i in 0..3 {
            b.spawn(NodeId(i as u16), move |ctx: &mut ThreadCtx| {
                for _ in 0..10 {
                    ctx.fetch_add(ctr, 8, 1);
                }
                ctx.barrier(BarrierId(0));
                if ctx.node() == NodeId(2) {
                    assert_eq!(ctx.fetch_add(ctr, 8, 0), 30);
                }
            });
        }
    });
    report.assert_clean();
    // Remote atomics: 2 nodes × 10 ops × (req + reply).
    assert_eq!(report.stats.kind("AtomicReq").count, 20);
}

#[test]
fn eager_fence_orders_pushes_before_barrier_release() {
    // A producer whose eager pushes ride a slow (big-payload) path must
    // still never let a consumer read stale data after the barrier: the
    // acknowledged fence flush guarantees it.
    let sync = SyncDecls::round_robin(0, 1, 2, 2);
    let report = run_world(2, MuninConfig::default(), sync, |b| {
        let obj =
            b.declare(decl("bnd", 8192, SharingType::ProducerConsumer).with_eager(true), NodeId(0));
        b.spawn(NodeId(0), move |ctx: &mut ThreadCtx| {
            ctx.write(obj, 0, vec![1; 8192]);
            ctx.barrier(BarrierId(0));
            ctx.barrier(BarrierId(0));
            // Big eager push right before the barrier.
            ctx.write(obj, 0, vec![2; 8192]);
            ctx.barrier(BarrierId(0));
        });
        b.spawn(NodeId(1), move |ctx: &mut ThreadCtx| {
            ctx.barrier(BarrierId(0));
            assert_eq!(ctx.read(obj, ByteRange::new(0, 4)), vec![1; 4]);
            ctx.barrier(BarrierId(0));
            ctx.barrier(BarrierId(0));
            assert_eq!(
                ctx.read(obj, ByteRange::new(8000, 4)),
                vec![2; 4],
                "barrier must not release before the eager push is applied"
            );
        });
    });
    report.assert_clean();
}

#[test]
fn migratory_three_node_chain_follows_probable_holders() {
    // The object hops 0 → 1 → 2 by faults; node 0's final fault must chase
    // the probable-holder chain to node 2.
    let sync = SyncDecls::round_robin(0, 2, 3, 3);
    let report = run_world(3, MuninConfig::default(), sync, |b| {
        let obj = b.declare(decl("hot", 8, SharingType::Migratory), NodeId(0));
        b.spawn(NodeId(0), move |ctx: &mut ThreadCtx| {
            ctx.write(obj, 0, vec![1; 8]);
            ctx.barrier(BarrierId(0));
            ctx.barrier(BarrierId(1));
            let v = ctx.read(obj, ByteRange::new(0, 8));
            assert_eq!(v, vec![3; 8], "value written by the last holder");
        });
        b.spawn(NodeId(1), move |ctx: &mut ThreadCtx| {
            ctx.barrier(BarrierId(0));
            ctx.write(obj, 0, vec![2; 8]);
            ctx.barrier(BarrierId(1));
        });
        b.spawn(NodeId(2), move |ctx: &mut ThreadCtx| {
            ctx.barrier(BarrierId(0));
            ctx.compute(50_000); // after node 1 took it
            ctx.write(obj, 0, vec![3; 8]);
            ctx.barrier(BarrierId(1));
        });
    });
    report.assert_clean();
}

#[test]
fn dynamic_alloc_creates_usable_objects() {
    let sync = SyncDecls::round_robin(0, 1, 2, 2);
    let shared_id = Arc::new(AtomicI64::new(-1));
    let s2 = shared_id.clone();
    let report = run_world(2, MuninConfig::default(), sync, |b| {
        b.spawn(NodeId(0), move |ctx: &mut ThreadCtx| {
            let id = ctx.alloc(decl("dyn", 64, SharingType::WriteMany));
            ctx.write(id, 0, vec![9; 64]);
            s2.store(id.0 as i64, Ordering::SeqCst);
            ctx.barrier(BarrierId(0));
            ctx.barrier(BarrierId(0));
        });
        let shared_id = shared_id.clone();
        b.spawn(NodeId(1), move |ctx: &mut ThreadCtx| {
            ctx.barrier(BarrierId(0));
            let id = ObjectId(shared_id.load(Ordering::SeqCst) as u64);
            assert_eq!(ctx.read(id, ByteRange::new(60, 4)), vec![9; 4]);
            ctx.barrier(BarrierId(0));
        });
    });
    report.assert_clean();
}

#[test]
fn zero_length_accesses_are_harmless() {
    let report = run_world(1, MuninConfig::default(), SyncDecls::default(), |b| {
        let obj = b.declare(decl("x", 8, SharingType::WriteMany), NodeId(0));
        b.spawn(NodeId(0), move |ctx: &mut ThreadCtx| {
            assert_eq!(ctx.read(obj, ByteRange::new(0, 0)), Vec::<u8>::new());
            ctx.write(obj, 8, vec![]); // zero-length write at the end: ok
            assert_eq!(ctx.read(obj, ByteRange::new(8, 0)), Vec::<u8>::new());
        });
    });
    report.assert_clean();
}

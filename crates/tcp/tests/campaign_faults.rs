//! Process-fault coverage for the TCP fabric, expressed as campaign
//! scenarios (`munin_campaign::scenario`). These replace the hand-written
//! kill/half-close tests that used to live in `tests/faults.rs`: the fault
//! shapes, the peer-naming assertions, and the prompt-teardown bound all
//! survive, but the plan now travels through the campaign's canonical TOML
//! and the observed history is checked for coherence on the way out.
//!
//! The `munin-node` binary lives in munin-api (the one crate linking every
//! protocol); a workspace build produces it before these tests run, and
//! `Target::MuninTcp.supported()` skips gracefully when it is absent.

use munin_campaign::scenario::{find, run};
use munin_campaign::{ExecOptions, Target};
use std::time::{Duration, Instant};

fn skip() -> bool {
    if let Err(notice) = Target::MuninTcp.supported() {
        eprintln!("skipping tcp campaign fault test: {notice}");
        return true;
    }
    false
}

/// Run a named scenario on its native TCP target with a tight stall
/// timeout (the programmatic equivalent of `MUNIN_RT_STALL_MS`, set as a
/// field so racing test threads never touch the process environment), and
/// assert the run tears down promptly instead of hanging.
fn assert_fault_scenario(name: &str) {
    let s = find(name).unwrap_or_else(|| panic!("unknown scenario {name}"));
    let mut opts = ExecOptions::default();
    opts.tcp_stall = Duration::from_millis(500);
    let started = Instant::now();
    let out = run(&s, &opts).unwrap_or_else(|e| panic!("{name}: {e}"));
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(12),
        "{name}: run should tear down promptly, took {elapsed:?}"
    );
    // run() already asserted the expectation (unclean + error naming the
    // peer + no coherence violations); re-state the load-bearing bits so a
    // scenario edit can't silently weaken this test.
    assert!(!out.clean, "{name}: the fault must make the run unclean");
    assert!(out.violations.is_empty(), "{name}: completed history must stay coherent");
}

/// Killing a node process mid-run: the coordinator notices the dead control
/// stream (or a failed op forward) and reports `n1` by name.
#[test]
fn killed_node_process_is_named_not_hung() {
    if skip() {
        return;
    }
    assert_fault_scenario("tcp-kill");
}

/// Killing a node while every thread keeps a full window of pipelined
/// fetch-adds in flight: the failure must reach an outstanding token
/// (fail-closed poison, not a hang) and still name the lost peer.
#[test]
fn killed_node_with_pipelined_ops_in_flight_fails_closed() {
    if skip() {
        return;
    }
    assert_fault_scenario("tcp-kill-pipelined");
}

/// Half-closing one data stream mid-run: the reader on the surviving end
/// sees the EOF and reports the peer by name (traffic keeps flowing on the
/// stream at fault time, so the writer side surfaces too).
#[test]
fn half_closed_stream_is_named_not_hung() {
    if skip() {
        return;
    }
    assert_fault_scenario("tcp-half-close");
}

/// The no-fault baseline: a small generated-style plan with the faults
/// stripped runs clean on the real fabric, so the scenario failures above
/// are attributable to the injected faults and not to the harness.
#[test]
fn faultless_campaign_plan_passes_on_the_tcp_fabric() {
    if skip() {
        return;
    }
    let mut plan = munin_campaign::generate(7);
    plan.faults.clear();
    let out = munin_campaign::execute(&plan, Target::MuninTcp, &ExecOptions::default())
        .unwrap_or_else(|e| panic!("{e}"));
    assert!(out.passed(), "seed 7 faultless plan failed on tcp: {:?}", out.reasons);
    assert!(out.clean);
}

//! Fault paths: a killed node process or a half-closed stream must surface
//! as a run error **naming the peer**, and the run must tear down promptly
//! instead of hanging. The stall timeout is set tight (the programmatic
//! equivalent of a tight `MUNIN_RT_STALL_MS` — set as a field so racing
//! test threads never touch the process environment) so even a missed
//! error path would be caught by the distributed watchdog backstop.

use munin_core::MuninMsg;
use munin_tcp::{tcp_support, TcpTuning, TcpWorldBuilder, TestFault};
use munin_types::{MuninConfig, NodeId, ObjectDecl, ObjectId, SharingType, SyncDecls};
use std::time::{Duration, Instant};

const _NODE_BIN: &str = env!("CARGO_BIN_EXE_munin-node");

fn skip() -> bool {
    if let Err(notice) = tcp_support() {
        eprintln!("skipping tcp fault test: {notice}");
        return true;
    }
    false
}

/// A 3-node world whose threads hammer a node-0-homed counter for up to
/// `run_for` — long enough that the injected fault always lands mid-run; if
/// fault handling ever regressed to a hang, the bounded loop (plus the
/// watchdog) still ends the run so the assertions below get to fail loudly.
fn build_counter_world(fault: TestFault) -> TcpWorldBuilder<MuninMsg> {
    let n_nodes = 3;
    let mut tuning = TcpTuning::default();
    tuning.rt.stall_timeout = Duration::from_millis(500);
    tuning.test_fault = Some(fault);
    let mut b = TcpWorldBuilder::<MuninMsg>::new(n_nodes).tuning(tuning);
    let ctr = b.declare(
        ObjectDecl::new(ObjectId(0), "ctr", 8, SharingType::GeneralReadWrite, NodeId(0)),
        NodeId(0),
    );
    for i in 0..n_nodes {
        b.spawn(NodeId(i as u16), move |ctx| {
            let start = Instant::now();
            while start.elapsed() < Duration::from_secs(15) {
                ctx.fetch_add(ctr, 0, 1);
            }
        });
    }
    b
}

fn assert_fault_surfaced(kind: &str, peer: &str, fault: TestFault) {
    let started = Instant::now();
    let report = build_counter_world(fault).run_munin(MuninConfig::default(), SyncDecls::default());
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(12),
        "{kind}: run should tear down promptly, took {elapsed:?}"
    );
    assert!(!report.is_clean(), "{kind}: the fault must make the run unclean");
    assert!(report.deadlocked, "{kind}: the run must be marked torn down (poisoned)");
    assert!(
        report.errors.iter().any(|e| e.contains(peer)),
        "{kind}: some error must name the lost peer {peer}; got {:#?}",
        report.errors
    );
}

/// Killing a node process mid-run: the coordinator notices the dead control
/// stream (or a failed op forward) and reports `n1` by name.
#[test]
fn killed_node_process_is_named_not_hung() {
    if skip() {
        return;
    }
    assert_fault_surfaced(
        "killed process",
        "n1",
        TestFault::Exit { node: NodeId(1), after: Duration::from_millis(300) },
    );
}

/// Half-closing one data stream mid-run: the reader on the surviving end
/// sees the EOF and reports the peer by name (traffic keeps flowing on the
/// stream at fault time, so the writer side surfaces too).
#[test]
fn half_closed_stream_is_named_not_hung() {
    if skip() {
        return;
    }
    assert_fault_surfaced(
        "half-closed stream",
        "n1",
        TestFault::HalfClose {
            node: NodeId(1),
            peer: NodeId(0),
            after: Duration::from_millis(300),
        },
    );
}

//! The on-demand state dump (ROADMAP: "SIGUSR1 → DumpStuck to every
//! node"): raising SIGUSR1 at the coordinator mid-run pulls
//! `debug_stuck_state` from **every** node process over the wire, prints it
//! to stderr and records it in the report's `dumps` section — without
//! poisoning the run.
//!
//! Exactly one test lives in this binary: the trigger is a real SIGUSR1
//! delivered through the installed handler (raised at ourselves by the
//! `dump_after` test knob), and process signals are global state.

use munin_core::{MuninMsg, MuninProto};
use munin_tcp::{tcp_support, TcpTuning, TcpWorldBuilder};
use munin_types::{BarrierDecl, BarrierId, LockDecl, LockId, MuninConfig, NodeId, SyncDecls};
use std::time::Duration;

#[test]
fn sigusr1_dumps_every_nodes_stuck_state_without_poisoning() {
    if let Err(notice) = tcp_support() {
        eprintln!("skipping tcp dump test: {notice}");
        return;
    }
    let n_nodes = 2usize;
    let mut tuning = TcpTuning::default();
    // Raise SIGUSR1 at ourselves 400 ms in — while thread 0 holds the lock
    // inside a long compute and thread 1 is blocked waiting for it, so both
    // nodes have non-trivial lock state to dump.
    tuning.dump_after = Some(Duration::from_millis(400));
    let mut b = TcpWorldBuilder::<MuninMsg>::new(n_nodes).tuning(tuning);
    let lock = LockId(0);
    b.spawn(NodeId(0), move |ctx| {
        ctx.lock(lock);
        ctx.compute(1_500_000); // hold the lock across the dump point
        ctx.unlock(lock);
        ctx.barrier(BarrierId(0));
    });
    b.spawn(NodeId(1), move |ctx| {
        ctx.compute(100_000);
        ctx.lock(lock); // blocked at dump time: n1's proxy has requested the token
        ctx.unlock(lock);
        ctx.barrier(BarrierId(0));
    });
    let sync = SyncDecls {
        locks: vec![LockDecl { id: lock, home: NodeId(0) }],
        barriers: vec![BarrierDecl { id: BarrierId(0), home: NodeId(0), count: 2 }],
        conds: Vec::new(),
    };
    let report = b.run_proto::<MuninProto>(MuninConfig::default(), sync);

    // The dump is diagnostic: the run itself must stay clean.
    report.assert_clean();
    // One stuck-state entry per node process, plus the live telemetry
    // snapshot (the default mode is Counters, so the metrics surface is on).
    let node_dumps: Vec<&String> =
        report.dumps.iter().filter(|d| d.starts_with("[dump n")).collect();
    assert_eq!(
        node_dumps.len(),
        n_nodes,
        "one dump entry per node process; got {:#?}",
        report.dumps
    );
    assert!(
        report.dumps.iter().any(|d| d.starts_with("[metrics]")),
        "SIGUSR1 should also render the live metrics snapshot: {:#?}",
        report.dumps
    );
    for (i, dump) in node_dumps.iter().enumerate() {
        assert!(dump.starts_with(&format!("[dump n{i}]")), "dump {i} must name its node: {dump:?}");
        assert!(
            dump.contains("lk0"),
            "node {i}'s debug_stuck_state should show the contended lock lk0: {dump:?}"
        );
    }
    // Node 0 is the lock home: its dump shows the holder and/or the queued
    // remote requester. Node 1's dump shows its proxy waiting on the token.
    assert!(
        report.dumps[0].contains("lock_home") || report.dumps[0].contains("proxy"),
        "n0 dump should include Munin lock state: {:?}",
        report.dumps[0]
    );
    assert!(
        report.dumps[1].contains("proxy"),
        "n1 dump should include its proxy lock state: {:?}",
        report.dumps[1]
    );
}

//! End-to-end smoke of the socket fabric using the builder directly (the
//! full six-app matrix runs in `tests/tests/cross_backend.rs` through the
//! API harness). Skips with a notice when the sandbox has no loopback
//! sockets or the `munin-node` binary is missing.

use munin_core::{MuninMsg, MuninProto};
use munin_ivy::{IvyMsg, IvyProto};
use munin_tardis::{TardisMsg, TardisProto};
use munin_tcp::{tcp_support, TcpWorldBuilder};
use munin_types::{
    BarrierDecl, BarrierId, IvyConfig, LockDecl, LockId, MuninConfig, NodeId, ObjectDecl,
    SharingType, SyncDecls, TardisConfig,
};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

fn skip() -> bool {
    if let Err(notice) = tcp_support() {
        eprintln!("skipping tcp smoke test: {notice}");
        return true;
    }
    false
}

fn sync_decls(n_threads: u32) -> SyncDecls {
    SyncDecls {
        locks: vec![LockDecl { id: LockId(0), home: NodeId(0) }],
        barriers: vec![BarrierDecl { id: BarrierId(0), home: NodeId(0), count: n_threads }],
        conds: Vec::new(),
    }
}

/// Shared fetch-add counter across real processes: no lost updates, and the
/// final value reads back identically from node 0.
#[test]
fn munin_counter_across_processes() {
    if skip() {
        return;
    }
    for n_nodes in [2usize, 3] {
        let mut b = TcpWorldBuilder::<MuninMsg>::new(n_nodes);
        let ctr = b.declare(
            ObjectDecl::new(
                munin_types::ObjectId(0),
                "ctr",
                8,
                SharingType::GeneralReadWrite,
                NodeId(0),
            ),
            NodeId(0),
        );
        let total = Arc::new(AtomicI64::new(-1));
        for i in 0..n_nodes {
            let total = total.clone();
            b.spawn(NodeId(i as u16), move |ctx| {
                for _ in 0..10 {
                    ctx.fetch_add(ctr, 0, 1);
                }
                ctx.barrier(BarrierId(0));
                if ctx.thread_id().index() == 0 {
                    let v = ctx.fetch_add(ctr, 0, 0);
                    total.store(v, Ordering::SeqCst);
                }
            });
        }
        let report = b.run_proto::<MuninProto>(MuninConfig::default(), sync_decls(n_nodes as u32));
        report.assert_clean();
        assert_eq!(total.load(Ordering::SeqCst), 10 * n_nodes as i64, "at {n_nodes} nodes");
        assert!(report.stats.messages > 0, "remote atomics must cross the wire");
    }
}

/// Same shape on the Ivy baseline (page protocol + DSM spin locks).
#[test]
fn ivy_lock_counter_across_processes() {
    if skip() {
        return;
    }
    let n_nodes = 2usize;
    let mut b = TcpWorldBuilder::<IvyMsg>::new(n_nodes);
    let ctr = b.declare(
        ObjectDecl::new(
            munin_types::ObjectId(0),
            "ctr",
            8,
            SharingType::GeneralReadWrite,
            NodeId(0),
        ),
        NodeId(0),
    );
    let total = Arc::new(AtomicI64::new(-1));
    for i in 0..n_nodes {
        let total = total.clone();
        b.spawn(NodeId(i as u16), move |ctx| {
            for _ in 0..5 {
                ctx.lock(LockId(0));
                let v = i64::from_le_bytes(
                    ctx.read(ctr, munin_types::ByteRange::new(0, 8)).try_into().unwrap(),
                );
                ctx.write(ctr, 0, (v + 1).to_le_bytes().to_vec());
                ctx.unlock(LockId(0));
            }
            ctx.barrier(BarrierId(0));
            if ctx.thread_id().index() == 0 {
                ctx.lock(LockId(0));
                let v = i64::from_le_bytes(
                    ctx.read(ctr, munin_types::ByteRange::new(0, 8)).try_into().unwrap(),
                );
                total.store(v, Ordering::SeqCst);
                ctx.unlock(LockId(0));
            }
        });
    }
    let report = b.run_proto::<IvyProto>(IvyConfig::default(), sync_decls(n_nodes as u32));
    report.assert_clean();
    assert_eq!(total.load(Ordering::SeqCst), 5 * n_nodes as i64);
}

/// The third protocol over the same fabric: Tardis child processes are
/// built from the start frame's tag + opaque config, exercising the
/// registry dispatch path end to end.
#[test]
fn tardis_lock_counter_across_processes() {
    if skip() {
        return;
    }
    let n_nodes = 2usize;
    let mut b = TcpWorldBuilder::<TardisMsg>::new(n_nodes);
    let ctr = b.declare(
        ObjectDecl::new(
            munin_types::ObjectId(0),
            "ctr",
            8,
            SharingType::GeneralReadWrite,
            NodeId(0),
        ),
        NodeId(0),
    );
    let total = Arc::new(AtomicI64::new(-1));
    for i in 0..n_nodes {
        let total = total.clone();
        b.spawn(NodeId(i as u16), move |ctx| {
            for _ in 0..5 {
                ctx.lock(LockId(0));
                let v = i64::from_le_bytes(
                    ctx.read(ctr, munin_types::ByteRange::new(0, 8)).try_into().unwrap(),
                );
                ctx.write(ctr, 0, (v + 1).to_le_bytes().to_vec());
                ctx.unlock(LockId(0));
            }
            ctx.barrier(BarrierId(0));
            if ctx.thread_id().index() == 0 {
                ctx.lock(LockId(0));
                let v = i64::from_le_bytes(
                    ctx.read(ctr, munin_types::ByteRange::new(0, 8)).try_into().unwrap(),
                );
                total.store(v, Ordering::SeqCst);
                ctx.unlock(LockId(0));
            }
        });
    }
    let report = b.run_proto::<TardisProto>(TardisConfig::default(), sync_decls(n_nodes as u32));
    report.assert_clean();
    assert_eq!(total.load(Ordering::SeqCst), 5 * n_nodes as i64);
}

//! Round-trip property tests for the wire codec: `decode(encode(x)) == x`
//! for **every** `MuninMsg`, `IvyMsg` and `TardisMsg` variant, for batch
//! frames (including payloads that travel behind a multicast's shared
//! `Arc`), for the control-plane vocabulary, and for boundary-shaped
//! diffs. Corrupt and truncated inputs must fail as `WireError`s, never
//! panic.

use munin_core::{MuninMsg, UpdateItem};
use munin_ivy::IvyMsg;
use munin_mem::{Diff, PageId};
use munin_rt::MsgBody;
use munin_sim::{DsmOp, OpResult};
use munin_tardis::TardisMsg;
use munin_tcp::frames::{
    encode_data_batch, encode_data_msg, CtrlFrame, DataFrame, RegReply, RegRequest, StartConfig,
    TestFault,
};
use munin_tcp::wire::{ProtoTag, Wire};
use munin_types::{
    BarrierId, ByteRange, CondId, DsmError, IvyConfig, LockId, MuninConfig, NodeId, ObjectDecl,
    ObjectId, SharingType, SyncDecls, TardisConfig, ThreadId,
};
use proptest::prelude::*;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

const MUNIN_VARIANTS: usize = 32;
const IVY_VARIANTS: usize = 15;
const TARDIS_VARIANTS: usize = 13;
const DSMOP_VARIANTS: usize = 13;

fn arb_bytes(rng: &mut SmallRng, max: usize) -> Vec<u8> {
    let n = rng.gen_range(0..=max);
    (0..n).map(|_| rng.gen_range(0..=255u64) as u8).collect()
}

fn arb_diff(rng: &mut SmallRng) -> Diff {
    let mut d = Diff::default();
    let mut start = rng.gen_range(0u64..1024) as u32;
    for _ in 0..rng.gen_range(0u64..5) {
        let len = rng.gen_range(1u64..64) as u32;
        let bytes: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        assert!(d.append_run(start, &bytes));
        // Leave a gap so runs stay non-adjacent (the canonical layout).
        start += len + rng.gen_range(1u64..32) as u32;
    }
    d
}

fn arb_items(rng: &mut SmallRng) -> Vec<UpdateItem> {
    (0..rng.gen_range(0u64..4))
        .map(|i| UpdateItem { obj: ObjectId(i), diff: Arc::new(arb_diff(rng)) })
        .collect()
}

fn arb_obj(rng: &mut SmallRng) -> ObjectId {
    ObjectId(rng.gen_range(0u64..u64::MAX))
}

fn arb_page(rng: &mut SmallRng) -> Option<u32> {
    rng.gen_bool(0.5).then(|| rng.gen_range(0u64..4096) as u32)
}

fn arb_munin(rng: &mut SmallRng, variant: usize) -> MuninMsg {
    let obj = arb_obj(rng);
    match variant % MUNIN_VARIANTS {
        0 => MuninMsg::ReadReq { obj, page: arb_page(rng) },
        1 => MuninMsg::ReadReply {
            obj,
            page: arb_page(rng),
            data: arb_bytes(rng, 512),
            install: rng.gen_bool(0.5),
            confirm: rng.gen_bool(0.5),
        },
        2 => MuninMsg::ReadConfirm { obj },
        3 => MuninMsg::FwdRead { obj, requester: NodeId(rng.gen_range(0u64..16) as u16) },
        4 => MuninMsg::WriteReq { obj },
        5 => MuninMsg::OwnerYield { obj },
        6 => MuninMsg::OwnerData { obj, data: arb_bytes(rng, 512) },
        7 => MuninMsg::OwnerGrant { obj, data: rng.gen_bool(0.5).then(|| arb_bytes(rng, 512)) },
        8 => MuninMsg::Inval { obj, session: rng.gen_bool(0.5).then(|| rng.gen_range(0u64..1000)) },
        9 => MuninMsg::InvalAck { obj, session: rng.gen_range(0u64..1000) },
        10 => MuninMsg::MigrateReq { obj },
        11 => MuninMsg::MigrateYield { obj, requester: NodeId(rng.gen_range(0u64..16) as u16) },
        12 => MuninMsg::MigrateData { obj, data: arb_bytes(rng, 512) },
        13 => MuninMsg::MigrateNotify { obj },
        14 => MuninMsg::FlushIn { session: rng.gen_range(0u64..1000), items: arb_items(rng) },
        15 => MuninMsg::FlushOut { session: rng.gen_range(0u64..1000), items: arb_items(rng) },
        16 => MuninMsg::FlushInval {
            session: rng.gen_range(0u64..1000),
            objs: (0..rng.gen_range(0u64..5)).map(ObjectId).collect(),
        },
        17 => MuninMsg::FlushOutAck {
            session: rng.gen_range(0u64..1000),
            used: (0..rng.gen_range(0u64..5)).map(|i| (ObjectId(i), i % 2 == 0)).collect(),
        },
        18 => MuninMsg::FlushDone { session: rng.gen_range(0u64..1000) },
        19 => MuninMsg::Eager { items: arb_items(rng) },
        20 => MuninMsg::EagerOut { items: arb_items(rng) },
        21 => MuninMsg::AtomicReq {
            obj,
            offset: rng.gen_range(0u64..4096) as u32,
            delta: rng.gen_range(-1000i64..1000),
            thread: ThreadId(rng.gen_range(0u64..64) as u32),
        },
        22 => MuninMsg::AtomicReply {
            thread: ThreadId(rng.gen_range(0u64..64) as u32),
            old: rng.gen_range(-1000i64..1000),
        },
        23 => MuninMsg::LockReq { lock: LockId(rng.gen_range(0u64..32) as u32) },
        24 => MuninMsg::LockFetch {
            lock: LockId(rng.gen_range(0u64..32) as u32),
            to: NodeId(rng.gen_range(0u64..16) as u16),
        },
        25 => MuninMsg::LockPass {
            lock: LockId(rng.gen_range(0u64..32) as u32),
            piggyback: (0..rng.gen_range(0u64..3))
                .map(|i| (ObjectId(i), arb_bytes(rng, 128)))
                .collect(),
        },
        26 => MuninMsg::LockNotify { lock: LockId(rng.gen_range(0u64..32) as u32) },
        27 => MuninMsg::BarrierArrive {
            barrier: BarrierId(rng.gen_range(0u64..8) as u32),
            threads: rng.gen_range(1u64..16) as u32,
        },
        28 => MuninMsg::BarrierRelease { barrier: BarrierId(rng.gen_range(0u64..8) as u32) },
        29 => MuninMsg::CvWait {
            cond: CondId(rng.gen_range(0u64..8) as u32),
            thread: ThreadId(rng.gen_range(0u64..64) as u32),
        },
        30 => MuninMsg::CvSignal {
            cond: CondId(rng.gen_range(0u64..8) as u32),
            broadcast: rng.gen_bool(0.5),
        },
        _ => MuninMsg::CvWake {
            cond: CondId(rng.gen_range(0u64..8) as u32),
            thread: ThreadId(rng.gen_range(0u64..64) as u32),
        },
    }
}

fn arb_ivy(rng: &mut SmallRng, variant: usize) -> IvyMsg {
    let page = PageId(rng.gen_range(0u64..1 << 20));
    match variant % IVY_VARIANTS {
        0 => IvyMsg::RReq { page },
        1 => IvyMsg::FwdRead { page, requester: NodeId(rng.gen_range(0u64..16) as u16) },
        2 => IvyMsg::PData { page, data: arb_bytes(rng, 1024), confirm: rng.gen_bool(0.5) },
        3 => IvyMsg::RConfirm { page },
        4 => IvyMsg::WReq { page },
        5 => IvyMsg::Yield { page },
        6 => IvyMsg::YieldData { page, data: arb_bytes(rng, 1024) },
        7 => IvyMsg::Inval { page },
        8 => IvyMsg::InvalAck { page },
        9 => IvyMsg::Grant { page, data: rng.gen_bool(0.5).then(|| arb_bytes(rng, 1024)) },
        10 => IvyMsg::CLockReq {
            lock: LockId(rng.gen_range(0u64..32) as u32),
            thread: ThreadId(rng.gen_range(0u64..64) as u32),
        },
        11 => IvyMsg::CLockGrant { thread: ThreadId(rng.gen_range(0u64..64) as u32) },
        12 => IvyMsg::CUnlock { lock: LockId(rng.gen_range(0u64..32) as u32) },
        13 => IvyMsg::CBarrierArrive {
            barrier: BarrierId(rng.gen_range(0u64..8) as u32),
            threads: rng.gen_range(1u64..16) as u32,
        },
        _ => IvyMsg::CBarrierRelease { barrier: BarrierId(rng.gen_range(0u64..8) as u32) },
    }
}

fn arb_tardis(rng: &mut SmallRng, variant: usize) -> TardisMsg {
    let obj = arb_obj(rng);
    let thread = ThreadId(rng.gen_range(0u64..64) as u32);
    let pts = rng.gen_range(0u64..u64::MAX);
    match variant % TARDIS_VARIANTS {
        0 => TardisMsg::ReadReq { obj, thread, pts },
        1 => TardisMsg::ReadReply {
            thread,
            obj,
            data: arb_bytes(rng, 1024),
            wts: rng.gen_range(0u64..u64::MAX),
            rts: rng.gen_range(0u64..u64::MAX),
        },
        2 => TardisMsg::RenewReq { obj, thread, pts, have_wts: rng.gen_range(0u64..u64::MAX) },
        3 => TardisMsg::RenewAck {
            thread,
            obj,
            wts: rng.gen_range(0u64..u64::MAX),
            rts: rng.gen_range(0u64..u64::MAX),
        },
        4 => {
            let data = arb_bytes(rng, 1024);
            TardisMsg::WriteReq {
                obj,
                range: ByteRange::new(rng.gen_range(0u64..1024) as u32, data.len() as u32),
                data,
                thread,
                pts,
            }
        }
        5 => TardisMsg::WriteAck { thread, wts: rng.gen_range(0u64..u64::MAX) },
        6 => TardisMsg::AtomicReq {
            obj,
            offset: rng.gen_range(0u64..1024) as u32,
            delta: rng.gen_range(-100i64..100),
            thread,
            pts,
        },
        7 => TardisMsg::AtomicReply {
            thread,
            old: rng.gen_range(i64::MIN..i64::MAX),
            wts: rng.gen_range(0u64..u64::MAX),
        },
        8 => TardisMsg::LockReq { lock: LockId(rng.gen_range(0u64..32) as u32), thread, pts },
        9 => TardisMsg::LockGrant { thread, ts: rng.gen_range(0u64..u64::MAX) },
        10 => TardisMsg::Unlock { lock: LockId(rng.gen_range(0u64..32) as u32), pts },
        11 => TardisMsg::BarrierArrive {
            barrier: BarrierId(rng.gen_range(0u64..8) as u32),
            threads: rng.gen_range(1u64..16) as u32,
            pts,
        },
        _ => TardisMsg::BarrierRelease { barrier: BarrierId(rng.gen_range(0u64..8) as u32), pts },
    }
}

fn arb_decl(rng: &mut SmallRng) -> ObjectDecl {
    let sharing = SharingType::ALL[rng.gen_range(0u64..SharingType::ALL.len() as u64) as usize];
    let mut d = ObjectDecl::new(
        arb_obj(rng),
        format!("obj-{}", rng.gen_range(0u64..100)),
        rng.gen_range(1u64..1 << 20) as u32,
        sharing,
        NodeId(rng.gen_range(0u64..16) as u16),
    );
    if rng.gen_bool(0.3) {
        d.associated_lock = Some(LockId(rng.gen_range(0u64..32) as u32));
    }
    d.eager = rng.gen_bool(0.3);
    d
}

fn arb_dsmop(rng: &mut SmallRng, variant: usize) -> DsmOp {
    let obj = arb_obj(rng);
    match variant % DSMOP_VARIANTS {
        0 => DsmOp::Alloc(arb_decl(rng)),
        1 => DsmOp::Read { obj, range: ByteRange::new(rng.gen_range(0u64..100) as u32, 8) },
        2 => {
            let data = arb_bytes(rng, 128);
            DsmOp::Write {
                obj,
                range: ByteRange::new(rng.gen_range(0u64..100) as u32, data.len() as u32),
                data,
            }
        }
        3 => DsmOp::AtomicFetchAdd {
            obj,
            offset: rng.gen_range(0u64..100) as u32,
            delta: rng.gen_range(-5i64..5),
        },
        4 => DsmOp::Lock(LockId(rng.gen_range(0u64..32) as u32)),
        5 => DsmOp::Unlock(LockId(rng.gen_range(0u64..32) as u32)),
        6 => DsmOp::BarrierWait(BarrierId(rng.gen_range(0u64..8) as u32)),
        7 => DsmOp::CondWait {
            cond: CondId(rng.gen_range(0u64..8) as u32),
            lock: LockId(rng.gen_range(0u64..32) as u32),
        },
        8 => DsmOp::CondSignal {
            cond: CondId(rng.gen_range(0u64..8) as u32),
            broadcast: rng.gen_bool(0.5),
        },
        9 => DsmOp::Flush,
        10 => DsmOp::Phase(rng.gen_range(0u64..10) as u32),
        11 => DsmOp::Compute(rng.gen_range(0u64..1000)),
        _ => DsmOp::Exit,
    }
}

fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
    let bytes = v.encode();
    let back = T::decode(&bytes).expect("decode of a just-encoded value");
    assert_eq!(&back, v);
}

proptest! {
    /// Every `MuninMsg` variant survives frame encode → decode untouched
    /// (each case sweeps all 32 variants with fresh random fields).
    #[test]
    fn munin_msg_roundtrips(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for variant in 0..MUNIN_VARIANTS {
            let msg = arb_munin(&mut rng, variant);
            roundtrip(&msg);
            roundtrip(&DataFrame::Msg(msg));
        }
    }

    /// Every `IvyMsg` variant likewise.
    #[test]
    fn ivy_msg_roundtrips(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for variant in 0..IVY_VARIANTS {
            let msg = arb_ivy(&mut rng, variant);
            roundtrip(&msg);
            roundtrip(&DataFrame::Msg(msg));
        }
    }

    /// Every `TardisMsg` variant likewise — timestamps sweep the full u64
    /// range so lease arithmetic at the edges still has a faithful wire
    /// form.
    #[test]
    fn tardis_msg_roundtrips(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for variant in 0..TARDIS_VARIANTS {
            let msg = arb_tardis(&mut rng, variant);
            roundtrip(&msg);
            roundtrip(&DataFrame::Msg(msg));
        }
    }

    /// Batch frames — the wire form of `NodeEvent::Batch` — round-trip for
    /// arbitrary mixed-variant contents, and the zero-copy encode path from
    /// `MsgBody::Shared` (multicast payloads behind one `Arc`) produces
    /// byte-identical frames to encoding owned payloads.
    #[test]
    fn batch_frames_roundtrip_including_shared_payloads(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.gen_range(1u64..8) as usize;
        let msgs: Vec<MuninMsg> = (0..n)
            .map(|i| {
                let variant = rng.gen_range(0u64..999) as usize + i;
                arb_munin(&mut rng, variant)
            })
            .collect();
        let frame = DataFrame::Batch(msgs.clone());
        roundtrip(&frame);

        // The kernel's encode path: a mix of owned and Arc-shared bodies.
        let bodies: Vec<MsgBody<MuninMsg>> = msgs
            .iter()
            .enumerate()
            .map(|(i, m)| {
                if i % 2 == 0 {
                    MsgBody::Owned(m.clone())
                } else {
                    MsgBody::Shared(Arc::new(m.clone()))
                }
            })
            .collect();
        let mut from_bodies = Vec::new();
        encode_data_batch(&mut from_bodies, bodies.iter().map(|b| b.payload()))
            .expect("batch under the frame cap");
        let mut reference = Vec::new();
        reference.extend_from_slice(&(frame.encode().len() as u32).to_le_bytes());
        reference.extend_from_slice(&frame.encode());
        prop_assert_eq!(from_bodies, reference);
    }

    /// Application operations and results (the forwarded-op control plane).
    #[test]
    fn ops_and_results_roundtrip(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for variant in 0..DSMOP_VARIANTS {
            roundtrip(&arb_dsmop(&mut rng, variant));
        }
        roundtrip(&OpResult::Unit);
        roundtrip(&OpResult::Bytes(arb_bytes(&mut rng, 256)));
        roundtrip(&OpResult::Value(rng.gen_range(i64::MIN..i64::MAX)));
        roundtrip(&OpResult::Object(arb_obj(&mut rng)));
        roundtrip(&OpResult::Err(DsmError::OutOfBounds {
            obj: arb_obj(&mut rng),
            range: ByteRange::new(4, 16),
            size: 8,
        }));
        roundtrip(&OpResult::Err(DsmError::SharingViolation {
            obj: arb_obj(&mut rng),
            sharing: SharingType::WriteOnce,
            detail: "already published",
        }));
        roundtrip(&OpResult::Err(DsmError::Internal("x".into())));
    }

    /// Diffs of arbitrary write patterns round-trip exactly (run table,
    /// payload bytes, and wire-size accounting all preserved).
    #[test]
    fn diffs_roundtrip(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let size = rng.gen_range(16u64..512) as usize;
        let old: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        let mut new = old.clone();
        for _ in 0..rng.gen_range(0u64..10) {
            let at = rng.gen_range(0u64..size as u64) as usize;
            new[at] = new[at].wrapping_add(rng.gen_range(1u64..255) as u8);
        }
        let d = Diff::between(&old, &new);
        let back = Diff::decode(&d.encode()).expect("diff decode");
        assert_eq!(back, d);
        assert_eq!(back.wire_bytes(), d.wire_bytes());
    }
}

/// The largest legal diff shapes: a run ending exactly at the u32 boundary,
/// and a megabyte-sized single-run payload (a whole-object overwrite).
#[test]
fn max_size_diffs_roundtrip() {
    let mut d = Diff::default();
    let tail = vec![0xabu8; 100];
    assert!(d.append_run(u32::MAX - 100, &tail), "run ending at u32::MAX is legal");
    roundtrip(&d);

    let big = Diff::overwrite(ByteRange::new(0, 1 << 20), vec![0x5au8; 1 << 20]);
    let bytes = big.encode();
    assert!(bytes.len() >= 1 << 20);
    assert_eq!(Diff::decode(&bytes).expect("big diff decode"), big);

    // One byte past the boundary is rejected, not wrapped.
    let mut over = Diff::default();
    assert!(!over.append_run(u32::MAX - 99, &tail), "run crossing u32::MAX must be rejected");
}

/// Control-plane vocabulary round-trips, including a fully-populated
/// `StartConfig` for each protocol. The start frame carries the protocol
/// config as an opaque byte blob behind a tag, so the fabric never learns
/// the config types — here we check the blob survives and decodes back to
/// the original config on the far side, exactly as `run_proto_node` does.
#[test]
fn control_frames_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(7);
    let decls: Vec<ObjectDecl> = (0..6).map(|_| arb_decl(&mut rng)).collect();
    let protos: [(u8, Vec<u8>); 3] = [
        (0, MuninConfig::default().encode()),
        (1, IvyConfig::default().encode()),
        (2, TardisConfig::default().encode()),
    ];
    for (tag, proto_cfg) in protos {
        let start = StartConfig {
            node: NodeId(2),
            n_nodes: 4,
            proto_tag: ProtoTag(tag),
            proto_cfg,
            decls: decls.clone(),
            sync: SyncDecls::round_robin(3, 2, 4, 4),
            batch_max: 128,
            coalesce: true,
            heartbeat: Duration::from_millis(25),
            peers: vec![(NodeId(0), 4000), (NodeId(1), 4001), (NodeId(2), 4002)],
            test_fault: Some(TestFault::HalfClose {
                node: NodeId(1),
                peer: NodeId(0),
                after: Duration::from_millis(250),
            }),
            telemetry: munin_types::Telemetry::Spans,
            coverage: true,
            n_threads: 6,
        };
        roundtrip(&CtrlFrame::Start(Box::new(start)));
    }
    let frames = vec![
        CtrlFrame::Hello { node: NodeId(3), data_port: 40123 },
        CtrlFrame::Ready,
        CtrlFrame::Op {
            thread: ThreadId(5),
            op: DsmOp::Lock(LockId(1)),
            fwd_us: 1_754_000_000_017,
        },
        CtrlFrame::Resume {
            thread: ThreadId(5),
            result: OpResult::Bytes(vec![1, 2, 3]),
            span: Some(munin_obs::SrvSpan {
                seq: 42,
                fwd_us: 1_754_000_000_017,
                dispatch_us: 1_754_000_000_103,
                reply_us: 1_754_000_000_251,
            }),
        },
        CtrlFrame::Resume { thread: ThreadId(6), result: OpResult::Unit, span: None },
        CtrlFrame::Reg(RegRequest::Retype {
            obj: ObjectId(9),
            sharing: SharingType::ProducerConsumer,
        }),
        CtrlFrame::RegReply(RegReply::Decl { id: ObjectId(17), version: 3 }),
        CtrlFrame::RegUpdate { decl: arb_decl(&mut rng), version: 4, seq: 6 },
        CtrlFrame::RegUpdateAck { seq: 6 },
        CtrlFrame::Heartbeat { activity: 12345, timers_pending: 2 },
        CtrlFrame::DumpReq,
        CtrlFrame::DumpReply { text: "proxy l0: token=true".into() },
        CtrlFrame::ReportError { msg: "data stream from peer n2 failed".into() },
        CtrlFrame::Finish,
        CtrlFrame::Done {
            stats: sample_stats(),
            errors: vec!["e1".into()],
            homes: vec![(ThreadId(5), 1_754_000_000_200), (ThreadId(7), 1_754_000_000_300)],
            cover: vec![munin_obs::CovRow {
                proto: "tardis".into(),
                object: "write-many".into(),
                state: "lease".into(),
                event: "expired-renew".into(),
                count: 3,
            }],
        },
        CtrlFrame::Poison,
        CtrlFrame::Bye,
        CtrlFrame::OpBatch {
            ops: vec![
                (ThreadId(5), DsmOp::AtomicFetchAdd { obj: ObjectId(2), offset: 8, delta: -3 }),
                (ThreadId(7), DsmOp::Lock(LockId(1))),
            ],
            fwd_us: 1_754_000_000_001,
        },
    ];
    for f in frames {
        roundtrip(&f);
    }
}

fn sample_stats() -> munin_net::NetStats {
    let mut s = munin_net::NetStats::new();
    s.record(munin_net::MsgClass::Data, "ReadReply", 4096);
    s.record(munin_net::MsgClass::Sync, "LockReq", 0);
    s.record_multicast(3, 3);
    s
}

/// Truncating a valid encoding at any byte boundary yields a decode error,
/// never a panic or a bogus success; flipped tag bytes are rejected too.
#[test]
fn corrupt_input_fails_closed() {
    let mut rng = SmallRng::seed_from_u64(11);
    let mut encodings: Vec<Vec<u8>> = Vec::new();
    for variant in 0..MUNIN_VARIANTS {
        encodings.push(arb_munin(&mut rng, variant).encode());
    }
    encodings.push(
        CtrlFrame::Done {
            stats: sample_stats(),
            errors: vec!["x".into()],
            homes: vec![(ThreadId(1), 7)],
            cover: Vec::new(),
        }
        .encode(),
    );
    for bytes in &encodings {
        for cut in 0..bytes.len() {
            assert!(
                MuninMsg::decode(&bytes[..cut]).is_err()
                    || CtrlFrame::decode(&bytes[..cut]).is_err(),
                "truncation accepted at {cut}/{}",
                bytes.len()
            );
        }
    }
    assert!(MuninMsg::decode(&[0xff, 0, 0, 0]).is_err(), "bad tag must be rejected");
    // A count prefix larger than the remaining input must be rejected
    // before allocation.
    let mut evil = Vec::new();
    evil.push(19u8); // Eager tag
    evil.extend_from_slice(&u32::MAX.to_le_bytes()); // item count
    assert!(MuninMsg::decode(&evil).is_err());
}

/// The same fail-closed discipline for every `TardisMsg` variant:
/// truncation at any boundary errors, flipped tags error, and an oversized
/// data-length prefix is rejected before allocation.
#[test]
fn tardis_corrupt_input_fails_closed() {
    let mut rng = SmallRng::seed_from_u64(13);
    for variant in 0..TARDIS_VARIANTS {
        let bytes = arb_tardis(&mut rng, variant).encode();
        for cut in 0..bytes.len() {
            assert!(
                TardisMsg::decode(&bytes[..cut]).is_err(),
                "truncation accepted at {cut}/{} for variant {variant}",
                bytes.len()
            );
        }
    }
    assert!(TardisMsg::decode(&[0xff, 0, 0, 0]).is_err(), "bad tag must be rejected");
    // ReadReply with a data length far beyond the remaining input.
    let mut evil = Vec::new();
    evil.push(1u8); // ReadReply tag
    evil.extend_from_slice(&7u32.to_le_bytes()); // thread
    evil.extend_from_slice(&9u64.to_le_bytes()); // obj
    evil.extend_from_slice(&u32::MAX.to_le_bytes()); // data length
    assert!(TardisMsg::decode(&evil).is_err());
}

/// An encoded `Msg` frame written by `encode_data_msg` parses back as the
/// same message through the reader's `DataFrame` path.
#[test]
fn single_msg_frame_encode_matches_dataframe() {
    let mut rng = SmallRng::seed_from_u64(3);
    let msg = arb_munin(&mut rng, 1);
    let mut framed = Vec::new();
    encode_data_msg(&mut framed, &msg).expect("message under the frame cap");
    let (len_bytes, body) = framed.split_at(4);
    assert_eq!(u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize, body.len());
    match DataFrame::<MuninMsg>::decode(body).expect("frame decodes") {
        DataFrame::Msg(m) => assert_eq!(m, msg),
        other => panic!("expected Msg frame, got {other:?}"),
    }
}

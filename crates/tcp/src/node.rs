//! The child-node runtime: what the `munin-node` binary runs.
//!
//! A child process is one node's coherence server and nothing else — the
//! application threads all live in the coordinator process and reach this
//! server through forwarded `Op` frames on the control stream. Lifecycle:
//!
//! 1. bind a loopback data listener, connect the control stream to the
//!    coordinator, send `Hello { node, data_port }`;
//! 2. receive `Start` (protocol config, declarations, peer ports, tuning);
//! 3. build the mesh: dial every lower-numbered node's data listener,
//!    accept a connection from every higher-numbered one (one TCP stream
//!    per node pair, which gives per-(src,dst) FIFO for free);
//! 4. send `Ready`, then run the **same server loop** as the in-process
//!    real-time kernel (`munin_rt::server_loop`) with a [`TcpKernel`];
//! 5. on `Finish`, drain out, report `Done { stats, errors }` and exit;
//!    on `Poison`, a lost peer, or a lost coordinator, tear down
//!    immediately with the cause recorded.

use crate::frames::{
    accept_streams, read_frame, send_shared, shared_writer, write_frame, CtrlFrame, DataFrame,
    SharedWriter, StartConfig, TestFault, STREAM_CTRL, STREAM_DATA,
};
use crate::kernel::{ResumeSink, TcpKernel};
use crate::registry::{RegCache, RegClient, RegWritePath};
use crate::wire::Wire;
use munin_proto::Protocol;
use munin_rt::timer::run_timer_thread;
use munin_rt::{server_loop, MsgBody, NodeEvent, Shared};
use munin_sim::Server;
use munin_types::{CostModel, NodeId};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long mesh setup may take before the child gives up (covers a
/// coordinator that died mid-handshake).
const MESH_TIMEOUT: Duration = Duration::from_secs(30);

fn loopback(port: u16) -> SocketAddr {
    SocketAddr::from(([127, 0, 0, 1], port))
}

/// One registered protocol: its wire tag and the function that runs a
/// child node under it. Obtained from [`node_entry`]; the `munin-node`
/// binary passes the full registry to [`run_node`], which is how a new
/// protocol plugs into the fabric without this crate naming it.
pub type NodeRunFn = fn(TcpStream, TcpListener, StartConfig) -> io::Result<bool>;

/// The registry entry for protocol `Pr`.
pub fn node_entry<Pr: Protocol>() -> (u8, NodeRunFn) {
    (Pr::TAG, run_proto_node::<Pr>)
}

/// Become a node of a `Pr` run: decode the protocol config from the start
/// frame, build the server, and hand off to the generic node main loop.
fn run_proto_node<Pr: Protocol>(
    ctrl: TcpStream,
    listener: TcpListener,
    start: StartConfig,
) -> io::Result<bool> {
    let cfg = Pr::Config::decode(&start.proto_cfg).map_err(|e| {
        io::Error::new(io::ErrorKind::InvalidData, format!("bad {} config: {e}", Pr::NAME))
    })?;
    let server = Pr::server(&cfg, start.node, start.n_nodes as usize, &start.decls, &start.sync);
    let cost = Pr::cost(&cfg).clone();
    node_main(ctrl, listener, start, server, cost)
}

/// Entry point of the `munin-node` binary. `protos` is the binary's
/// protocol registry (one [`node_entry`] per linked protocol). Returns the
/// process exit code.
pub fn run_node(coordinator: &str, node_index: u16, protos: &[(u8, NodeRunFn)]) -> i32 {
    match run_node_inner(coordinator, node_index, protos) {
        Ok(clean) => {
            if clean {
                0
            } else {
                1
            }
        }
        Err(e) => {
            eprintln!("munin-node n{node_index}: {e}");
            2
        }
    }
}

fn run_node_inner(
    coordinator: &str,
    node_index: u16,
    protos: &[(u8, NodeRunFn)],
) -> io::Result<bool> {
    let me = NodeId(node_index);
    let listener = TcpListener::bind(loopback(0))?;
    let data_port = listener.local_addr()?.port();

    let addr: SocketAddr = coordinator
        .parse()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("bad address: {e}")))?;
    let mut ctrl = TcpStream::connect_timeout(&addr, MESH_TIMEOUT)?;
    ctrl.set_nodelay(true)?;
    ctrl.write_all(&[STREAM_CTRL])?;
    let mut scratch = Vec::new();
    write_frame(&mut ctrl, &mut scratch, &CtrlFrame::Hello { node: me, data_port })?;

    let mut buf = Vec::new();
    let start = match read_frame::<CtrlFrame>(&mut ctrl, &mut buf)? {
        CtrlFrame::Start(cfg) => *cfg,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected Start, got {other:?}"),
            ))
        }
    };
    debug_assert_eq!(start.node, me, "coordinator and spawn args disagree on node id");

    let Some((_, run)) = protos.iter().find(|(tag, _)| *tag == start.proto_tag.0) else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "coordinator requested protocol tag {} but this binary only links {:?}",
                start.proto_tag.0,
                protos.iter().map(|(t, _)| *t).collect::<Vec<_>>()
            ),
        ));
    };
    run(ctrl, listener, start)
}

fn node_main<S>(
    ctrl: TcpStream,
    listener: TcpListener,
    start: StartConfig,
    server: S,
    cost: CostModel,
) -> io::Result<bool>
where
    S: Server + 'static,
    S::Payload: Wire + Send + Sync + Clone + std::fmt::Debug,
{
    let me = start.node;
    let n_nodes = start.n_nodes as usize;
    // No application threads live here, but the observability collector
    // still needs one server-span slot per (coordinator-hosted) thread —
    // forwarded ops dispatch on this node under their issuing thread's id.
    let mut shared0 = Shared::new(Vec::new(), start.n_threads, start.telemetry);
    if start.coverage {
        shared0.coverage = Some(Arc::new(munin_obs::CoverageMap::new()));
    }
    let shared = Arc::new(shared0);
    let finishing = Arc::new(AtomicBool::new(false));
    let cache = Arc::new(RegCache::new(&start.decls));
    let (inbox_tx, inbox_rx) = channel::<NodeEvent<S::Payload>>();
    let ctrl_writer = shared_writer(ctrl.try_clone()?);

    // ---- mesh: dial lower-numbered nodes, accept higher-numbered ones ----
    let mut peers: Vec<Option<SharedWriter>> = (0..n_nodes).map(|_| None).collect();
    let mut raw_streams: Vec<Option<TcpStream>> = (0..n_nodes).map(|_| None).collect();
    let mut scratch = Vec::new();
    for j in 0..me.index() {
        let port = start.peers[j].1;
        let mut s = TcpStream::connect_timeout(&loopback(port), MESH_TIMEOUT)?;
        s.set_nodelay(true)?;
        s.write_all(&[STREAM_DATA])?;
        write_frame(&mut s, &mut scratch, &DataFrame::<S::Payload>::Hello { src: me })?;
        spawn_data_reader::<S::Payload>(
            s.try_clone()?,
            NodeId(j as u16),
            inbox_tx.clone(),
            shared.clone(),
            finishing.clone(),
            Some(ctrl_writer.clone()),
        );
        raw_streams[j] = Some(s.try_clone()?);
        peers[j] = Some(shared_writer(s));
    }
    let deadline = Instant::now() + MESH_TIMEOUT;
    accept_streams(&listener, deadline, n_nodes - 1 - me.index(), |kind, mut s| {
        if kind != STREAM_DATA {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected stream kind byte {kind:#x}"),
            ));
        }
        let mut buf = Vec::new();
        let src = match read_frame::<DataFrame<S::Payload>>(&mut s, &mut buf)? {
            DataFrame::Hello { src } => src,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected data Hello, got {other:?}"),
                ))
            }
        };
        s.set_read_timeout(None)?;
        spawn_data_reader::<S::Payload>(
            s.try_clone()?,
            src,
            inbox_tx.clone(),
            shared.clone(),
            finishing.clone(),
            Some(ctrl_writer.clone()),
        );
        raw_streams[src.index()] = Some(s.try_clone()?);
        peers[src.index()] = Some(shared_writer(s));
        Ok(())
    })?;

    // ---- timers, heartbeats, control reader, fault injection -------------
    let (timer_tx, timer_rx) = channel();
    let timer_join = {
        let inboxes = vec![inbox_tx.clone(); n_nodes];
        let shared = shared.clone();
        std::thread::Builder::new()
            .name(format!("tcp-n{}-timer", me.index()))
            .spawn(move || run_timer_thread(timer_rx, inboxes, shared))
            .expect("failed to spawn timer thread")
    };
    let (hb_stop_tx, hb_stop_rx) = channel::<()>();
    {
        let ctrl_writer = ctrl_writer.clone();
        let shared = shared.clone();
        let period = start.heartbeat;
        std::thread::Builder::new()
            .name(format!("tcp-n{}-hb", me.index()))
            .spawn(move || loop {
                match hb_stop_rx.recv_timeout(period) {
                    Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                        let frame = CtrlFrame::Heartbeat {
                            activity: shared.activity.load(Ordering::Relaxed),
                            timers_pending: shared.timers_pending.load(Ordering::Acquire) as u64,
                        };
                        if send_shared(&ctrl_writer, &frame).is_err() {
                            return;
                        }
                    }
                    _ => return,
                }
            })
            .expect("failed to spawn heartbeat thread");
    }
    let (reg_reply_tx, reg_reply_rx) = channel();
    let (bye_tx, bye_rx) = channel::<()>();
    spawn_ctrl_reader::<S::Payload>(
        ctrl,
        inbox_tx.clone(),
        reg_reply_tx,
        cache.clone(),
        ctrl_writer.clone(),
        shared.clone(),
        finishing.clone(),
        bye_tx,
    );
    spawn_test_fault(me, start.test_fault, &raw_streams);

    // ---- the same server loop as the in-process rt kernel ----------------
    let registry = RegClient {
        cache,
        path: RegWritePath::Remote { ctrl: ctrl_writer.clone() },
        reply_rx: reg_reply_rx,
        shared: shared.clone(),
    };
    let kernel = TcpKernel {
        node: me,
        cost,
        peers,
        resumes: ResumeSink::Remote(ctrl_writer.clone()),
        timer_tx,
        shared: shared.clone(),
        registry,
        stats: munin_net::NetStats::new(),
        coalesce: start.coalesce,
        outbox: (0..n_nodes).map(|_| Vec::new()).collect(),
        scratch: Vec::new(),
        completions: Vec::new(),
    };
    send_shared(&ctrl_writer, &CtrlFrame::Ready)
        .map_err(|e| io::Error::new(e.kind(), format!("sending Ready: {e}")))?;

    let stats = server_loop(server, kernel, inbox_rx, start.batch_max);

    finishing.store(true, Ordering::SeqCst);
    let errors = shared.errors.lock().expect("error log poisoned").clone();
    let poisoned = shared.is_poisoned();
    let homes = shared.obs.take_homes();
    let cover = shared.coverage.as_ref().map(|c| c.rows()).unwrap_or_default();
    let _ = send_shared(&ctrl_writer, &CtrlFrame::Done { stats, errors, homes, cover });
    if !poisoned {
        // Phase two of the clean shutdown: hold our sockets open until the
        // coordinator confirms every node's Done arrived (`Bye`), so our
        // exit cannot look like a mid-run fault to a slower sibling. The
        // channel also unblocks if the control stream dies (sender drops).
        let _ = bye_rx.recv_timeout(Duration::from_secs(5));
    }
    drop(hb_stop_tx);
    drop(inbox_tx);
    let _ = timer_join.join();
    Ok(!poisoned)
}

/// Reader thread for one incoming data stream: decode frames into the
/// node's inbox. A stream failure on a live run means the peer is gone —
/// record it with the peer named, poison the local run, and (children only)
/// tell the coordinator right away.
pub(crate) fn spawn_data_reader<P>(
    mut stream: TcpStream,
    src: NodeId,
    inbox: Sender<NodeEvent<P>>,
    shared: Arc<Shared>,
    finishing: Arc<AtomicBool>,
    ctrl: Option<SharedWriter>,
) where
    P: Wire + Send + Sync + Clone + 'static,
{
    std::thread::Builder::new()
        .name(format!("tcp-read-n{}", src.index()))
        .spawn(move || {
            let mut buf = Vec::new();
            loop {
                match read_frame::<DataFrame<P>>(&mut stream, &mut buf) {
                    Ok(DataFrame::Msg(p)) => {
                        if inbox.send(NodeEvent::Msg(src, MsgBody::Owned(p))).is_err() {
                            return;
                        }
                    }
                    Ok(DataFrame::Batch(items)) => {
                        let batch =
                            items.into_iter().map(|p| (src, MsgBody::Owned(p))).collect::<Vec<_>>();
                        if inbox.send(NodeEvent::Batch(batch)).is_err() {
                            return;
                        }
                    }
                    Ok(DataFrame::Hello { .. }) => {
                        report_lost_peer(
                            &shared,
                            &finishing,
                            ctrl.as_ref(),
                            src,
                            "protocol error: repeated Hello on established stream".into(),
                        );
                        return;
                    }
                    Err(e) => {
                        report_lost_peer(&shared, &finishing, ctrl.as_ref(), src, e.to_string());
                        return;
                    }
                }
            }
        })
        .expect("failed to spawn data reader thread");
}

fn report_lost_peer(
    shared: &Shared,
    finishing: &AtomicBool,
    ctrl: Option<&SharedWriter>,
    src: NodeId,
    cause: String,
) {
    if finishing.load(Ordering::SeqCst) || shared.is_poisoned() {
        return;
    }
    let msg = format!("data stream from peer n{} failed: {cause} — peer lost", src.index());
    shared.error(msg.clone());
    shared.poisoned.store(true, Ordering::Release);
    if let Some(ctrl) = ctrl {
        let _ = send_shared(ctrl, &CtrlFrame::ReportError { msg });
    }
}

/// The child's control-stream reader: forwards application ops into the
/// inbox, routes registry replies, applies snapshot updates (acking them),
/// answers dump requests, and maps `Finish`/`Poison` onto the server loop.
#[allow(clippy::too_many_arguments)]
fn spawn_ctrl_reader<P>(
    mut stream: TcpStream,
    inbox: Sender<NodeEvent<P>>,
    reg_reply_tx: Sender<crate::frames::RegReply>,
    cache: Arc<RegCache>,
    ctrl_writer: SharedWriter,
    shared: Arc<Shared>,
    finishing: Arc<AtomicBool>,
    bye_tx: Sender<()>,
) where
    P: Send + Sync + Clone + 'static,
{
    std::thread::Builder::new()
        .name("tcp-ctrl-read".into())
        .spawn(move || {
            let mut buf = Vec::new();
            loop {
                match read_frame::<CtrlFrame>(&mut stream, &mut buf) {
                    Ok(CtrlFrame::Op { thread, op, fwd_us }) => {
                        // Queue the forwarder's wire stamp out-of-band (the
                        // inbox event vocabulary is fabric-agnostic); the
                        // gate dispatches this thread's ops in the same
                        // order, so stamps pair up by position.
                        shared.obs.note_wire_arrival(thread, fwd_us);
                        if inbox.send(NodeEvent::Op(thread, op)).is_err() {
                            return;
                        }
                    }
                    Ok(CtrlFrame::OpBatch { ops, fwd_us }) => {
                        // Expand in frame order: the forwarder drained its
                        // channel FIFO, so this preserves per-thread issue
                        // order into the server's op gate.
                        for (thread, op) in ops {
                            shared.obs.note_wire_arrival(thread, fwd_us);
                            if inbox.send(NodeEvent::Op(thread, op)).is_err() {
                                return;
                            }
                        }
                    }
                    Ok(CtrlFrame::RegReply(r)) => {
                        let _ = reg_reply_tx.send(r);
                    }
                    Ok(CtrlFrame::RegUpdate { decl, version, seq }) => {
                        cache.apply(decl, version);
                        let _ = send_shared(&ctrl_writer, &CtrlFrame::RegUpdateAck { seq });
                    }
                    Ok(CtrlFrame::DumpReq) => {
                        let text = munin_rt::request_dump(&inbox, Duration::from_secs(2));
                        let _ = send_shared(&ctrl_writer, &CtrlFrame::DumpReply { text });
                    }
                    Ok(CtrlFrame::Finish) => {
                        finishing.store(true, Ordering::SeqCst);
                        let _ = inbox.send(NodeEvent::Shutdown);
                    }
                    Ok(CtrlFrame::Poison) => {
                        shared.poisoned.store(true, Ordering::Release);
                    }
                    Ok(CtrlFrame::Bye) => {
                        let _ = bye_tx.send(());
                    }
                    Ok(other) => {
                        shared.error(format!("unexpected control frame: {other:?}"));
                    }
                    Err(e) => {
                        if !finishing.load(Ordering::SeqCst) && !shared.is_poisoned() {
                            shared.error(format!(
                                "control stream to coordinator failed: {e} — coordinator lost"
                            ));
                            shared.poisoned.store(true, Ordering::Release);
                        }
                        return;
                    }
                }
            }
        })
        .expect("failed to spawn control reader thread");
}

/// Arm this node's share of a test-injected fault (see [`TestFault`]).
fn spawn_test_fault(me: NodeId, fault: Option<TestFault>, raw_streams: &[Option<TcpStream>]) {
    match fault {
        Some(TestFault::Exit { node, after }) if node == me => {
            std::thread::Builder::new()
                .name("tcp-test-fault".into())
                .spawn(move || {
                    std::thread::sleep(after);
                    eprintln!("munin-node n{}: test fault — exiting abruptly", me.index());
                    std::process::exit(42);
                })
                .expect("failed to spawn fault thread");
        }
        Some(TestFault::HalfClose { node, peer, after }) if node == me => {
            let Some(stream) = raw_streams
                .get(peer.index())
                .and_then(|s| s.as_ref())
                .and_then(|s| s.try_clone().ok())
            else {
                eprintln!("munin-node n{}: test fault — no stream to n{}", me.index(), peer);
                return;
            };
            std::thread::Builder::new()
                .name("tcp-test-fault".into())
                .spawn(move || {
                    std::thread::sleep(after);
                    eprintln!(
                        "munin-node n{}: test fault — half-closing stream to n{}",
                        me.index(),
                        peer.index()
                    );
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                })
                .expect("failed to spawn fault thread");
        }
        _ => {}
    }
}
